/// \file bench_semiring.cpp
/// \brief Experiment E11 — the custom-semiring extension (the conclusion's
/// Min-Plus direction): APSP via tropical closure, walk counting, and the
/// price of genericity (generic BoolOrAnd kernel vs the specialised Boolean
/// kernel on identical inputs).
#include <cstdio>

#include "common.hpp"
#include "data/rmat.hpp"
#include "data/worstcase.hpp"
#include "ops/spgemm.hpp"
#include "semiring/algorithms.hpp"
#include "util/rng.hpp"

int main() {
    using namespace spbla;
    using namespace spbla::semiring;

    std::printf("E11a: all-pairs shortest paths via MinPlus closure\n");
    std::printf("%10s %10s %12s %10s %12s\n", "|V|", "edges", "apsp ms", "rounds",
                "pairs");
    bench::rule(58);
    util::Rng rng{2024};
    for (const Index n : {64u, 128u, 256u, 512u}) {
        std::vector<std::tuple<Index, Index, double>> triplets;
        for (std::size_t k = 0; k < static_cast<std::size_t>(n) * 4; ++k) {
            triplets.emplace_back(static_cast<Index>(rng.below(n)),
                                  static_cast<Index>(rng.below(n)),
                                  1.0 + static_cast<double>(rng.below(16)));
        }
        const auto adj = ValuedCsr<MinPlus>::from_triplets(n, n, std::move(triplets));
        std::size_t rounds = 0;
        ValuedCsr<MinPlus> result{n, n};
        const double s = bench::time_runs(
            [&] { result = apsp(bench::ctx(), adj, &rounds); }, 3);
        std::printf("%10u %10zu %12.2f %10zu %12zu\n", n, adj.nnz(), s * 1e3, rounds,
                    result.nnz());
    }

    std::printf("\nE11b: walk counting via PlusTimes powers (rmat scale 9)\n");
    std::printf("%10s %14s %16s\n", "length", "ms", "total walks");
    bench::rule(42);
    {
        const CsrMatrix boolean = data::make_rmat(9, 2, 5).csr();
        const auto adj = lift<PlusTimes>(boolean);
        for (const Index len : {2u, 3u, 4u}) {
            ValuedCsr<PlusTimes> power{adj.nrows(), adj.ncols()};
            const double s = bench::time_runs(
                [&] { power = count_walks(bench::ctx(), adj, len); }, 3);
            std::uint64_t total = 0;
            for (Index r = 0; r < power.nrows(); ++r) {
                for (const auto v : power.row_vals(r)) total += v;
            }
            std::printf("%10u %14.2f %16llu\n", len, s * 1e3,
                        static_cast<unsigned long long>(total));
        }
    }

    std::printf("\nE11c: the price of genericity — BoolOrAnd instance of the "
                "generic kernel vs the specialised Boolean kernel (C = A * A)\n");
    std::printf("%10s %12s %14s %10s\n", "scale", "native ms", "generic ms", "ratio");
    bench::rule(50);
    for (const Index scale : {9u, 10u, 11u}) {
        const CsrMatrix a = data::make_rmat(scale, 4, 7).csr();
        const auto lifted = lift<BoolOrAnd>(a);
        const double native = bench::time_runs(
            [&] { (void)ops::multiply(bench::ctx(), a, a); }, 3);
        const double generic = bench::time_runs(
            [&] { (void)semiring::multiply(bench::ctx(), lifted, lifted); }, 3);
        std::printf("%10u %12.2f %14.2f %9.2fx\n", scale, native * 1e3, generic * 1e3,
                    generic / native);
    }

    std::printf("\nExpected shapes: APSP rounds grow logarithmically; walk totals "
                "explode with length on a power-law graph; the specialised "
                "Boolean kernel beats its generic-semiring instantiation by a "
                "clear constant factor — the same specialisation argument as "
                "the paper's headline claim, one level up.\n");
    return 0;
}
