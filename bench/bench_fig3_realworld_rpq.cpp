/// \file bench_fig3_realworld_rpq.cpp
/// \brief Experiment E5 — regenerates Figure 3: RPQ index-creation time on
/// the real-world RDF analogs (Uniprot / taxonomy / geospecies /
/// mappingbased), per query template.
///
/// The paper's observations to reproduce:
///  - bigger graphs are not uniformly slower (geospecies can beat
///    mappingbased on some queries),
///  - taxonomy is disproportionately slow for its size,
///  - almost everything stays below ~10 s, nothing above ~52 s (at the
///    paper's scale; ours is ~30x smaller).
#include <cstdio>

#include "common.hpp"
#include "datasets.hpp"
#include "rpq/engine.hpp"
#include "rpq/query_templates.hpp"

int main() {
    using namespace spbla;
    const auto datasets = bench::realworld_rpq();

    std::printf("E5 / Figure 3: RPQ index creation time (ms) on real-world RDF "
                "analogs\n\n");
    std::printf("%-7s", "query");
    for (const auto& d : datasets) std::printf(" %13s", d.name.c_str());
    std::printf("\n");
    bench::rule(7 + 14 * static_cast<int>(datasets.size()));

    for (const auto& tpl : rpq::table2_templates()) {
        std::printf("%-7s", tpl.name.c_str());
        for (const auto& d : datasets) {
            // Per-graph instantiation with that graph's most frequent labels
            // (the paper's methodology).
            const auto labels = d.graph.labels_by_frequency();
            if (labels.size() < tpl.arity) {
                std::printf(" %13s", "---");
                continue;
            }
            const auto dfa = rpq::minimize(
                rpq::determinize(rpq::glushkov(*tpl.instantiate(labels))));
            const double s = bench::time_runs(
                [&] { (void)rpq::build_index(bench::ctx(), d.graph, dfa); },
                /*runs=*/3);
            std::printf(" %13.2f", s * 1e3);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    bench::rule(7 + 14 * static_cast<int>(datasets.size()));
    std::printf("\nExpected shape: Taxonomy~ slowest on closure-heavy queries "
                "despite not being the largest graph; Geospecies~ (smallest) "
                "not uniformly fastest.\n");
    return 0;
}
