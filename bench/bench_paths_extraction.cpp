/// \file bench_paths_extraction.cpp
/// \brief Experiment E8 — the paths-extraction paragraph of the evaluation.
///
/// The paper extracts "all paths with length not greater than 20 edges
/// between all pairs of vertices" from the G1 indices of `go` and
/// `eclass_514en`, reporting per-pair average and maximal extraction time
/// plus path counts. This harness reproduces those statistics on the
/// generated analogs (path count capped like the paper caps its run time).
#include <cstdio>

#include "cfpq/azimov.hpp"
#include "cfpq/paths.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/worklist.hpp"
#include "common.hpp"
#include "datasets.hpp"
#include "util/timer.hpp"

namespace {

using namespace spbla;

/// Number of distinct walks from u to v whose labels spell \p word.
/// The extractors deduplicate by *word*; the paper counts *paths*, and a
/// word may be realised by many walks, so path count = sum over words of
/// this DP. (A path determines its word, so nothing is double counted.)
std::uint64_t walk_count(const data::LabeledGraph& g, Index u, Index v,
                         const std::vector<std::string>& word) {
    std::vector<std::uint64_t> cnt(g.num_vertices(), 0);
    cnt[u] = 1;
    for (const auto& label : word) {
        std::vector<std::uint64_t> next(g.num_vertices(), 0);
        const auto& m = g.matrix(label);
        for (Index w = 0; w < g.num_vertices(); ++w) {
            if (cnt[w] == 0) continue;
            for (const auto t : m.row(w)) next[t] += cnt[w];
        }
        cnt = std::move(next);
    }
    return cnt[v];
}

}  // namespace

int main() {
    using namespace spbla;
    const auto grammar = cfpq::query_g1();

    std::printf("E8: all-paths extraction (length <= 20, word cap 256/pair) from "
                "the G1 index. `paths` counts distinct walks (the paper's unit): "
                "each extracted word is weighted by the number of walks "
                "realising it.\n\n");
    std::printf("%-15s %9s %9s | %11s %11s | %11s %11s %9s\n", "graph", "pairs",
                "sampled", "avg ms", "max ms", "avg paths", "max paths", "avg len");
    bench::rule(102);

    for (const auto& d : bench::cfpq_rdf()) {
        if (d.name != "go~" && d.name != "eclass_514en~") continue;
        const auto index = cfpq::azimov_cfpq(bench::ctx(), d.graph, grammar);
        const cfpq::PathExtractor extractor{bench::ctx(), d.graph, index};
        const auto pairs = index.reachable().to_coords();

        // Sample evenly across the answer set (the paper runs all pairs on a
        // GPU box; full enumeration here would dominate the harness).
        const std::size_t sample = pairs.size() < 400 ? pairs.size() : 400;
        const std::size_t stride = pairs.empty() ? 1 : pairs.size() / (sample + 1) + 1;

        double total_s = 0.0, max_s = 0.0;
        std::uint64_t total_paths = 0, max_paths = 0, total_len = 0, total_words = 0;
        std::size_t sampled = 0;
        for (std::size_t k = 0; k < pairs.size(); k += stride) {
            util::Timer timer;
            const auto words = extractor.extract(pairs[k].row, pairs[k].col, 20, 256);
            std::uint64_t pair_paths = 0;
            for (const auto& w : words) {
                pair_paths += walk_count(d.graph, pairs[k].row, pairs[k].col, w);
            }
            const double s = timer.seconds();
            total_s += s;
            if (s > max_s) max_s = s;
            total_paths += pair_paths;
            if (pair_paths > max_paths) max_paths = pair_paths;
            for (const auto& w : words) total_len += w.size();
            total_words += words.size();
            ++sampled;
        }
        std::printf("%-15s %9zu %9zu | %11.3f %11.3f | %11.1f %11llu %9.1f\n",
                    d.name.c_str(), pairs.size(), sampled,
                    sampled ? total_s * 1e3 / sampled : 0.0, max_s * 1e3,
                    sampled ? static_cast<double>(total_paths) / sampled : 0.0,
                    static_cast<unsigned long long>(max_paths),
                    total_words ? static_cast<double>(total_len) / total_words : 0.0);
        std::fflush(stdout);
    }
    bench::rule(102);

    // The paper's (source-commented) single-path comparison: "our generic
    // all-path extraction procedure is more than 1000 times slower than
    // Azimov's single path extraction". Same pairs, two extractors.
    std::printf("\nE8b: single-path (provenance index) vs all-paths extraction, "
                "per pair\n");
    std::printf("%-15s %14s %14s %10s\n", "graph", "single us", "all-paths us",
                "ratio");
    bench::rule(58);
    for (const auto& d : bench::cfpq_rdf()) {
        if (d.name != "go~" && d.name != "eclass_514en~") continue;
        const auto grammar2 = cfpq::query_g1();
        const cfpq::SinglePathIndex single{d.graph, grammar2};
        const auto mtx = cfpq::azimov_cfpq(bench::ctx(), d.graph, grammar2);
        const cfpq::PathExtractor all{bench::ctx(), d.graph, mtx};

        const auto pairs = single.reachable().to_coords();
        const std::size_t sample = pairs.size() < 200 ? pairs.size() : 200;
        const std::size_t stride = pairs.empty() ? 1 : pairs.size() / (sample + 1) + 1;
        double single_s = 0, all_s = 0;
        std::size_t sampled = 0;
        for (std::size_t k = 0; k < pairs.size(); k += stride) {
            std::vector<std::string> word;
            util::Timer t1;
            (void)single.extract_one(pairs[k].row, pairs[k].col, word);
            single_s += t1.seconds();
            util::Timer t2;
            (void)all.extract(pairs[k].row, pairs[k].col, 20, 256);
            all_s += t2.seconds();
            ++sampled;
        }
        std::printf("%-15s %14.2f %14.2f %9.1fx\n", d.name.c_str(),
                    sampled ? single_s * 1e6 / sampled : 0.0,
                    sampled ? all_s * 1e6 / sampled : 0.0,
                    single_s > 0 ? all_s / single_s : 0.0);
        std::fflush(stdout);
    }
    bench::rule(58);

    std::printf("\nPaper's observations to compare: go averages ~2.64 s/pair with "
                "up to 217737 paths (184 paths/pair avg); eclass averages ~1.27 "
                "s/pair with ~3 paths/pair. Expected shape: the go~ analog "
                "yields orders of magnitude more paths per pair than the "
                "eclass~ analog and costs correspondingly more per pair.\n");
    return 0;
}
