/// \file common.hpp
/// \brief Shared harness utilities for the paper-reproduction benchmarks.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "backend/context.hpp"
#include "util/timer.hpp"

namespace spbla::bench {

/// Number of repetitions benchmarks average over (the paper uses 5).
inline constexpr int kRuns = 5;

/// Best (minimum) wall-clock seconds of \p body over \p runs runs, plus one
/// untimed warm-up. The minimum filters scheduler noise out of short kernels,
/// so it is what the machine-readable perf trajectory records.
inline double time_best(const std::function<void()>& body, int runs = kRuns) {
    body();  // warm-up
    double best = 0.0;
    for (int r = 0; r < runs; ++r) {
        util::Timer timer;
        body();
        const double s = timer.seconds();
        if (r == 0 || s < best) best = s;
    }
    return best;
}

/// Average wall-clock seconds of \p body over kRuns runs (plus one
/// untimed warm-up run).
inline double time_runs(const std::function<void()>& body, int runs = kRuns) {
    body();  // warm-up
    util::Timer timer;
    for (int r = 0; r < runs; ++r) body();
    return timer.seconds() / runs;
}

/// Shared parallel context for all benchmarks.
inline backend::Context& ctx() {
    static backend::Context instance{backend::Policy::Parallel};
    return instance;
}

/// Print a horizontal rule sized to \p width.
inline void rule(int width) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

/// Render a number with thousands separators (table-friendly).
inline std::string with_commas(std::uint64_t v) {
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

}  // namespace spbla::bench
