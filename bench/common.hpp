/// \file common.hpp
/// \brief Shared harness utilities for the paper-reproduction benchmarks.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "backend/context.hpp"
#include "prof/prof.hpp"
#include "util/timer.hpp"

namespace spbla::bench {

/// Number of repetitions benchmarks average over (the paper uses 5).
inline constexpr int kRuns = 5;

/// Timing dispersion of one measured body over repeated runs. The minimum
/// filters scheduler noise out of short kernels (so it remains the metric the
/// machine-readable perf trajectory tracks across PRs); mean and sample
/// standard deviation record how noisy the measurement itself was, so a
/// regression can be told apart from jitter.
struct Stats {
    double min_s = 0.0;
    double mean_s = 0.0;
    double stddev_s = 0.0;
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
    int runs = 0;

    [[nodiscard]] double min_ms() const { return min_s * 1e3; }
    [[nodiscard]] double mean_ms() const { return mean_s * 1e3; }
    [[nodiscard]] double stddev_ms() const { return stddev_s * 1e3; }
    [[nodiscard]] double p50_ms() const { return p50_s * 1e3; }
    [[nodiscard]] double p95_ms() const { return p95_s * 1e3; }
    [[nodiscard]] double p99_ms() const { return p99_s * 1e3; }
};

/// Nearest-rank percentile of an ascending-sorted sample vector.
[[nodiscard]] inline double percentile_of(const std::vector<double>& sorted,
                                          double q) {
    if (sorted.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

/// Time \p body over \p runs runs (plus one untimed warm-up) and return
/// min / mean / sample-stddev wall-clock seconds.
inline Stats time_stats(const std::function<void()>& body, int runs = kRuns) {
    body();  // warm-up
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(runs));
    for (int r = 0; r < runs; ++r) {
        util::Timer timer;
        body();
        samples.push_back(timer.seconds());
    }
    Stats stats;
    stats.runs = runs;
    stats.min_s = samples.front();
    double sum = 0.0;
    for (const double s : samples) {
        sum += s;
        if (s < stats.min_s) stats.min_s = s;
    }
    stats.mean_s = sum / runs;
    double sq = 0.0;
    for (const double s : samples) {
        sq += (s - stats.mean_s) * (s - stats.mean_s);
    }
    stats.stddev_s = runs > 1 ? std::sqrt(sq / (runs - 1)) : 0.0;
    std::sort(samples.begin(), samples.end());
    stats.p50_s = percentile_of(samples, 0.50);
    stats.p95_s = percentile_of(samples, 0.95);
    stats.p99_s = percentile_of(samples, 0.99);
    return stats;
}

/// Best (minimum) wall-clock seconds of \p body over \p runs runs.
inline double time_best(const std::function<void()>& body, int runs = kRuns) {
    return time_stats(body, runs).min_s;
}

/// Average wall-clock seconds of \p body over \p runs runs.
inline double time_runs(const std::function<void()>& body, int runs = kRuns) {
    return time_stats(body, runs).mean_s;
}

/// Shared parallel context for all benchmarks.
inline backend::Context& ctx() {
    static backend::Context instance{backend::Policy::Parallel};
    return instance;
}

/// Print a horizontal rule sized to \p width.
inline void rule(int width) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

/// Render a number with thousands separators (table-friendly).
inline std::string with_commas(std::uint64_t v) {
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

/// Minimal streaming JSON writer shared by the benchmark executables, so
/// every BENCH_*.json carries the same shapes — timings as
/// {min_ms, mean_ms, stddev_ms, runs} objects, profiling counters under a
/// "counters" key — without each bench hand-rolling fprintf format strings
/// (and their comma/escaping bugs).
class JsonWriter {
public:
    explicit JsonWriter(std::FILE* f) : f_(f) {}

    void begin_object(const char* key = nullptr) { open(key, '{'); }
    void end_object() { close('}'); }
    void begin_array(const char* key = nullptr) { open(key, '['); }
    void end_array() { close(']'); }

    void field(const char* key, const char* value) {
        prefix(key);
        std::fputc('"', f_);
        for (const char* p = value; *p != '\0'; ++p) {
            if (*p == '"' || *p == '\\') std::fputc('\\', f_);
            std::fputc(*p, f_);
        }
        std::fputc('"', f_);
    }
    void field(const char* key, const std::string& value) { field(key, value.c_str()); }
    void field(const char* key, std::uint64_t value) {
        prefix(key);
        std::fprintf(f_, "%llu", static_cast<unsigned long long>(value));
    }
    void field(const char* key, int value) {
        field(key, static_cast<std::uint64_t>(value));
    }
    void field(const char* key, double value) {
        prefix(key);
        std::fprintf(f_, "%.3f", value);
    }
    /// A timing with dispersion and tail: {"min_ms":…, "mean_ms":…,
    /// "stddev_ms":…, "p50_ms":…, "p95_ms":…, "p99_ms":…, "runs":…}.
    void field(const char* key, const Stats& stats) {
        begin_object(key);
        field("min_ms", stats.min_ms());
        field("mean_ms", stats.mean_ms());
        field("stddev_ms", stats.stddev_ms());
        field("p50_ms", stats.p50_ms());
        field("p95_ms", stats.p95_ms());
        field("p99_ms", stats.p99_ms());
        field("runs", stats.runs);
        end_object();
    }

private:
    void open(const char* key, char bracket) {
        prefix(key);
        std::fputc(bracket, f_);
        first_.push_back(true);
    }
    void close(char bracket) {
        first_.pop_back();
        newline();
        std::fputc(bracket, f_);
        if (first_.empty()) std::fputc('\n', f_);
    }
    void prefix(const char* key) {
        if (!first_.empty()) {
            if (!first_.back()) std::fputc(',', f_);
            first_.back() = false;
            newline();
        }
        if (key != nullptr) std::fprintf(f_, "\"%s\": ", key);
    }
    void newline() {
        std::fputc('\n', f_);
        for (std::size_t i = 0; i < 2 * first_.size(); ++i) std::fputc(' ', f_);
    }

    std::FILE* f_;
    std::vector<bool> first_;  ///< one entry per open scope; true until first item
};

/// Emit every profiling counter aggregated since the last prof::reset() as a
/// "span/counter" keyed object. Empty when the library was built with
/// SPBLA_PROFILE=off (the counter tables stay silent) or profiling is
/// disabled at runtime.
inline void write_prof_counters(JsonWriter& w, const char* key = "counters") {
    w.begin_object(key);
    for (const auto& row : prof::counter_rows()) {
        w.field((row.span + "/" + row.counter).c_str(), row.value);
    }
    w.end_object();
}

}  // namespace spbla::bench
