/// \file bench_fig2_lubm_rpq.cpp
/// \brief Experiment E4 — regenerates Figure 2: RPQ index-creation time for
/// the LUBM series, all Table II query templates.
///
/// Methodology mirrors the paper: each template is instantiated with the
/// most frequent relations of the graph, the same query set is used for
/// every LUBM size, and the time reported is the index-creation (Kronecker
/// product + transitive closure) average over repeated runs.
#include <cstdio>

#include "common.hpp"
#include "datasets.hpp"
#include "rpq/engine.hpp"
#include "rpq/query_templates.hpp"

int main() {
    using namespace spbla;
    const auto series = bench::lubm_series();

    // The paper uses the same queries for all LUBM graphs: instantiate the
    // templates once, from the smallest graph's frequent labels (the label
    // distribution is identical across the series by construction).
    const auto labels = series.front().graph.labels_by_frequency();

    std::printf("E4 / Figure 2: RPQ index creation time (ms) over the LUBM series\n\n");
    std::printf("%-7s", "query");
    for (const auto& d : series) std::printf(" %11s", d.name.c_str());
    std::printf("\n");
    bench::rule(7 + 12 * static_cast<int>(series.size()));

    double worst = 0.0;
    std::string worst_query;
    for (const auto& tpl : rpq::table2_templates()) {
        if (labels.size() < tpl.arity) {
            std::printf("%-7s  (skipped: graph has fewer labels than the "
                        "template needs)\n",
                        tpl.name.c_str());
            continue;
        }
        const auto dfa = rpq::minimize(
            rpq::determinize(rpq::glushkov(*tpl.instantiate(labels))));
        std::printf("%-7s", tpl.name.c_str());
        for (const auto& d : series) {
            const double s = bench::time_runs(
                [&] { (void)rpq::build_index(bench::ctx(), d.graph, dfa); },
                /*runs=*/3);
            std::printf(" %11.2f", s * 1e3);
            std::fflush(stdout);
            if (s > worst) {
                worst = s;
                worst_query = tpl.name;
            }
        }
        std::printf("\n");
    }
    bench::rule(7 + 12 * static_cast<int>(series.size()));
    std::printf("\nworst query: %s at %.2f s (paper: worst 6.26 s for Q14 at "
                "~40x our scale; cheap queries Q2/Q5/Q11 stay far below the "
                "a*-closure queries at every size — check the same ordering "
                "holds above)\n",
                worst_query.c_str(), worst);
    return 0;
}
