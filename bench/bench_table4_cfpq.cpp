/// \file bench_table4_cfpq.cpp
/// \brief Experiment E7 — regenerates Table IV: CFPQ index-creation time,
/// tensor algorithm (Tns) vs Azimov's matrix algorithm (Mtx), for the
/// queries G1, G2 (RDF ontologies), Geo (geospecies) and MA (kernel alias
/// graphs). Five-run averages, like the paper.
///
/// Shape to reproduce from the paper's Table IV:
///  - the two algorithms are within a small factor of each other everywhere,
///  - Tns wins on the deep, almost-pure-hierarchy graph (go-hierarchy:
///    0.16 s vs 1.43 s in the paper) because it skips the CNF blow-up,
///  - Mtx wins on the big flat graphs (taxonomy, MA over kernel graphs)
///    where Tns pays for the larger Kronecker product.
#include <cstdio>

#include "cfpq/azimov.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "common.hpp"
#include "datasets.hpp"

namespace {

using namespace spbla;

struct Row {
    const char* graph;
    const char* query;
    double tns_s;
    double mtx_s;
    std::size_t answers;
};

Row run_case(const char* graph_name, const data::LabeledGraph& graph,
             const char* query_name, const cfpq::Grammar& grammar) {
    std::size_t answers = 0;
    // Three timed runs (the paper uses five on a GPU box; these cells are
    // minutes-scale on one CPU core at five).
    const double tns = bench::time_runs(
        [&] {
            answers = cfpq::tensor_cfpq(bench::ctx(), graph, grammar)
                          .reachable(grammar)
                          .nnz();
        },
        3);
    const double mtx = bench::time_runs(
        [&] { (void)cfpq::azimov_cfpq(bench::ctx(), graph, grammar); }, 3);
    return {graph_name, query_name, tns, mtx, answers};
}

}  // namespace

int main() {
    std::printf("E7 / Table IV: CFPQ index creation, seconds (3-run average)\n\n");
    std::printf("%-15s | %8s %8s | %8s %8s | %8s %8s | %8s %8s\n", "Name", "G1:Tns",
                "G1:Mtx", "G2:Tns", "G2:Mtx", "Geo:Tns", "Geo:Mtx", "MA:Tns",
                "MA:Mtx");
    bench::rule(100);

    const auto g1 = cfpq::query_g1();
    const auto g2 = cfpq::query_g2();
    const auto geo = cfpq::query_geo();
    const auto ma = cfpq::query_ma();

    for (const auto& d : bench::cfpq_rdf()) {
        const auto r1 = run_case(d.name.c_str(), d.graph, "G1", g1);
        const auto r2 = run_case(d.name.c_str(), d.graph, "G2", g2);
        std::printf("%-15s | %8.3f %8.3f | %8.3f %8.3f |", d.name.c_str(), r1.tns_s,
                    r1.mtx_s, r2.tns_s, r2.mtx_s);
        if (d.graph.has_label("broaderTransitive")) {
            const auto rg = run_case(d.name.c_str(), d.graph, "Geo", geo);
            std::printf(" %8.3f %8.3f |", rg.tns_s, rg.mtx_s);
        } else {
            std::printf(" %8s %8s |", "---", "---");
        }
        std::printf(" %8s %8s\n", "---", "---");
        std::fflush(stdout);
    }
    bench::rule(100);
    for (const auto& d : bench::cfpq_alias()) {
        const auto r = run_case(d.name.c_str(), d.graph, "MA", ma);
        std::printf("%-15s | %8s %8s | %8s %8s | %8s %8s | %8.3f %8.3f\n",
                    d.name.c_str(), "---", "---", "---", "---", "---", "---",
                    r.tns_s, r.mtx_s);
        std::fflush(stdout);
    }
    bench::rule(100);
    std::printf("\nPaper's Table IV shape to compare against: Tns/Mtx within a "
                "small factor everywhere; Tns ahead on go-hierarchy (deep pure "
                "hierarchy, no CNF blow-up); Mtx ahead on taxonomy and on the "
                "MA kernel graphs (Tns computes the all-paths index, Mtx only "
                "single-path data).\n");
    return 0;
}
