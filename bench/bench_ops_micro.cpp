/// \file bench_ops_micro.cpp
/// \brief Google-benchmark micro suite for every library primitive, plus the
/// SpGEMM performance-trajectory harness.
///
/// Not a paper artifact per se: this is the per-kernel performance
/// regression net, parameterised over the R-MAT scale, that backs the
/// ablation discussion in DESIGN.md. The custom main() first writes
/// BENCH_spgemm.json — machine-readable SpGEMM timings on skewed (R-MAT and
/// Zipf) inputs for the scheduler/caching configurations, so the perf
/// trajectory of the multiplication kernel is tracked across PRs — and then
/// runs the google-benchmark suite as usual.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "algorithms/closure.hpp"
#include "backend/arena.hpp"
#include "backend/context.hpp"
#include "baseline/generic_spgemm.hpp"
#include "common.hpp"
#include "core/convert.hpp"
#include "data/rmat.hpp"
// The strong-scaling ladder reads per-device busy time straight off the
// group (benchmarks are a sanctioned import site for the tile headers).
#include "dist/device_group.hpp"  // lint:allow(format-leak)
#include "dist/dist.hpp"
#include "data/kernel_alias.hpp"
#include "data/lubm.hpp"
#include "incr/incremental.hpp"
#include "incr/memo.hpp"
#include "ops/ops.hpp"
#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "util/rng.hpp"

namespace {

using namespace spbla;

backend::Context& ctx() {
    static backend::Context instance{backend::Policy::Parallel};
    return instance;
}

const CsrMatrix& rmat(int scale) {
    static std::map<int, CsrMatrix> cache;
    auto it = cache.find(scale);
    if (it == cache.end()) {
        it = cache.emplace(scale, data::make_rmat(static_cast<Index>(scale), 8).csr()).first;
    }
    return it->second;
}

void BM_SpGemmBoolean(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::multiply(ctx(), a, a));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpGemmBoolean)->Arg(8)->Arg(10)->Arg(12);

void BM_SpGemmBooleanZipf(benchmark::State& state) {
    const CsrMatrix a =
        data::make_zipf(Index{1} << static_cast<Index>(state.range(0)),
                        Index{1} << static_cast<Index>(state.range(0)), 8, 1.0)
            .csr();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::multiply(ctx(), a, a));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpGemmBooleanZipf)->Arg(10)->Arg(12);

void BM_SpGemmGenericHash(benchmark::State& state) {
    const auto g = baseline::GenericCsr::from_boolean(rmat(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baseline::multiply_hash(ctx(), g, g));
    }
}
BENCHMARK(BM_SpGemmGenericHash)->Arg(8)->Arg(10)->Arg(12);

void BM_SpGemmGenericEsc(benchmark::State& state) {
    const auto g = baseline::GenericCsr::from_boolean(rmat(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baseline::multiply_esc(ctx(), g, g));
    }
}
BENCHMARK(BM_SpGemmGenericEsc)->Arg(8)->Arg(10)->Arg(12);

void BM_EwiseAddCsr(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const auto at = ops::transpose(ctx(), a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::ewise_add(ctx(), a, at));
    }
}
BENCHMARK(BM_EwiseAddCsr)->Arg(10)->Arg(12)->Arg(14);

void BM_EwiseAddCoo(benchmark::State& state) {
    const auto a = to_coo(rmat(static_cast<int>(state.range(0))));
    const auto at = to_coo(ops::transpose(ctx(), rmat(static_cast<int>(state.range(0)))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::ewise_add(ctx(), a, at));
    }
}
BENCHMARK(BM_EwiseAddCoo)->Arg(10)->Arg(12)->Arg(14);

void BM_Kronecker(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const CsrMatrix small = data::make_rmat(4, 2, 77).csr();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::kronecker(ctx(), small, a));
    }
}
BENCHMARK(BM_Kronecker)->Arg(8)->Arg(10);

void BM_Transpose(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::transpose(ctx(), a));
    }
}
BENCHMARK(BM_Transpose)->Arg(10)->Arg(12)->Arg(14);

void BM_Submatrix(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const Index half = a.nrows() / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::submatrix(ctx(), a, half / 2, half / 2, half, half));
    }
}
BENCHMARK(BM_Submatrix)->Arg(10)->Arg(12)->Arg(14);

void BM_ReduceToColumn(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::reduce_to_column(ctx(), a));
    }
}
BENCHMARK(BM_ReduceToColumn)->Arg(10)->Arg(12)->Arg(14);

void BM_TransitiveClosureSquaring(benchmark::State& state) {
    const Matrix a{rmat(static_cast<int>(state.range(0))), ctx()};
    for (auto _ : state) {
        benchmark::DoNotOptimize(algorithms::transitive_closure(
            ctx(), a, algorithms::ClosureStrategy::Squaring));
    }
}
BENCHMARK(BM_TransitiveClosureSquaring)->Arg(8)->Arg(10);

void BM_TransitiveClosureLinear(benchmark::State& state) {
    const Matrix a{rmat(static_cast<int>(state.range(0))), ctx()};
    for (auto _ : state) {
        benchmark::DoNotOptimize(algorithms::transitive_closure(
            ctx(), a, algorithms::ClosureStrategy::Linear));
    }
}
BENCHMARK(BM_TransitiveClosureLinear)->Arg(8)->Arg(10);

// ---------------- SpGEMM perf trajectory (BENCH_spgemm.json) ----------------

/// The ablation ladder from the pre-bin-scheduler implementation to the full
/// pipeline; each rung enables exactly one mechanism on top of the previous,
/// so consecutive ratios attribute the gain to that mechanism.
struct SpGemmConfig {
    const char* name;
    ops::SpGemmOptions opts;
};

std::vector<SpGemmConfig> spgemm_ladder() {
    ops::SpGemmOptions baseline;  // the pre-PR two-pass static-chunk kernel
    baseline.legacy_accumulator_reset = true;
    baseline.dense_row_fraction = 0.25;  // the pre-PR dense-bin threshold
    baseline.use_ticket_scheduler = false;
    baseline.use_bin_scheduler = false;
    baseline.symbolic_cache_budget = 0;
    ops::SpGemmOptions reset_fix = baseline;  // + touched-word / re-probe resets
    reset_fix.legacy_accumulator_reset = false;
    ops::SpGemmOptions retune = reset_fix;  // + 1/64 dense-bitmap crossover
    retune.dense_row_fraction = ops::SpGemmOptions{}.dense_row_fraction;
    ops::SpGemmOptions ticket = retune;
    ticket.use_ticket_scheduler = true;
    ops::SpGemmOptions binned = ticket;
    binned.use_bin_scheduler = true;
    const ops::SpGemmOptions full;  // + symbolic-column caching (defaults)
    return {{"two_pass_static", baseline},
            {"plus_accumulator_reset_fix", reset_fix},
            {"plus_dense_bitmap_retune", retune},
            {"plus_ticket_scheduler", ticket},
            {"plus_bin_scheduler", binned},
            {"plus_symbolic_cache", full}};
}

/// Times C = A * A for every ladder rung, appends one JSON input record, and
/// returns full-pipeline speedup over the pre-PR baseline rung. The "ms"
/// field stays the minimum (the trajectory metric tracked across PRs); the
/// "time" object adds the dispersion and, when the library was built with
/// SPBLA_PROFILE=counters|trace, each rung carries a "counters" object from
/// one instrumented (untimed) multiplication — nnz, bin occupancy, hash
/// probe/collision rates and pool steals per rung, so the ladder attributes
/// not just time but also the mechanism-level effects.
double write_spgemm_record(bench::JsonWriter& w, const char* name,
                           const CsrMatrix& a) {
    const auto configs = spgemm_ladder();
    w.begin_object();
    w.field("name", name);
    w.field("nrows", static_cast<std::uint64_t>(a.nrows()));
    w.field("nnz", static_cast<std::uint64_t>(a.nnz()));
    w.begin_array("configs");
    double baseline_ms = 0, full_ms = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto stats = bench::time_stats(
            [&] { (void)ops::multiply(ctx(), a, a, configs[i].opts); }, 5);
        const double ms = stats.min_ms();
        if (i == 0) baseline_ms = ms;
        if (i + 1 == configs.size()) full_ms = ms;
        w.begin_object();
        w.field("name", configs[i].name);
        w.field("ms", ms);
        w.field("time", stats);
        if (prof::counting()) {
            prof::reset();
            (void)ops::multiply(ctx(), a, a, configs[i].opts);
            bench::write_prof_counters(w);
        }
        w.end_object();
    }
    w.end_array();
    const double speedup = full_ms > 0 ? baseline_ms / full_ms : 0.0;
    w.field("speedup_full_vs_two_pass_static", speedup);
    w.end_object();
    return speedup;
}

/// Writes BENCH_spgemm.json (path overridable via SPBLA_BENCH_JSON) with the
/// scheduler/caching ladder on the skewed SpGEMM stress inputs.
void write_spgemm_trajectory() {
    const char* path = std::getenv("SPBLA_BENCH_JSON");
    if (path == nullptr) path = "BENCH_spgemm.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_ops_micro: cannot open %s for writing\n", path);
        return;
    }
    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "spgemm");
    w.field("operation", "C = A * A");
    w.field("policy", "parallel");
    w.field("threads", static_cast<std::uint64_t>(ctx().pool() ? ctx().pool()->size() : 1));
    w.field("runs", 5);
    w.field("aggregate", "min");
    w.field("profile", prof::compiled_level_name());
    w.begin_array("inputs");
    struct Input {
        const char* name;
        CsrMatrix m;
    };
    const Input inputs[] = {
        {"rmat-12-8", data::make_rmat(12, 8).csr()},
        {"rmat-13-8", data::make_rmat(13, 8).csr()},
        {"zipf-4096-16", data::make_zipf(4096, 4096, 16, 1.0).csr()},
        {"zipf-8192-8", data::make_zipf(8192, 8192, 8, 1.1).csr()},
    };
    constexpr std::size_t kNumInputs = std::size(inputs);
    double log_sum = 0.0;
    for (std::size_t i = 0; i < kNumInputs; ++i) {
        const double s = write_spgemm_record(w, inputs[i].name, inputs[i].m);
        log_sum += std::log(s > 0 ? s : 1.0);
    }
    w.end_array();
    const double geomean = std::exp(log_sum / kNumInputs);
    w.field("geomean_speedup", geomean);

    // Allocation-count ablation: the same full-pipeline multiply with the op
    // arena active vs. forced into pass-through (every scratch request an
    // individually tracked heap block — the pre-arena behaviour). Counted by
    // the device tracker, so the ratio is exactly the allocator-traffic
    // reduction the arena tier buys on this ladder's hardest input.
    {
        const ops::SpGemmOptions full;
        auto& tracker = ctx().tracker();
        (void)ops::multiply(ctx(), inputs[0].m, inputs[0].m, full);  // warm slabs
        const std::uint64_t on0 = tracker.alloc_count();
        (void)ops::multiply(ctx(), inputs[0].m, inputs[0].m, full);
        const std::uint64_t allocs_on = tracker.alloc_count() - on0;

        backend::set_arena_enabled(false);
        const std::uint64_t off0 = tracker.alloc_count();
        (void)ops::multiply(ctx(), inputs[0].m, inputs[0].m, full);
        const std::uint64_t allocs_off = tracker.alloc_count() - off0;
        backend::set_arena_enabled(true);

        const double reduction =
            static_cast<double>(allocs_off) /
            static_cast<double>(std::max<std::uint64_t>(allocs_on, 1));
        w.field("allocs_arena_on", allocs_on);
        w.field("allocs_arena_off", allocs_off);
        w.field("alloc_reduction_spgemm", reduction);
        std::printf("SpGEMM alloc ablation: %llu tracked allocs pass-through vs "
                    "%llu with the arena (%.1fx reduction)\n",
                    static_cast<unsigned long long>(allocs_off),
                    static_cast<unsigned long long>(allocs_on), reduction);
    }
    w.end_object();
    std::fclose(f);
    std::printf("SpGEMM trajectory written to %s (geomean speedup %.2fx)\n", path,
                geomean);
}

// ------------- Format-dispatch trajectory (BENCH_formats.json) -------------

/// One dispatch-visible operation timed by the format ladder.
struct FormatOp {
    const char* name;
    std::function<void(const Matrix&, const Matrix&)> run;
};

/// The cost-model acceptance ladder: every public op is timed on every input
/// under auto routing and under each forced format, and the record keeps
/// auto / best-static / worst-static ratios. The tracked claims: auto stays
/// within 10% of the best static choice (geomean) and strictly beats the
/// worst one — i.e. the cost model earns its keep over any fixed format.
/// All representations are materialised before timing, so the ladder
/// measures routing quality, not one-off conversion noise; the conversion
/// and cache-hit counters are reported separately from an instrumented pass.
void write_formats_trajectory() {
    const char* path = std::getenv("SPBLA_BENCH_FORMATS_JSON");
    if (path == nullptr) path = "BENCH_formats.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_ops_micro: cannot open %s for writing\n", path);
        return;
    }

    struct Input {
        const char* name;
        Matrix a;
        Matrix b;
    };
    const auto square = [&](CsrMatrix m) {
        Matrix a{std::move(m), ctx()};
        Matrix b = storage::transpose(ctx(), a);
        // Materialise every representation up front (charged, cached).
        for (const Matrix* p : {&a, &b}) {
            (void)p->csr(ctx());
            (void)p->coo(ctx());
            (void)p->dense(ctx());
            (void)p->bitblocks(ctx());
        }
        return Input{nullptr, std::move(a), std::move(b)};
    };
    std::vector<Input> inputs;
    inputs.push_back(square(data::make_rmat(10, 8).csr()));
    inputs.back().name = "rmat-10-8";  // skewed sparse: the CSR home turf
    inputs.push_back(square(data::make_uniform(256, 256, 0.30, 5151).csr()));
    inputs.back().name = "uniform-256-dense";  // 30% full: dense-bitmap turf
    inputs.push_back(square(data::make_uniform(2048, 2048, 0.001, 5252).csr()));
    inputs.back().name = "uniform-2048-hyper";  // ~2/row: COO-friendly

    const FormatOp ops[] = {
        {"multiply",
         [](const Matrix& a, const Matrix& b) { (void)storage::multiply(ctx(), a, b); }},
        {"ewise_add",
         [](const Matrix& a, const Matrix& b) { (void)storage::ewise_add(ctx(), a, b); }},
        {"ewise_mult",
         [](const Matrix& a, const Matrix& b) { (void)storage::ewise_mult(ctx(), a, b); }},
        {"transpose",
         [](const Matrix& a, const Matrix&) { (void)storage::transpose(ctx(), a); }},
        {"submatrix",
         [](const Matrix& a, const Matrix&) {
             (void)storage::submatrix(ctx(), a, a.nrows() / 4, a.ncols() / 4,
                                      a.nrows() / 2, a.ncols() / 2);
         }},
        {"reduce_to_column",
         [](const Matrix& a, const Matrix&) { (void)storage::reduce_to_column(ctx(), a); }},
    };

    struct HintCase {
        const char* name;
        storage::FormatHint hint;
    };
    const HintCase hints[] = {
        {"auto", storage::FormatHint::Auto},
        {"csr", storage::FormatHint::ForceCsr},
        {"coo", storage::FormatHint::ForceCoo},
        {"dense", storage::FormatHint::ForceDense},
        {"bitblock", storage::FormatHint::ForceBitBlocks},
    };

    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "formats");
    w.field("operation", "storage dispatch vs forced formats");
    w.field("policy", "parallel");
    w.field("runs", 17);
    w.field("aggregate", "min");
    storage::reset_stats();
    w.begin_array("records");
    double log_vs_best = 0.0, log_vs_worst = 0.0;
    std::size_t n_records = 0, auto_beats_worst = 0;
    for (const auto& op : ops) {
        for (const auto& input : inputs) {
            w.begin_object();
            w.field("op", op.name);
            w.field("input", input.name);
            w.field("nrows", static_cast<std::uint64_t>(input.a.nrows()));
            w.field("nnz", static_cast<std::uint64_t>(input.a.nnz()));
            double auto_ms = 0.0, best_ms = 0.0, worst_ms = 0.0;
            for (const auto& h : hints) {
                storage::ScopedHint scope{h.hint};
                const auto stats = bench::time_stats(
                    [&] { op.run(input.a, input.b); }, 17);
                const double ms = stats.min_ms();
                w.field(h.name, stats);
                if (h.hint == storage::FormatHint::Auto) {
                    auto_ms = ms;
                } else {
                    if (best_ms == 0.0 || ms < best_ms) best_ms = ms;
                    if (ms > worst_ms) worst_ms = ms;
                }
            }
            w.field("auto_vs_best_static", best_ms > 0 ? auto_ms / best_ms : 0.0);
            w.field("auto_vs_worst_static", worst_ms > 0 ? auto_ms / worst_ms : 0.0);
            if (auto_ms > 0 && best_ms > 0 && worst_ms > 0) {
                log_vs_best += std::log(auto_ms / best_ms);
                log_vs_worst += std::log(auto_ms / worst_ms);
                if (auto_ms < worst_ms) ++auto_beats_worst;
                ++n_records;
            }
            w.end_object();
        }
    }
    w.end_array();

    // Dense-bin density ladder: the broadword tier against the generic hash
    // SpGEMM on uniform inputs at and above the 1/64 dense-bin threshold —
    // the regime the 64x64 tile format was built for. The tracked claim:
    // the bit tier wins by >= 4x geomean here. ewise_mult rides along so the
    // instrumented replay exercises the AND counter (bitblock_words_anded),
    // not just the multiply's OR paths.
    struct Rung {
        const char* name;
        Index n;
        double density;
    };
    const Rung rungs[] = {
        {"uniform-1024-d1/64", 1024, 1.0 / 64},
        {"uniform-1024-d1/16", 1024, 1.0 / 16},
        {"uniform-512-d1/4", 512, 0.25},
    };
    constexpr int kBitRuns = 5;
    w.begin_array("bitblock_ladder");
    double log_bb = 0.0;
    std::size_t n_bb = 0;
    for (const Rung& r : rungs) {
        const CsrMatrix a = data::make_uniform(r.n, r.n, r.density, 6161).csr();
        const BitBlockMatrix ab = to_bitblocks(ctx(), a);
        const auto g = baseline::GenericCsr::from_boolean(a);
        const auto bit = bench::time_stats(
            [&] { (void)ops::multiply(ctx(), ab, ab); }, kBitRuns);
        const auto hash = bench::time_stats(
            [&] { (void)baseline::multiply_hash(ctx(), g, g); }, kBitRuns);
        const auto bit_and = bench::time_stats(
            [&] { (void)ops::ewise_mult(ctx(), ab, ab); }, kBitRuns);
        const double speedup =
            bit.min_ms() > 0 ? hash.min_ms() / bit.min_ms() : 0.0;
        w.begin_object();
        w.field("input", r.name);
        w.field("nrows", static_cast<std::uint64_t>(r.n));
        w.field("nnz", static_cast<std::uint64_t>(a.nnz()));
        w.field("density", r.density);
        w.field("bitblock_multiply", bit);
        w.field("hash_spgemm", hash);
        w.field("bitblock_ewise_mult", bit_and);
        w.field("bitblock_vs_hash", speedup);
        w.end_object();
        if (speedup > 0) {
            log_bb += std::log(speedup);
            ++n_bb;
        }
    }
    w.end_array();
    const double geo_bb =
        n_bb > 0 ? std::exp(log_bb / static_cast<double>(n_bb)) : 0.0;
    w.field("geomean_bitblock_vs_hash_spgemm", geo_bb);

    // Counter story of the whole sweep: conversions happen only while the
    // reps warm up (bounded by inputs x formats); routed ops hit the cache.
    const auto& s = storage::stats();
    w.begin_object("counters");
    w.field("format_conversions",
            s.format_conversions.load(std::memory_order_relaxed));
    w.field("repr_cache_hits", s.repr_cache_hits.load(std::memory_order_relaxed));
    w.field("dispatch_csr", s.dispatch_csr.load(std::memory_order_relaxed));
    w.field("dispatch_coo", s.dispatch_coo.load(std::memory_order_relaxed));
    w.field("dispatch_dense", s.dispatch_dense.load(std::memory_order_relaxed));
    w.field("dispatch_bitblock",
            s.dispatch_bitblock.load(std::memory_order_relaxed));
    w.end_object();
    if (prof::counting()) {
        // Replay once with cold caches so the exported trace carries the
        // whole counter story: conversions while the secondary reps rebuild,
        // cache hits when the next op reuses them, and one pick per dispatch.
        // No prof::reset() here — the spgemm ladder's final counters must
        // survive into the exit trace dump alongside the dispatch counters,
        // so the snapshot below also includes them; the storage::Stats
        // "counters" object above is the dispatch-only tally.
        for (auto& input : inputs) {
            input.a.drop_cached();
            input.b.drop_cached();
            for (const auto& op : ops) op.run(input.a, input.b);
        }
        bench::write_prof_counters(w, "prof_counters");
    }
    const double geo_best =
        n_records > 0 ? std::exp(log_vs_best / static_cast<double>(n_records)) : 0.0;
    const double geo_worst =
        n_records > 0 ? std::exp(log_vs_worst / static_cast<double>(n_records)) : 0.0;
    w.field("geomean_auto_vs_best_static", geo_best);
    w.field("geomean_auto_vs_worst_static", geo_worst);
    w.field("auto_beats_worst_static",
            static_cast<std::uint64_t>(auto_beats_worst));
    w.field("n_records", static_cast<std::uint64_t>(n_records));
    w.end_object();
    std::fclose(f);
    std::printf("Format-dispatch ladder written to %s "
                "(auto vs best static %.2fx, vs worst static %.2fx, "
                "bitblock vs hash-SpGEMM %.2fx)\n",
                path, geo_best, geo_worst, geo_bb);
}

// ------------- Sharded strong-scaling ladder (BENCH_dist.json) -------------

/// Strong-scaling ladder for sharded SpGEMM: the same C = A * A on the same
/// 8x8 tile grid, executed across 1 -> 8 simulated devices. The host has a
/// single physical core, so wall clock cannot show cross-device overlap;
/// the scaling metric is the busy-ns makespan instead — per device the group
/// accumulates the time it spent executing tiles, and the rung's cost is the
/// busiest device's share (exactly the wall clock an n-GPU host would see).
/// Wall time is still recorded per rung for the single-stream sanity story.
void write_dist_trajectory() {
    const char* path = std::getenv("SPBLA_BENCH_DIST_JSON");
    if (path == nullptr) path = "BENCH_dist.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_ops_micro: cannot open %s for writing\n", path);
        return;
    }
    constexpr std::size_t kLadder[] = {1, 2, 4, 8};
    constexpr int kDistRuns = 3;
    struct Input {
        const char* name;
        CsrMatrix m;
    };
    const Input inputs[] = {
        {"rmat-11-8", data::make_rmat(11, 8).csr()},
        {"rmat-12-8", data::make_rmat(12, 8).csr()},
        {"zipf-4096-16", data::make_zipf(4096, 4096, 16, 1.0).csr()},
    };
    // Pool reuse over the whole ladder: SUMMA rounds recycle superseded
    // accumulators and assemble outputs through the per-device BufferPools,
    // so the hit ratio measures how much of the tile traffic the free lists
    // absorb (telemetry counters are process-wide; the delta brackets the
    // ladder).
    const auto pool_before = backend::Context::metrics_snapshot();
    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "dist");
    w.field("operation", "C = A * A (SUMMA over an 8x8 tile grid)");
    w.field("scaling_model",
            "busy-ns makespan: max over devices of tile-execution time; "
            "single-core host, so modeled device overlap, measured wall");
    w.field("runs", static_cast<std::uint64_t>(kDistRuns));
    w.begin_array("inputs");
    double log_sum = 0.0;
    std::size_t n_inputs = 0;
    for (const Input& input : inputs) {
        w.begin_object();
        w.field("name", input.name);
        w.field("nrows", static_cast<std::uint64_t>(input.m.nrows()));
        w.field("nnz", static_cast<std::uint64_t>(input.m.nnz()));
        w.begin_array("rungs");
        double makespan1_ms = 0.0, speedup4 = 0.0;
        for (const std::size_t devices : kLadder) {
            dist::Config cfg;
            cfg.devices = devices;
            cfg.threads_per_device = 1;
            cfg.grid_rows = 8;
            cfg.grid_cols = 8;
            dist::configure(cfg);
            const Matrix a{input.m, ctx()};
            (void)dist::multiply(ctx(), a, a);  // builds + caches the sharding
            dist::reset_stats();
            const auto before = dist::group().busy_ns();
            const auto wall = bench::time_stats(
                [&] { (void)dist::multiply(ctx(), a, a); }, kDistRuns);
            const auto after = dist::group().busy_ns();
            std::uint64_t makespan_ns = 0, busy_total_ns = 0;
            for (std::size_t d = 0; d < after.size(); ++d) {
                const std::uint64_t delta = after[d] - before[d];
                busy_total_ns += delta;
                makespan_ns = std::max(makespan_ns, delta);
            }
            // time_stats runs the body kDistRuns + 1 times (one warm-up).
            const double makespan_ms =
                static_cast<double>(makespan_ns) / 1e6 / (kDistRuns + 1);
            if (devices == 1) makespan1_ms = makespan_ms;
            const double speedup =
                makespan_ms > 0 ? makespan1_ms / makespan_ms : 0.0;
            if (devices == 4) speedup4 = speedup;
            const dist::Stats& ds = dist::stats();
            w.begin_object();
            w.field("devices", static_cast<std::uint64_t>(devices));
            w.field("wall", wall);
            w.field("makespan_ms", makespan_ms);
            w.field("busy_total_ms",
                    static_cast<double>(busy_total_ns) / 1e6 / (kDistRuns + 1));
            w.field("modeled_speedup", speedup);
            w.field("tiles_processed",
                    ds.tiles_processed.load(std::memory_order_relaxed));
            w.field("tile_steals", ds.tile_steals.load(std::memory_order_relaxed));
            w.field("tile_transfers",
                    ds.tile_transfers.load(std::memory_order_relaxed));
            w.field("transfer_bytes",
                    ds.transfer_bytes.load(std::memory_order_relaxed));
            w.end_object();
        }
        w.end_array();
        w.field("modeled_speedup_4dev", speedup4);
        log_sum += std::log(speedup4 > 0 ? speedup4 : 1.0);
        ++n_inputs;
        w.end_object();
    }
    w.end_array();
    const double geomean =
        n_inputs > 0 ? std::exp(log_sum / static_cast<double>(n_inputs)) : 0.0;
    w.field("geomean_speedup_4dev", geomean);
    const auto pool_after = backend::Context::metrics_snapshot();
    const std::uint64_t pool_hits =
        pool_after.counter(telemetry::Counter::PoolBufferHits) -
        pool_before.counter(telemetry::Counter::PoolBufferHits);
    const std::uint64_t pool_misses =
        pool_after.counter(telemetry::Counter::PoolBufferMisses) -
        pool_before.counter(telemetry::Counter::PoolBufferMisses);
    const double reuse_ratio =
        pool_hits + pool_misses > 0
            ? static_cast<double>(pool_hits) /
                  static_cast<double>(pool_hits + pool_misses)
            : 0.0;
    w.field("pool_hits", pool_hits);
    w.field("pool_misses", pool_misses);
    w.field("pool_reuse_ratio", reuse_ratio);
    w.end_object();
    std::fclose(f);
    dist::disable();
    std::printf("Sharded strong-scaling ladder written to %s "
                "(modeled 4-device geomean speedup %.2fx)\n",
                path, geomean);
}

// ------- Incremental update-latency ladder (BENCH_incremental.json) --------

/// Update latency vs batch size: transitive-closure maintenance on LUBM and
/// pointer-analysis graphs, insert batches of 1 -> 10^4 cells, incremental
/// update_closure against a full recompute of the same post-batch graph.
/// Every timed run consumes a DISTINCT pre-generated batch and a fresh
/// pre-copied closure (fresh content epochs), so the op memo cannot turn the
/// ladder into a cache benchmark; a separate memo_replay section then
/// replays one delta product on purpose so the exit trace carries real
/// spbla.incr.memo_hits for check_trace.py --require-incr.
void write_incremental_trajectory() {
    const char* path = std::getenv("SPBLA_BENCH_INCR_JSON");
    if (path == nullptr) path = "BENCH_incremental.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_ops_micro: cannot open %s for writing\n", path);
        return;
    }
    constexpr std::size_t kBatchLadder[] = {1, 10, 100, 1000, 10000};
    constexpr int kIncrRuns = 3;
    struct Input {
        const char* name;
        Matrix adj;
    };
    const auto rebind = [](const Matrix& m) {
        return Matrix::from_coords(m.nrows(), m.ncols(), m.to_coords(), ctx());
    };
    const Input inputs[] = {
        {"lubm-1", rebind(data::make_lubm(1, 7).union_matrix())},
        {"alias-768", rebind(data::make_alias_graph(768, 23).union_matrix())},
    };
    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "incremental");
    w.field("operation",
            "transitive-closure maintenance: update_closure vs full recompute, "
            "insert batches of 1..10^4 cells");
    w.field("runs", static_cast<std::uint64_t>(kIncrRuns));
    w.begin_array("inputs");
    double log_sum = 0.0;
    std::size_t n_inputs = 0;
    for (const Input& input : inputs) {
        const Index n = input.adj.nrows();
        const Matrix closure0 =
            algorithms::transitive_closure(ctx(), input.adj,
                                           algorithms::ClosureStrategy::Delta);
        w.begin_object();
        w.field("name", input.name);
        w.field("n", static_cast<std::uint64_t>(n));
        w.field("nnz", static_cast<std::uint64_t>(input.adj.nnz()));
        w.field("closure_nnz", static_cast<std::uint64_t>(closure0.nnz()));
        w.begin_array("rungs");
        double speedup1 = 0.0;
        util::Rng rng{1234};
        for (const std::size_t batch : kBatchLadder) {
            // One distinct batch (fresh epoch) per timed run plus warm-up.
            std::vector<Matrix> batches;
            std::vector<Matrix> afters;
            std::vector<Matrix> closures;
            for (int r = 0; r < kIncrRuns + 1; ++r) {
                std::vector<Coord> coords;
                for (std::size_t k = 0; k < batch; ++k) {
                    coords.push_back({static_cast<Index>(rng.below(n)),
                                      static_cast<Index>(rng.below(n))});
                }
                batches.push_back(
                    Matrix::from_coords(n, n, std::move(coords), ctx()));
                afters.push_back(
                    storage::ewise_add(ctx(), input.adj, batches.back()));
                closures.push_back(closure0);
            }
            const Matrix none{n, n, ctx()};
            std::size_t idx = 0;
            const auto incr_stats = bench::time_stats(
                [&] {
                    const auto add_eff =
                        storage::ewise_diff(ctx(), batches[idx], input.adj);
                    (void)incr::update_closure(ctx(), closures[idx], afters[idx],
                                               add_eff, none);
                    idx = (idx + 1) % batches.size();
                },
                kIncrRuns);
            idx = 0;
            const auto full_stats = bench::time_stats(
                [&] {
                    (void)algorithms::transitive_closure(
                        ctx(), afters[idx], algorithms::ClosureStrategy::Delta);
                    idx = (idx + 1) % afters.size();
                },
                kIncrRuns);
            const double speedup =
                incr_stats.min_s > 0 ? full_stats.min_s / incr_stats.min_s : 0.0;
            if (batch == 1) speedup1 = speedup;
            w.begin_object();
            w.field("batch", static_cast<std::uint64_t>(batch));
            w.field("incremental", incr_stats);
            w.field("full_recompute", full_stats);
            w.field("speedup", speedup);
            w.end_object();
        }
        w.end_array();
        w.field("speedup_batch1", speedup1);
        log_sum += std::log(speedup1 > 0 ? speedup1 : 1.0);
        ++n_inputs;
        w.end_object();
    }
    w.end_array();
    const double geomean =
        n_inputs > 0 ? std::exp(log_sum / static_cast<double>(n_inputs)) : 0.0;
    w.field("geomean_speedup_batch1", geomean);
    // Driver smoke: one insert and one delete batch through the
    // IncrementalClosure driver, plus one empty-operand multiply. The timed
    // ladder above exercises the raw update_closure path only; this pass
    // makes the exit trace carry the rest of the spbla.incr.* story —
    // batch/saved-iterations accounting, the delta-overlay nnz, and the
    // dispatcher short-circuit — for check_trace.py --require-incr.
    {
        const Matrix& adj = inputs[0].adj;
        const Index n = adj.nrows();
        incr::IncrementalClosure driver{ctx(), adj};
        const Matrix edge = Matrix::from_coords(
            n, n, {{0, static_cast<Index>(n - 1)}}, ctx());
        const Matrix none{n, n, ctx()};
        driver.apply(edge, none);
        driver.apply(none, edge);
        (void)storage::multiply(ctx(), adj, none);
    }
    // Deliberate replay: identical operand epochs hit the op memo, so the
    // exit trace (and this file) record non-zero memo hit counters.
    {
        const auto before = incr::memo().stats();
        const Matrix& adj = inputs[0].adj;
        const Matrix seed = Matrix::from_coords(adj.nrows(), adj.ncols(),
                                                {{0, adj.ncols() - 1}}, ctx());
        for (int r = 0; r < 4; ++r) (void)incr::memo_multiply(ctx(), adj, seed);
        const auto after = incr::memo().stats();
        w.begin_object("memo_replay");
        w.field("lookups", after.lookups - before.lookups);
        w.field("hits", after.hits - before.hits);
        w.field("stores", after.stores - before.stores);
        w.end_object();
    }
    w.end_object();
    std::fclose(f);
    incr::memo().clear();
    std::printf("Incremental update-latency ladder written to %s "
                "(batch-1 geomean speedup %.2fx)\n",
                path, geomean);
}

}  // namespace

int main(int argc, char** argv) {
    // Four trajectory ladders plus the benchmark loop overflow the default
    // per-thread trace ring (the incremental ladder's semi-naive rounds
    // would lap the dist.* spans out of the exit trace), so size the rings
    // for the whole smoke run before the first span is recorded.
    prof::set_ring_capacity(1 << 16);
    // The formats ladder runs second: the spgemm ladder resets the profiling
    // counters per config, so this order leaves the dispatch counter story
    // (picks, conversions, cache hits) intact in the exit trace dump.
    write_spgemm_trajectory();
    write_formats_trajectory();
    // The dist ladder runs last for the same reason: its dist_* counters
    // must survive into the exit trace for check_trace.py --require-dist.
    write_dist_trajectory();
    // The incremental ladder follows: its spbla.incr.* counters and
    // incr.closure.round spans feed check_trace.py --require-incr.
    write_incremental_trajectory();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
