/// \file bench_ops_micro.cpp
/// \brief Google-benchmark micro suite for every library primitive.
///
/// Not a paper artifact per se: this is the per-kernel performance
/// regression net, parameterised over the R-MAT scale, that backs the
/// ablation discussion in DESIGN.md.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>

#include "algorithms/closure.hpp"
#include "backend/context.hpp"
#include "baseline/generic_spgemm.hpp"
#include "core/convert.hpp"
#include "data/rmat.hpp"
#include "ops/ops.hpp"

namespace {

using namespace spbla;

backend::Context& ctx() {
    static backend::Context instance{backend::Policy::Parallel};
    return instance;
}

const CsrMatrix& rmat(int scale) {
    static std::map<int, CsrMatrix> cache;
    auto it = cache.find(scale);
    if (it == cache.end()) {
        it = cache.emplace(scale, data::make_rmat(static_cast<Index>(scale), 8)).first;
    }
    return it->second;
}

void BM_SpGemmBoolean(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::multiply(ctx(), a, a));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpGemmBoolean)->Arg(8)->Arg(10)->Arg(12);

void BM_SpGemmGenericHash(benchmark::State& state) {
    const auto g = baseline::GenericCsr::from_boolean(rmat(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baseline::multiply_hash(ctx(), g, g));
    }
}
BENCHMARK(BM_SpGemmGenericHash)->Arg(8)->Arg(10)->Arg(12);

void BM_SpGemmGenericEsc(benchmark::State& state) {
    const auto g = baseline::GenericCsr::from_boolean(rmat(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baseline::multiply_esc(ctx(), g, g));
    }
}
BENCHMARK(BM_SpGemmGenericEsc)->Arg(8)->Arg(10)->Arg(12);

void BM_EwiseAddCsr(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const auto at = ops::transpose(ctx(), a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::ewise_add(ctx(), a, at));
    }
}
BENCHMARK(BM_EwiseAddCsr)->Arg(10)->Arg(12)->Arg(14);

void BM_EwiseAddCoo(benchmark::State& state) {
    const auto a = to_coo(rmat(static_cast<int>(state.range(0))));
    const auto at = to_coo(ops::transpose(ctx(), rmat(static_cast<int>(state.range(0)))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::ewise_add(ctx(), a, at));
    }
}
BENCHMARK(BM_EwiseAddCoo)->Arg(10)->Arg(12)->Arg(14);

void BM_Kronecker(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const auto small = data::make_rmat(4, 2, 77);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::kronecker(ctx(), small, a));
    }
}
BENCHMARK(BM_Kronecker)->Arg(8)->Arg(10);

void BM_Transpose(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::transpose(ctx(), a));
    }
}
BENCHMARK(BM_Transpose)->Arg(10)->Arg(12)->Arg(14);

void BM_Submatrix(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const Index half = a.nrows() / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::submatrix(ctx(), a, half / 2, half / 2, half, half));
    }
}
BENCHMARK(BM_Submatrix)->Arg(10)->Arg(12)->Arg(14);

void BM_ReduceToColumn(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::reduce_to_column(ctx(), a));
    }
}
BENCHMARK(BM_ReduceToColumn)->Arg(10)->Arg(12)->Arg(14);

void BM_TransitiveClosureSquaring(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(algorithms::transitive_closure(
            ctx(), a, algorithms::ClosureStrategy::Squaring));
    }
}
BENCHMARK(BM_TransitiveClosureSquaring)->Arg(8)->Arg(10);

void BM_TransitiveClosureLinear(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(algorithms::transitive_closure(
            ctx(), a, algorithms::ClosureStrategy::Linear));
    }
}
BENCHMARK(BM_TransitiveClosureLinear)->Arg(8)->Arg(10);

}  // namespace
