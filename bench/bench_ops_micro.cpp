/// \file bench_ops_micro.cpp
/// \brief Google-benchmark micro suite for every library primitive, plus the
/// SpGEMM performance-trajectory harness.
///
/// Not a paper artifact per se: this is the per-kernel performance
/// regression net, parameterised over the R-MAT scale, that backs the
/// ablation discussion in DESIGN.md. The custom main() first writes
/// BENCH_spgemm.json — machine-readable SpGEMM timings on skewed (R-MAT and
/// Zipf) inputs for the scheduler/caching configurations, so the perf
/// trajectory of the multiplication kernel is tracked across PRs — and then
/// runs the google-benchmark suite as usual.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "algorithms/closure.hpp"
#include "backend/context.hpp"
#include "baseline/generic_spgemm.hpp"
#include "common.hpp"
#include "core/convert.hpp"
#include "data/rmat.hpp"
#include "ops/ops.hpp"

namespace {

using namespace spbla;

backend::Context& ctx() {
    static backend::Context instance{backend::Policy::Parallel};
    return instance;
}

const CsrMatrix& rmat(int scale) {
    static std::map<int, CsrMatrix> cache;
    auto it = cache.find(scale);
    if (it == cache.end()) {
        it = cache.emplace(scale, data::make_rmat(static_cast<Index>(scale), 8)).first;
    }
    return it->second;
}

void BM_SpGemmBoolean(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::multiply(ctx(), a, a));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpGemmBoolean)->Arg(8)->Arg(10)->Arg(12);

void BM_SpGemmBooleanZipf(benchmark::State& state) {
    const auto a = data::make_zipf(Index{1} << static_cast<Index>(state.range(0)),
                                   Index{1} << static_cast<Index>(state.range(0)), 8, 1.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::multiply(ctx(), a, a));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpGemmBooleanZipf)->Arg(10)->Arg(12);

void BM_SpGemmGenericHash(benchmark::State& state) {
    const auto g = baseline::GenericCsr::from_boolean(rmat(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baseline::multiply_hash(ctx(), g, g));
    }
}
BENCHMARK(BM_SpGemmGenericHash)->Arg(8)->Arg(10)->Arg(12);

void BM_SpGemmGenericEsc(benchmark::State& state) {
    const auto g = baseline::GenericCsr::from_boolean(rmat(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baseline::multiply_esc(ctx(), g, g));
    }
}
BENCHMARK(BM_SpGemmGenericEsc)->Arg(8)->Arg(10)->Arg(12);

void BM_EwiseAddCsr(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const auto at = ops::transpose(ctx(), a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::ewise_add(ctx(), a, at));
    }
}
BENCHMARK(BM_EwiseAddCsr)->Arg(10)->Arg(12)->Arg(14);

void BM_EwiseAddCoo(benchmark::State& state) {
    const auto a = to_coo(rmat(static_cast<int>(state.range(0))));
    const auto at = to_coo(ops::transpose(ctx(), rmat(static_cast<int>(state.range(0)))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::ewise_add(ctx(), a, at));
    }
}
BENCHMARK(BM_EwiseAddCoo)->Arg(10)->Arg(12)->Arg(14);

void BM_Kronecker(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const auto small = data::make_rmat(4, 2, 77);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::kronecker(ctx(), small, a));
    }
}
BENCHMARK(BM_Kronecker)->Arg(8)->Arg(10);

void BM_Transpose(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::transpose(ctx(), a));
    }
}
BENCHMARK(BM_Transpose)->Arg(10)->Arg(12)->Arg(14);

void BM_Submatrix(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    const Index half = a.nrows() / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::submatrix(ctx(), a, half / 2, half / 2, half, half));
    }
}
BENCHMARK(BM_Submatrix)->Arg(10)->Arg(12)->Arg(14);

void BM_ReduceToColumn(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::reduce_to_column(ctx(), a));
    }
}
BENCHMARK(BM_ReduceToColumn)->Arg(10)->Arg(12)->Arg(14);

void BM_TransitiveClosureSquaring(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(algorithms::transitive_closure(
            ctx(), a, algorithms::ClosureStrategy::Squaring));
    }
}
BENCHMARK(BM_TransitiveClosureSquaring)->Arg(8)->Arg(10);

void BM_TransitiveClosureLinear(benchmark::State& state) {
    const auto& a = rmat(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(algorithms::transitive_closure(
            ctx(), a, algorithms::ClosureStrategy::Linear));
    }
}
BENCHMARK(BM_TransitiveClosureLinear)->Arg(8)->Arg(10);

// ---------------- SpGEMM perf trajectory (BENCH_spgemm.json) ----------------

/// The ablation ladder from the pre-bin-scheduler implementation to the full
/// pipeline; each rung enables exactly one mechanism on top of the previous,
/// so consecutive ratios attribute the gain to that mechanism.
struct SpGemmConfig {
    const char* name;
    ops::SpGemmOptions opts;
};

std::vector<SpGemmConfig> spgemm_ladder() {
    ops::SpGemmOptions baseline;  // the pre-PR two-pass static-chunk kernel
    baseline.legacy_accumulator_reset = true;
    baseline.dense_row_fraction = 0.25;  // the pre-PR dense-bin threshold
    baseline.use_ticket_scheduler = false;
    baseline.use_bin_scheduler = false;
    baseline.symbolic_cache_budget = 0;
    ops::SpGemmOptions reset_fix = baseline;  // + touched-word / re-probe resets
    reset_fix.legacy_accumulator_reset = false;
    ops::SpGemmOptions retune = reset_fix;  // + 1/64 dense-bitmap crossover
    retune.dense_row_fraction = ops::SpGemmOptions{}.dense_row_fraction;
    ops::SpGemmOptions ticket = retune;
    ticket.use_ticket_scheduler = true;
    ops::SpGemmOptions binned = ticket;
    binned.use_bin_scheduler = true;
    const ops::SpGemmOptions full;  // + symbolic-column caching (defaults)
    return {{"two_pass_static", baseline},
            {"plus_accumulator_reset_fix", reset_fix},
            {"plus_dense_bitmap_retune", retune},
            {"plus_ticket_scheduler", ticket},
            {"plus_bin_scheduler", binned},
            {"plus_symbolic_cache", full}};
}

/// Times C = A * A for every ladder rung, appends one JSON input record, and
/// returns full-pipeline speedup over the pre-PR baseline rung. The "ms"
/// field stays the minimum (the trajectory metric tracked across PRs); the
/// "time" object adds the dispersion and, when the library was built with
/// SPBLA_PROFILE=counters|trace, each rung carries a "counters" object from
/// one instrumented (untimed) multiplication — nnz, bin occupancy, hash
/// probe/collision rates and pool steals per rung, so the ladder attributes
/// not just time but also the mechanism-level effects.
double write_spgemm_record(bench::JsonWriter& w, const char* name,
                           const CsrMatrix& a) {
    const auto configs = spgemm_ladder();
    w.begin_object();
    w.field("name", name);
    w.field("nrows", static_cast<std::uint64_t>(a.nrows()));
    w.field("nnz", static_cast<std::uint64_t>(a.nnz()));
    w.begin_array("configs");
    double baseline_ms = 0, full_ms = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto stats = bench::time_stats(
            [&] { (void)ops::multiply(ctx(), a, a, configs[i].opts); }, 5);
        const double ms = stats.min_ms();
        if (i == 0) baseline_ms = ms;
        if (i + 1 == configs.size()) full_ms = ms;
        w.begin_object();
        w.field("name", configs[i].name);
        w.field("ms", ms);
        w.field("time", stats);
        if (prof::counting()) {
            prof::reset();
            (void)ops::multiply(ctx(), a, a, configs[i].opts);
            bench::write_prof_counters(w);
        }
        w.end_object();
    }
    w.end_array();
    const double speedup = full_ms > 0 ? baseline_ms / full_ms : 0.0;
    w.field("speedup_full_vs_two_pass_static", speedup);
    w.end_object();
    return speedup;
}

/// Writes BENCH_spgemm.json (path overridable via SPBLA_BENCH_JSON) with the
/// scheduler/caching ladder on the skewed SpGEMM stress inputs.
void write_spgemm_trajectory() {
    const char* path = std::getenv("SPBLA_BENCH_JSON");
    if (path == nullptr) path = "BENCH_spgemm.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_ops_micro: cannot open %s for writing\n", path);
        return;
    }
    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "spgemm");
    w.field("operation", "C = A * A");
    w.field("policy", "parallel");
    w.field("threads", static_cast<std::uint64_t>(ctx().pool() ? ctx().pool()->size() : 1));
    w.field("runs", 5);
    w.field("aggregate", "min");
    w.field("profile", prof::compiled_level_name());
    w.begin_array("inputs");
    struct Input {
        const char* name;
        CsrMatrix m;
    };
    const Input inputs[] = {
        {"rmat-12-8", data::make_rmat(12, 8)},
        {"rmat-13-8", data::make_rmat(13, 8)},
        {"zipf-4096-16", data::make_zipf(4096, 4096, 16, 1.0)},
        {"zipf-8192-8", data::make_zipf(8192, 8192, 8, 1.1)},
    };
    constexpr std::size_t kNumInputs = std::size(inputs);
    double log_sum = 0.0;
    for (std::size_t i = 0; i < kNumInputs; ++i) {
        const double s = write_spgemm_record(w, inputs[i].name, inputs[i].m);
        log_sum += std::log(s > 0 ? s : 1.0);
    }
    w.end_array();
    const double geomean = std::exp(log_sum / kNumInputs);
    w.field("geomean_speedup", geomean);
    w.end_object();
    std::fclose(f);
    std::printf("SpGEMM trajectory written to %s (geomean speedup %.2fx)\n", path,
                geomean);
}

}  // namespace

int main(int argc, char** argv) {
    write_spgemm_trajectory();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
