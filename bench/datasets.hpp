/// \file datasets.hpp
/// \brief The benchmark dataset catalog — scaled-down analogs of the
/// paper's evaluation graphs (see DESIGN.md for the substitution table).
///
/// Scale note: the paper's graphs range from 45k to 8.3M vertices on a GPU
/// testbed; this harness targets a single CPU core, so every analog is
/// scaled down ~20-50x. Series *ratios* (the LUBM sweep) are preserved.
#pragma once

#include <string>
#include <vector>

#include "data/kernel_alias.hpp"
#include "data/labeled_graph.hpp"
#include "data/lubm.hpp"
#include "data/rdflike.hpp"

namespace spbla::bench {

struct Dataset {
    std::string name;        ///< paper graph it stands in for
    data::LabeledGraph graph;
};

/// The LUBM series (paper: LUBM1k .. LUBM2.3M; here 1:40 scale, same
/// geometric spacing of sizes).
inline std::vector<Dataset> lubm_series() {
    std::vector<Dataset> out;
    out.push_back({"LUBM1k~", data::make_lubm(24)});
    out.push_back({"LUBM3.5k~", data::make_lubm(72)});
    out.push_back({"LUBM5.9k~", data::make_lubm(120)});
    out.push_back({"LUBM1M~", data::make_lubm(240)});
    out.push_back({"LUBM1.7M~", data::make_lubm(360)});
    out.push_back({"LUBM2.3M~", data::make_lubm(465)});
    return out;
}

/// The real-world RDF analogs of Table I's lower half.
inline std::vector<Dataset> realworld_rpq() {
    std::vector<Dataset> out;
    out.push_back({"Uniprotkb~", data::make_property_graph(64000, 40, 3.8, 101)});
    out.push_back({"Proteomes~", data::make_property_graph(48000, 30, 2.6, 102)});
    out.push_back({"Taxonomy~", data::make_taxonomy(19000, 2, 103)});
    out.push_back({"Geospecies~", data::make_geospecies(4500, 24, 104)});
    out.push_back({"Mappingbased~", data::make_property_graph(83000, 60, 3.0, 105)});
    return out;
}

/// The CFPQ graphs of Table III (upper half: RDF ontologies; lower half:
/// Linux-kernel alias graphs), all with inverse labels attached since every
/// CFPQ query uses them.
inline std::vector<Dataset> cfpq_rdf() {
    std::vector<Dataset> out;
    const auto add = [&out](std::string name, data::LabeledGraph g) {
        g.add_inverse_labels();
        out.push_back({std::move(name), std::move(g)});
    };
    // Multi-parent probability differentiates the near-tree ontologies
    // (eclass) from GO's heavily multi-parent DAG — the structural driver
    // of the paper's path-count contrast in the extraction experiment.
    add("eclass_514en~", data::make_ontology(6000, 0.8, 201, 0.05));
    add("enzyme~", data::make_ontology(1200, 1.8, 202, 0.2));
    add("geospecies~", data::make_geospecies(3000, 20, 203));
    add("go~", data::make_ontology(7000, 0.65, 204, 0.6));
    add("go-hierarchy~", data::make_ontology(1100, 0.0, 205, 0.6));
    add("pathways~", data::make_ontology(300, 1.0, 206, 0.2));
    add("taxonomy~", data::make_taxonomy(9000, 2, 207));
    return out;
}

/// Alias graphs (already contain a_r / d_r).
inline std::vector<Dataset> cfpq_alias() {
    std::vector<Dataset> out;
    out.push_back({"arch~", data::make_alias_graph(1700, 301)});
    out.push_back({"crypto~", data::make_alias_graph(1725, 302)});
    out.push_back({"drivers~", data::make_alias_graph(2100, 303)});
    out.push_back({"fs~", data::make_alias_graph(2050, 304)});
    return out;
}

}  // namespace spbla::bench
