/// \file bench_ablation.cpp
/// \brief Experiment E10 — ablations of the design choices DESIGN.md calls
/// out, each isolating one mechanism the paper's implementation relies on:
///   (a) SpGEMM row binning (tiny / hash / dense accumulators) on vs off,
///   (b) hash-table load factor,
///   (c) closure strategy: squaring vs linear,
///   (d) tensor CFPQ: incremental (warm-start) closure vs full recompute —
///       the paper's "incremental transitive closure is the bottleneck".
#include <cstdio>

#include "algorithms/closure.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "common.hpp"
#include "datasets.hpp"
#include "data/lubm.hpp"
#include "data/rmat.hpp"
#include "data/worstcase.hpp"
#include "ops/ewise_add.hpp"
#include "ops/kronecker.hpp"
#include "ops/spgemm.hpp"
#include "rpq/dfa.hpp"
#include "rpq/query_templates.hpp"

int main() {
    using namespace spbla;

    std::printf("E10a: SpGEMM accumulator binning (C = A * A, rmat scale 12..13)\n");
    std::printf("%-10s %12s %12s %12s\n", "matrix", "binned ms", "no-bin ms",
                "hash-only ms");
    bench::rule(50);
    for (const Index scale : {12u, 13u}) {
        const CsrMatrix a = data::make_rmat(scale, 8).csr();
        ops::SpGemmOptions binned;
        ops::SpGemmOptions nobin;
        nobin.use_binning = false;
        ops::SpGemmOptions hash_only;
        hash_only.use_binning = false;
        hash_only.tiny_row_threshold = 0;
        const double t1 =
            bench::time_runs([&] { (void)ops::multiply(bench::ctx(), a, a, binned); }, 3);
        const double t2 =
            bench::time_runs([&] { (void)ops::multiply(bench::ctx(), a, a, nobin); }, 3);
        const double t3 = bench::time_runs(
            [&] { (void)ops::multiply(bench::ctx(), a, a, hash_only); }, 3);
        std::printf("rmat-%-5u %12.2f %12.2f %12.2f\n", scale, t1 * 1e3, t2 * 1e3,
                    t3 * 1e3);
    }

    std::printf("\nE10a2: SpGEMM schedule + single-pass ablation (C = A * A)\n");
    std::printf("%-14s %10s %10s %10s %10s %10s\n", "matrix", "full ms", "no-cache",
                "no-binsch", "no-ticket", "baseline");
    bench::rule(70);
    {
        // Each column removes one mechanism from the full pipeline;
        // "baseline" is the pre-bin-scheduler two-pass static-chunk kernel.
        ops::SpGemmOptions full;
        ops::SpGemmOptions no_cache = full;
        no_cache.symbolic_cache_budget = 0;
        ops::SpGemmOptions no_binsched = full;
        no_binsched.use_bin_scheduler = false;
        ops::SpGemmOptions no_ticket = full;
        no_ticket.use_ticket_scheduler = false;
        ops::SpGemmOptions baseline;
        baseline.legacy_accumulator_reset = true;
        baseline.dense_row_fraction = 0.25;
        baseline.symbolic_cache_budget = 0;
        baseline.use_bin_scheduler = false;
        baseline.use_ticket_scheduler = false;
        struct Case {
            const char* name;
            CsrMatrix m;
        };
        const Case cases[] = {
            {"rmat-13-8", data::make_rmat(13, 8).csr()},
            {"zipf-4096-16", data::make_zipf(4096, 4096, 16, 1.0).csr()},
            {"zipf-8192-8", data::make_zipf(8192, 8192, 8, 1.1).csr()},
        };
        for (const auto& c : cases) {
            const auto time_of = [&](const ops::SpGemmOptions& opts) {
                return bench::time_runs(
                           [&] { (void)ops::multiply(bench::ctx(), c.m, c.m, opts); }, 3) *
                       1e3;
            };
            std::printf("%-14s %10.2f %10.2f %10.2f %10.2f %10.2f\n", c.name,
                        time_of(full), time_of(no_cache), time_of(no_binsched),
                        time_of(no_ticket), time_of(baseline));
            std::fflush(stdout);
        }
    }

    std::printf("\nE10b: hash-table load factor (C = A * A, rmat scale 13)\n");
    std::printf("%-8s %12s\n", "load", "ms");
    bench::rule(22);
    {
        const CsrMatrix a = data::make_rmat(13, 8).csr();
        for (const double load : {0.125, 0.25, 0.5, 0.75, 0.95}) {
            ops::SpGemmOptions opts;
            opts.hash_load_factor = load;
            opts.tiny_row_threshold = 0;  // force the hash path everywhere
            opts.use_binning = false;
            const double t = bench::time_runs(
                [&] { (void)ops::multiply(bench::ctx(), a, a, opts); }, 3);
            std::printf("%-8.3f %12.2f\n", load, t * 1e3);
        }
    }

    std::printf("\nE10c: transitive closure strategy (squaring vs linear vs "
                "semi-naive delta)\n");
    std::printf("%-14s %10s %10s %10s %10s %10s %10s\n", "graph", "sq ms", "sq rnds",
                "lin ms", "lin rnds", "dlt ms", "dlt rnds");
    bench::rule(82);
    {
        struct Case {
            const char* name;
            Matrix m;
        };
        const Case cases[] = {
            {"path-1024", data::make_path(1024).matrix("a")},
            {"rmat-10", data::make_rmat(10, 4)},
            {"cycle-512", data::make_cycle(512).matrix("a")},
        };
        for (const auto& c : cases) {
            algorithms::ClosureStats sq, lin, dlt;
            const double t1 = bench::time_runs(
                [&] {
                    (void)algorithms::transitive_closure(
                        bench::ctx(), c.m, algorithms::ClosureStrategy::Squaring, &sq);
                },
                3);
            const double t2 = bench::time_runs(
                [&] {
                    (void)algorithms::transitive_closure(
                        bench::ctx(), c.m, algorithms::ClosureStrategy::Linear, &lin);
                },
                c.name[0] == 'p' ? 1 : 3);  // linear over the long path is slow
            const double t3 = bench::time_runs(
                [&] {
                    (void)algorithms::transitive_closure(
                        bench::ctx(), c.m, algorithms::ClosureStrategy::Delta, &dlt);
                },
                c.name[0] == 'p' ? 1 : 3);
            std::printf("%-14s %10.2f %10zu %10.2f %10zu %10.2f %10zu\n", c.name,
                        t1 * 1e3, sq.rounds, t2 * 1e3, lin.rounds, t3 * 1e3,
                        dlt.rounds);
            std::fflush(stdout);
        }
    }

    std::printf("\nE10d: tensor CFPQ closure mode (the paper's incremental-TC "
                "bottleneck)\n");
    std::printf("%-14s %14s %14s\n", "graph", "warm-start ms", "recompute ms");
    bench::rule(46);
    {
        auto onto = data::make_ontology(2500, 0.8, 41);
        onto.add_inverse_labels();
        auto geo = data::make_geospecies(1500, 16, 42);
        geo.add_inverse_labels();
        struct Case {
            const char* name;
            const data::LabeledGraph& g;
            cfpq::Grammar grammar;
        };
        const Case cases[] = {
            {"ontology-G2", onto, cfpq::query_g2()},
            {"geo-Geo", geo, cfpq::query_geo()},
        };
        for (const auto& c : cases) {
            cfpq::TensorOptions warm;
            warm.incremental_closure = true;
            cfpq::TensorOptions cold;
            cold.incremental_closure = false;
            const double t1 = bench::time_runs(
                [&] { (void)cfpq::tensor_cfpq(bench::ctx(), c.g, c.grammar, warm); }, 3);
            const double t2 = bench::time_runs(
                [&] { (void)cfpq::tensor_cfpq(bench::ctx(), c.g, c.grammar, cold); }, 3);
            std::printf("%-14s %14.2f %14.2f\n", c.name, t1 * 1e3, t2 * 1e3);
            std::fflush(stdout);
        }
    }

    std::printf("\nE10e: query automaton size (raw Glushkov NFA vs minimal DFA) "
                "in the RPQ tensor product\n");
    std::printf("%-7s %9s %9s %12s %12s %12s %12s\n", "query", "NFA |Q|", "DFA |Q|",
                "NFA nnz", "DFA nnz", "NFA ms", "DFA ms");
    bench::rule(80);
    {
        const auto g = data::make_lubm(60);
        const auto labels = g.labels_by_frequency();
        for (const auto* name : {"Q4^3", "Q9^4", "Q13", "Q14"}) {
            const auto& tpl = rpq::template_by_name(name);
            const auto re = tpl.instantiate(labels);
            const auto nfa = rpq::glushkov(*re);
            const auto dfa = rpq::minimize(rpq::determinize(nfa));

            const auto closure_of = [&](const auto& automaton, Index k) {
                CsrMatrix product{k * g.num_vertices(), k * g.num_vertices()};
                for (const auto& symbol : automaton.symbols()) {
                    if (!g.has_label(symbol)) continue;
                    product = ops::ewise_add(
                        bench::ctx(), product,
                        ops::kronecker(bench::ctx(), automaton.matrix(symbol).csr(),
                                       g.matrix(symbol).csr()));
                }
                const std::size_t nnz = product.nnz();
                const Matrix wrapped{product, bench::ctx()};
                const double s = bench::time_runs(
                    [&] { (void)algorithms::transitive_closure(bench::ctx(), wrapped); },
                    3);
                return std::make_pair(nnz, s);
            };
            const auto [nfa_nnz, nfa_s] = closure_of(nfa, nfa.num_states);
            const auto [dfa_nnz, dfa_s] = closure_of(dfa, dfa.num_states);
            std::printf("%-7s %9u %9u %12zu %12zu %12.2f %12.2f\n", name,
                        nfa.num_states, dfa.num_states, nfa_nnz, dfa_nnz, nfa_s * 1e3,
                        dfa_s * 1e3);
            std::fflush(stdout);
        }
    }

    std::printf("\nExpected shapes: binning beats hash-only once dense rows "
                "appear; load factors near 1 degrade probing; squaring wins on "
                "long diameters (log vs linear rounds) while semi-naive delta "
                "beats plain linear by re-extending only the frontier (and "
                "beats squaring once the closure densifies); warm-start loses "
                "to recompute — the denser warm-started operand costs more "
                "than the rounds it saves, which is the concrete form of the "
                "paper's 'incremental transitive closure is the bottleneck' "
                "observation; minimising the query DFA shrinks the tensor "
                "product and its closure roughly in proportion to the state "
                "reduction.\n");
    return 0;
}
