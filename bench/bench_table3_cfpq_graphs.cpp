/// \file bench_table3_cfpq_graphs.cpp
/// \brief Experiment E6 — regenerates Table III: "Graphs for CFPQ
/// evaluation", including the per-label edge counts the queries depend on
/// (#subClassOf, #type, #broaderTransitive, #a, #d).
#include <cstdio>

#include "common.hpp"
#include "datasets.hpp"

namespace {

void print_count(std::size_t n) {
    if (n == 0) {
        std::printf(" %11s", "---");
    } else {
        std::printf(" %11s", spbla::bench::with_commas(n).c_str());
    }
}

}  // namespace

int main() {
    using namespace spbla;
    std::printf("E6 / Table III: graphs for CFPQ evaluation (generated analogs; "
                "sco = subClassOf, bt = broaderTransitive)\n\n");
    std::printf("%-15s %11s %11s %11s %11s %11s %11s %11s\n", "Graph", "#V", "#E",
                "#sco", "#type", "#bt", "#a", "#d");
    bench::rule(101);
    for (const auto& d : bench::cfpq_rdf()) {
        std::printf("%-15s %11s %11s", d.name.c_str(),
                    bench::with_commas(d.graph.num_vertices()).c_str(),
                    bench::with_commas(d.graph.num_edges()).c_str());
        print_count(d.graph.label_count("subClassOf"));
        print_count(d.graph.label_count("type"));
        print_count(d.graph.label_count("broaderTransitive"));
        print_count(0);
        print_count(0);
        std::printf("\n");
    }
    bench::rule(101);
    for (const auto& d : bench::cfpq_alias()) {
        std::printf("%-15s %11s %11s", d.name.c_str(),
                    bench::with_commas(d.graph.num_vertices()).c_str(),
                    bench::with_commas(d.graph.num_edges()).c_str());
        print_count(0);
        print_count(0);
        print_count(0);
        print_count(d.graph.label_count("a"));
        print_count(d.graph.label_count("d"));
        std::printf("\n");
    }
    bench::rule(101);
    std::printf("\nExpected shape vs the paper's Table III: go-hierarchy~ is "
                "nearly pure subClassOf; geospecies~ has type+bt but no sco; "
                "alias graphs keep d:a ~ 3.4:1 with #a+#d = half of #E (the "
                "other half being the inverse relations).\n");
    return 0;
}
