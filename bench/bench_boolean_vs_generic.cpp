/// \file bench_boolean_vs_generic.cpp
/// \brief Experiment E1 — the abstract's headline claim.
///
/// "Operations specialized for Boolean matrices can be up to 5 times faster
/// and consume up to 4 times less memory than generic, not the Boolean
/// optimized, operations from modern libraries."
///
/// Workload: matrix squaring C = A * A (the standard SpGEMM stress test the
/// SPbLA evaluation uses) and element-wise addition A + A^T, over R-MAT
/// power-law matrices and generated RDF adjacency matrices. Comparators:
///   boolean      — SPbLA's hash-set kernel, no value array
///   generic-hash — same Nsparse structure with float hash-map accumulation
///                  (the cuSPARSE-style comparator)
///   generic-esc  — expand-sort-compress with float values (the CUSP-style
///                  comparator; its expansion buffer is the memory hog)
/// Reported memory = matrix footprints + peak tracked temporaries.
///
/// Besides the printed tables, the run writes BENCH_e1.json (path
/// overridable via SPBLA_BENCH_E1_JSON) through the shared bench::JsonWriter
/// so the comparison is machine-readable with dispersion (min/mean/stddev
/// per measurement), not just a point estimate.
#include <cstdio>
#include <cstdlib>

#include "baseline/generic_csr.hpp"
#include "baseline/generic_ewise_add.hpp"
#include "baseline/generic_spgemm.hpp"
#include "common.hpp"
#include "data/lubm.hpp"
#include "data/rdflike.hpp"
#include "data/rmat.hpp"
#include "ops/ewise_add.hpp"
#include "ops/spgemm.hpp"
#include "ops/transpose.hpp"

namespace {

using namespace spbla;
using bench::ctx;

struct Workload {
    std::string name;
    CsrMatrix matrix;
};

struct Measurement {
    bench::Stats time;
    std::size_t bytes;  // result + temporaries
};

Measurement measure_boolean_square(const CsrMatrix& a) {
    ctx().tracker().reset_peak();
    CsrMatrix result{a.nrows(), a.ncols()};
    const auto stats = bench::time_stats([&] { result = ops::multiply(ctx(), a, a); });
    return {stats, result.device_bytes() + ctx().tracker().peak_bytes()};
}

Measurement measure_generic_square(const CsrMatrix& a, bool esc) {
    const auto g = baseline::GenericCsr::from_boolean(a);
    ctx().tracker().reset_peak();
    baseline::GenericCsr result{a.nrows(), a.ncols()};
    const auto stats = bench::time_stats([&] {
        result = esc ? baseline::multiply_esc(ctx(), g, g)
                     : baseline::multiply_hash(ctx(), g, g);
    });
    return {stats, result.device_bytes() + ctx().tracker().peak_bytes()};
}

Measurement measure_boolean_add(const CsrMatrix& a, const CsrMatrix& at) {
    ctx().tracker().reset_peak();
    CsrMatrix result{a.nrows(), a.ncols()};
    const auto stats =
        bench::time_stats([&] { result = ops::ewise_add(ctx(), a, at); });
    return {stats, result.device_bytes() + ctx().tracker().peak_bytes()};
}

Measurement measure_generic_add(const CsrMatrix& a, const CsrMatrix& at) {
    const auto ga = baseline::GenericCsr::from_boolean(a);
    const auto gat = baseline::GenericCsr::from_boolean(at);
    ctx().tracker().reset_peak();
    baseline::GenericCsr result{a.nrows(), a.ncols()};
    const auto stats =
        bench::time_stats([&] { result = baseline::ewise_add(ctx(), ga, gat); });
    return {stats, result.device_bytes() + ctx().tracker().peak_bytes()};
}

struct SquareRow {
    const Workload* w;
    Measurement boolean, generic_hash, generic_esc;
};

struct AddRow {
    const Workload* w;
    Measurement boolean, generic;
};

void write_measurement(bench::JsonWriter& w, const char* key, const Measurement& m) {
    w.begin_object(key);
    w.field("time", m.time);
    w.field("bytes", static_cast<std::uint64_t>(m.bytes));
    w.end_object();
}

void write_json(const std::vector<SquareRow>& squares, const std::vector<AddRow>& adds) {
    const char* path = std::getenv("SPBLA_BENCH_E1_JSON");
    if (path == nullptr) path = "BENCH_e1.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_boolean_vs_generic: cannot open %s for writing\n",
                     path);
        return;
    }
    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "boolean_vs_generic");
    w.field("policy", "parallel");
    w.field("threads",
            static_cast<std::uint64_t>(ctx().pool() ? ctx().pool()->size() : 1));
    w.field("runs", bench::kRuns);
    w.field("profile", prof::compiled_level_name());
    w.begin_array("spgemm");
    for (const auto& row : squares) {
        w.begin_object();
        w.field("name", row.w->name);
        w.field("nrows", static_cast<std::uint64_t>(row.w->matrix.nrows()));
        w.field("nnz", static_cast<std::uint64_t>(row.w->matrix.nnz()));
        write_measurement(w, "boolean", row.boolean);
        write_measurement(w, "generic_hash", row.generic_hash);
        write_measurement(w, "generic_esc", row.generic_esc);
        w.end_object();
    }
    w.end_array();
    w.begin_array("ewise_add");
    for (const auto& row : adds) {
        w.begin_object();
        w.field("name", row.w->name);
        w.field("nnz", static_cast<std::uint64_t>(row.w->matrix.nnz()));
        write_measurement(w, "boolean", row.boolean);
        write_measurement(w, "generic", row.generic);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    std::fclose(f);
    std::printf("\nE1 measurements written to %s\n", path);
}

}  // namespace

int main() {
    std::vector<Workload> workloads;
    workloads.push_back({"rmat-11-8", data::make_rmat(11, 8).csr()});
    workloads.push_back({"rmat-13-8", data::make_rmat(13, 8).csr()});
    workloads.push_back({"rmat-14-4", data::make_rmat(14, 4).csr()});
    workloads.push_back({"lubm-100", data::make_lubm(100).union_matrix().csr()});
    workloads.push_back(
        {"taxonomy-20k", data::make_taxonomy(20000, 2).union_matrix().csr()});
    workloads.push_back(
        {"geospecies-30k", data::make_geospecies(30000, 24).union_matrix().csr()});

    std::vector<SquareRow> squares;
    std::vector<AddRow> adds;

    std::printf("E1: Boolean-specialised vs generic kernels (paper: boolean up to "
                "5x faster, up to 4x less memory)\n\n");
    std::printf("-- SpGEMM: C = A * A ------------------------------------------"
                "---------------------------------\n");
    std::printf("%-16s %10s %10s | %9s %9s %9s %7s | %9s %9s %9s %7s\n", "matrix",
                "|V|", "nnz", "bool ms", "gnrc ms", "esc ms", "speedup", "bool MB",
                "gnrc MB", "esc MB", "mem x");
    for (const auto& w : workloads) {
        const auto b = measure_boolean_square(w.matrix);
        const auto gh = measure_generic_square(w.matrix, /*esc=*/false);
        const auto ge = measure_generic_square(w.matrix, /*esc=*/true);
        const double worst_generic_s = gh.time.mean_s > ge.time.mean_s
                                           ? gh.time.mean_s
                                           : ge.time.mean_s;
        const double worst_generic_b =
            static_cast<double>(gh.bytes > ge.bytes ? gh.bytes : ge.bytes);
        std::printf(
            "%-16s %10u %10zu | %9.2f %9.2f %9.2f %6.2fx | %9.2f %9.2f %9.2f %6.2fx\n",
            w.name.c_str(), w.matrix.nrows(), w.matrix.nnz(), b.time.mean_ms(),
            gh.time.mean_ms(), ge.time.mean_ms(), worst_generic_s / b.time.mean_s,
            b.bytes / 1e6, gh.bytes / 1e6, ge.bytes / 1e6,
            worst_generic_b / static_cast<double>(b.bytes));
        squares.push_back({&w, b, gh, ge});
    }

    std::printf("\n-- EWiseAdd: C = A + A^T --------------------------------------"
                "-------------\n");
    std::printf("%-16s %10s | %9s %9s %7s | %9s %9s %7s\n", "matrix", "nnz",
                "bool ms", "gnrc ms", "speedup", "bool MB", "gnrc MB", "mem x");
    for (const auto& w : workloads) {
        const auto at = spbla::ops::transpose(ctx(), w.matrix);
        const auto b = measure_boolean_add(w.matrix, at);
        const auto g = measure_generic_add(w.matrix, at);
        std::printf("%-16s %10zu | %9.2f %9.2f %6.2fx | %9.2f %9.2f %6.2fx\n",
                    w.name.c_str(), w.matrix.nnz(), b.time.mean_ms(),
                    g.time.mean_ms(), g.time.mean_s / b.time.mean_s, b.bytes / 1e6,
                    g.bytes / 1e6,
                    static_cast<double>(g.bytes) / static_cast<double>(b.bytes));
        adds.push_back({&w, b, g});
    }
    std::printf("\nExpected shape (the paper claims *up to* 5x/4x, not uniform "
                "wins): the boolean kernel's advantage is largest on the "
                "product-heavy power-law matrices (many duplicate partial "
                "products collapse into the hash set) and smallest on very "
                "sparse inputs where every kernel is bandwidth-bound; the ESC "
                "comparator's memory blow-up grows with the raw product count "
                "(its expansion buffer).\n");

    write_json(squares, adds);
    return 0;
}
