/// \file bench_boolean_vs_generic.cpp
/// \brief Experiment E1 — the abstract's headline claim.
///
/// "Operations specialized for Boolean matrices can be up to 5 times faster
/// and consume up to 4 times less memory than generic, not the Boolean
/// optimized, operations from modern libraries."
///
/// Workload: matrix squaring C = A * A (the standard SpGEMM stress test the
/// SPbLA evaluation uses) and element-wise addition A + A^T, over R-MAT
/// power-law matrices and generated RDF adjacency matrices. Comparators:
///   boolean      — SPbLA's hash-set kernel, no value array
///   generic-hash — same Nsparse structure with float hash-map accumulation
///                  (the cuSPARSE-style comparator)
///   generic-esc  — expand-sort-compress with float values (the CUSP-style
///                  comparator; its expansion buffer is the memory hog)
/// Reported memory = matrix footprints + peak tracked temporaries.
#include <cstdio>

#include "baseline/generic_csr.hpp"
#include "baseline/generic_ewise_add.hpp"
#include "baseline/generic_spgemm.hpp"
#include "common.hpp"
#include "data/lubm.hpp"
#include "data/rdflike.hpp"
#include "data/rmat.hpp"
#include "ops/ewise_add.hpp"
#include "ops/spgemm.hpp"
#include "ops/transpose.hpp"

namespace {

using namespace spbla;
using bench::ctx;

struct Workload {
    std::string name;
    CsrMatrix matrix;
};

struct Measurement {
    double seconds;
    std::size_t bytes;  // result + temporaries
};

Measurement measure_boolean_square(const CsrMatrix& a) {
    ctx().tracker().reset_peak();
    CsrMatrix result{a.nrows(), a.ncols()};
    const double s = bench::time_runs([&] { result = ops::multiply(ctx(), a, a); });
    return {s, result.device_bytes() + ctx().tracker().peak_bytes()};
}

Measurement measure_generic_square(const CsrMatrix& a, bool esc) {
    const auto g = baseline::GenericCsr::from_boolean(a);
    ctx().tracker().reset_peak();
    baseline::GenericCsr result{a.nrows(), a.ncols()};
    const double s = bench::time_runs([&] {
        result = esc ? baseline::multiply_esc(ctx(), g, g)
                     : baseline::multiply_hash(ctx(), g, g);
    });
    return {s, result.device_bytes() + ctx().tracker().peak_bytes()};
}

Measurement measure_boolean_add(const CsrMatrix& a, const CsrMatrix& at) {
    ctx().tracker().reset_peak();
    CsrMatrix result{a.nrows(), a.ncols()};
    const double s = bench::time_runs([&] { result = ops::ewise_add(ctx(), a, at); });
    return {s, result.device_bytes() + ctx().tracker().peak_bytes()};
}

Measurement measure_generic_add(const CsrMatrix& a, const CsrMatrix& at) {
    const auto ga = baseline::GenericCsr::from_boolean(a);
    const auto gat = baseline::GenericCsr::from_boolean(at);
    ctx().tracker().reset_peak();
    baseline::GenericCsr result{a.nrows(), a.ncols()};
    const double s =
        bench::time_runs([&] { result = baseline::ewise_add(ctx(), ga, gat); });
    return {s, result.device_bytes() + ctx().tracker().peak_bytes()};
}

}  // namespace

int main() {
    std::vector<Workload> workloads;
    workloads.push_back({"rmat-11-8", data::make_rmat(11, 8)});
    workloads.push_back({"rmat-13-8", data::make_rmat(13, 8)});
    workloads.push_back({"rmat-14-4", data::make_rmat(14, 4)});
    workloads.push_back({"lubm-100", data::make_lubm(100).union_matrix()});
    workloads.push_back(
        {"taxonomy-20k", data::make_taxonomy(20000, 2).union_matrix()});
    workloads.push_back(
        {"geospecies-30k", data::make_geospecies(30000, 24).union_matrix()});

    std::printf("E1: Boolean-specialised vs generic kernels (paper: boolean up to "
                "5x faster, up to 4x less memory)\n\n");
    std::printf("-- SpGEMM: C = A * A ------------------------------------------"
                "---------------------------------\n");
    std::printf("%-16s %10s %10s | %9s %9s %9s %7s | %9s %9s %9s %7s\n", "matrix",
                "|V|", "nnz", "bool ms", "gnrc ms", "esc ms", "speedup", "bool MB",
                "gnrc MB", "esc MB", "mem x");
    for (const auto& w : workloads) {
        const auto b = measure_boolean_square(w.matrix);
        const auto gh = measure_generic_square(w.matrix, /*esc=*/false);
        const auto ge = measure_generic_square(w.matrix, /*esc=*/true);
        const double worst_generic_s = gh.seconds > ge.seconds ? gh.seconds : ge.seconds;
        const double worst_generic_b =
            static_cast<double>(gh.bytes > ge.bytes ? gh.bytes : ge.bytes);
        std::printf(
            "%-16s %10u %10zu | %9.2f %9.2f %9.2f %6.2fx | %9.2f %9.2f %9.2f %6.2fx\n",
            w.name.c_str(), w.matrix.nrows(), w.matrix.nnz(), b.seconds * 1e3,
            gh.seconds * 1e3, ge.seconds * 1e3, worst_generic_s / b.seconds,
            b.bytes / 1e6, gh.bytes / 1e6, ge.bytes / 1e6,
            worst_generic_b / static_cast<double>(b.bytes));
    }

    std::printf("\n-- EWiseAdd: C = A + A^T --------------------------------------"
                "-------------\n");
    std::printf("%-16s %10s | %9s %9s %7s | %9s %9s %7s\n", "matrix", "nnz",
                "bool ms", "gnrc ms", "speedup", "bool MB", "gnrc MB", "mem x");
    for (const auto& w : workloads) {
        const auto at = spbla::ops::transpose(ctx(), w.matrix);
        const auto b = measure_boolean_add(w.matrix, at);
        const auto g = measure_generic_add(w.matrix, at);
        std::printf("%-16s %10zu | %9.2f %9.2f %6.2fx | %9.2f %9.2f %6.2fx\n",
                    w.name.c_str(), w.matrix.nnz(), b.seconds * 1e3, g.seconds * 1e3,
                    g.seconds / b.seconds, b.bytes / 1e6, g.bytes / 1e6,
                    static_cast<double>(g.bytes) / static_cast<double>(b.bytes));
    }
    std::printf("\nExpected shape (the paper claims *up to* 5x/4x, not uniform "
                "wins): the boolean kernel's advantage is largest on the "
                "product-heavy power-law matrices (many duplicate partial "
                "products collapse into the hash set) and smallest on very "
                "sparse inputs where every kernel is bandwidth-bound; the ESC "
                "comparator's memory blow-up grows with the raw product count "
                "(its expansion buffer).\n");
    return 0;
}
