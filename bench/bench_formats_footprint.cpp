/// \file bench_formats_footprint.cpp
/// \brief Experiment E9 — the Implementation Details section's storage
/// claims: CSR costs (m + nnz) indices, COO costs 2*nnz indices, and "COO
/// gives better memory footprint for very sparse matrices with a lot of
/// empty rows" (why clBool chose COO).
#include <cstdio>

#include "common.hpp"
#include "core/convert.hpp"
#include "data/rmat.hpp"

int main() {
    using namespace spbla;
    std::printf("E9: CSR vs COO footprint across density (n = 65536 rows)\n\n");
    std::printf("%12s %12s %12s %12s %10s | %s\n", "nnz", "nnz/row", "CSR KB",
                "COO KB", "COO/CSR", "cheaper");
    bench::rule(78);

    const Index n = 65536;
    for (const double per_row : {0.05, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        const double density = per_row / n;
        const CsrMatrix csr = data::make_uniform(n, n, density, 900 + per_row * 10).csr();
        const auto coo = to_coo(csr);
        const double ratio = static_cast<double>(coo.device_bytes()) /
                             static_cast<double>(csr.device_bytes());
        std::printf("%12zu %12.2f %12.1f %12.1f %10.2f | %s\n", csr.nnz(),
                    static_cast<double>(csr.nnz()) / n, csr.device_bytes() / 1024.0,
                    coo.device_bytes() / 1024.0, ratio,
                    ratio < 1.0 ? "COO" : "CSR");
    }
    bench::rule(78);
    std::printf("\nExpected shape: COO wins below ~1 nnz/row (the very sparse "
                "regime with many empty rows, the paper's clBool rationale); "
                "CSR wins above it. The crossover sits at nnz/row = 1 + 1/nnz "
                "~= 1, where (m + 1 + nnz) = 2 * nnz.\n");
    return 0;
}
