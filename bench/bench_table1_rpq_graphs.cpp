/// \file bench_table1_rpq_graphs.cpp
/// \brief Experiment E2 — regenerates Table I: "Graphs for RPQ evaluation".
///
/// Prints the same rows the paper reports (#V, #E per graph) for the
/// generated analogs, beside the paper's original numbers so the scale
/// factor is visible.
#include <cstdio>

#include "common.hpp"
#include "datasets.hpp"

int main() {
    using namespace spbla;
    struct PaperRow {
        const char* name;
        std::uint64_t v, e;
    };
    // Table I of the paper (original numbers).
    const PaperRow paper[] = {
        {"LUBM1k~", 120926, 484646},     {"LUBM3.5k~", 358434, 1449711},
        {"LUBM5.9k~", 596760, 2416513},  {"LUBM1M~", 1188340, 4820728},
        {"LUBM1.7M~", 1780956, 7228358}, {"LUBM2.3M~", 2308385, 9369511},
        {"Uniprotkb~", 6442630, 24465430},
        {"Proteomes~", 4834262, 12366973},
        {"Taxonomy~", 5728398, 14922125},
        {"Geospecies~", 450609, 2201532},
        {"Mappingbased~", 8332233, 25346359},
    };

    std::printf("E2 / Table I: graphs for RPQ evaluation (generated analogs)\n\n");
    std::printf("%-14s %12s %12s | %12s %12s | %8s\n", "Graph", "#V", "#E",
                "paper #V", "paper #E", "scale");
    bench::rule(84);

    auto print_group = [&](const std::vector<bench::Dataset>& group) {
        for (const auto& d : group) {
            const PaperRow* row = nullptr;
            for (const auto& p : paper) {
                if (d.name == p.name) row = &p;
            }
            const double scale =
                row != nullptr
                    ? static_cast<double>(row->v) / d.graph.num_vertices()
                    : 0.0;
            std::printf("%-14s %12s %12s | %12s %12s | %7.1fx\n", d.name.c_str(),
                        bench::with_commas(d.graph.num_vertices()).c_str(),
                        bench::with_commas(d.graph.num_edges()).c_str(),
                        row ? bench::with_commas(row->v).c_str() : "-",
                        row ? bench::with_commas(row->e).c_str() : "-", scale);
        }
        bench::rule(84);
    };

    print_group(bench::lubm_series());
    print_group(bench::realworld_rpq());

    std::printf("\nExpected shape: LUBM series keeps the paper's ~1:3:5:10:15:19 "
                "size ratios and ~4 edges/vertex; analogs keep each paper "
                "graph's edge/vertex density.\n");
    return 0;
}
