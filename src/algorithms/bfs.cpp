#include "algorithms/bfs.hpp"

#include "storage/dispatch.hpp"

namespace spbla::algorithms {

std::vector<int> bfs_levels(backend::Context& ctx, const Matrix& adj, Index source) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch, "bfs: square matrix");
    check(source < adj.nrows(), Status::OutOfRange, "bfs: source out of range");

    std::vector<int> level(adj.nrows(), -1);
    level[source] = 0;
    SpVector frontier = SpVector::from_indices(adj.nrows(), {source});
    int depth = 0;
    while (!frontier.empty()) {
        ++depth;
        const SpVector next = storage::vxm(ctx, frontier, adj);
        std::vector<Index> fresh;
        for (const auto v : next.indices()) {
            if (level[v] < 0) {
                level[v] = depth;
                fresh.push_back(v);
            }
        }
        frontier = SpVector::from_indices(adj.nrows(), std::move(fresh));
    }
    return level;
}

SpVector reachable_from(backend::Context& ctx, const Matrix& adj, Index source) {
    const auto levels = bfs_levels(ctx, adj, source);
    std::vector<Index> out;
    for (Index v = 0; v < adj.nrows(); ++v) {
        if (levels[v] > 0) out.push_back(v);
    }
    return SpVector::from_indices(adj.nrows(), std::move(out));
}

}  // namespace spbla::algorithms
