/// \file components.hpp
/// \brief Connected components via BFS frontier sweeps — another classic
/// GraphBLAS workload expressed on the library's vector kernels.
#pragma once

#include <vector>

#include "backend/context.hpp"
#include "storage/matrix.hpp"

namespace spbla::algorithms {

/// Weakly connected component label per vertex (labels are the smallest
/// vertex id in the component). The adjacency matrix is symmetrised
/// internally, so directed input is fine.
[[nodiscard]] std::vector<Index> connected_components(backend::Context& ctx,
                                                      const Matrix& adj);

/// Number of weakly connected components.
[[nodiscard]] std::size_t count_components(backend::Context& ctx, const Matrix& adj);

}  // namespace spbla::algorithms
