#include "algorithms/components.hpp"

#include "storage/dispatch.hpp"

namespace spbla::algorithms {

std::vector<Index> connected_components(backend::Context& ctx, const Matrix& adj) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch,
          "connected_components: matrix must be square");
    const Index n = adj.nrows();
    const Matrix sym = storage::ewise_add(ctx, adj, storage::transpose(ctx, adj));

    constexpr Index kUnlabeled = 0xFFFFFFFFu;
    std::vector<Index> label(n, kUnlabeled);
    for (Index root = 0; root < n; ++root) {
        if (label[root] != kUnlabeled) continue;
        label[root] = root;
        SpVector frontier = SpVector::from_indices(n, {root});
        while (!frontier.empty()) {
            const SpVector next = storage::vxm(ctx, frontier, sym);
            std::vector<Index> fresh;
            for (const auto v : next.indices()) {
                if (label[v] == kUnlabeled) {
                    label[v] = root;
                    fresh.push_back(v);
                }
            }
            frontier = SpVector::from_indices(n, std::move(fresh));
        }
    }
    return label;
}

std::size_t count_components(backend::Context& ctx, const Matrix& adj) {
    const auto labels = connected_components(ctx, adj);
    std::size_t count = 0;
    for (Index v = 0; v < adj.nrows(); ++v) {
        if (labels[v] == v) ++count;
    }
    return count;
}

}  // namespace spbla::algorithms
