#include "algorithms/closure.hpp"

#include "ops/ewise_add.hpp"
#include "ops/ewise_mult.hpp"
#include "prof/prof.hpp"

namespace spbla::algorithms {
namespace {

/// Semi-naive evaluation: keep a frontier of edges discovered last round and
/// extend only those — each closure edge's final hop is recomputed exactly
/// once instead of every round. This is the standard Datalog optimisation
/// of the Linear strategy.
CsrMatrix closure_delta(backend::Context& ctx, const CsrMatrix& adj,
                        const ops::SpGemmOptions& opts, std::size_t& rounds) {
    CsrMatrix m = adj;
    CsrMatrix frontier = adj;
    while (!frontier.empty()) {
        ++rounds;
        SPBLA_PROF_SPAN_ITER("closure.round", rounds);
        SPBLA_PROF_COUNT(frontier_nnz, frontier.nnz());
        const CsrMatrix extended = ops::multiply(ctx, frontier, adj, opts);
        frontier = ops::ewise_diff(ctx, extended, m);
        m = ops::ewise_add(ctx, m, frontier);
    }
    return m;
}

}  // namespace

CsrMatrix transitive_closure(backend::Context& ctx, const CsrMatrix& adj,
                             ClosureStrategy strategy, ClosureStats* stats,
                             const ops::SpGemmOptions& opts) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch,
          "transitive_closure: matrix must be square");
    SPBLA_PROF_SPAN("closure");
    std::size_t rounds = 0;
    CsrMatrix m{0, 0};
    if (strategy == ClosureStrategy::Delta) {
        m = closure_delta(ctx, adj, opts, rounds);
    } else {
        m = adj;
        for (;;) {
            const std::size_t before = m.nnz();
            SPBLA_PROF_SPAN_ITER("closure.round", rounds + 1);
            m = strategy == ClosureStrategy::Squaring
                    ? ops::multiply_add(ctx, m, m, m, opts)
                    : ops::multiply_add(ctx, m, m, adj, opts);
            ++rounds;
            if (m.nnz() == before) break;
        }
    }
    if (stats != nullptr) {
        stats->rounds = rounds;
        stats->result_nnz = m.nnz();
    }
    return m;
}

CsrMatrix reflexive_transitive_closure(backend::Context& ctx, const CsrMatrix& adj,
                                       ClosureStrategy strategy, ClosureStats* stats) {
    const CsrMatrix plus = transitive_closure(ctx, adj, strategy, stats);
    return ops::ewise_add(ctx, plus, CsrMatrix::identity(adj.nrows()));
}

}  // namespace spbla::algorithms
