#include "algorithms/closure.hpp"

#include "prof/prof.hpp"

namespace spbla::algorithms {
namespace {

/// Semi-naive evaluation: keep a frontier of edges discovered last round and
/// extend only those — each closure edge's final hop is recomputed exactly
/// once instead of every round. This is the standard Datalog optimisation
/// of the Linear strategy.
Matrix closure_delta(backend::Context& ctx, const Matrix& adj,
                     const ops::SpGemmOptions& opts, std::size_t& rounds) {
    Matrix m = adj;
    Matrix frontier = adj;
    while (!frontier.empty()) {
        ++rounds;
        SPBLA_PROF_SPAN_ITER("closure.round", rounds);
        SPBLA_PROF_COUNT(frontier_nnz, frontier.nnz());
        const Matrix extended = storage::multiply(ctx, frontier, adj, opts);
        frontier = storage::ewise_diff(ctx, extended, m);
        m = storage::ewise_add(ctx, m, frontier);
    }
    return m;
}

}  // namespace

Matrix transitive_closure(backend::Context& ctx, const Matrix& adj,
                          ClosureStrategy strategy, ClosureStats* stats,
                          const ops::SpGemmOptions& opts) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch,
          "transitive_closure: matrix must be square");
    SPBLA_PROF_SPAN("closure");
    std::size_t rounds = 0;
    Matrix m{0, 0, ctx};
    if (strategy == ClosureStrategy::Delta) {
        m = closure_delta(ctx, adj, opts, rounds);
    } else {
        m = adj;
        for (;;) {
            const std::size_t before = m.nnz();
            SPBLA_PROF_SPAN_ITER("closure.round", rounds + 1);
            m = strategy == ClosureStrategy::Squaring
                    ? storage::multiply_add(ctx, m, m, m, opts)
                    : storage::multiply_add(ctx, m, m, adj, opts);
            ++rounds;
            if (m.nnz() == before) break;
        }
    }
    if (stats != nullptr) {
        stats->rounds = rounds;
        stats->result_nnz = m.nnz();
    }
    return m;
}

Matrix reflexive_transitive_closure(backend::Context& ctx, const Matrix& adj,
                                    ClosureStrategy strategy, ClosureStats* stats) {
    const Matrix plus = transitive_closure(ctx, adj, strategy, stats);
    return storage::ewise_add(ctx, plus, Matrix::identity(adj.nrows(), ctx));
}

}  // namespace spbla::algorithms
