#include "algorithms/triangles.hpp"

#include <atomic>

namespace spbla::algorithms {

std::uint64_t count_triangles(backend::Context& ctx, const Matrix& adj) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch,
          "count_triangles: matrix must be square");
    // Materialise the row structure once, outside the parallel region — the
    // handle's lazy conversion cache is not safe to fill concurrently.
    const auto& rows = adj.csr(ctx);
    // Edge iterator: for each edge (u, v) with u < v, count common
    // neighbours w with w > v; each triangle u < v < w is counted once.
    std::atomic<std::uint64_t> total{0};
    ctx.parallel_for(rows.nrows(), 128, [&](std::size_t ui) {
        const auto u = static_cast<Index>(ui);
        std::uint64_t local = 0;
        const auto nu = rows.row(u);
        for (const auto v : nu) {
            if (v <= u) continue;
            const auto nv = rows.row(v);
            // Intersect the parts of N(u) and N(v) above v.
            std::size_t a = 0, b = 0;
            while (a < nu.size() && nu[a] <= v) ++a;
            while (b < nv.size() && nv[b] <= v) ++b;
            while (a < nu.size() && b < nv.size()) {
                if (nu[a] < nv[b])
                    ++a;
                else if (nv[b] < nu[a])
                    ++b;
                else {
                    ++local;
                    ++a;
                    ++b;
                }
            }
        }
        total.fetch_add(local, std::memory_order_relaxed);
    });
    return total.load();
}

}  // namespace spbla::algorithms
