/// \file triangles.hpp
/// \brief Triangle counting on an undirected Boolean adjacency matrix.
///
/// Classic GraphBLAS showcase; used by the examples to demonstrate the
/// public API on a non-path-querying workload.
#pragma once

#include <cstdint>

#include "backend/context.hpp"
#include "storage/matrix.hpp"

namespace spbla::algorithms {

/// Number of triangles in a symmetric adjacency matrix without self loops.
[[nodiscard]] std::uint64_t count_triangles(backend::Context& ctx, const Matrix& adj);

}  // namespace spbla::algorithms
