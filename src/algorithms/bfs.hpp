/// \file bfs.hpp
/// \brief Breadth-first search expressed in Boolean linear algebra.
///
/// The GraphBLAS motivating example: the frontier is a sparse Boolean
/// vector, one BFS level is a vxm push followed by masking out visited
/// vertices.
#pragma once

#include <vector>

#include "backend/context.hpp"
#include "core/spvector.hpp"
#include "storage/matrix.hpp"

namespace spbla::algorithms {

/// Per-vertex BFS level from \p source (-1 for unreachable vertices).
[[nodiscard]] std::vector<int> bfs_levels(backend::Context& ctx, const Matrix& adj,
                                          Index source);

/// Set of vertices reachable from \p source (excluding source unless cyclic).
[[nodiscard]] SpVector reachable_from(backend::Context& ctx, const Matrix& adj,
                                      Index source);

}  // namespace spbla::algorithms
