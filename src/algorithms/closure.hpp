/// \file closure.hpp
/// \brief Transitive closure over the Boolean semiring.
///
/// The paper's path-querying layer is a transitive-closure fixpoint over
/// SPbLA's fused multiply-add; the text explicitly identifies *incremental*
/// transitive closure as the CFPQ bottleneck. Two strategies are provided
/// (and ablated in bench_ablation):
///  - Squaring:  M <- M | M*M     (O(log d) rounds for diameter d)
///  - Linear:    M <- M | M*Base  (O(d) rounds, cheaper per round)
///
/// Operates on the format-polymorphic spbla::Matrix: the storage dispatch
/// layer picks the representation per round (CSR while sparse, dense bitmap
/// once the closure saturates) with hysteresis, so a fixpoint run converts
/// formats at most a constant number of times.
#pragma once

#include "backend/context.hpp"
#include "storage/dispatch.hpp"

namespace spbla::algorithms {

/// Fixpoint iteration strategy for the closure.
enum class ClosureStrategy {
    Squaring,  ///< M += M * M per round
    Linear,    ///< M += M * Base per round
    Delta,     ///< semi-naive: only the frontier of new edges multiplies Base
};

/// Statistics of a closure run (reported by the benchmark harness).
struct ClosureStats {
    std::size_t rounds = 0;       ///< fixpoint iterations executed
    std::size_t result_nnz = 0;   ///< nnz of the closure
};

/// Transitive closure M+ of a square adjacency matrix (no reflexive edges
/// added). Optionally reports iteration stats through \p stats.
[[nodiscard]] Matrix transitive_closure(backend::Context& ctx, const Matrix& adj,
                                        ClosureStrategy strategy = ClosureStrategy::Squaring,
                                        ClosureStats* stats = nullptr,
                                        const ops::SpGemmOptions& opts = {});

/// Reflexive-transitive closure M* = I | M+.
[[nodiscard]] Matrix reflexive_transitive_closure(
    backend::Context& ctx, const Matrix& adj,
    ClosureStrategy strategy = ClosureStrategy::Squaring, ClosureStats* stats = nullptr);

}  // namespace spbla::algorithms
