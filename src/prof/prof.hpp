/// \file prof.hpp
/// \brief Compile-time-gated profiling layer: scoped spans, named counters,
/// Chrome-trace export.
///
/// The Boolean kernels earn their speedups from internals the result never
/// shows — bin occupancy, hash probe/collision rates, work-stealing
/// behaviour, device-memory high-water. This layer records them with three
/// primitives, mirroring how GraphBLAST and OpSparse attribute their tuning
/// wins to per-kernel counter profiles:
///
///  - SPBLA_PROF_SPAN("spgemm.numeric"): a scoped span on the calling
///    thread. Span begin/end pairs nest; at trace level each completed span
///    is appended to a lock-free per-thread ring buffer and can be exported
///    as Chrome trace-event JSON (chrome://tracing / Perfetto) or as a
///    hierarchical text summary with totals and percentages.
///  - SPBLA_PROF_COUNT(hash_probes, n): adds n to a named counter,
///    attributed to the innermost active span. Workers launched through
///    Context::parallel_for inherit the launching thread's span, so kernel
///    counters incremented on the pool aggregate under the op that launched
///    them.
///  - SPBLA_PROF_SPAN_ITER(name, i): a span carrying an iteration number
///    (fixpoint rounds in the CFPQ/RPQ drivers).
///
/// Gating mirrors SPBLA_CHECKS: the CMake knob SPBLA_PROFILE=off|counters|
/// trace defines SPBLA_PROFILE_LEVEL to 0/1/2. At "off" every macro expands
/// to a no-op (zero overhead — the release configuration). "counters" and
/// "trace" both compile the instrumentation in and differ only in the
/// *default* runtime level; the level can be moved at runtime via
/// set_runtime_level / spbla_ProfEnable / the SPBLA_TRACE environment
/// variable (which also arms a dump-at-exit hook).
///
/// The runtime below (registration, ring buffers, export) is always
/// compiled, so tests exercise it in every build through the direct API;
/// only the macro instrumentation in library code is compile-time gated.
///
/// Thread-safety: every hot-path write lands in thread-local storage
/// (frame stacks) or per-thread atomic tables read with relaxed loads by
/// the aggregating exporter — no locks, TSan-clean. Ring-buffer entries are
/// published with a release store on the head index; snapshots are intended
/// for quiescent points (between launches), as a writer lapping a concurrent
/// reader may hand it a torn event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#define SPBLA_PROFILE_OFF 0
#define SPBLA_PROFILE_COUNTERS 1
#define SPBLA_PROFILE_TRACE 2

#ifndef SPBLA_PROFILE_LEVEL
#define SPBLA_PROFILE_LEVEL SPBLA_PROFILE_OFF
#endif

namespace spbla::prof {

/// Profiling level this translation unit was compiled with.
inline constexpr int kCompiledLevel = SPBLA_PROFILE_LEVEL;

[[nodiscard]] constexpr int compiled_level() noexcept { return kCompiledLevel; }

/// Human-readable name of the compiled profiling level.
[[nodiscard]] constexpr const char* compiled_level_name() noexcept {
    return kCompiledLevel >= SPBLA_PROFILE_TRACE      ? "trace"
           : kCompiledLevel >= SPBLA_PROFILE_COUNTERS ? "counters"
                                                      : "off";
}

/// Identifier of a registered span or counter site. Span and counter ids
/// live in separate namespaces; both are dense and bounded (kMaxSpanSites /
/// kMaxCounterSites — registrations past the bound fold into an "(overflow)"
/// slot so instrumentation can never fail).
using SiteId = std::uint32_t;

inline constexpr SiteId kNoSite = 0xFFFFFFFFu;
inline constexpr std::uint64_t kNoIter = 0xFFFFFFFFFFFFFFFFull;

/// Span site 0 is the implicit "(root)": counters incremented outside any
/// span (pool bookkeeping, allocations during setup) aggregate there.
inline constexpr SiteId kRootSpan = 0;

/// How a counter merges across increments: Sum accumulates, Max keeps the
/// largest observed value (device-memory high-water).
enum class CounterKind : std::uint8_t { Sum, Max };

/// Active runtime level (defaults to the compiled level). Raising it above
/// the compiled level only affects direct API callers — macro sites compiled
/// out at SPBLA_PROFILE=off stay gone.
[[nodiscard]] int runtime_level() noexcept;
void set_runtime_level(int level) noexcept;

/// True iff counters/spans record at the current runtime level.
[[nodiscard]] bool counting() noexcept;
/// True iff completed spans are appended to the trace ring buffers.
[[nodiscard]] bool tracing() noexcept;

/// Register a span site (idempotent per name; macro sites cache the id in a
/// function-local static so registration runs once).
[[nodiscard]] SiteId register_span(const char* name);

/// Register a counter site.
[[nodiscard]] SiteId register_counter(const char* name,
                                      CounterKind kind = CounterKind::Sum);

/// Add \p value to \p counter, attributed to the calling thread's innermost
/// active span (or to "(root)" when no span is active).
void count(SiteId counter, std::uint64_t value) noexcept;

/// Small dense id of the calling thread (assigned on first use; used as the
/// Chrome-trace tid).
[[nodiscard]] std::uint32_t thread_id() noexcept;

/// Site of the calling thread's innermost active span (kNoSite if none).
[[nodiscard]] SiteId current_span_site() noexcept;

/// Device-memory hooks called by backend::MemoryTracker: record the
/// allocation event counters and fold the post-alloc byte total into the
/// active span's high-water mark.
void note_alloc(std::size_t bytes, std::size_t current_after) noexcept;
void note_free(std::size_t bytes) noexcept;

/// RAII span. Pushes a frame on the calling thread's stack; on destruction
/// flushes the frame's counters into the per-thread aggregation tables and,
/// at trace level, appends one complete ("X") event to the thread's ring.
class SpanScope {
public:
    explicit SpanScope(SiteId site, std::uint64_t iter = kNoIter) noexcept;
    ~SpanScope();

    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

private:
    bool active_;
};

/// RAII span-inheritance scope for pool workers: Context::parallel_for wraps
/// kernel bodies in one of these so counters incremented on a worker
/// aggregate under the span that launched the kernel. A borrowed frame
/// contributes counters (plus pool_steals / pool_busy_ns bookkeeping) but
/// not calls/time — the launcher's own span owns the elapsed time. On the
/// launching thread itself this is a no-op (its real frame is already on the
/// stack).
class WorkerScope {
public:
    WorkerScope(SiteId site, std::uint32_t launcher_tid) noexcept;
    ~WorkerScope();

    WorkerScope(const WorkerScope&) = delete;
    WorkerScope& operator=(const WorkerScope&) = delete;

private:
    bool active_;
    std::uint64_t start_ns_{0};
};

// ---------------------------------------------------------------------------
// Aggregation, export and test surface (always available; call at quiescent
// points — no kernel in flight).
// ---------------------------------------------------------------------------

/// One completed span pulled out of the ring buffers (test/export surface).
struct SnapshotEvent {
    std::string name;
    std::uint32_t tid{0};
    std::uint64_t start_ns{0};
    std::uint64_t dur_ns{0};
    std::uint64_t iter{kNoIter};
    std::vector<std::pair<std::string, std::uint64_t>> args;  ///< frame counters
};

/// Aggregated value of one counter under one span.
struct CounterRow {
    std::string span;
    std::string counter;
    CounterKind kind{CounterKind::Sum};
    std::uint64_t value{0};
};

/// All events currently held in the ring buffers, oldest first per thread.
[[nodiscard]] std::vector<SnapshotEvent> snapshot_events();

/// All non-zero (span, counter) aggregates across every thread.
[[nodiscard]] std::vector<CounterRow> counter_rows();

/// Aggregated value of \p counter under \p span (0 if never counted).
[[nodiscard]] std::uint64_t counter_value(std::string_view span,
                                          std::string_view counter);

/// Aggregated value of \p counter across all spans (Max counters merge by
/// max; Sum counters add).
[[nodiscard]] std::uint64_t counter_total(std::string_view counter);

/// Number of spans completed under \p span's site (all threads).
[[nodiscard]] std::uint64_t span_calls(std::string_view span);

/// Chrome trace-event JSON: {"traceEvents": [...], ...} with one "X" event
/// per recorded span (args = the span's counters) plus an "spbla_counters"
/// aggregate section tools/check_trace.py validates. Loadable in
/// chrome://tracing and Perfetto, which ignore the extra keys.
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to \p path; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Hierarchical text summary: spans as a tree (parent = enclosing span at
/// first use) with call counts, total milliseconds, percent of parent, and
/// each span's counters.
[[nodiscard]] std::string text_summary();

/// Clear every ring buffer, frame-counter table and span statistic. Callers
/// must be quiescent (no kernel in flight).
void reset();

/// Ring-buffer capacity (events per thread) applied to rings created after
/// the call; the default is 8192. Test hook.
[[nodiscard]] std::size_t ring_capacity() noexcept;
void set_ring_capacity(std::size_t events) noexcept;

}  // namespace spbla::prof

// ---------------------------------------------------------------------------
// Instrumentation macros. Compiled out entirely at SPBLA_PROFILE=off; the
// sizeof tricks keep arguments type-checked without evaluating them
// (matching the SPBLA_ASSERT idiom in util/contracts.hpp).
// ---------------------------------------------------------------------------

#define SPBLA_PROF_CAT2(a, b) a##b
#define SPBLA_PROF_CAT(a, b) SPBLA_PROF_CAT2(a, b)

#if SPBLA_PROFILE_LEVEL >= SPBLA_PROFILE_COUNTERS

#define SPBLA_PROF_SPAN(name)                                                 \
    static const ::spbla::prof::SiteId SPBLA_PROF_CAT(spblaProfSite_,         \
                                                      __LINE__) =             \
        ::spbla::prof::register_span(name);                                   \
    const ::spbla::prof::SpanScope SPBLA_PROF_CAT(spblaProfScope_, __LINE__)( \
        SPBLA_PROF_CAT(spblaProfSite_, __LINE__))

#define SPBLA_PROF_SPAN_ITER(name, iter)                                      \
    static const ::spbla::prof::SiteId SPBLA_PROF_CAT(spblaProfSite_,         \
                                                      __LINE__) =             \
        ::spbla::prof::register_span(name);                                   \
    const ::spbla::prof::SpanScope SPBLA_PROF_CAT(spblaProfScope_, __LINE__)( \
        SPBLA_PROF_CAT(spblaProfSite_, __LINE__),                             \
        static_cast<std::uint64_t>(iter))

#define SPBLA_PROF_COUNT(counter, n)                                          \
    do {                                                                      \
        static const ::spbla::prof::SiteId SPBLA_PROF_CAT(spblaProfCtr_,      \
                                                          __LINE__) =         \
            ::spbla::prof::register_counter(#counter);                        \
        ::spbla::prof::count(SPBLA_PROF_CAT(spblaProfCtr_, __LINE__),         \
                             static_cast<std::uint64_t>(n));                  \
    } while (false)

#define SPBLA_PROF_COUNT_MAX(counter, n)                                      \
    do {                                                                      \
        static const ::spbla::prof::SiteId SPBLA_PROF_CAT(spblaProfCtr_,      \
                                                          __LINE__) =         \
            ::spbla::prof::register_counter(#counter,                         \
                                            ::spbla::prof::CounterKind::Max); \
        ::spbla::prof::count(SPBLA_PROF_CAT(spblaProfCtr_, __LINE__),         \
                             static_cast<std::uint64_t>(n));                  \
    } while (false)

#else  // SPBLA_PROFILE_LEVEL == off: every macro is a checked no-op.

#define SPBLA_PROF_SPAN(name) static_cast<void>(0)
#define SPBLA_PROF_SPAN_ITER(name, iter) \
    static_cast<void>(sizeof(static_cast<std::uint64_t>(iter)))
#define SPBLA_PROF_COUNT(counter, n) \
    static_cast<void>(sizeof(static_cast<std::uint64_t>(n)))
#define SPBLA_PROF_COUNT_MAX(counter, n) \
    static_cast<void>(sizeof(static_cast<std::uint64_t>(n)))

#endif  // SPBLA_PROFILE_LEVEL
