#include "prof/prof.hpp"

#include <algorithm>
#include <atomic>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "telemetry/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace spbla::prof {
namespace {

// Dense site-id bounds. Registrations past a bound fold into the final
// "(overflow)" slot so instrumentation can never fail; at ~40 spans and ~30
// counters in the whole library the headroom is generous.
constexpr std::size_t kMaxSpanSites = 128;
constexpr std::size_t kMaxCounterSites = 64;

/// Counters a frame accumulates inline before spilling to the thread table.
constexpr std::size_t kFrameCounters = 16;

/// Counter args carried on one trace event.
constexpr std::size_t kMaxEventArgs = 12;

constexpr std::size_t kDefaultRingCapacity = 8192;

struct Event {
    std::uint64_t start_ns{0};
    std::uint64_t dur_ns{0};
    std::uint64_t iter{kNoIter};
    SiteId site{kNoSite};
    std::uint32_t n_args{0};
    struct Arg {
        SiteId id;
        std::uint64_t value;
    };
    std::array<Arg, kMaxEventArgs> args{};
};

struct Frame {
    SiteId site{kNoSite};
    std::uint64_t start_ns{0};
    std::uint64_t iter{kNoIter};
    bool borrowed{false};
    std::uint32_t n_counters{0};
    std::array<Event::Arg, kFrameCounters> counters{};
};

class Registry;
Registry& registry();

/// Everything one thread writes: its frame stack (strictly thread-local),
/// its (span x counter) aggregation table and span statistics (atomics the
/// exporter reads with relaxed loads), and its trace-event ring (entries
/// published via a release store on `head`).
struct ThreadLog {
    explicit ThreadLog(std::uint32_t id) : tid{id} {}

    std::uint32_t tid;
    std::vector<Frame> frames;

    // Lazily sized on first write: kMaxSpanSites * kMaxCounterSites slots.
    std::vector<std::atomic<std::uint64_t>> counters;
    std::array<std::atomic<std::uint64_t>, kMaxSpanSites> span_calls{};
    std::array<std::atomic<std::uint64_t>, kMaxSpanSites> span_ns{};

    std::vector<Event> ring;  // lazily sized on first traced span
    std::atomic<std::uint64_t> head{0};

    void merge_counter(SiteId span, SiteId counter, std::uint64_t value,
                       CounterKind kind) noexcept {
        if (span >= kMaxSpanSites || counter >= kMaxCounterSites) return;
        if (counters.empty()) {
            counters = std::vector<std::atomic<std::uint64_t>>(kMaxSpanSites *
                                                               kMaxCounterSites);
        }
        auto& slot = counters[span * kMaxCounterSites + counter];
        if (kind == CounterKind::Sum) {
            slot.fetch_add(value, std::memory_order_relaxed);
        } else {
            auto cur = slot.load(std::memory_order_relaxed);
            while (cur < value && !slot.compare_exchange_weak(
                                      cur, value, std::memory_order_relaxed)) {
            }
        }
    }
};

class Registry {
public:
    Registry() {
        epoch_ = std::chrono::steady_clock::now();
        span_names_.reserve(kMaxSpanSites);
        span_names_.emplace_back("(root)");  // kRootSpan
        for (auto& p : span_parents_) p.store(kNoSite, std::memory_order_relaxed);
        counter_names_.reserve(kMaxCounterSites);
        runtime_level_.store(kCompiledLevel, std::memory_order_relaxed);
    }

    std::atomic<int> runtime_level_{0};
    std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};

    std::uint64_t now_ns() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    SiteId register_span(const char* name) SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return register_name(span_names_, kMaxSpanSites, name);
    }

    SiteId register_counter(const char* name, CounterKind kind)
        SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        const SiteId id = register_name(counter_names_, kMaxCounterSites, name);
        counter_kinds_[id].store(static_cast<std::uint8_t>(kind),
                                 std::memory_order_relaxed);
        return id;
    }

    CounterKind counter_kind(SiteId id) const noexcept {
        if (id >= kMaxCounterSites) return CounterKind::Sum;
        return static_cast<CounterKind>(
            counter_kinds_[id].load(std::memory_order_relaxed));
    }

    /// Record the enclosing span the first time \p site is pushed; the tree
    /// in text_summary() hangs off these first-seen parents.
    void note_parent(SiteId site, SiteId parent) noexcept {
        if (site >= kMaxSpanSites) return;
        SiteId expected = kNoSite;
        span_parents_[site].compare_exchange_strong(
            expected, parent >= kMaxSpanSites ? kRootSpan : parent,
            std::memory_order_relaxed);
    }

    ThreadLog& local() {
        thread_local std::shared_ptr<ThreadLog> log = [this] {
            auto created = std::make_shared<ThreadLog>(
                next_tid_.fetch_add(1, std::memory_order_relaxed));
            util::LockGuard lock{mutex_};
            logs_.push_back(created);
            return created;
        }();
        return *log;
    }

    // --- aggregation / export (locks out registration, not recording) ------

    std::vector<std::shared_ptr<ThreadLog>> logs_snapshot() SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return logs_;
    }

    std::string span_name(SiteId id) SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return id < span_names_.size() ? span_names_[id] : "(unknown)";
    }

    std::vector<std::string> span_names() SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return span_names_;
    }

    std::vector<std::string> counter_names() SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return counter_names_;
    }

    SiteId find_span(std::string_view name) SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return find_name(span_names_, name);
    }

    SiteId find_counter(std::string_view name) SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return find_name(counter_names_, name);
    }

    SiteId span_parent(SiteId id) const noexcept {
        if (id >= kMaxSpanSites) return kRootSpan;
        return span_parents_[id].load(std::memory_order_relaxed);
    }

    void reset() SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        for (const auto& log : logs_) {
            for (auto& c : log->counters) c.store(0, std::memory_order_relaxed);
            for (auto& c : log->span_calls) c.store(0, std::memory_order_relaxed);
            for (auto& c : log->span_ns) c.store(0, std::memory_order_relaxed);
            log->head.store(0, std::memory_order_relaxed);
        }
    }

    // Pre-registered bookkeeping counters (pool + device memory).
    SiteId id_pool_steals() { return cached(id_pool_steals_, "pool_steals"); }
    SiteId id_pool_busy_ns() { return cached(id_pool_busy_ns_, "pool_busy_ns"); }
    SiteId id_mem_allocs() { return cached(id_mem_allocs_, "mem_allocs"); }
    SiteId id_mem_frees() { return cached(id_mem_frees_, "mem_frees"); }
    SiteId id_mem_alloc_bytes() {
        return cached(id_mem_alloc_bytes_, "mem_alloc_bytes");
    }
    SiteId id_mem_high_bytes() {
        return cached(id_mem_high_bytes_, "mem_high_bytes", CounterKind::Max);
    }

private:
    SiteId register_name(std::vector<std::string>& names, std::size_t cap,
                         const char* name) SPBLA_REQUIRES(mutex_) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name) return static_cast<SiteId>(i);
        }
        if (names.size() + 1 >= cap) {  // reserve the final slot for overflow
            if (names.size() + 1 == cap) names.emplace_back("(overflow)");
            return static_cast<SiteId>(cap - 1);
        }
        names.emplace_back(name);
        return static_cast<SiteId>(names.size() - 1);
    }

    static SiteId find_name(const std::vector<std::string>& names,
                            std::string_view name) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name) return static_cast<SiteId>(i);
        }
        return kNoSite;
    }

    SiteId cached(std::atomic<SiteId>& slot, const char* name,
                  CounterKind kind = CounterKind::Sum) {
        SiteId id = slot.load(std::memory_order_acquire);
        if (id == 0) {  // 0 is never a valid cached value before first store
            id = register_counter(name, kind) + 1;
            slot.store(id, std::memory_order_release);
        }
        return id - 1;
    }

    util::Mutex mutex_;
    std::chrono::steady_clock::time_point epoch_;  // set once in the ctor
    std::vector<std::string> span_names_ SPBLA_GUARDED_BY(mutex_);
    std::vector<std::string> counter_names_ SPBLA_GUARDED_BY(mutex_);
    std::array<std::atomic<std::uint8_t>, kMaxCounterSites> counter_kinds_{};
    std::array<std::atomic<SiteId>, kMaxSpanSites> span_parents_{};
    std::vector<std::shared_ptr<ThreadLog>> logs_ SPBLA_GUARDED_BY(mutex_);
    std::atomic<std::uint32_t> next_tid_{0};
    std::atomic<SiteId> id_pool_steals_{0};
    std::atomic<SiteId> id_pool_busy_ns_{0};
    std::atomic<SiteId> id_mem_allocs_{0};
    std::atomic<SiteId> id_mem_frees_{0};
    std::atomic<SiteId> id_mem_alloc_bytes_{0};
    std::atomic<SiteId> id_mem_high_bytes_{0};
};

std::string g_env_trace_path;  // set once before threads exist

void env_dump_at_exit() {
    if (!g_env_trace_path.empty()) {
        if (write_chrome_trace(g_env_trace_path)) {
            std::fprintf(stderr, "spbla: profile trace written to %s\n",
                         g_env_trace_path.c_str());
        } else {
            std::fprintf(stderr, "spbla: cannot write profile trace to %s\n",
                         g_env_trace_path.c_str());
        }
    }
}

/// SPBLA_TRACE=<path> raises the runtime level to trace and dumps the Chrome
/// trace at process exit (only effective when instrumentation is compiled
/// in, i.e. SPBLA_PROFILE != off — at off the macro sites are gone and the
/// trace would be empty, so the hook stays unarmed).
void arm_env_hook(Registry& reg) {
    if (kCompiledLevel < SPBLA_PROFILE_COUNTERS) return;
    const char* path = std::getenv("SPBLA_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    g_env_trace_path = path;
    reg.runtime_level_.store(SPBLA_PROFILE_TRACE, std::memory_order_relaxed);
    std::atexit(env_dump_at_exit);
}

Registry& registry() {
    // Leaked intentionally: the dump-at-exit hook and late-exiting pool
    // threads may touch the registry after static destruction begins.
    static Registry* instance = new Registry;  // lint:allow(raw-new-delete)
    static const bool armed = (arm_env_hook(*instance), true);
    static_cast<void>(armed);
    return *instance;
}

void flush_frame(ThreadLog& log, const Frame& frame) {
    Registry& reg = registry();
    for (std::uint32_t i = 0; i < frame.n_counters; ++i) {
        log.merge_counter(frame.site, frame.counters[i].id,
                          frame.counters[i].value,
                          reg.counter_kind(frame.counters[i].id));
    }
}

void append_event(ThreadLog& log, const Frame& frame, std::uint64_t end_ns) {
    Registry& reg = registry();
    // Capacity is applied when a thread's ring is first created; changing it
    // later leaves existing rings alone (resizing would tear head arithmetic).
    if (log.ring.empty()) {
        log.ring.resize(reg.ring_capacity_.load(std::memory_order_relaxed));
    }
    const std::uint64_t h = log.head.load(std::memory_order_relaxed);
    Event& e = log.ring[h % log.ring.size()];
    e.start_ns = frame.start_ns;
    e.dur_ns = end_ns - frame.start_ns;
    e.iter = frame.iter;
    e.site = frame.site;
    e.n_args = std::min<std::uint32_t>(frame.n_counters, kMaxEventArgs);
    for (std::uint32_t i = 0; i < e.n_args; ++i) e.args[i] = frame.counters[i];
    log.head.store(h + 1, std::memory_order_release);
}

void add_to_frame(Frame& frame, ThreadLog& log, SiteId counter,
                  std::uint64_t value, CounterKind kind) noexcept {
    for (std::uint32_t i = 0; i < frame.n_counters; ++i) {
        if (frame.counters[i].id == counter) {
            if (kind == CounterKind::Sum) {
                frame.counters[i].value += value;
            } else if (frame.counters[i].value < value) {
                frame.counters[i].value = value;
            }
            return;
        }
    }
    if (frame.n_counters < kFrameCounters) {
        frame.counters[frame.n_counters++] = {counter, value};
        return;
    }
    log.merge_counter(frame.site, counter, value, kind);  // spill
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out.push_back(c);
        }
    }
    return out;
}

}  // namespace

int runtime_level() noexcept {
    return registry().runtime_level_.load(std::memory_order_relaxed);
}

void set_runtime_level(int level) noexcept {
    if (level < SPBLA_PROFILE_OFF) level = SPBLA_PROFILE_OFF;
    if (level > SPBLA_PROFILE_TRACE) level = SPBLA_PROFILE_TRACE;
    registry().runtime_level_.store(level, std::memory_order_relaxed);
}

bool counting() noexcept { return runtime_level() >= SPBLA_PROFILE_COUNTERS; }
bool tracing() noexcept { return runtime_level() >= SPBLA_PROFILE_TRACE; }

SiteId register_span(const char* name) { return registry().register_span(name); }

SiteId register_counter(const char* name, CounterKind kind) {
    return registry().register_counter(name, kind);
}

std::uint32_t thread_id() noexcept { return registry().local().tid; }

SiteId current_span_site() noexcept {
    const ThreadLog& log = registry().local();
    return log.frames.empty() ? kNoSite : log.frames.back().site;
}

void count(SiteId counter, std::uint64_t value) noexcept {
    if (!counting()) return;
    Registry& reg = registry();
    ThreadLog& log = reg.local();
    const CounterKind kind = reg.counter_kind(counter);
    if (log.frames.empty()) {
        log.merge_counter(kRootSpan, counter, value, kind);
        return;
    }
    add_to_frame(log.frames.back(), log, counter, value, kind);
}

void note_alloc(std::size_t bytes, std::size_t current_after) noexcept {
    if (!counting()) return;
    Registry& reg = registry();
    ThreadLog& log = reg.local();
    if (log.frames.empty()) {
        log.merge_counter(kRootSpan, reg.id_mem_allocs(), 1, CounterKind::Sum);
        log.merge_counter(kRootSpan, reg.id_mem_alloc_bytes(), bytes,
                          CounterKind::Sum);
        log.merge_counter(kRootSpan, reg.id_mem_high_bytes(), current_after,
                          CounterKind::Max);
        return;
    }
    Frame& top = log.frames.back();
    add_to_frame(top, log, reg.id_mem_allocs(), 1, CounterKind::Sum);
    add_to_frame(top, log, reg.id_mem_alloc_bytes(), bytes, CounterKind::Sum);
    add_to_frame(top, log, reg.id_mem_high_bytes(), current_after,
                 CounterKind::Max);
}

void note_free(std::size_t bytes) noexcept {
    static_cast<void>(bytes);
    if (!counting()) return;
    Registry& reg = registry();
    ThreadLog& log = reg.local();
    if (log.frames.empty()) {
        log.merge_counter(kRootSpan, reg.id_mem_frees(), 1, CounterKind::Sum);
        return;
    }
    add_to_frame(log.frames.back(), log, reg.id_mem_frees(), 1,
                 CounterKind::Sum);
}

SpanScope::SpanScope(SiteId site, std::uint64_t iter) noexcept : active_{false} {
    if (!counting() || site == kNoSite) return;
    Registry& reg = registry();
    ThreadLog& log = reg.local();
    reg.note_parent(site,
                    log.frames.empty() ? kRootSpan : log.frames.back().site);
    Frame frame;
    frame.site = site;
    frame.start_ns = reg.now_ns();
    frame.iter = iter;
    log.frames.push_back(frame);
    active_ = true;
}

SpanScope::~SpanScope() {
    if (!active_) return;
    Registry& reg = registry();
    ThreadLog& log = reg.local();
    const Frame frame = log.frames.back();
    log.frames.pop_back();
    const std::uint64_t end = reg.now_ns();
    if (frame.site < kMaxSpanSites) {
        log.span_calls[frame.site].fetch_add(1, std::memory_order_relaxed);
        log.span_ns[frame.site].fetch_add(end - frame.start_ns,
                                          std::memory_order_relaxed);
    }
    // Closed spans also feed the always-on telemetry registry, so a metrics
    // scrape of an instrumented build shows profiling pressure alongside the
    // production instruments (zero when profiling is off or compiled out).
    telemetry::count(telemetry::Counter::ProfSpans);
    telemetry::observe(telemetry::Histogram::ProfSpanNs, end - frame.start_ns);
    flush_frame(log, frame);
    if (tracing()) append_event(log, frame, end);
}

WorkerScope::WorkerScope(SiteId site, std::uint32_t launcher_tid) noexcept
    : active_{false} {
    if (!counting() || site == kNoSite) return;
    Registry& reg = registry();
    ThreadLog& log = reg.local();
    if (log.tid == launcher_tid) return;  // launcher keeps its real frame
    Frame frame;
    frame.site = site;
    frame.start_ns = reg.now_ns();
    frame.borrowed = true;
    log.frames.push_back(frame);
    start_ns_ = frame.start_ns;
    active_ = true;
}

WorkerScope::~WorkerScope() {
    if (!active_) return;
    Registry& reg = registry();
    ThreadLog& log = reg.local();
    Frame frame = log.frames.back();
    log.frames.pop_back();
    const std::uint64_t end = reg.now_ns();
    // Steal + busy-time bookkeeping for the pool: this chunk ran on a thread
    // that did not launch it.
    add_to_frame(frame, log, reg.id_pool_steals(), 1, CounterKind::Sum);
    add_to_frame(frame, log, reg.id_pool_busy_ns(), end - start_ns_,
                 CounterKind::Sum);
    flush_frame(log, frame);
    if (tracing()) append_event(log, frame, end);
}

std::vector<SnapshotEvent> snapshot_events() {
    Registry& reg = registry();
    const auto logs = reg.logs_snapshot();
    const auto span_names = reg.span_names();
    const auto counter_names = reg.counter_names();
    std::vector<SnapshotEvent> out;
    for (const auto& log : logs) {
        const std::uint64_t head = log->head.load(std::memory_order_acquire);
        if (log->ring.empty()) continue;
        const std::uint64_t cap = log->ring.size();
        const std::uint64_t lo = head > cap ? head - cap : 0;
        for (std::uint64_t i = lo; i < head; ++i) {
            const Event& e = log->ring[i % cap];
            SnapshotEvent ev;
            ev.name = e.site < span_names.size() ? span_names[e.site] : "(unknown)";
            ev.tid = log->tid;
            ev.start_ns = e.start_ns;
            ev.dur_ns = e.dur_ns;
            ev.iter = e.iter;
            for (std::uint32_t a = 0; a < e.n_args; ++a) {
                const auto id = e.args[a].id;
                ev.args.emplace_back(
                    id < counter_names.size() ? counter_names[id] : "(unknown)",
                    e.args[a].value);
            }
            out.push_back(std::move(ev));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SnapshotEvent& a, const SnapshotEvent& b) {
                  return a.start_ns < b.start_ns;
              });
    return out;
}

std::vector<CounterRow> counter_rows() {
    Registry& reg = registry();
    const auto logs = reg.logs_snapshot();
    const auto span_names = reg.span_names();
    const auto counter_names = reg.counter_names();
    std::vector<CounterRow> out;
    for (std::size_t s = 0; s < span_names.size() && s < kMaxSpanSites; ++s) {
        for (std::size_t c = 0; c < counter_names.size() && c < kMaxCounterSites;
             ++c) {
            const CounterKind kind = reg.counter_kind(static_cast<SiteId>(c));
            std::uint64_t total = 0;
            for (const auto& log : logs) {
                if (log->counters.empty()) continue;
                const std::uint64_t v =
                    log->counters[s * kMaxCounterSites + c].load(
                        std::memory_order_relaxed);
                total = kind == CounterKind::Sum ? total + v
                                                 : std::max(total, v);
            }
            if (total != 0) {
                out.push_back({span_names[s], counter_names[c], kind, total});
            }
        }
    }
    return out;
}

std::uint64_t counter_value(std::string_view span, std::string_view counter) {
    Registry& reg = registry();
    const SiteId s = span == "(root)" ? kRootSpan : reg.find_span(span);
    const SiteId c = reg.find_counter(counter);
    if (s == kNoSite || c == kNoSite || s >= kMaxSpanSites ||
        c >= kMaxCounterSites) {
        return 0;
    }
    const CounterKind kind = reg.counter_kind(c);
    std::uint64_t total = 0;
    for (const auto& log : reg.logs_snapshot()) {
        if (log->counters.empty()) continue;
        const std::uint64_t v =
            log->counters[s * kMaxCounterSites + c].load(std::memory_order_relaxed);
        total = kind == CounterKind::Sum ? total + v : std::max(total, v);
    }
    return total;
}

std::uint64_t counter_total(std::string_view counter) {
    Registry& reg = registry();
    const SiteId c = reg.find_counter(counter);
    if (c == kNoSite || c >= kMaxCounterSites) return 0;
    const CounterKind kind = reg.counter_kind(c);
    std::uint64_t total = 0;
    for (const auto& log : reg.logs_snapshot()) {
        if (log->counters.empty()) continue;
        for (std::size_t s = 0; s < kMaxSpanSites; ++s) {
            const std::uint64_t v =
                log->counters[s * kMaxCounterSites + c].load(
                    std::memory_order_relaxed);
            total = kind == CounterKind::Sum ? total + v : std::max(total, v);
        }
    }
    return total;
}

std::uint64_t span_calls(std::string_view span) {
    Registry& reg = registry();
    const SiteId s = reg.find_span(span);
    if (s == kNoSite || s >= kMaxSpanSites) return 0;
    std::uint64_t total = 0;
    for (const auto& log : reg.logs_snapshot()) {
        total += log->span_calls[s].load(std::memory_order_relaxed);
    }
    return total;
}

std::string chrome_trace_json() {
    Registry& reg = registry();
    const auto events = snapshot_events();
    const auto rows = counter_rows();
    const auto logs = reg.logs_snapshot();

    std::string out;
    out.reserve(events.size() * 160 + rows.size() * 96 + 512);
    out += "{\n  \"displayTimeUnit\": \"ms\",\n";
    out += "  \"otherData\": {\"spbla_profile_compiled\": \"";
    out += compiled_level_name();
    out += "\", \"spbla_runtime_level\": ";
    out += std::to_string(runtime_level());
    out += ", \"threads\": ";
    out += std::to_string(logs.size());
    out += "},\n  \"spbla_counters\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out += "    {\"span\": \"";
        out += json_escape(rows[i].span);
        out += "\", \"counter\": \"";
        out += json_escape(rows[i].counter);
        out += "\", \"kind\": \"";
        out += rows[i].kind == CounterKind::Sum ? "sum" : "max";
        out += "\", \"value\": ";
        out += std::to_string(rows[i].value);
        out += "}";
        out += i + 1 < rows.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"traceEvents\": [\n";
    bool first = true;
    char buf[64];
    for (const auto& log : logs) {
        if (!first) out += ",\n";
        first = false;
        out += "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": ";
        out += std::to_string(log->tid);
        out += ", \"args\": {\"name\": \"spbla-thread-";
        out += std::to_string(log->tid);
        out += "\"}}";
    }
    for (const auto& e : events) {
        if (!first) out += ",\n";
        first = false;
        out += "    {\"name\": \"";
        out += json_escape(e.name);
        out += "\", \"cat\": \"spbla\", \"ph\": \"X\", \"ts\": ";
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(e.start_ns) / 1e3);
        out += buf;
        out += ", \"dur\": ";
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(e.dur_ns) / 1e3);
        out += buf;
        out += ", \"pid\": 1, \"tid\": ";
        out += std::to_string(e.tid);
        out += ", \"args\": {";
        bool first_arg = true;
        if (e.iter != kNoIter) {
            out += "\"iter\": ";
            out += std::to_string(e.iter);
            first_arg = false;
        }
        for (const auto& [name, value] : e.args) {
            if (!first_arg) out += ", ";
            first_arg = false;
            out += "\"";
            out += json_escape(name);
            out += "\": ";
            out += std::to_string(value);
        }
        out += "}}";
    }
    out += "\n  ]\n}\n";
    return out;
}

bool write_chrome_trace(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = chrome_trace_json();
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (written != json.size()) std::fclose(f);
    return ok;
}

std::string text_summary() {
    Registry& reg = registry();
    const auto logs = reg.logs_snapshot();
    const auto span_names = reg.span_names();
    const auto rows = counter_rows();

    struct Agg {
        std::uint64_t calls{0};
        std::uint64_t ns{0};
    };
    std::vector<Agg> agg(span_names.size());
    for (const auto& log : logs) {
        for (std::size_t s = 0; s < span_names.size() && s < kMaxSpanSites; ++s) {
            agg[s].calls += log->span_calls[s].load(std::memory_order_relaxed);
            agg[s].ns += log->span_ns[s].load(std::memory_order_relaxed);
        }
    }

    std::vector<std::vector<SiteId>> children(span_names.size());
    for (std::size_t s = 1; s < span_names.size() && s < kMaxSpanSites; ++s) {
        if (agg[s].calls == 0) continue;
        SiteId parent = reg.span_parent(static_cast<SiteId>(s));
        if (parent == kNoSite || parent >= span_names.size()) parent = kRootSpan;
        children[parent].push_back(static_cast<SiteId>(s));
    }

    std::string out = "spbla prof summary (compiled=";
    out += compiled_level_name();
    out += ", runtime=";
    out += std::to_string(runtime_level());
    out += ")\n";
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-44s %10s %12s %8s\n", "span", "calls",
                  "total ms", "% parent");
    out += buf;

    // Depth-first over the first-seen parent tree.
    struct Item {
        SiteId site;
        int depth;
    };
    std::vector<Item> stack;
    for (auto it = children[kRootSpan].rbegin(); it != children[kRootSpan].rend();
         ++it) {
        stack.push_back({*it, 0});
    }
    std::uint64_t root_total = 0;
    for (const auto s : children[kRootSpan]) root_total += agg[s].ns;
    while (!stack.empty()) {
        const auto [site, depth] = stack.back();
        stack.pop_back();
        const SiteId parent = reg.span_parent(site);
        const std::uint64_t parent_ns =
            (parent == kRootSpan || parent >= span_names.size())
                ? root_total
                : agg[parent].ns;
        const double pct =
            parent_ns > 0
                ? 100.0 * static_cast<double>(agg[site].ns) /
                      static_cast<double>(parent_ns)
                : 100.0;
        std::string label(static_cast<std::size_t>(depth) * 2, ' ');
        label += span_names[site];
        std::snprintf(buf, sizeof buf, "%-44s %10llu %12.3f %7.1f%%\n",
                      label.c_str(),
                      static_cast<unsigned long long>(agg[site].calls),
                      static_cast<double>(agg[site].ns) / 1e6, pct);
        out += buf;
        std::string counters_line;
        for (const auto& row : rows) {
            if (row.span != span_names[site]) continue;
            counters_line += counters_line.empty() ? "" : " ";
            counters_line += row.counter + "=" + std::to_string(row.value);
        }
        if (!counters_line.empty()) {
            out += std::string(static_cast<std::size_t>(depth) * 2 + 2, ' ') +
                   "[" + counters_line + "]\n";
        }
        for (auto it = children[site].rbegin(); it != children[site].rend();
             ++it) {
            stack.push_back({*it, depth + 1});
        }
    }
    std::string root_counters;
    for (const auto& row : rows) {
        if (row.span != "(root)") continue;
        root_counters += root_counters.empty() ? "" : " ";
        root_counters += row.counter + "=" + std::to_string(row.value);
    }
    if (!root_counters.empty()) out += "(root) [" + root_counters + "]\n";
    return out;
}

void reset() { registry().reset(); }

std::size_t ring_capacity() noexcept {
    return registry().ring_capacity_.load(std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t events) noexcept {
    if (events == 0) events = 1;
    registry().ring_capacity_.store(events, std::memory_order_relaxed);
}

}  // namespace spbla::prof
