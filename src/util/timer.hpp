/// \file timer.hpp
/// \brief Wall-clock timing helpers used by the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace spbla::util {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
    using clock = std::chrono::steady_clock;

    Timer() noexcept : start_{clock::now()} {}

    /// Restart the stopwatch.
    void reset() noexcept { start_ = clock::now(); }

    /// Seconds elapsed since construction or last reset().
    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or last reset().
    [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

private:
    clock::time_point start_;
};

}  // namespace spbla::util
