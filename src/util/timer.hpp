/// \file timer.hpp
/// \brief Wall-clock timing helpers used by the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#endif

namespace spbla::util {

/// Nanoseconds of CPU time consumed by the calling thread, or 0 when the
/// platform offers no per-thread clock. Unlike wall clock this is immune to
/// preemption, so threads multiplexed onto fewer cores than there are lanes
/// (the simulated-device case) still report only the work they executed.
[[nodiscard]] inline std::uint64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return 0;
}

/// Monotonic wall-clock stopwatch.
class Timer {
public:
    using clock = std::chrono::steady_clock;

    Timer() noexcept : start_{clock::now()} {}

    /// Restart the stopwatch.
    void reset() noexcept { start_ = clock::now(); }

    /// Seconds elapsed since construction or last reset().
    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or last reset().
    [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

private:
    clock::time_point start_;
};

}  // namespace spbla::util
