/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// All data generators in the repository use these primitives so that every
/// experiment is reproducible bit-for-bit from a seed. The generator is
/// splitmix64 (Steele et al.), which passes BigCrush for our purposes and is
/// trivially seedable and splittable.
#pragma once

#include <cstdint>
#include <limits>

namespace spbla::util {

/// splitmix64 mixing function: maps a 64-bit state to a well-mixed output.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Minimal counter-based PRNG built on splitmix64.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions when needed.
class Rng {
public:
    using result_type = std::uint64_t;

    constexpr explicit Rng(std::uint64_t seed = 0x5bd1e995u) noexcept : state_{seed} {}

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform integer in [0, bound). \p bound must be non-zero.
    /// Uses Lemire's multiply-shift reduction (slight modulo bias is
    /// irrelevant for data generation and avoids a divide).
    [[nodiscard]] constexpr std::uint64_t below(std::uint64_t bound) noexcept {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /// Uniform double in [0, 1).
    [[nodiscard]] constexpr double uniform() noexcept {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with probability \p p.
    [[nodiscard]] constexpr bool chance(double p) noexcept { return uniform() < p; }

    /// Derive an independent stream for substream \p tag.
    [[nodiscard]] constexpr Rng split(std::uint64_t tag) const noexcept {
        return Rng{splitmix64_mix(state_ ^ splitmix64_mix(tag))};
    }

private:
    std::uint64_t state_;
};

}  // namespace spbla::util
