/// \file thread_annotations.hpp
/// \brief Clang capability-analysis annotations + annotated lock primitives.
///
/// The concurrency invariants of this codebase — which members a mutex
/// guards, which functions must (or must not) run under it, which locks
/// order before which — used to live in comments. This header turns them
/// into machine-checked contracts: under Clang with -Wthread-safety (the
/// SPBLA_ANALYZE CMake option / `analyze` preset) a read of a guarded
/// member outside its mutex is a compile error; under other compilers the
/// macros vanish and the wrappers compile to the std primitives they wrap.
///
/// Conventions (see DESIGN.md "Static analysis"):
///  - every std::mutex in the library is a util::Mutex so it can be named
///    as a capability; every lock scope is a util::LockGuard / UniqueLock;
///  - every non-atomic member written from more than one thread carries
///    SPBLA_GUARDED_BY(<mutex>) (the `guarded-mutable` lint rule enforces
///    this for `mutable` members in src/);
///  - private helpers that assume the lock is already held carry
///    SPBLA_REQUIRES(<mutex>) instead of re-locking;
///  - deliberate lock-order constraints are declared with
///    SPBLA_ACQUIRED_BEFORE/AFTER on the mutex member, which the
///    `lock-order` lint rule cross-checks against observed nesting.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

// Clang exposes the capability-analysis attributes; GCC (and MSVC) do not.
// The macros must expand to nothing elsewhere, so annotated headers stay
// portable and the release toolchain is unaffected.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SPBLA_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef SPBLA_TS_ATTR
#define SPBLA_TS_ATTR(x)  // no capability analysis on this compiler
#endif

/// Declares a type to be a capability (lockable) the analysis can track.
#define SPBLA_CAPABILITY(x) SPBLA_TS_ATTR(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define SPBLA_SCOPED_CAPABILITY SPBLA_TS_ATTR(scoped_lockable)

/// Member may only be read/written while holding the named capability.
#define SPBLA_GUARDED_BY(x) SPBLA_TS_ATTR(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named capability.
#define SPBLA_PT_GUARDED_BY(x) SPBLA_TS_ATTR(pt_guarded_by(x))

/// Function requires the capabilities to be held on entry (and exit).
#define SPBLA_REQUIRES(...) SPBLA_TS_ATTR(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define SPBLA_ACQUIRE(...) SPBLA_TS_ATTR(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define SPBLA_RELEASE(...) SPBLA_TS_ATTR(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define SPBLA_TRY_ACQUIRE(...) SPBLA_TS_ATTR(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capabilities held (deadlock guard
/// for public entry points of self-locking classes).
#define SPBLA_EXCLUDES(...) SPBLA_TS_ATTR(locks_excluded(__VA_ARGS__))

/// Declared lock-order edges: this mutex is always acquired before/after
/// the named ones. The `lock-order` lint rule folds these declared edges
/// into the observed-acquisition graph and rejects cycles.
#define SPBLA_ACQUIRED_BEFORE(...) SPBLA_TS_ATTR(acquired_before(__VA_ARGS__))
#define SPBLA_ACQUIRED_AFTER(...) SPBLA_TS_ATTR(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SPBLA_RETURN_CAPABILITY(x) SPBLA_TS_ATTR(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the analysis
/// cannot see. Every use must carry a comment saying why.
#define SPBLA_NO_THREAD_SAFETY_ANALYSIS SPBLA_TS_ATTR(no_thread_safety_analysis)

namespace spbla::util {

/// std::mutex wrapper the analysis can name as a capability. Interchangeable
/// with std::mutex at runtime (zero-cost forwarding); the only reason it
/// exists is that attributes cannot be attached to std types.
class SPBLA_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SPBLA_ACQUIRE() { m_.lock(); }
    void unlock() SPBLA_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() SPBLA_TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
    friend class CondVar;
    friend class UniqueLock;
    std::mutex m_;
};

/// Annotated std::lock_guard analog: acquires in the constructor, releases
/// in the destructor, never unlocks early.
class SPBLA_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& m) SPBLA_ACQUIRE(m) : m_{m} { m_.lock(); }
    ~LockGuard() SPBLA_RELEASE() { m_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex& m_;
};

/// Annotated std::unique_lock analog, restricted to the one capability the
/// analysis can model cleanly: held from construction to destruction, usable
/// as the lock token of CondVar::wait (which releases and reacquires
/// internally — invisible to, and irrelevant for, the caller's invariants,
/// since the predicate is only ever evaluated under the lock).
class SPBLA_SCOPED_CAPABILITY UniqueLock {
public:
    explicit UniqueLock(Mutex& m) SPBLA_ACQUIRE(m) : lk_{m.m_} {}
    ~UniqueLock() SPBLA_RELEASE() {}

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with util::Mutex via UniqueLock.
class CondVar {
public:
    /// Blocks until \p pred holds; \p lk's mutex is held whenever \p pred
    /// runs and on return (standard condition-variable contract).
    template <class Pred>
    void wait(UniqueLock& lk, Pred&& pred) {
        cv_.wait(lk.lk_, std::forward<Pred>(pred));
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace spbla::util
