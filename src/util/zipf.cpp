#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace spbla::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
    cdf_.resize(n == 0 ? 1 : n);
    double sum = 0.0;
    for (std::size_t k = 0; k < cdf_.size(); ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = sum;
    }
    for (auto& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1
                                                     : it - cdf_.begin());
}

}  // namespace spbla::util
