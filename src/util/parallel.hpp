/// \file parallel.hpp
/// \brief Data-parallel primitives (the "kernel launch" surface).
///
/// These functions are the reproduction's analog of CUDA grid launches and
/// Thrust algorithms used by cuBool: parallel_for replaces a one-thread-per-
/// row kernel, exclusive_scan replaces thrust::exclusive_scan. A null pool or
/// a single-worker pool degrades to plain sequential loops, which stands in
/// for SPbLA's CPU fallback backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

namespace spbla::util {

/// How a parallel_for distributes chunks over workers.
enum class Schedule {
    /// Chunks are tickets claimed dynamically off an atomic counter
    /// (ThreadPool::run_dynamic) — a heavy chunk never stalls the rest of
    /// the range behind it. Default for every kernel launch.
    Dynamic,
    /// One queued closure per chunk, assigned FIFO (ThreadPool::submit_many).
    /// The pre-ticket behaviour; kept for the scheduling ablation.
    Static,
};

/// Partition [0, n) into contiguous chunks of at least \p grain elements and
/// run \p body(begin, end) on each chunk via \p pool. Blocks until complete.
/// With pool == nullptr the body runs once on the full range.
void parallel_for_chunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         Schedule schedule = Schedule::Dynamic);

/// Element-wise parallel loop: runs \p body(i) for every i in [0, n).
void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& body,
                  Schedule schedule = Schedule::Dynamic);

/// In-place exclusive prefix sum over \p data; returns the total sum.
/// data[i] becomes sum of original data[0..i). Mirrors thrust::exclusive_scan.
std::uint64_t exclusive_scan(std::vector<std::uint32_t>& data);

/// Exclusive prefix sum of 64-bit counters.
std::uint64_t exclusive_scan(std::vector<std::uint64_t>& data);

/// Parallel exclusive prefix sum: per-chunk partial sums, a sequential scan
/// of the chunk totals, then a parallel offset fixup — the classic two-level
/// GPU scan. Falls back to the sequential scan for small inputs or a null /
/// single-worker pool. Semantics match the sequential overload exactly.
std::uint64_t exclusive_scan(ThreadPool* pool, std::vector<std::uint32_t>& data);

}  // namespace spbla::util
