/// \file bit_ops.hpp
/// \brief Small bit-manipulation helpers shared across kernels.
///
/// The broadword primitives below (popcount64, bit_transpose_64x64,
/// for_each_set_bit) are the substrate of the bit-parallel tier: the dense
/// bitmap rep and the BitBlocks 64x64 tiles both pack 64 Boolean entries per
/// machine word and lean on these instead of ad-hoc per-call loops.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

#if defined(_MSC_VER) && !defined(__clang__)
#include <intrin.h>
#endif

namespace spbla::util {

/// Round \p x up to the next power of two. next_pow2(0) == 1.
[[nodiscard]] constexpr std::uint32_t next_pow2(std::uint32_t x) noexcept {
    return x <= 1 ? 1u : std::bit_ceil(x);
}

/// Round \p x up to the next power of two (64-bit).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
    return x <= 1 ? 1u : std::bit_ceil(x);
}

/// Integer ceiling division; \p b must be non-zero.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
    return (a + b - 1) / b;
}

/// True iff \p x is a power of two (and non-zero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
    return x != 0 && (x & (x - 1)) == 0;
}

/// Population count of one 64-bit word. Compiles to a single popcnt on every
/// mainstream toolchain: __builtin_popcountll on GCC/Clang, __popcnt64 on
/// MSVC x64, std::popcount otherwise.
[[nodiscard]] inline int popcount64(std::uint64_t x) noexcept {
#if defined(_MSC_VER) && !defined(__clang__)
#if defined(_M_X64) || defined(_M_ARM64)
    return static_cast<int>(__popcnt64(x));
#else
    return std::popcount(x);
#endif
#elif defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(x);
#else
    return std::popcount(x);
#endif
}

/// Index of the lowest set bit; \p x must be non-zero.
[[nodiscard]] inline int lowest_set_bit(std::uint64_t x) noexcept {
    return std::countr_zero(x);
}

/// Invoke \p fn(bit_index) for every set bit of \p word, lowest first.
/// The canonical "iterate the 64 packed columns of one word" loop — kernels
/// use this instead of re-rolling the countr_zero / clear-lowest idiom.
template <class Fn>
inline void for_each_set_bit(std::uint64_t word, Fn&& fn) {
    while (word != 0) {
        fn(static_cast<unsigned>(std::countr_zero(word)));
        word &= word - 1;
    }
}

/// In-place transpose of a 64x64 bit matrix: x[r] is row r, bit c is column
/// c (LSB-first, matching DenseMatrix/BitBlockMatrix packing). Recursive
/// quadrant swap (Hacker's Delight 7-3, re-derived for LSB-first order):
/// log2(64) = 6 rounds of masked XOR swaps, ~384 word ops, no memory
/// traffic beyond the 64 words themselves.
inline void bit_transpose_64x64(std::uint64_t x[64]) noexcept {
    std::uint64_t m = 0x00000000FFFFFFFFull;
    for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = ((x[k] >> j) ^ x[k | j]) & m;
            x[k | j] ^= t;
            x[k] ^= t << j;
        }
    }
}

}  // namespace spbla::util
