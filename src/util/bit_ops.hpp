/// \file bit_ops.hpp
/// \brief Small bit-manipulation helpers shared across kernels.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace spbla::util {

/// Round \p x up to the next power of two. next_pow2(0) == 1.
[[nodiscard]] constexpr std::uint32_t next_pow2(std::uint32_t x) noexcept {
    return x <= 1 ? 1u : std::bit_ceil(x);
}

/// Round \p x up to the next power of two (64-bit).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
    return x <= 1 ? 1u : std::bit_ceil(x);
}

/// Integer ceiling division; \p b must be non-zero.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
    return (a + b - 1) / b;
}

/// True iff \p x is a power of two (and non-zero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
    return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace spbla::util
