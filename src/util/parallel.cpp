#include "util/parallel.hpp"

#include "util/bit_ops.hpp"

namespace spbla::util {

void parallel_for_chunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t workers = pool ? pool->size() : 1;
    const std::size_t max_chunks = workers * 4;
    std::size_t chunk = grain;
    if (ceil_div(n, chunk) > max_chunks) chunk = ceil_div(n, max_chunks);
    if (pool == nullptr || workers == 1 || n <= chunk) {
        body(0, n);
        return;
    }
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = begin + chunk < n ? begin + chunk : n;
        pool->submit([&body, begin, end] { body(begin, end); });
    }
    pool->wait_idle();
}

void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
    parallel_for_chunks(pool, n, grain, [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
    });
}

std::uint64_t exclusive_scan(std::vector<std::uint32_t>& data) {
    std::uint64_t sum = 0;
    for (auto& v : data) {
        const std::uint64_t next = sum + v;
        v = static_cast<std::uint32_t>(sum);
        sum = next;
    }
    return sum;
}

std::uint64_t exclusive_scan(std::vector<std::uint64_t>& data) {
    std::uint64_t sum = 0;
    for (auto& v : data) {
        const std::uint64_t next = sum + v;
        v = sum;
        sum = next;
    }
    return sum;
}

}  // namespace spbla::util
