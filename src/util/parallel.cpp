#include "util/parallel.hpp"

#include <algorithm>

#include "prof/prof.hpp"
#include "util/bit_ops.hpp"

namespace spbla::util {
namespace {

/// Bound on tickets per dynamic launch: past this, claim overhead dominates
/// any balance gain, so chunks are widened instead.
constexpr std::size_t kMaxDynamicChunks = 1u << 14;

void dispatch_chunks(ThreadPool* pool, std::size_t n, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body,
                     Schedule schedule) {
    if (schedule == Schedule::Dynamic) {
        const std::size_t tickets = ceil_div(n, chunk);
        pool->run_dynamic(tickets, [&body, chunk, n](std::size_t t) {
            const std::size_t begin = t * chunk;
            body(begin, std::min(begin + chunk, n));
        });
        return;
    }
    std::vector<std::function<void()>> jobs;
    jobs.reserve(ceil_div(n, chunk));
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = begin + chunk < n ? begin + chunk : n;
        jobs.emplace_back([&body, begin, end] { body(begin, end); });
    }
    pool->submit_many(std::move(jobs));
    pool->wait_idle();
}

}  // namespace

void parallel_for_chunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         Schedule schedule) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t workers = pool ? pool->size() : 1;
    std::size_t chunk = grain;
    if (schedule == Schedule::Static) {
        // FIFO assignment cannot rebalance, so over-decomposing only adds
        // queue traffic: cap at a few chunks per worker.
        const std::size_t max_chunks = workers * 4;
        if (ceil_div(n, chunk) > max_chunks) chunk = ceil_div(n, max_chunks);
    } else if (ceil_div(n, chunk) > kMaxDynamicChunks) {
        chunk = ceil_div(n, kMaxDynamicChunks);
    }
    if (pool == nullptr || workers == 1 || n <= chunk) {
        body(0, n);
        return;
    }
    // Workers inherit the launcher's innermost span so kernel counters
    // incremented on the pool aggregate under the op that launched them
    // (plus pool_steals / pool_busy_ns bookkeeping per stolen chunk).
    if constexpr (prof::kCompiledLevel >= SPBLA_PROFILE_COUNTERS) {
        if (prof::counting()) {
            const prof::SiteId site = prof::current_span_site();
            if (site != prof::kNoSite) {
                const std::uint32_t launcher = prof::thread_id();
                dispatch_chunks(
                    pool, n, chunk,
                    [&body, site, launcher](std::size_t begin, std::size_t end) {
                        const prof::WorkerScope scope(site, launcher);
                        body(begin, end);
                    },
                    schedule);
                return;
            }
        }
    }
    dispatch_chunks(pool, n, chunk, body, schedule);
}

void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& body, Schedule schedule) {
    parallel_for_chunks(
        pool, n, grain,
        [&body](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) body(i);
        },
        schedule);
}

std::uint64_t exclusive_scan(std::vector<std::uint32_t>& data) {
    std::uint64_t sum = 0;
    for (auto& v : data) {
        const std::uint64_t next = sum + v;
        v = static_cast<std::uint32_t>(sum);
        sum = next;
    }
    return sum;
}

std::uint64_t exclusive_scan(std::vector<std::uint64_t>& data) {
    std::uint64_t sum = 0;
    for (auto& v : data) {
        const std::uint64_t next = sum + v;
        v = sum;
        sum = next;
    }
    return sum;
}

std::uint64_t exclusive_scan(ThreadPool* pool, std::vector<std::uint32_t>& data) {
    // Below this size the two extra passes cost more than they parallelise.
    constexpr std::size_t kParallelThreshold = 1u << 15;
    const std::size_t n = data.size();
    if (pool == nullptr || pool->size() == 1 || n < kParallelThreshold) {
        return exclusive_scan(data);
    }
    const std::size_t num_chunks = std::min<std::size_t>(pool->size() * 4, n);
    const std::size_t chunk = ceil_div(n, num_chunks);
    std::vector<std::uint64_t> chunk_sums(ceil_div(n, chunk), 0);

    // Pass 1: per-chunk totals.
    pool->run_dynamic(chunk_sums.size(), [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        std::uint64_t sum = 0;
        for (std::size_t i = begin; i < end; ++i) sum += data[i];
        chunk_sums[c] = sum;
    });

    // Sequential scan of the (few) chunk totals.
    const std::uint64_t total = exclusive_scan(chunk_sums);

    // Pass 2: per-chunk exclusive scan seeded with the chunk's offset.
    pool->run_dynamic(chunk_sums.size(), [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        std::uint64_t sum = chunk_sums[c];
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t next = sum + data[i];
            data[i] = static_cast<std::uint32_t>(sum);
            sum = next;
        }
    });
    return total;
}

}  // namespace spbla::util
