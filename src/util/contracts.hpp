/// \file contracts.hpp
/// \brief Compile-time-gated runtime contracts for kernels and containers.
///
/// The Boolean kernels are aggressively specialised (hash sets, bitmap
/// accumulators, cached symbolic passes), which is exactly the code shape
/// where structural corruption — unsorted columns, stale accumulator state,
/// racy buffer reuse — produces wrong-but-plausible results instead of
/// crashes. Three contract forms keep them honest:
///
///  - SPBLA_REQUIRE(cond, status, msg): API precondition. Always on; throws
///    spbla::Error carrying the status code plus file:line context. Replaces
///    bare check() at op entry points.
///  - SPBLA_ASSERT(cond, msg): internal invariant. Active at checks level
///    "cheap" and above; prints the expression and location to stderr and
///    aborts (an invariant violation means in-memory state is already
///    corrupt — unwinding through it would only move the crash).
///  - SPBLA_CHECKED(stmt...): statement compiled only at level "full"; used
///    for O(nnz) structural validation and poison fills too expensive for
///    the default build.
///
/// The level is selected at configure time via -DSPBLA_CHECKS=off|cheap|full
/// (CMake knob), which defines SPBLA_CHECKS_LEVEL to 0/1/2.
#pragma once

#include <string>

#include "core/types.hpp"

#define SPBLA_CHECKS_OFF 0
#define SPBLA_CHECKS_CHEAP 1
#define SPBLA_CHECKS_FULL 2

#ifndef SPBLA_CHECKS_LEVEL
#define SPBLA_CHECKS_LEVEL SPBLA_CHECKS_OFF
#endif

namespace spbla::util {

/// Contract-checking level this translation unit was compiled with.
[[nodiscard]] constexpr int checks_level() noexcept { return SPBLA_CHECKS_LEVEL; }

/// Human-readable name of the active checks level.
[[nodiscard]] constexpr const char* checks_level_name() noexcept {
    return SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_FULL    ? "full"
           : SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_CHEAP ? "cheap"
                                                      : "off";
}

/// Report an invariant violation and abort. Never returns; noexcept so it is
/// safe to call from noexcept accessors (DeviceBuffer::operator[]).
[[noreturn]] void contract_violation(const char* expr, const char* file, int line,
                                     const char* msg) noexcept;

/// Throw Error(status) with file:line context when \p ok is false.
inline void require(bool ok, Status status, const char* msg, const char* file,
                    int line) {
    if (!ok) {
        throw Error(status, std::string{msg} + " [" + file + ":" +
                                std::to_string(line) + "]");
    }
}

}  // namespace spbla::util

#define SPBLA_REQUIRE(cond, status, msg) \
    ::spbla::util::require((cond), (status), (msg), __FILE__, __LINE__)

#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_CHEAP
#define SPBLA_ASSERT(cond, msg)                                              \
    ((cond) ? static_cast<void>(0)                                           \
            : ::spbla::util::contract_violation(#cond, __FILE__, __LINE__, (msg)))
#else
// sizeof keeps the condition type-checked without evaluating it (and without
// unused-variable warnings for assert-only locals).
#define SPBLA_ASSERT(cond, msg) (static_cast<void>(sizeof((cond) ? 1 : 0)))
#endif

#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_FULL
#define SPBLA_CHECKED(...)  \
    do {                    \
        __VA_ARGS__;        \
    } while (false)
#else
#define SPBLA_CHECKED(...) static_cast<void>(0)
#endif
