#include "util/thread_pool.hpp"

#include <utility>

#include "prof/prof.hpp"
#include "telemetry/metrics.hpp"

namespace spbla::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0) num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
    telemetry::gauge_add(telemetry::Gauge::PoolWorkers,
                         static_cast<std::int64_t>(num_threads));
}

ThreadPool::~ThreadPool() {
    {
        LockGuard lock{mutex_};
        stop_ = true;
    }
    cv_job_.notify_all();
    telemetry::gauge_add(telemetry::Gauge::PoolWorkers,
                         -static_cast<std::int64_t>(workers_.size()));
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        LockGuard lock{mutex_};
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    telemetry::gauge_add(telemetry::Gauge::PoolQueueDepth, 1);
    telemetry::gauge_add(telemetry::Gauge::PoolInFlight, 1);
    cv_job_.notify_one();
}

void ThreadPool::submit_many(std::vector<std::function<void()>> jobs) {
    if (jobs.empty()) return;
    const auto n = static_cast<std::int64_t>(jobs.size());
    {
        LockGuard lock{mutex_};
        for (auto& job : jobs) jobs_.push(std::move(job));
        in_flight_ += jobs.size();
    }
    telemetry::gauge_add(telemetry::Gauge::PoolQueueDepth, n);
    telemetry::gauge_add(telemetry::Gauge::PoolInFlight, n);
    cv_job_.notify_all();
}

void ThreadPool::wait_idle() {
    UniqueLock lock{mutex_};
    cv_idle_.wait(lock, [this]() SPBLA_REQUIRES(mutex_) { return in_flight_ == 0; });
}

void ThreadPool::execute_bulk(BulkTask& task) {
    std::size_t t;
    while ((t = task.next.fetch_add(1)) < task.count) {
        (*task.body)(t);
        if (task.done.fetch_add(1) + 1 == task.count) {
            // Last ticket completed: wake the launcher. The lock pairs with
            // the launcher's predicate check so the notify cannot be missed.
            LockGuard lock{mutex_};
            cv_bulk_done_.notify_all();
        }
    }
}

void ThreadPool::run_dynamic(std::size_t num_tickets,
                             const std::function<void(std::size_t)>& body) {
    if (num_tickets == 0) return;
    // Attributed on the launching thread, so the counters land under the
    // span of the op doing the launch.
    SPBLA_PROF_COUNT(pool_bulk_launches, 1);
    SPBLA_PROF_COUNT(pool_tickets, num_tickets);
    telemetry::count(telemetry::Counter::PoolBulkLaunches);
    telemetry::count(telemetry::Counter::PoolTickets, num_tickets);
    auto task = std::make_shared<BulkTask>();
    task->body = &body;
    task->count = num_tickets;
    {
        LockGuard lock{mutex_};
        bulk_ = task;
    }
    cv_job_.notify_all();
    execute_bulk(*task);  // the launcher claims tickets alongside the workers
    UniqueLock lock{mutex_};
    cv_bulk_done_.wait(lock, [&] { return task->done.load() == task->count; });
    if (bulk_ == task) bulk_.reset();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        std::shared_ptr<BulkTask> bulk;
        {
            UniqueLock lock{mutex_};
            cv_job_.wait(lock, [this]() SPBLA_REQUIRES(mutex_) {
                return stop_ || !jobs_.empty() || bulk_ != nullptr;
            });
            if (stop_ && jobs_.empty()) return;
            if (!jobs_.empty()) {
                job = std::move(jobs_.front());
                jobs_.pop();
            } else {
                bulk = bulk_;
            }
        }
        if (job) {
            telemetry::gauge_add(telemetry::Gauge::PoolQueueDepth, -1);
            telemetry::gauge_add(telemetry::Gauge::PoolBusyWorkers, 1);
            job();
            telemetry::gauge_add(telemetry::Gauge::PoolBusyWorkers, -1);
            telemetry::gauge_add(telemetry::Gauge::PoolInFlight, -1);
            SPBLA_PROF_COUNT(pool_tasks, 1);
            telemetry::count(telemetry::Counter::PoolTasks);
            LockGuard lock{mutex_};
            if (--in_flight_ == 0) cv_idle_.notify_all();
        } else if (bulk) {
            execute_bulk(*bulk);
            // Tickets exhausted: retire the slot so idle workers stop
            // re-checking it (in-flight bodies still hold their shared_ptr).
            LockGuard lock{mutex_};
            if (bulk_ == bulk) bulk_.reset();
        }
    }
}

}  // namespace spbla::util
