#include "util/thread_pool.hpp"

#include <utility>

namespace spbla::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0) num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_job_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        std::lock_guard lock(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mutex_);
            cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
            if (stop_ && jobs_.empty()) return;
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            std::lock_guard lock(mutex_);
            if (--in_flight_ == 0) cv_idle_.notify_all();
        }
    }
}

}  // namespace spbla::util
