/// \file thread_pool.hpp
/// \brief Fixed-size worker pool backing the simulated GPU device.
///
/// The original SPbLA executes kernels on CUDA/OpenCL devices. In this
/// reproduction the "device" is a shared-memory thread pool: a kernel launch
/// becomes a blocking fan-out of index ranges over workers. The pool is
/// deliberately simple (mutex + condvar queue) — kernel granularity in the
/// library is coarse enough that queue overhead is negligible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spbla::util {

/// A fixed pool of worker threads executing submitted jobs FIFO.
///
/// Thread-safe. Jobs must not throw; exceptions escaping a job terminate the
/// process (kernels report failures through status codes, mirroring how CUDA
/// kernels cannot throw across the launch boundary).
class ThreadPool {
public:
    /// Create a pool with \p num_threads workers (0 → hardware concurrency).
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue \p job for asynchronous execution.
    void submit(std::function<void()> job);

    /// Block until every submitted job has finished executing.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable cv_job_;
    std::condition_variable cv_idle_;
    std::size_t in_flight_{0};
    bool stop_{false};
};

}  // namespace spbla::util
