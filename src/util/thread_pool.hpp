/// \file thread_pool.hpp
/// \brief Fixed-size worker pool backing the simulated GPU device.
///
/// The original SPbLA executes kernels on CUDA/OpenCL devices. In this
/// reproduction the "device" is a shared-memory thread pool. Two launch
/// shapes are offered:
///
///  - submit / submit_many + wait_idle: a FIFO job queue (mutex + condvar),
///    the original "one closure per chunk" path. Kept for irregular task
///    graphs and as the static-schedule fallback.
///  - run_dynamic: a persistent-worker bulk launch. The caller publishes one
///    body and a ticket count; every worker (and the caller itself) claims
///    tickets off an atomic counter until the range is exhausted. This is
///    the work-stealing analog of a GPU grid launch with a global work
///    queue: no per-chunk std::function allocation, no mutex round-trip per
///    chunk, and a straggler chunk never idles the remaining workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace spbla::util {

/// A fixed pool of worker threads executing submitted jobs FIFO and
/// dynamically-scheduled bulk launches.
///
/// Thread-safe. Jobs must not throw; exceptions escaping a job terminate the
/// process (kernels report failures through status codes, mirroring how CUDA
/// kernels cannot throw across the launch boundary).
class ThreadPool {
public:
    /// Create a pool with \p num_threads workers (0 → hardware concurrency).
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue \p job for asynchronous execution.
    void submit(std::function<void()> job) SPBLA_EXCLUDES(mutex_);

    /// Enqueue a batch of jobs under a single lock acquisition and a single
    /// notify_all — callers submitting one closure per chunk stop paying one
    /// mutex round-trip per chunk.
    void submit_many(std::vector<std::function<void()>> jobs) SPBLA_EXCLUDES(mutex_);

    /// Block until every submitted job has finished executing.
    void wait_idle() SPBLA_EXCLUDES(mutex_);

    /// Bulk launch: invoke body(t) for every ticket t in [0, num_tickets).
    /// Tickets are claimed dynamically off an atomic counter by the pool
    /// workers and by the calling thread, which participates too. Blocks
    /// until every ticket's body invocation has completed.
    ///
    /// Safe to call concurrently from several threads and re-entrantly from
    /// inside a ticket body (the inner call's tickets are then served by the
    /// calling worker plus any workers that have drained their outer
    /// tickets); progress never depends on other workers being free.
    void run_dynamic(std::size_t num_tickets,
                     const std::function<void(std::size_t)>& body)
        SPBLA_EXCLUDES(mutex_);

private:
    /// One bulk launch. Workers hold it via shared_ptr, so a stale worker
    /// waking up after the launch retired only sees an exhausted ticket
    /// counter — it can never claim a ticket against a dead body. The ticket
    /// and completion counters are claimed/advanced lock-free; only the
    /// `bulk_` slot that publishes the task to workers is mutex-guarded.
    struct BulkTask {
        const std::function<void(std::size_t)>* body{nullptr};
        std::size_t count{0};
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
    };

    void worker_loop() SPBLA_EXCLUDES(mutex_);
    void execute_bulk(BulkTask& task) SPBLA_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    Mutex mutex_;
    std::queue<std::function<void()>> jobs_ SPBLA_GUARDED_BY(mutex_);
    std::shared_ptr<BulkTask> bulk_ SPBLA_GUARDED_BY(mutex_);
    CondVar cv_job_;
    CondVar cv_idle_;
    CondVar cv_bulk_done_;
    std::size_t in_flight_ SPBLA_GUARDED_BY(mutex_) {0};
    bool stop_ SPBLA_GUARDED_BY(mutex_) {false};
};

}  // namespace spbla::util
