/// \file zipf.hpp
/// \brief Zipf-distributed integer sampler.
///
/// Real RDF graphs have heavily skewed relation-frequency distributions;
/// the synthetic dataset generators use a Zipf law to reproduce that skew
/// (the most frequent relations dominate, which is what makes the paper's
/// "most frequent relations were used as symbols in the query template"
/// methodology meaningful).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace spbla::util {

/// Samples integers in [0, n) with P(k) proportional to 1/(k+1)^s.
class ZipfSampler {
public:
    /// \p n number of distinct values, \p s skew exponent (s=0 → uniform).
    ZipfSampler(std::size_t n, double s);

    /// Draw one sample using \p rng.
    [[nodiscard]] std::size_t operator()(Rng& rng) const;

    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;  // normalized cumulative distribution
};

}  // namespace spbla::util
