#include "util/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace spbla::util {

void contract_violation(const char* expr, const char* file, int line,
                        const char* msg) noexcept {
    std::fprintf(stderr, "spbla: invariant violated: %s\n  at %s:%d\n  %s\n", expr,
                 file, line, msg);
    std::fflush(stderr);
    std::abort();
}

}  // namespace spbla::util
