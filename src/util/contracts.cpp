#include "util/contracts.hpp"

#include <cstdio>
#include <cstdlib>

#include "telemetry/flight_recorder.hpp"

namespace spbla::util {

void contract_violation(const char* expr, const char* file, int line,
                        const char* msg) noexcept {
    std::fprintf(stderr, "spbla: invariant violated: %s\n  at %s:%d\n  %s\n", expr,
                 file, line, msg);
    std::fflush(stderr);
    // Leave the post-mortem op trail before dying. First dump wins, so the
    // SIGABRT handler raised by abort() below becomes a no-op.
    telemetry::flight::dump_on_crash("invariant");
    std::abort();
}

}  // namespace spbla::util
