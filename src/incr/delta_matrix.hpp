/// \file delta_matrix.hpp
/// \brief Delta overlay over storage::Matrix: A ⊕ ΔA⁺ ⊖ ΔA⁻.
///
/// A DeltaMatrix keeps a base matrix untouched across a stream of small
/// insert/delete batches and accumulates the net change in two overlay
/// matrices, so downstream consumers that cache work keyed by the *base's*
/// content version (the dist shard cache, the incr op memo) keep hitting
/// while edits pour in. The overlay is held normalized —
///
///     add ∩ base = ∅      (inserts are genuinely new cells)
///     del ⊆ base          (deletes name cells the base actually has)
///     add ∩ del = ∅       (a cell is pending in at most one direction)
///
/// — which makes the effective cell set exactly (base ⊖ del) ⊕ add with
/// nnz = base.nnz − del.nnz + add.nnz, O(1) from the invariants. Once the
/// overlay grows past a configurable fraction of the base it is folded in
/// (Matrix::apply_delta — one fresh epoch) so overlay cost stays bounded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "storage/matrix.hpp"

namespace spbla::incr {

/// Fraction of base nnz the overlay may reach before consolidation folds it
/// into the base (see DeltaMatrix::apply).
inline constexpr double kDefaultConsolidateFraction = 0.25;

class DeltaMatrix {
public:
    /// Wrap \p base (copied; the overlay starts empty).
    explicit DeltaMatrix(Matrix base,
                         double consolidate_fraction = kDefaultConsolidateFraction);

    [[nodiscard]] Index nrows() const noexcept { return base_.nrows(); }
    [[nodiscard]] Index ncols() const noexcept { return base_.ncols(); }

    /// Effective cell count of base ⊕ add ⊖ del (O(1) from the invariants).
    [[nodiscard]] std::size_t nnz() const noexcept {
        return base_.nnz() - del_.nnz() + add_.nnz();
    }

    /// The untouched base and pending overlay (normalized as documented).
    [[nodiscard]] const Matrix& base() const noexcept { return base_; }
    [[nodiscard]] const Matrix& pending_adds() const noexcept { return add_; }
    [[nodiscard]] const Matrix& pending_dels() const noexcept { return del_; }
    [[nodiscard]] bool overlay_empty() const noexcept {
        return add_.empty() && del_.empty();
    }

    /// Fold one insert/delete batch into the overlay (delete-then-insert, so
    /// a cell named by both deltas ends up present), renormalizing against
    /// the base; consolidates into the base when the overlay crosses the
    /// threshold. Invalidates any cached snapshot.
    void apply(const Matrix& adds, const Matrix& removes, backend::Context& ctx);

    /// Force the overlay into the base now (no-op when empty).
    void consolidate(backend::Context& ctx);

    /// Epoch-stamped materialisation of the effective cell set. When the
    /// overlay is empty this is a copy of the base (same content version);
    /// otherwise the merge is computed once, given a fresh epoch, and cached
    /// until the next apply()/consolidate().
    [[nodiscard]] const Matrix& snapshot(backend::Context& ctx);

private:
    [[nodiscard]] bool over_threshold() const noexcept;

    Matrix base_;
    Matrix add_;  ///< pending inserts, disjoint from base_
    Matrix del_;  ///< pending deletes, subset of base_
    double consolidate_fraction_;
    std::optional<Matrix> snapshot_;  ///< cached merge; reset on mutation
};

}  // namespace spbla::incr
