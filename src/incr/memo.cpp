#include "incr/memo.hpp"

#include <utility>

#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "telemetry/metrics.hpp"

namespace spbla::incr {

std::shared_ptr<const Matrix> MemoTable::get_or_compute(
    const MemoKey& key, const std::function<Matrix()>& compute) {
    telemetry::count(telemetry::Counter::IncrMemoLookups);
    SPBLA_PROF_COUNT(incr_memo_lookups, 1);

    std::shared_ptr<Entry> entry;
    bool created = false;
    {
        util::LockGuard lk{mu_};
        ++stats_.lookups;
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            entry = std::make_shared<Entry>();
            entries_.emplace(key, entry);
            fifo_.push_back(key);
            created = true;
            while (entries_.size() > capacity_) {
                // FIFO eviction. Waiters on an evicted in-flight entry still
                // hold their shared_ptr and finish normally; the key is just
                // no longer discoverable.
                entries_.erase(fifo_.front());
                fifo_.erase(fifo_.begin());
                ++stats_.evictions;
                telemetry::count(telemetry::Counter::IncrMemoEvictions);
            }
        } else {
            entry = it->second;
        }
    }

    // Rendezvous outside the table lock: the first arrival computes, every
    // later arrival blocks here and reuses the published value.
    util::LockGuard lk{entry->compute_mu};
    if (entry->value == nullptr) {
        entry->value = std::make_shared<const Matrix>(compute());
        {
            util::LockGuard slk{mu_};
            ++stats_.stores;
        }
        telemetry::count(telemetry::Counter::IncrMemoStores);
        SPBLA_PROF_COUNT(incr_memo_stores, 1);
    } else if (!created) {
        {
            util::LockGuard slk{mu_};
            ++stats_.hits;
        }
        telemetry::count(telemetry::Counter::IncrMemoHits);
        SPBLA_PROF_COUNT(incr_memo_hits, 1);
    }
    return entry->value;
}

void MemoTable::clear() {
    util::LockGuard lk{mu_};
    entries_.clear();
    fifo_.clear();
}

MemoStats MemoTable::stats() const {
    util::LockGuard lk{mu_};
    return stats_;
}

std::size_t MemoTable::size() const {
    util::LockGuard lk{mu_};
    return entries_.size();
}

MemoTable& memo() {
    static MemoTable table;
    return table;
}

namespace {

/// Copy a memoized value out as an independent handle bound to \p ctx's
/// default semantics. Copies share the cached content version, so chained
/// memo lookups keep hitting.
Matrix unwrap(const std::shared_ptr<const Matrix>& value) { return *value; }

}  // namespace

Matrix memo_multiply(backend::Context& ctx, const Matrix& a, const Matrix& b,
                     const ops::SpGemmOptions& opts) {
    return unwrap(memo().get_or_compute(
        {OpKind::Multiply, a.version(), b.version(), 0},
        [&] { return storage::multiply(ctx, a, b, opts); }));
}

Matrix memo_kronecker(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    return unwrap(memo().get_or_compute(
        {OpKind::Kronecker, a.version(), b.version(), 0},
        [&] { return storage::kronecker(ctx, a, b); }));
}

Matrix memo_ewise_add(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    return unwrap(memo().get_or_compute(
        {OpKind::EwiseAdd, a.version(), b.version(), 0},
        [&] { return storage::ewise_add(ctx, a, b); }));
}

Matrix memo_ewise_diff(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    return unwrap(memo().get_or_compute(
        {OpKind::EwiseDiff, a.version(), b.version(), 0},
        [&] { return storage::ewise_diff(ctx, a, b); }));
}

}  // namespace spbla::incr
