/// \file incremental.hpp
/// \brief Semi-naive incremental fixpoint drivers: TC, RPQ, CFPQ.
///
/// Every driver in src/algorithms, src/rpq and src/cfpq recomputes its
/// fixpoint from scratch; these classes maintain the same results under an
/// edge stream, paying per batch work proportional to the *change*:
///
///  - transitive closure: inserts extend the existing closure with the
///    one-new-edge seed X = (I∪C)·Δ⁺·(I∪C) and then iterate frontier·S with
///    the delta-sized step matrix S = Δ⁺·(I∪C) — every k-new-edge path is
///    X·S^(k-1), so rounds scale with new edges per path, not graph
///    diameter. Deletes run a DRed-style over-delete: suspect =
///    (I∪C)·Δ⁻·(I∪C) is removed and the survivors re-derived semi-naively
///    from keep ∪ A'.
///  - RPQ: the Kronecker product matrix is maintained cell-exactly under
///    per-label deltas (a product cell dies only when its last label
///    support dies), then the closure update above runs on the product.
///  - CFPQ (Azimov): per-nonterminal frontiers D_A propagate through the
///    CNF rules as D_B·T_C ∪ T_B·D_C until drained; deletions fall back to
///    a counted full rebuild (non-monotone CFPQ deletion is out of scope).
///
/// Sub-expressions that repeat across batches (closure × delta, automaton ⊗
/// delta) go through the epoch-keyed memo (incr/memo.hpp); all results are
/// guarded by the differential stream-oracle net in tests/test_incremental
/// .cpp, which checks every batch against full recompute.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cfpq/cnf.hpp"
#include "data/labeled_graph.hpp"
#include "incr/delta_matrix.hpp"
#include "ops/spgemm.hpp"
#include "rpq/dfa.hpp"
#include "storage/matrix.hpp"

namespace spbla::incr {

/// Cumulative per-driver statistics.
struct IncrStats {
    std::uint64_t batches{0};           ///< apply() calls (including no-ops)
    std::uint64_t rounds{0};            ///< incremental fixpoint rounds run
    std::uint64_t baseline_rounds{0};   ///< rounds of the last scratch build
    std::uint64_t iterations_saved{0};  ///< cumulative rounds avoided vs scratch
    std::uint64_t rebuilds{0};          ///< batches answered by full recompute
};

/// Result of one closure update.
struct ClosureUpdate {
    std::size_t rounds{0};
};

/// Update \p closure from C(A) to C(A') in place, where A' = \p adj_after
/// and the effective deltas are normalized: add_eff ∩ A = ∅, del_eff ⊆ A,
/// add_eff ∩ del_eff = ∅, A = (A' ⊖ add_eff) ⊕ del_eff. Deletions are
/// processed first (DRed-style over-delete + re-derive), then insertions
/// (one-new-edge seed + delta-sized step loop).
[[nodiscard]] ClosureUpdate update_closure(backend::Context& ctx, Matrix& closure,
                                           const Matrix& adj_after,
                                           const Matrix& add_eff,
                                           const Matrix& del_eff,
                                           const ops::SpGemmOptions& opts = {});

/// Transitive-closure maintenance over an edge stream.
class IncrementalClosure {
public:
    /// Builds the initial closure from scratch (the baseline the saved-
    /// iterations accounting is measured against).
    explicit IncrementalClosure(backend::Context& ctx, Matrix adjacency,
                                const ops::SpGemmOptions& opts = {});

    /// Fold one insert/delete batch (shape-matched cell matrices; cells
    /// named by both end up present) into the adjacency and its closure.
    void apply(const Matrix& adds, const Matrix& removes);

    [[nodiscard]] const Matrix& closure() const noexcept { return closure_; }
    /// Current adjacency snapshot (epoch-stamped; see DeltaMatrix).
    [[nodiscard]] const Matrix& adjacency() { return adj_.snapshot(*ctx_); }
    [[nodiscard]] const IncrStats& stats() const noexcept { return stats_; }

private:
    backend::Context* ctx_;
    ops::SpGemmOptions opts_;
    DeltaMatrix adj_;
    Matrix closure_;
    IncrStats stats_;
};

/// RPQ (regular-path query) maintenance: keeps the Kronecker product, its
/// closure and the answer matrix of rpq::build_index current under labeled
/// edge streams.
class IncrementalRpq {
public:
    IncrementalRpq(backend::Context& ctx, const data::LabeledGraph& graph,
                   rpq::Dfa query, const ops::SpGemmOptions& opts = {});

    void apply(const std::vector<data::LabeledEdge>& adds,
               const std::vector<data::LabeledEdge>& removes);

    /// Same cells as rpq::build_index(...).reachable on the current graph.
    [[nodiscard]] const Matrix& reachable() const noexcept { return reachable_; }
    [[nodiscard]] const Matrix& product() const noexcept { return product_; }
    [[nodiscard]] const IncrStats& stats() const noexcept { return stats_; }

    /// Rebuild a LabeledGraph equal to the maintained state (oracle hook).
    [[nodiscard]] data::LabeledGraph current_graph() const;

private:
    void refresh_reachable();

    backend::Context* ctx_;
    rpq::Dfa query_;
    ops::SpGemmOptions opts_;
    Index n_{0};
    std::map<std::string, Matrix> qmats_;   ///< cached automaton matrices
    std::map<std::string, Matrix> labels_;  ///< maintained graph matrices
    Matrix product_;
    Matrix closure_;
    Matrix reachable_;
    IncrStats stats_;
};

/// CFPQ (Azimov) maintenance: insert batches propagate per-nonterminal
/// frontiers through the CNF rules; delete batches trigger a counted full
/// rebuild.
class IncrementalCfpq {
public:
    IncrementalCfpq(backend::Context& ctx, const data::LabeledGraph& graph,
                    const cfpq::Grammar& grammar,
                    const ops::SpGemmOptions& opts = {});

    void apply(const std::vector<data::LabeledEdge>& adds,
               const std::vector<data::LabeledEdge>& removes);

    /// Same cells as azimov_cfpq(...).reachable() on the current graph.
    [[nodiscard]] const Matrix& reachable() const noexcept {
        return nt_[static_cast<std::size_t>(cnf_.start)];
    }
    [[nodiscard]] const IncrStats& stats() const noexcept { return stats_; }

    /// Rebuild a LabeledGraph equal to the maintained state (oracle hook).
    [[nodiscard]] data::LabeledGraph current_graph() const;

private:
    void rebuild();  ///< scratch fixpoint over labels_ (mirrors azimov_cfpq)

    backend::Context* ctx_;
    cfpq::CnfGrammar cnf_;
    ops::SpGemmOptions opts_;
    Index n_{0};
    std::map<std::string, Matrix> labels_;
    std::vector<Matrix> nt_;  ///< indexed by CNF nonterminal id
    IncrStats stats_;
};

}  // namespace spbla::incr
