/// \file memo.hpp
/// \brief Op-level memoization keyed by content-version epochs.
///
/// The incremental drivers replay the same sub-expressions across batches:
/// the base closure times a frontier, a query automaton Kronecker the same
/// unchanged label matrix, the keep-set re-joined against the adjacency. The
/// storage engine already stamps every Matrix with a process-unique content
/// version (PR 5's MVCC hook — see Matrix::version()), so an operation's
/// result is fully determined by (op kind, operand versions): that tuple is
/// the memo key, and staleness is structurally impossible — mutating a
/// handle installs a fresh stamp, so a stale entry can never be *found*,
/// only aged out of the FIFO.
///
/// Exactly-once: concurrent callers that miss on the same key rendezvous on
/// a per-entry mutex — the first computes, the rest block and reuse, so the
/// kernel (and its device-memory charge) runs once per (epoch, op) no matter
/// how many threads race it. This is the property IncrFuzzSweep pins by
/// racing lookups against format conversions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ops/spgemm.hpp"
#include "storage/matrix.hpp"
#include "util/thread_annotations.hpp"

namespace spbla::incr {

/// Operation discriminator of a memo key. Values are part of the key hash
/// only — never serialized.
enum class OpKind : std::uint8_t {
    Multiply = 0,
    MultiplyAdd = 1,
    EwiseAdd = 2,
    EwiseDiff = 3,
    Kronecker = 4,
};

/// (op, operand content versions). Unused operand slots stay 0, which never
/// collides with a live handle (version 0 marks moved-from handles only).
struct MemoKey {
    OpKind op{OpKind::Multiply};
    std::uint64_t a{0};
    std::uint64_t b{0};
    std::uint64_t c{0};

    friend bool operator==(const MemoKey& x, const MemoKey& y) noexcept {
        return x.op == y.op && x.a == y.a && x.b == y.b && x.c == y.c;
    }
};

struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const noexcept {
        // splitmix64-style mixing of the three version words plus the op tag.
        std::uint64_t h = static_cast<std::uint64_t>(k.op) + 0x9e3779b97f4a7c15ull;
        for (const std::uint64_t v : {k.a, k.b, k.c}) {
            std::uint64_t x = v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            h ^= x ^ (x >> 31);
        }
        return static_cast<std::size_t>(h);
    }
};

/// Point-in-time memo statistics (mirrors the spbla.incr.memo_* counters).
struct MemoStats {
    std::uint64_t lookups{0};
    std::uint64_t hits{0};
    std::uint64_t stores{0};
    std::uint64_t evictions{0};
};

/// Bounded epoch-keyed result cache with exactly-once computation.
class MemoTable {
public:
    /// \p capacity bounds retained entries; insertion order evicts (FIFO —
    /// fixpoint reuse is dominated by the immediately preceding rounds, so
    /// recency tracking buys little over arrival order here).
    explicit MemoTable(std::size_t capacity = 96) : capacity_{capacity} {}

    /// Return the memoized result for \p key, running \p compute at most
    /// once per cached lifetime of the key. The returned pointer shares
    /// ownership with the table (and stays valid after eviction).
    [[nodiscard]] std::shared_ptr<const Matrix> get_or_compute(
        const MemoKey& key, const std::function<Matrix()>& compute)
        SPBLA_EXCLUDES(mu_);

    /// Drop every entry (and its device-memory charge). Call before tearing
    /// down the contexts whose matrices the table retains.
    void clear() SPBLA_EXCLUDES(mu_);

    [[nodiscard]] MemoStats stats() const SPBLA_EXCLUDES(mu_);
    [[nodiscard]] std::size_t size() const SPBLA_EXCLUDES(mu_);
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    struct Entry {
        /// Rendezvous lock for the exactly-once computation; acquired only
        /// after mu_ has been released (leaf with respect to the table).
        util::Mutex compute_mu;
        std::shared_ptr<const Matrix> value SPBLA_GUARDED_BY(compute_mu);
    };

    std::size_t capacity_;
    mutable util::Mutex mu_;
    std::unordered_map<MemoKey, std::shared_ptr<Entry>, MemoKeyHash> entries_
        SPBLA_GUARDED_BY(mu_);
    std::vector<MemoKey> fifo_ SPBLA_GUARDED_BY(mu_);  // arrival order
    MemoStats stats_ SPBLA_GUARDED_BY(mu_);
};

/// The process-wide memo the incremental drivers share. Cleared by
/// spbla_Finalize and by the incremental test fixtures before their
/// leak-balance checks.
[[nodiscard]] MemoTable& memo();

// ---- memoized dispatch wrappers -------------------------------------------
// Same contracts as the storage::* ops they wrap; results come back as
// fresh value-semantic copies (sharing the cached content version).

[[nodiscard]] Matrix memo_multiply(backend::Context& ctx, const Matrix& a,
                                   const Matrix& b,
                                   const ops::SpGemmOptions& opts = {});
[[nodiscard]] Matrix memo_kronecker(backend::Context& ctx, const Matrix& a,
                                    const Matrix& b);
[[nodiscard]] Matrix memo_ewise_add(backend::Context& ctx, const Matrix& a,
                                    const Matrix& b);
[[nodiscard]] Matrix memo_ewise_diff(backend::Context& ctx, const Matrix& a,
                                     const Matrix& b);

}  // namespace spbla::incr
