#include "incr/incremental.hpp"

#include <cstddef>
#include <utility>

#include "algorithms/closure.hpp"
#include "incr/memo.hpp"
#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "telemetry/metrics.hpp"
#include "util/contracts.hpp"

namespace spbla::incr {

namespace {

/// Effective insert set of a batch against \p before: cells genuinely new.
Matrix effective_adds(backend::Context& ctx, const Matrix& adds,
                      const Matrix& before) {
    return storage::ewise_diff(ctx, adds, before);
}

/// Effective delete set: cells actually present and not re-inserted by the
/// same batch (delete-then-insert — the insert wins).
Matrix effective_dels(backend::Context& ctx, const Matrix& removes,
                      const Matrix& adds, const Matrix& before) {
    return storage::ewise_diff(ctx, storage::ewise_mult(ctx, removes, before),
                               adds);
}

/// Semi-naive saturation: m := m ∪ frontier·step ∪ frontier·step² ∪ …,
/// extending only cells first discovered in the previous round.
std::size_t saturate(backend::Context& ctx, Matrix& m, Matrix frontier,
                     const Matrix& step, const ops::SpGemmOptions& opts) {
    std::size_t rounds = 0;
    while (!frontier.empty()) {
        ++rounds;
        SPBLA_PROF_SPAN_ITER("incr.closure.round", rounds);
        SPBLA_PROF_COUNT(incr_frontier_nnz, frontier.nnz());
        const Matrix ext = storage::multiply(ctx, frontier, step, opts);
        frontier = storage::ewise_diff(ctx, ext, m);
        m = storage::ewise_add(ctx, m, frontier);
    }
    return rounds;
}

/// Per-batch saved-iterations accounting shared by the three drivers.
void account_batch(IncrStats& stats, std::size_t rounds_used) {
    stats.rounds += rounds_used;
    const std::uint64_t saved = stats.baseline_rounds > rounds_used
                                    ? stats.baseline_rounds - rounds_used
                                    : 0;
    stats.iterations_saved += saved;
    telemetry::count(telemetry::Counter::IncrIterationsSaved, saved);
    SPBLA_PROF_COUNT(incr_batches, 1);
    SPBLA_PROF_COUNT(incr_baseline_rounds, stats.baseline_rounds);
    SPBLA_PROF_COUNT(incr_iterations_saved, saved);
}

}  // namespace

ClosureUpdate update_closure(backend::Context& ctx, Matrix& closure,
                             const Matrix& adj_after, const Matrix& add_eff,
                             const Matrix& del_eff,
                             const ops::SpGemmOptions& opts) {
    ClosureUpdate out;
    if (add_eff.empty() && del_eff.empty()) return out;
    Matrix c = std::move(closure);

    if (!del_eff.empty()) {
        // DRed-style over-delete: every closure pair with an old derivation
        // through a deleted edge is suspect; survivors (whose every path
        // avoids Δ⁻) are provably still valid and seed the re-derivation.
        const Matrix a_mid = storage::ewise_diff(ctx, adj_after, add_eff);
        const Matrix left =
            storage::ewise_add(ctx, del_eff, memo_multiply(ctx, c, del_eff, opts));
        const Matrix suspect =
            storage::ewise_add(ctx, left, storage::multiply(ctx, left, c, opts));
        const Matrix keep = storage::ewise_diff(ctx, c, suspect);
        Matrix m = storage::ewise_add(ctx, keep, a_mid);
        out.rounds += saturate(ctx, m, m, a_mid, opts);
        c = std::move(m);
    }

    if (!add_eff.empty()) {
        // One-new-edge seed X = (I∪C)·Δ⁺·(I∪C); every path with k new edges
        // factors as X·S^(k-1) with the delta-sized step S = Δ⁺·(I∪C), so
        // rounds scale with new edges per path, not graph diameter.
        const Matrix t =
            storage::ewise_add(ctx, add_eff, memo_multiply(ctx, c, add_eff, opts));
        const Matrix x =
            storage::ewise_add(ctx, t, storage::multiply(ctx, t, c, opts));
        const Matrix step =
            storage::ewise_add(ctx, add_eff, memo_multiply(ctx, add_eff, c, opts));
        Matrix frontier = storage::ewise_diff(ctx, x, c);
        Matrix m = storage::ewise_add(ctx, c, frontier);
        out.rounds += saturate(ctx, m, std::move(frontier), step, opts);
        c = std::move(m);
    }

    closure = std::move(c);
    return out;
}

// ---------------------------------------------------------------------------
// IncrementalClosure
// ---------------------------------------------------------------------------

IncrementalClosure::IncrementalClosure(backend::Context& ctx, Matrix adjacency,
                                       const ops::SpGemmOptions& opts)
    : ctx_{&ctx}, opts_{opts}, adj_{std::move(adjacency)} {
    SPBLA_PROF_SPAN("incr.closure");
    algorithms::ClosureStats cs;
    closure_ = algorithms::transitive_closure(
        ctx, adj_.base(), algorithms::ClosureStrategy::Delta, &cs, opts_);
    stats_.baseline_rounds = cs.rounds;
}

void IncrementalClosure::apply(const Matrix& adds, const Matrix& removes) {
    SPBLA_PROF_SPAN("incr.closure");
    ++stats_.batches;
    const Matrix& before = adj_.snapshot(*ctx_);
    const Matrix add_eff = effective_adds(*ctx_, adds, before);
    const Matrix del_eff = effective_dels(*ctx_, removes, adds, before);
    adj_.apply(adds, removes, *ctx_);
    if (add_eff.empty() && del_eff.empty()) return;  // closure unchanged
    const Matrix& after = adj_.snapshot(*ctx_);
    const ClosureUpdate upd =
        update_closure(*ctx_, closure_, after, add_eff, del_eff, opts_);
    account_batch(stats_, upd.rounds);
}

// ---------------------------------------------------------------------------
// IncrementalRpq
// ---------------------------------------------------------------------------

IncrementalRpq::IncrementalRpq(backend::Context& ctx,
                               const data::LabeledGraph& graph, rpq::Dfa query,
                               const ops::SpGemmOptions& opts)
    : ctx_{&ctx},
      query_{std::move(query)},
      opts_{opts},
      n_{graph.num_vertices()},
      product_{query_.num_states * n_, query_.num_states * n_, ctx},
      closure_{query_.num_states * n_, query_.num_states * n_, ctx},
      reachable_{n_, n_, ctx} {
    SPBLA_PROF_SPAN("incr.rpq");
    // Cache the automaton matrices once: Dfa::matrix materialises a fresh
    // handle (fresh epoch) per call, which would defeat the version-keyed
    // memo across batches.
    for (const auto& symbol : query_.symbols()) {
        qmats_.emplace(symbol, query_.matrix(symbol));
    }
    for (const auto& label : graph.labels()) {
        labels_.emplace(label, graph.matrix(label));
    }
    for (const auto& [symbol, q] : qmats_) {
        auto it = labels_.find(symbol);
        if (it == labels_.end()) continue;
        product_ = storage::ewise_add(*ctx_, product_,
                                      memo_kronecker(*ctx_, q, it->second));
    }
    algorithms::ClosureStats cs;
    closure_ = algorithms::transitive_closure(
        ctx, product_, algorithms::ClosureStrategy::Delta, &cs, opts_);
    stats_.baseline_rounds = cs.rounds;
    refresh_reachable();
}

void IncrementalRpq::apply(const std::vector<data::LabeledEdge>& adds,
                           const std::vector<data::LabeledEdge>& removes) {
    SPBLA_PROF_SPAN("incr.rpq");
    ++stats_.batches;

    // Group the batch into per-label cell matrices.
    std::map<std::string, std::vector<Coord>> add_coords;
    std::map<std::string, std::vector<Coord>> del_coords;
    for (const auto& e : adds) add_coords[e.label].push_back({e.src, e.dst});
    for (const auto& e : removes) del_coords[e.label].push_back({e.src, e.dst});
    std::map<std::string, Matrix> add_eff;
    std::map<std::string, Matrix> del_eff;
    Matrix del_union{n_, n_, *ctx_};  // graph-space cells any label deletes
    for (const auto& label : [&] {
             std::vector<std::string> ls;
             for (const auto& [l, _] : add_coords) ls.push_back(l);
             for (const auto& [l, _] : del_coords)
                 if (!add_coords.contains(l)) ls.push_back(l);
             return ls;
         }()) {
        auto ac = add_coords.find(label);
        auto dc = del_coords.find(label);
        const Matrix batch_add = Matrix::from_coords(
            n_, n_, ac != add_coords.end() ? ac->second : std::vector<Coord>{},
            *ctx_);
        const Matrix batch_del = Matrix::from_coords(
            n_, n_, dc != del_coords.end() ? dc->second : std::vector<Coord>{},
            *ctx_);
        auto [it, inserted] = labels_.try_emplace(label, n_, n_, *ctx_);
        Matrix& g = it->second;
        Matrix a = effective_adds(*ctx_, batch_add, g);
        Matrix d = effective_dels(*ctx_, batch_del, batch_add, g);
        g.apply_delta(batch_add, batch_del, *ctx_);
        if (!d.empty()) del_union = storage::ewise_add(*ctx_, del_union, d);
        if (!a.empty()) add_eff.emplace(label, std::move(a));
        if (!d.empty()) del_eff.emplace(label, std::move(d));
    }
    if (add_eff.empty() && del_eff.empty()) return;  // no effective change

    // Product deltas. A raw deleted cell survives when another label still
    // supports it, so the delete set is corrected against the patch
    // P = Σ_s Q_s ⊗ (G'_s ∩ U) over the touched graph cells U.
    Matrix raw_add{product_.nrows(), product_.ncols(), *ctx_};
    Matrix raw_del{product_.nrows(), product_.ncols(), *ctx_};
    Matrix patch{product_.nrows(), product_.ncols(), *ctx_};
    for (const auto& [symbol, q] : qmats_) {
        if (auto it = add_eff.find(symbol); it != add_eff.end()) {
            raw_add = storage::ewise_add(*ctx_, raw_add,
                                         memo_kronecker(*ctx_, q, it->second));
        }
        if (auto it = del_eff.find(symbol); it != del_eff.end()) {
            raw_del = storage::ewise_add(*ctx_, raw_del,
                                         memo_kronecker(*ctx_, q, it->second));
        }
        if (!del_union.empty()) {
            if (auto it = labels_.find(symbol); it != labels_.end()) {
                const Matrix touched =
                    storage::ewise_mult(*ctx_, it->second, del_union);
                if (!touched.empty()) {
                    patch = storage::ewise_add(
                        *ctx_, patch, storage::kronecker(*ctx_, q, touched));
                }
            }
        }
    }
    const Matrix prod_del = storage::ewise_diff(*ctx_, raw_del, patch);
    const Matrix prod_add = storage::ewise_diff(*ctx_, raw_add, product_);
    if (prod_add.empty() && prod_del.empty()) return;  // answers unchanged

    product_.apply_delta(prod_add, prod_del, *ctx_);
    const ClosureUpdate upd =
        update_closure(*ctx_, closure_, product_, prod_add, prod_del, opts_);
    account_batch(stats_, upd.rounds);
    refresh_reachable();
}

void IncrementalRpq::refresh_reachable() {
    // Mirrors rpq::build_index's answer extraction cell-for-cell.
    Matrix reachable{n_, n_, *ctx_};
    for (const auto f : query_.accepting_states()) {
        const Matrix block =
            storage::submatrix(*ctx_, closure_, query_.start * n_, f * n_, n_, n_);
        reachable = storage::ewise_add(*ctx_, reachable, block);
    }
    if (query_.accepting[static_cast<std::size_t>(query_.start)]) {
        reachable =
            storage::ewise_add(*ctx_, reachable, Matrix::identity(n_, *ctx_));
    }
    reachable_ = std::move(reachable);
}

data::LabeledGraph IncrementalRpq::current_graph() const {
    std::vector<data::LabeledEdge> edges;
    for (const auto& [label, m] : labels_) {
        for (const auto& [r, c] : m.to_coords()) edges.push_back({r, label, c});
    }
    return data::LabeledGraph::from_edges(n_, edges);
}

// ---------------------------------------------------------------------------
// IncrementalCfpq
// ---------------------------------------------------------------------------

IncrementalCfpq::IncrementalCfpq(backend::Context& ctx,
                                 const data::LabeledGraph& graph,
                                 const cfpq::Grammar& grammar,
                                 const ops::SpGemmOptions& opts)
    : ctx_{&ctx},
      cnf_{cfpq::to_cnf(grammar)},
      opts_{opts},
      n_{graph.num_vertices()} {
    for (const auto& label : graph.labels()) {
        labels_.emplace(label, graph.matrix(label));
    }
    rebuild();
    stats_.rebuilds = 0;  // the initial build is the baseline, not a fallback
}

void IncrementalCfpq::rebuild() {
    SPBLA_PROF_SPAN("incr.cfpq");
    const Index k = cnf_.num_nonterminals();
    nt_.assign(static_cast<std::size_t>(k), Matrix{n_, n_, *ctx_});
    for (const auto& [a, label] : cnf_.terminal_rules) {
        auto it = labels_.find(label);
        if (it == labels_.end()) continue;
        auto& t = nt_[static_cast<std::size_t>(a)];
        t = storage::ewise_add(*ctx_, t, it->second);
    }
    if (cnf_.start_nullable) {
        auto& s = nt_[static_cast<std::size_t>(cnf_.start)];
        s = storage::ewise_add(*ctx_, s, Matrix::identity(n_, *ctx_));
    }
    std::uint64_t rounds = 0;
    for (bool changed = true; changed;) {
        changed = false;
        ++rounds;
        SPBLA_PROF_SPAN_ITER("incr.cfpq.round", rounds);
        for (const auto& [a, b, c] : cnf_.binary_rules) {
            auto& t = nt_[static_cast<std::size_t>(a)];
            const std::size_t before = t.nnz();
            t = storage::multiply_add(*ctx_, t, nt_[static_cast<std::size_t>(b)],
                                      nt_[static_cast<std::size_t>(c)], opts_);
            if (t.nnz() != before) changed = true;
        }
    }
    stats_.baseline_rounds = rounds;
    ++stats_.rebuilds;
}

void IncrementalCfpq::apply(const std::vector<data::LabeledEdge>& adds,
                            const std::vector<data::LabeledEdge>& removes) {
    SPBLA_PROF_SPAN("incr.cfpq");
    ++stats_.batches;

    std::map<std::string, std::vector<Coord>> add_coords;
    std::map<std::string, std::vector<Coord>> del_coords;
    for (const auto& e : adds) add_coords[e.label].push_back({e.src, e.dst});
    for (const auto& e : removes) del_coords[e.label].push_back({e.src, e.dst});
    std::map<std::string, Matrix> add_eff;
    bool any_delete = false;
    for (const auto& [label, coords] : del_coords) {
        auto it = labels_.find(label);
        if (it == labels_.end()) continue;
        const Matrix batch_del = Matrix::from_coords(n_, n_, coords, *ctx_);
        auto ac = add_coords.find(label);
        const Matrix batch_add = Matrix::from_coords(
            n_, n_, ac != add_coords.end() ? ac->second : std::vector<Coord>{},
            *ctx_);
        if (!effective_dels(*ctx_, batch_del, batch_add, it->second).empty()) {
            any_delete = true;
        }
    }
    for (const auto& [label, coords] : add_coords) {
        auto [it, inserted] = labels_.try_emplace(label, n_, n_, *ctx_);
        const Matrix batch_add = Matrix::from_coords(n_, n_, coords, *ctx_);
        Matrix a = effective_adds(*ctx_, batch_add, it->second);
        if (!a.empty()) add_eff.emplace(label, std::move(a));
    }
    // Fold the whole batch into the label matrices (delete-then-insert).
    for (const auto& [label, coords] : del_coords) {
        auto it = labels_.find(label);
        if (it == labels_.end()) continue;
        auto ac = add_coords.find(label);
        it->second.apply_delta(
            Matrix::from_coords(
                n_, n_, ac != add_coords.end() ? ac->second : std::vector<Coord>{},
                *ctx_),
            Matrix::from_coords(n_, n_, coords, *ctx_), *ctx_);
    }
    for (const auto& [label, coords] : add_coords) {
        if (del_coords.contains(label)) continue;  // folded above
        labels_.at(label).apply_delta(Matrix::from_coords(n_, n_, coords, *ctx_),
                                      Matrix{n_, n_, *ctx_}, *ctx_);
    }

    if (any_delete) {
        // Non-monotone: derivations may die. Rebuild from the updated labels
        // (counted — the bench ladder shows what deletes cost vs inserts).
        rebuild();
        account_batch(stats_, stats_.baseline_rounds);
        return;
    }
    if (add_eff.empty()) return;  // no effective change

    // Semi-naive insert propagation: seed per-nonterminal frontiers from the
    // terminal rules, then push D_B·T_C ∪ T_B·D_C through every binary rule
    // until no frontier survives. T already includes the applied frontiers,
    // so D_B·D_C pairs are covered.
    const auto k = static_cast<std::size_t>(cnf_.num_nonterminals());
    std::vector<Matrix> d(k, Matrix{n_, n_, *ctx_});
    for (const auto& [a, label] : cnf_.terminal_rules) {
        auto it = add_eff.find(label);
        if (it == add_eff.end()) continue;
        auto& da = d[static_cast<std::size_t>(a)];
        da = storage::ewise_add(*ctx_, da, it->second);
    }
    for (std::size_t a = 0; a < k; ++a) {
        d[a] = storage::ewise_diff(*ctx_, d[a], nt_[a]);
        if (!d[a].empty()) nt_[a] = storage::ewise_add(*ctx_, nt_[a], d[a]);
    }
    std::size_t rounds = 0;
    for (bool live = true; live;) {
        live = false;
        for (const auto& m : d) {
            if (!m.empty()) {
                live = true;
                break;
            }
        }
        if (!live) break;
        ++rounds;
        SPBLA_PROF_SPAN_ITER("incr.cfpq.round", rounds);
        std::vector<Matrix> nd(k, Matrix{n_, n_, *ctx_});
        for (const auto& [a, b, c] : cnf_.binary_rules) {
            const auto ai = static_cast<std::size_t>(a);
            const auto bi = static_cast<std::size_t>(b);
            const auto ci = static_cast<std::size_t>(c);
            Matrix contrib = storage::ewise_add(
                *ctx_, storage::multiply(*ctx_, d[bi], nt_[ci], opts_),
                storage::multiply(*ctx_, nt_[bi], d[ci], opts_));
            nd[ai] = storage::ewise_add(*ctx_, nd[ai], contrib);
        }
        for (std::size_t a = 0; a < k; ++a) {
            nd[a] = storage::ewise_diff(*ctx_, nd[a], nt_[a]);
            if (!nd[a].empty()) nt_[a] = storage::ewise_add(*ctx_, nt_[a], nd[a]);
        }
        d = std::move(nd);
    }
    account_batch(stats_, rounds);
}

data::LabeledGraph IncrementalCfpq::current_graph() const {
    std::vector<data::LabeledEdge> edges;
    for (const auto& [label, m] : labels_) {
        for (const auto& [r, c] : m.to_coords()) edges.push_back({r, label, c});
    }
    return data::LabeledGraph::from_edges(n_, edges);
}

}  // namespace spbla::incr
