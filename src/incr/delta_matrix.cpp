#include "incr/delta_matrix.hpp"

#include <algorithm>
#include <utility>

#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "telemetry/metrics.hpp"
#include "util/contracts.hpp"

namespace spbla::incr {

DeltaMatrix::DeltaMatrix(Matrix base, double consolidate_fraction)
    : base_{std::move(base)},
      add_{base_.nrows(), base_.ncols(), base_.context()},
      del_{base_.nrows(), base_.ncols(), base_.context()},
      consolidate_fraction_{consolidate_fraction} {}

void DeltaMatrix::apply(const Matrix& adds, const Matrix& removes,
                        backend::Context& ctx) {
    SPBLA_REQUIRE(adds.nrows() == nrows() && adds.ncols() == ncols(),
                  Status::DimensionMismatch, "DeltaMatrix::apply: insert shape");
    SPBLA_REQUIRE(removes.nrows() == nrows() && removes.ncols() == ncols(),
                  Status::DimensionMismatch, "DeltaMatrix::apply: delete shape");
    snapshot_.reset();
    if (!(adds.empty() && removes.empty())) {
        telemetry::count(telemetry::Counter::IncrBatches);
        telemetry::count(telemetry::Counter::IncrDeltaNnz,
                         adds.nnz() + removes.nnz());
        SPBLA_PROF_COUNT(incr_delta_nnz, adds.nnz() + removes.nnz());
        // Renormalize the overlay for effective' = (effective ⊖ R) ⊕ A:
        //   del' = (del ⊕ (R ∩ base)) ⊖ A   — still ⊆ base, insert wins
        //   add' = ((add ⊖ R) ⊕ A) ⊖ (base ⊖ del')
        // The final subtraction keeps add' disjoint from the effective base
        // cells, and A-cells never land in del', so add' ∩ del' = ∅.
        Matrix del_new = storage::ewise_diff(
            ctx,
            storage::ewise_add(ctx, del_, storage::ewise_mult(ctx, removes, base_)),
            adds);
        Matrix add_new = storage::ewise_diff(
            ctx,
            storage::ewise_add(ctx, storage::ewise_diff(ctx, add_, removes), adds),
            storage::ewise_diff(ctx, base_, del_new));
        del_ = std::move(del_new);
        add_ = std::move(add_new);
    }
    if (over_threshold()) consolidate(ctx);
}

void DeltaMatrix::consolidate(backend::Context& ctx) {
    if (overlay_empty()) return;
    telemetry::count(telemetry::Counter::IncrConsolidations);
    SPBLA_PROF_COUNT(incr_consolidations, 1);
    base_.apply_delta(add_, del_, ctx);
    add_ = Matrix{base_.nrows(), base_.ncols(), ctx};
    del_ = Matrix{base_.nrows(), base_.ncols(), ctx};
    snapshot_.reset();
}

const Matrix& DeltaMatrix::snapshot(backend::Context& ctx) {
    if (!snapshot_.has_value()) {
        if (overlay_empty()) {
            snapshot_ = base_;  // copy shares the base's content version
        } else {
            snapshot_ = storage::ewise_add(
                ctx, storage::ewise_diff(ctx, base_, del_), add_);
        }
    }
    return *snapshot_;
}

bool DeltaMatrix::over_threshold() const noexcept {
    const double overlay = static_cast<double>(add_.nnz() + del_.nnz());
    const double base = static_cast<double>(std::max<std::size_t>(base_.nnz(), 1));
    return overlay > consolidate_fraction_ * base;
}

}  // namespace spbla::incr
