/// \file metrics.hpp
/// \brief Always-on, lock-free process metrics: counters, gauges, histograms.
///
/// PR 3's spbla::prof is a compile-time-gated dev profiler — a release build
/// exposes nothing. This layer is the production counterpart the serve
/// front-end will scrape: always compiled, always on, built from relaxed
/// atomics sharded per thread so the hot path is one thread-local pointer
/// load plus one uncontended fetch_add (measured <2% on the SpGEMM ladder;
/// see EXPERIMENTS.md).
///
/// Division of labour with spbla::prof: prof answers "where did this run
/// spend its time" (span trees, Chrome traces, dev builds only); telemetry
/// answers "what is this process doing right now" (op rates, latency
/// quantiles, memory/cache/pool pressure, always). When profiling is
/// compiled in and enabled, closed spans additionally feed the ProfSpans /
/// ProfSpanNs instruments here, so one scrape shows both worlds.
///
/// Instruments are fixed at compile time — the enums in metric_names.hpp are
/// the registry's schema, and that header is the only sanctioned home of
/// metric-name literals (lint rule `metric-name-literal`).
///
/// Exporters: to_json() / to_prometheus() render a Snapshot; write_file()
/// dumps either to disk; the SPBLA_METRICS=<path> environment hook mirrors
/// SPBLA_TRACE and dumps JSON to <path> plus Prometheus text to <path>.prom
/// at process exit (and arms the crash flight recorder's file dump — see
/// telemetry/flight_recorder.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "telemetry/metric_names.hpp"

namespace spbla::telemetry {

/// Number of log2 buckets per histogram: bucket 0 counts zeros, bucket
/// i >= 1 counts values in [2^(i-1), 2^i - 1], and the top bucket absorbs
/// everything with 64-bit bit-width >= kHistogramBuckets - 1.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index of \p value (64-bit bit-width, clamped).
[[nodiscard]] constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    std::size_t width = 0;
    while (value != 0) {
        ++width;
        value >>= 1;
    }
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/// Inclusive upper bound of bucket \p i (0 for the zero bucket).
[[nodiscard]] constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

// ---- recording (the hot path) ---------------------------------------------

/// Add \p delta to counter \p c.
void count(Counter c, std::uint64_t delta = 1) noexcept;

/// Record \p value into histogram \p h.
void observe(Histogram h, std::uint64_t value) noexcept;

/// Set gauge \p g to \p value.
void gauge_set(Gauge g, std::int64_t value) noexcept;

/// Add \p delta (possibly negative) to gauge \p g; returns the new value.
std::int64_t gauge_add(Gauge g, std::int64_t delta) noexcept;

/// Raise gauge \p g to \p value if it is currently lower.
void gauge_max(Gauge g, std::int64_t value) noexcept;

/// Nanoseconds since the telemetry registry was initialised (the epoch every
/// flight-recorder record is stamped with).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Small dense id of the calling thread's shard (stable per thread).
[[nodiscard]] std::uint32_t thread_id() noexcept;

// ---- snapshots and export -------------------------------------------------

/// Point-in-time aggregation of one histogram across all thread shards.
struct HistogramSnapshot {
    std::uint64_t count{0};
    std::uint64_t sum{0};
    std::uint64_t max{0};
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    /// Upper bound of the bucket holding the q-quantile observation
    /// (nearest-rank over the bucket counts); 0 when empty.
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
};

/// Consistent-enough view of every instrument (relaxed reads; concurrent
/// writers may be mid-op, but each counter is exact for completed updates).
struct Snapshot {
    std::array<std::uint64_t, kNumCounters> counters{};
    std::array<std::int64_t, kNumGauges> gauges{};
    std::array<HistogramSnapshot, kNumHistograms> histograms{};

    [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
        return counters[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] std::int64_t gauge(Gauge g) const noexcept {
        return gauges[static_cast<std::size_t>(g)];
    }
    [[nodiscard]] const HistogramSnapshot& histogram(Histogram h) const noexcept {
        return histograms[static_cast<std::size_t>(h)];
    }
};

/// Aggregate every shard into a Snapshot.
[[nodiscard]] Snapshot snapshot();

/// Zero all counters and histograms. Level gauges keep their live values;
/// peak-style gauges re-baseline to their paired live gauge.
void reset() noexcept;

/// Render \p snap as a JSON document (schema "spbla.metrics.v1").
[[nodiscard]] std::string to_json(const Snapshot& snap);

/// Render \p snap in the Prometheus text exposition format (metric names
/// rewritten dotted -> underscored; histograms as cumulative _bucket/_sum/
/// _count series).
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// Serialisation format for write_file / the C API.
enum class ExportFormat : std::uint8_t { Json = 0, Prometheus = 1 };

/// Snapshot and write to \p path; false on I/O failure.
bool write_file(const std::string& path, ExportFormat format);

/// JSON string escaping per RFC 8259 (exposed for the exporter tests).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace spbla::telemetry
