#include "telemetry/flight_recorder.hpp"

#include <atomic>
#include <cstring>
#include <exception>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#define SPBLA_FLIGHT_POSIX 1
#endif

#include "telemetry/metrics.hpp"

namespace spbla::telemetry::flight {
namespace {

/// One ring slot. Every field is a relaxed atomic so concurrent recorders
/// lapping each other (two tickets kCapacity apart share a slot) and the
/// normal-context snapshot reader stay race-free under TSan; the seq field
/// is the seqlock-style publication marker (0 while a writer is mid-slot).
/// The op/format pointers must reference static-storage strings — the crash
/// dumper dereferences them from a signal handler.
struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> op{nullptr};
    std::atomic<const char*> format{nullptr};
    std::atomic<std::uint32_t> nrows{0};
    std::atomic<std::uint32_t> ncols{0};
    std::atomic<std::uint32_t> thread{0};
    std::atomic<std::uint64_t> nnz_in{0};
    std::atomic<std::uint64_t> nnz_out{0};
    std::atomic<std::uint64_t> epoch_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
};

/// The ring. Fixed global storage: the crash path touches no allocator.
Slot g_ring[kCapacity];
std::atomic<std::uint64_t> g_head{0};

/// Crash-dump file path, captured into fixed storage by set_crash_dump_path
/// so the handler can open(2) it without touching std::string.
char g_crash_path[512] = {0};
std::atomic<bool> g_path_armed{false};

std::atomic<bool> g_handlers_installed{false};
std::atomic<bool> g_crash_dumped{false};
std::terminate_handler g_prev_terminate = nullptr;

/// Read slot \p i (0-based ticket) into \p out; false if unpublished or a
/// writer raced the read (seqlock validation failed).
bool read_slot(std::uint64_t i, Record& out) noexcept {
    const Slot& slot = g_ring[i % kCapacity];
    if (slot.seq.load(std::memory_order_acquire) != i + 1) return false;
    const char* op = slot.op.load(std::memory_order_relaxed);
    const char* format = slot.format.load(std::memory_order_relaxed);
    out.nrows = slot.nrows.load(std::memory_order_relaxed);
    out.ncols = slot.ncols.load(std::memory_order_relaxed);
    out.thread = slot.thread.load(std::memory_order_relaxed);
    out.nnz_in = slot.nnz_in.load(std::memory_order_relaxed);
    out.nnz_out = slot.nnz_out.load(std::memory_order_relaxed);
    out.epoch_ns = slot.epoch_ns.load(std::memory_order_relaxed);
    out.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != i + 1) return false;
    out.seq = i + 1;
    std::size_t n = 0;
    if (op != nullptr) {
        for (; n + 1 < sizeof out.op && op[n] != '\0'; ++n) out.op[n] = op[n];
    }
    out.op[n] = '\0';
    n = 0;
    if (format != nullptr) {
        for (; n + 1 < sizeof out.format && format[n] != '\0'; ++n) {
            out.format[n] = format[n];
        }
    }
    out.format[n] = '\0';
    return true;
}

// ---- async-signal-safe formatting ----------------------------------------
// The handlers cannot use stdio or std::to_string; records are rendered into
// a stack buffer with hand-rolled decimal conversion and flushed via write(2).

struct LineBuf {
    char data[512];
    std::size_t len{0};

    void put_str(const char* s) noexcept {
        for (; *s != '\0' && len + 1 < sizeof data; ++s) data[len++] = *s;
    }
    void put_u64(std::uint64_t v) noexcept {
        char digits[20];
        std::size_t n = 0;
        do {
            digits[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n != 0 && len + 1 < sizeof data) data[len++] = digits[--n];
    }
};

void write_all(int fd, const char* buf, std::size_t n) noexcept {
#if defined(SPBLA_FLIGHT_POSIX)
    while (n > 0) {
        const auto w = ::write(fd, buf, n);
        if (w <= 0) return;
        buf += w;
        n -= static_cast<std::size_t>(w);
    }
#else
    static_cast<void>(fd);
    static_cast<void>(buf);
    static_cast<void>(n);
#endif
}

/// Render \p r as one JSON line into \p out. The op/format fields only ever
/// hold fixed identifier strings, so no escaping is needed.
void render(const Record& r, LineBuf& out) noexcept {
    out.len = 0;
    out.put_str("{\"seq\":");
    out.put_u64(r.seq);
    out.put_str(",\"op\":\"");
    out.put_str(r.op);
    out.put_str("\",\"format\":\"");
    out.put_str(r.format);
    out.put_str("\",\"rows\":");
    out.put_u64(r.nrows);
    out.put_str(",\"cols\":");
    out.put_u64(r.ncols);
    out.put_str(",\"nnz_in\":");
    out.put_u64(r.nnz_in);
    out.put_str(",\"nnz_out\":");
    out.put_u64(r.nnz_out);
    out.put_str(",\"epoch_ns\":");
    out.put_u64(r.epoch_ns);
    out.put_str(",\"thread\":");
    out.put_u64(r.thread);
    out.put_str(",\"duration_ns\":");
    out.put_u64(r.duration_ns);
    out.put_str("}\n");
}

#if defined(SPBLA_FLIGHT_POSIX)
void crash_signal_handler(int sig) {
    dump_on_crash("signal");
    // Restore the default action and re-raise so the process still dies with
    // the original signal (core dumps, wait statuses unchanged).
    std::signal(sig, SIG_DFL);
    ::raise(sig);
}
#endif

[[noreturn]] void terminate_with_dump() {
    dump_on_crash("terminate");
    if (g_prev_terminate != nullptr && g_prev_terminate != terminate_with_dump) {
        g_prev_terminate();
    }
    std::abort();
}

}  // namespace

void record(const char* op, const char* format, std::uint32_t nrows,
            std::uint32_t ncols, std::uint64_t nnz_in, std::uint64_t nnz_out,
            std::uint64_t duration_ns) noexcept {
    const std::uint64_t h = g_head.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = g_ring[h % kCapacity];
    // Invalidate, fill, publish: readers racing any phase of this see either
    // the slot's previous fully-published generation or no record at all.
    slot.seq.store(0, std::memory_order_release);
    slot.op.store(op, std::memory_order_relaxed);
    slot.format.store(format, std::memory_order_relaxed);
    slot.nrows.store(nrows, std::memory_order_relaxed);
    slot.ncols.store(ncols, std::memory_order_relaxed);
    slot.thread.store(thread_id(), std::memory_order_relaxed);
    slot.nnz_in.store(nnz_in, std::memory_order_relaxed);
    slot.nnz_out.store(nnz_out, std::memory_order_relaxed);
    slot.epoch_ns.store(now_ns(), std::memory_order_relaxed);
    slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
    slot.seq.store(h + 1, std::memory_order_release);
}

std::vector<Record> snapshot_records() {
    const std::uint64_t head = g_head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > kCapacity ? head - kCapacity : 0;
    std::vector<Record> out;
    out.reserve(static_cast<std::size_t>(head - lo));
    for (std::uint64_t i = lo; i < head; ++i) {
        Record r;
        if (read_slot(i, r)) out.push_back(r);
    }
    return out;
}

std::uint64_t total_recorded() noexcept {
    return g_head.load(std::memory_order_relaxed);
}

void dump(int fd) noexcept {
    const std::uint64_t head = g_head.load(std::memory_order_relaxed);
    const std::uint64_t lo = head > kCapacity ? head - kCapacity : 0;
    LineBuf line;
    for (std::uint64_t i = lo; i < head; ++i) {
        Record r;
        if (!read_slot(i, r)) continue;  // unpublished or torn mid-crash
        render(r, line);
        write_all(fd, line.data, line.len);
    }
}

void set_crash_dump_path(const std::string& path) {
    if (path.empty() || path.size() + 1 > sizeof g_crash_path) {
        g_path_armed.store(false, std::memory_order_release);
        return;
    }
    std::memcpy(g_crash_path, path.c_str(), path.size() + 1);
    g_path_armed.store(true, std::memory_order_release);
}

void dump_on_crash(const char* reason) noexcept {
    if (g_crash_dumped.exchange(true, std::memory_order_acq_rel)) return;
    LineBuf marker;
    marker.put_str("spbla: flight recorder (");
    marker.put_str(reason != nullptr ? reason : "crash");
    marker.put_str("), last ");
    const std::uint64_t head = g_head.load(std::memory_order_relaxed);
    marker.put_u64(head < kCapacity ? head : kCapacity);
    marker.put_str(" of ");
    marker.put_u64(head);
    marker.put_str(" op(s):\n");
    write_all(2, marker.data, marker.len);
    dump(2);
#if defined(SPBLA_FLIGHT_POSIX)
    if (g_path_armed.load(std::memory_order_acquire)) {
        const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            dump(fd);
            ::close(fd);
        }
    }
#endif
}

void install_crash_handlers() noexcept {
    if (g_handlers_installed.exchange(true, std::memory_order_acq_rel)) return;
#if defined(SPBLA_FLIGHT_POSIX)
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = crash_signal_handler;
    sigemptyset(&sa.sa_mask);
    for (const int sig : {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL}) {
        struct sigaction prev;
        // Leave handlers someone else installed (a test harness, an
        // embedding application) alone; only claim default dispositions.
        if (sigaction(sig, nullptr, &prev) == 0 && prev.sa_handler == SIG_DFL) {
            sigaction(sig, &sa, nullptr);
        }
    }
#endif
    g_prev_terminate = std::set_terminate(terminate_with_dump);
}

}  // namespace spbla::telemetry::flight
