/// \file flight_recorder.hpp
/// \brief Always-on crash flight recorder: the last N dispatched ops.
///
/// A production abort — an SPBLA_ASSERT invariant failure, a segfault in a
/// kernel, an unhandled exception reaching std::terminate — today leaves
/// nothing but the signal name. This ring keeps the most recent dispatcher
/// op records (op, dims, nnz in/out, routed format, epoch, thread, duration)
/// in fixed preallocated storage, and the installed signal/terminate
/// handlers dump it as JSON lines using only async-signal-safe calls
/// (write(2)/open(2), hand-rolled integer formatting): stderr always, plus
/// the file armed by set_crash_dump_path (the SPBLA_METRICS env hook arms
/// <path>.flight).
///
/// Recording is lock-free: a global head ticket is claimed with fetch_add,
/// the slot's fields are written, then the slot's sequence number is
/// release-stored as the publication marker. A crash mid-write leaves that
/// slot's marker stale and the dumper skips it — the post-mortem trail is
/// best-effort by design, never a hang or a second fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spbla::telemetry::flight {

/// Ring capacity (records). Fixed so the crash path never allocates.
inline constexpr std::size_t kCapacity = 256;

/// One dispatched-op record. Plain data only: the crash dumper reads these
/// from a signal handler.
struct Record {
    std::uint64_t seq{0};         ///< 1-based publication id; 0 = empty slot
    char op[16]{};                ///< dispatcher op name, truncated
    char format[12]{};            ///< routed format ("csr", "sharded", ...)
    std::uint32_t nrows{0};       ///< result rows
    std::uint32_t ncols{0};       ///< result cols
    std::uint64_t nnz_in{0};      ///< combined operand nnz
    std::uint64_t nnz_out{0};     ///< result nnz
    std::uint64_t epoch_ns{0};    ///< telemetry::now_ns() at completion
    std::uint32_t thread{0};      ///< telemetry::thread_id() of the recorder
    std::uint64_t duration_ns{0}; ///< op wall time
};

/// Append a record (lock-free, wait-free modulo the CAS-free ring claim).
void record(const char* op, const char* format, std::uint32_t nrows,
            std::uint32_t ncols, std::uint64_t nnz_in, std::uint64_t nnz_out,
            std::uint64_t duration_ns) noexcept;

/// Records currently in the ring, oldest first (normal-context readers:
/// tests, exporters — not the crash path).
[[nodiscard]] std::vector<Record> snapshot_records();

/// Total records ever published (ring head).
[[nodiscard]] std::uint64_t total_recorded() noexcept;

/// Write the ring to \p fd as JSON lines, oldest first. Async-signal-safe.
void dump(int fd) noexcept;

/// Also dump to this file on crash (captured into fixed storage now, so the
/// handler needs no allocation). Empty path disarms the file dump.
void set_crash_dump_path(const std::string& path);

/// Install the SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL and std::terminate
/// handlers (idempotent). Handlers dump to stderr and the armed file, then
/// restore the default action and re-raise, so exit semantics are unchanged.
void install_crash_handlers() noexcept;

/// The handlers' dump body: marker line + ring to stderr and the armed file.
/// First call wins (later callers — e.g. the SIGABRT raised by the abort
/// that follows a contract_violation dump — are no-ops). Safe from signal
/// context. Exposed so util::contract_violation can dump before aborting
/// even if no handler install ever ran.
void dump_on_crash(const char* reason) noexcept;

}  // namespace spbla::telemetry::flight
