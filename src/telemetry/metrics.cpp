#include "telemetry/metrics.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace spbla::telemetry {
namespace {

/// Everything one thread writes. Atomics are only there so the aggregating
/// snapshot reader is race-free; the owning thread's updates are relaxed and
/// uncontended (the whole point of sharding).
struct Shard {
    explicit Shard(std::uint32_t id) : tid{id} {}

    std::uint32_t tid;
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::array<std::atomic<std::uint64_t>, kNumHistograms * kHistogramBuckets>
        buckets{};
    std::array<std::atomic<std::uint64_t>, kNumHistograms> sums{};
    std::array<std::atomic<std::uint64_t>, kNumHistograms> maxes{};
};

class Registry {
public:
    Registry() = default;

    Shard& local() SPBLA_EXCLUDES(mutex_) {
        thread_local Shard* shard = nullptr;
        if (shard == nullptr) {
            auto owned = std::make_shared<Shard>(
                next_tid_.fetch_add(1, std::memory_order_relaxed));
            shard = owned.get();
            util::LockGuard lock{mutex_};
            // Shards of exited threads are retained: their totals stay in
            // every future snapshot, exactly like prof's ThreadLogs.
            shards_.push_back(std::move(owned));
        }
        return *shard;
    }

    std::vector<std::shared_ptr<Shard>> shards_copy() SPBLA_EXCLUDES(mutex_) {
        util::LockGuard lock{mutex_};
        return shards_;
    }

    std::array<std::atomic<std::int64_t>, kNumGauges> gauges{};

    std::uint64_t now_ns() const noexcept {
        return static_cast<std::uint64_t>(epoch_.seconds() * 1e9);
    }

private:
    util::Mutex mutex_;
    std::vector<std::shared_ptr<Shard>> shards_ SPBLA_GUARDED_BY(mutex_);
    std::atomic<std::uint32_t> next_tid_{0};
    util::Timer epoch_;  // started at registry construction
};

std::string g_env_metrics_path;  // set once before threads exist

void env_dump_at_exit() {
    if (g_env_metrics_path.empty()) return;
    const bool json_ok = write_file(g_env_metrics_path, ExportFormat::Json);
    const bool prom_ok =
        write_file(g_env_metrics_path + ".prom", ExportFormat::Prometheus);
    if (json_ok && prom_ok) {
        std::fprintf(stderr, "spbla: metrics written to %s (+.prom)\n",
                     g_env_metrics_path.c_str());
    } else {
        std::fprintf(stderr, "spbla: cannot write metrics to %s\n",
                     g_env_metrics_path.c_str());
    }
}

/// SPBLA_METRICS=<path> dumps JSON to <path> and Prometheus text to
/// <path>.prom at process exit, and arms the crash flight recorder's file
/// dump at <path>.flight. Mirrors prof's SPBLA_TRACE hook — but unlike
/// SPBLA_TRACE it needs no build flag: telemetry is always compiled in.
void arm_env_hook() {
    const char* path = std::getenv("SPBLA_METRICS");
    if (path != nullptr && path[0] != '\0') {
        g_env_metrics_path = path;
        flight::set_crash_dump_path(g_env_metrics_path + ".flight");
        std::atexit(env_dump_at_exit);
    }
    flight::install_crash_handlers();
}

Registry& registry() {
    // Leaked intentionally: the atexit dump, crash handlers and late-exiting
    // pool threads may touch the registry after static destruction begins.
    static Registry* instance = new Registry;  // lint:allow(raw-new-delete)
    static const bool armed = (arm_env_hook(), true);
    static_cast<void>(armed);
    return *instance;
}

/// Peak gauges re-baseline to their paired live gauge on reset().
[[nodiscard]] constexpr Gauge live_pair(Gauge g) noexcept {
    return g == Gauge::MemPeakBytes ? Gauge::MemLiveBytes : g;
}

[[nodiscard]] constexpr bool is_peak(Gauge g) noexcept {
    return g == Gauge::MemPeakBytes;
}

/// Dotted metric name -> Prometheus name (dots to underscores).
[[nodiscard]] std::string prom_name(const char* dotted) {
    std::string out{dotted};
    for (char& c : out) {
        if (c == '.') c = '_';
    }
    return out;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_i64(std::string& out, std::int64_t v) { out += std::to_string(v); }

}  // namespace

void count(Counter c, std::uint64_t delta) noexcept {
    registry().local().counters[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
}

void observe(Histogram h, std::uint64_t value) noexcept {
    Shard& shard = registry().local();
    const auto idx = static_cast<std::size_t>(h);
    shard.buckets[idx * kHistogramBuckets + bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
    shard.sums[idx].fetch_add(value, std::memory_order_relaxed);
    auto& mx = shard.maxes[idx];
    auto cur = mx.load(std::memory_order_relaxed);
    while (cur < value &&
           !mx.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
}

void gauge_set(Gauge g, std::int64_t value) noexcept {
    registry().gauges[static_cast<std::size_t>(g)].store(
        value, std::memory_order_relaxed);
}

std::int64_t gauge_add(Gauge g, std::int64_t delta) noexcept {
    return registry().gauges[static_cast<std::size_t>(g)].fetch_add(
               delta, std::memory_order_relaxed) +
           delta;
}

void gauge_max(Gauge g, std::int64_t value) noexcept {
    auto& slot = registry().gauges[static_cast<std::size_t>(g)];
    auto cur = slot.load(std::memory_order_relaxed);
    while (cur < value &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
}

std::uint64_t now_ns() noexcept { return registry().now_ns(); }

std::uint32_t thread_id() noexcept { return registry().local().tid; }

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Nearest-rank: the smallest bucket whose cumulative count reaches
    // ceil(q * count) holds the quantile observation.
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        cumulative += buckets[i];
        if (cumulative >= rank) return bucket_upper(i);
    }
    return bucket_upper(kHistogramBuckets - 1);
}

Snapshot snapshot() {
    Registry& reg = registry();
    Snapshot snap;
    for (const auto& shard : reg.shards_copy()) {
        for (std::size_t c = 0; c < kNumCounters; ++c) {
            snap.counters[c] +=
                shard->counters[c].load(std::memory_order_relaxed);
        }
        for (std::size_t h = 0; h < kNumHistograms; ++h) {
            auto& agg = snap.histograms[h];
            for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
                const auto n = shard->buckets[h * kHistogramBuckets + b].load(
                    std::memory_order_relaxed);
                agg.buckets[b] += n;
                agg.count += n;
            }
            agg.sum += shard->sums[h].load(std::memory_order_relaxed);
            const auto mx = shard->maxes[h].load(std::memory_order_relaxed);
            if (mx > agg.max) agg.max = mx;
        }
    }
    for (std::size_t g = 0; g < kNumGauges; ++g) {
        snap.gauges[g] = reg.gauges[g].load(std::memory_order_relaxed);
    }
    return snap;
}

void reset() noexcept {
    Registry& reg = registry();
    for (const auto& shard : reg.shards_copy()) {
        for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
        for (auto& b : shard->buckets) b.store(0, std::memory_order_relaxed);
        for (auto& s : shard->sums) s.store(0, std::memory_order_relaxed);
        for (auto& m : shard->maxes) m.store(0, std::memory_order_relaxed);
    }
    for (std::size_t g = 0; g < kNumGauges; ++g) {
        const auto gauge = static_cast<Gauge>(g);
        if (is_peak(gauge)) {
            reg.gauges[g].store(
                reg.gauges[static_cast<std::size_t>(live_pair(gauge))].load(
                    std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
    }
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    static const char* hex = "0123456789abcdef";
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xF];
                    out += hex[c & 0xF];
                } else {
                    out += raw;
                }
        }
    }
    return out;
}

std::string to_json(const Snapshot& snap) {
    std::string out;
    out.reserve(4096);
    out += "{\n  \"schema\": \"spbla.metrics.v1\",\n  \"counters\": {";
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        out += c == 0 ? "\n" : ",\n";
        out += "    \"";
        out += json_escape(name(static_cast<Counter>(c)));
        out += "\": ";
        append_u64(out, snap.counters[c]);
    }
    out += "\n  },\n  \"gauges\": {";
    for (std::size_t g = 0; g < kNumGauges; ++g) {
        out += g == 0 ? "\n" : ",\n";
        out += "    \"";
        out += json_escape(name(static_cast<Gauge>(g)));
        out += "\": ";
        append_i64(out, snap.gauges[g]);
    }
    out += "\n  },\n  \"histograms\": {";
    for (std::size_t h = 0; h < kNumHistograms; ++h) {
        const auto& hist = snap.histograms[h];
        out += h == 0 ? "\n" : ",\n";
        out += "    \"";
        out += json_escape(name(static_cast<Histogram>(h)));
        out += "\": {\"count\": ";
        append_u64(out, hist.count);
        out += ", \"sum\": ";
        append_u64(out, hist.sum);
        out += ", \"max\": ";
        append_u64(out, hist.max);
        out += ", \"p50\": ";
        append_u64(out, hist.quantile(0.50));
        out += ", \"p95\": ";
        append_u64(out, hist.quantile(0.95));
        out += ", \"p99\": ";
        append_u64(out, hist.quantile(0.99));
        out += ", \"buckets\": [";
        // Trailing empty buckets are elided; consumers treat missing
        // entries as zero (tools/check_trace.py does).
        std::size_t last = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            if (hist.buckets[b] != 0) last = b + 1;
        }
        for (std::size_t b = 0; b < last; ++b) {
            if (b != 0) out += ", ";
            append_u64(out, hist.buckets[b]);
        }
        out += "]}";
    }
    out += "\n  }\n}\n";
    return out;
}

std::string to_prometheus(const Snapshot& snap) {
    std::string out;
    out.reserve(4096);
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const std::string pname = prom_name(name(static_cast<Counter>(c)));
        out += "# TYPE " + pname + " counter\n";
        out += pname + " ";
        append_u64(out, snap.counters[c]);
        out += "\n";
    }
    for (std::size_t g = 0; g < kNumGauges; ++g) {
        const std::string pname = prom_name(name(static_cast<Gauge>(g)));
        out += "# TYPE " + pname + " gauge\n";
        out += pname + " ";
        append_i64(out, snap.gauges[g]);
        out += "\n";
    }
    for (std::size_t h = 0; h < kNumHistograms; ++h) {
        const auto& hist = snap.histograms[h];
        const std::string pname = prom_name(name(static_cast<Histogram>(h)));
        out += "# TYPE " + pname + " histogram\n";
        std::uint64_t cumulative = 0;
        std::size_t last = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            if (hist.buckets[b] != 0) last = b + 1;
        }
        for (std::size_t b = 0; b < last; ++b) {
            cumulative += hist.buckets[b];
            out += pname + "_bucket{le=\"";
            append_u64(out, bucket_upper(b));
            out += "\"} ";
            append_u64(out, cumulative);
            out += "\n";
        }
        out += pname + "_bucket{le=\"+Inf\"} ";
        append_u64(out, hist.count);
        out += "\n";
        out += pname + "_sum ";
        append_u64(out, hist.sum);
        out += "\n";
        out += pname + "_count ";
        append_u64(out, hist.count);
        out += "\n";
    }
    return out;
}

bool write_file(const std::string& path, ExportFormat format) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const Snapshot snap = snapshot();
    const std::string body =
        format == ExportFormat::Json ? to_json(snap) : to_prometheus(snap);
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
}

}  // namespace spbla::telemetry
