/// \file metric_names.hpp
/// \brief The curated namespace of exported telemetry instruments.
///
/// Every counter, gauge and histogram the always-on telemetry layer exports
/// is declared here, once, as an enum entry plus its exported name. The rest
/// of src/ refers to instruments only through these enums — the lint rule
/// `metric-name-literal` flags any spbla.* metric-name string literal that
/// appears in src/ outside this header, so the scrape surface stays a single
/// reviewable list instead of drifting per call site.
///
/// Naming convention: `spbla.<subsystem>.<instrument>`, lowercase with
/// underscores. The Prometheus exporter rewrites dots to underscores
/// (`spbla_dispatch_ops`); the JSON exporter keys objects by the dotted name.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spbla::telemetry {

/// Monotonic event counts. Relaxed-atomic, per-thread-sharded; reset by
/// telemetry::reset() / spbla_MetricsReset.
enum class Counter : std::uint16_t {
    DispatchOps = 0,      ///< storage-dispatcher ops completed (any route)
    DispatchCsr,          ///< ops routed to the CSR kernels
    DispatchCoo,          ///< ops routed to the COO kernels
    DispatchDense,        ///< ops routed to the dense bit-matrix kernels
    DispatchBitBlocks,    ///< ops routed to the 64x64 bit-block tier
    StorageConversions,   ///< format conversions materialised
    StorageCacheHits,     ///< secondary-representation cache hits
    StorageCacheStores,   ///< secondary representations cached
    StorageCacheDrops,    ///< cached representations evicted
    DistShardedOps,       ///< ops executed on the sharded multi-device path
    DistShardBuilds,      ///< shardings materialised
    DistShardCacheHits,   ///< shardings reused by content version
    DistTilesProcessed,   ///< tile tasks executed across the device group
    DistTileSteals,       ///< tile tasks run off their owner's queue
    DistTileTransfers,    ///< non-resident tile reads
    DistTransferBytes,    ///< bytes moved between simulated devices
    PoolTasks,            ///< discrete pool jobs completed
    PoolBulkLaunches,     ///< dynamic bulk launches (parallel_for ticket sets)
    PoolTickets,          ///< tickets issued by bulk launches
    MemAllocs,            ///< tracked device-buffer allocations
    MemFrees,             ///< tracked device-buffer deallocations
    ArenaResets,          ///< scoped-arena scope exits (wholesale scratch resets)
    PoolBufferHits,       ///< buffer-pool acquires served from a free list
    PoolBufferMisses,     ///< buffer-pool acquires that fell through to malloc
    ProfSpans,            ///< prof spans closed (only when profiling enabled)
    IncrBatches,          ///< delta batches applied through the incremental layer
    IncrDeltaNnz,         ///< total cells across applied insert/delete deltas
    IncrMemoLookups,      ///< op-memo probes (keyed by content-version epochs)
    IncrMemoHits,         ///< op-memo probes served from cache
    IncrMemoStores,       ///< op-memo results retained for reuse
    IncrMemoEvictions,    ///< op-memo entries evicted at capacity
    IncrIterationsSaved,  ///< fixpoint rounds skipped vs full recompute
    IncrConsolidations,   ///< delta overlays folded into their base matrix
    IncrShortCircuits,    ///< dispatcher ops answered by the empty-delta fast path
    Count_,               ///< sentinel — keep last
};

/// Point-in-time levels. Not reset by telemetry::reset(), except that
/// peak-style gauges re-baseline to their paired live gauge.
enum class Gauge : std::uint16_t {
    MemLiveBytes = 0,     ///< tracked device bytes currently allocated (all contexts)
    MemPeakBytes,         ///< high-water mark of MemLiveBytes
    StorageCachedBytes,   ///< bytes held by cached secondary representations
    PoolQueueDepth,       ///< jobs waiting in pool FIFO queues
    PoolInFlight,         ///< submitted jobs not yet completed
    PoolBusyWorkers,      ///< threads currently executing pool work
    PoolWorkers,          ///< worker threads alive across all pools
    ArenaReservedBytes,   ///< high-water slab bytes reserved by any one arena
    ArenaUsedBytes,       ///< high-water bump-allocated bytes in any one arena
    PoolHeldBytes,        ///< bytes parked in buffer-pool free lists (all pools)
    Count_,               ///< sentinel — keep last
};

/// log2-bucketed value distributions (p50/p95/p99/max derivable from the
/// buckets). Bucket 0 holds zeros; bucket i >= 1 holds values in
/// [2^(i-1), 2^i - 1].
enum class Histogram : std::uint16_t {
    OpLatencyCsrNs = 0,   ///< dispatcher op wall-time, CSR route
    OpLatencyCooNs,       ///< dispatcher op wall-time, COO route
    OpLatencyDenseNs,     ///< dispatcher op wall-time, dense route
    OpLatencyBitBlocksNs, ///< dispatcher op wall-time, bit-block route
    OpLatencyShardedNs,   ///< dispatcher op wall-time, multi-device route
    OpNnzIn,              ///< combined operand nnz per dispatched op
    OpNnzOut,             ///< result nnz per dispatched op
    ProfSpanNs,           ///< prof span durations (only when profiling enabled)
    Count_,               ///< sentinel — keep last
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::Count_);
inline constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::Count_);
inline constexpr std::size_t kNumHistograms =
    static_cast<std::size_t>(Histogram::Count_);

/// Exported (dotted) name of \p c; the single home of these literals.
[[nodiscard]] constexpr const char* name(Counter c) noexcept {
    switch (c) {
        case Counter::DispatchOps: return "spbla.dispatch.ops";
        case Counter::DispatchCsr: return "spbla.dispatch.csr";
        case Counter::DispatchCoo: return "spbla.dispatch.coo";
        case Counter::DispatchDense: return "spbla.dispatch.dense";
        case Counter::DispatchBitBlocks: return "spbla.dispatch.bitblock";
        case Counter::StorageConversions: return "spbla.storage.conversions";
        case Counter::StorageCacheHits: return "spbla.storage.cache_hits";
        case Counter::StorageCacheStores: return "spbla.storage.cache_stores";
        case Counter::StorageCacheDrops: return "spbla.storage.cache_drops";
        case Counter::DistShardedOps: return "spbla.dist.sharded_ops";
        case Counter::DistShardBuilds: return "spbla.dist.shard_builds";
        case Counter::DistShardCacheHits: return "spbla.dist.shard_cache_hits";
        case Counter::DistTilesProcessed: return "spbla.dist.tiles_processed";
        case Counter::DistTileSteals: return "spbla.dist.tile_steals";
        case Counter::DistTileTransfers: return "spbla.dist.tile_transfers";
        case Counter::DistTransferBytes: return "spbla.dist.transfer_bytes";
        case Counter::PoolTasks: return "spbla.pool.tasks";
        case Counter::PoolBulkLaunches: return "spbla.pool.bulk_launches";
        case Counter::PoolTickets: return "spbla.pool.tickets";
        case Counter::MemAllocs: return "spbla.mem.allocs";
        case Counter::MemFrees: return "spbla.mem.frees";
        case Counter::ArenaResets: return "spbla.arena.resets";
        case Counter::PoolBufferHits: return "spbla.arena.pool_hits";
        case Counter::PoolBufferMisses: return "spbla.arena.pool_misses";
        case Counter::ProfSpans: return "spbla.prof.spans";
        case Counter::IncrBatches: return "spbla.incr.batches";
        case Counter::IncrDeltaNnz: return "spbla.incr.delta_nnz";
        case Counter::IncrMemoLookups: return "spbla.incr.memo_lookups";
        case Counter::IncrMemoHits: return "spbla.incr.memo_hits";
        case Counter::IncrMemoStores: return "spbla.incr.memo_stores";
        case Counter::IncrMemoEvictions: return "spbla.incr.memo_evictions";
        case Counter::IncrIterationsSaved: return "spbla.incr.iterations_saved";
        case Counter::IncrConsolidations: return "spbla.incr.consolidations";
        case Counter::IncrShortCircuits: return "spbla.incr.shortcircuit_ops";
        case Counter::Count_: break;
    }
    return "spbla.unknown.counter";
}

/// Exported (dotted) name of \p g.
[[nodiscard]] constexpr const char* name(Gauge g) noexcept {
    switch (g) {
        case Gauge::MemLiveBytes: return "spbla.mem.live_bytes";
        case Gauge::MemPeakBytes: return "spbla.mem.peak_bytes";
        case Gauge::StorageCachedBytes: return "spbla.storage.cached_bytes";
        case Gauge::PoolQueueDepth: return "spbla.pool.queue_depth";
        case Gauge::PoolInFlight: return "spbla.pool.in_flight";
        case Gauge::PoolBusyWorkers: return "spbla.pool.busy_workers";
        case Gauge::PoolWorkers: return "spbla.pool.workers";
        case Gauge::ArenaReservedBytes: return "spbla.arena.reserved";
        case Gauge::ArenaUsedBytes: return "spbla.arena.used";
        case Gauge::PoolHeldBytes: return "spbla.arena.pool_held_bytes";
        case Gauge::Count_: break;
    }
    return "spbla.unknown.gauge";
}

/// Exported (dotted) name of \p h.
[[nodiscard]] constexpr const char* name(Histogram h) noexcept {
    switch (h) {
        case Histogram::OpLatencyCsrNs: return "spbla.op.latency_ns.csr";
        case Histogram::OpLatencyCooNs: return "spbla.op.latency_ns.coo";
        case Histogram::OpLatencyDenseNs: return "spbla.op.latency_ns.dense";
        case Histogram::OpLatencyBitBlocksNs: return "spbla.op.latency_ns.bitblock";
        case Histogram::OpLatencyShardedNs: return "spbla.op.latency_ns.sharded";
        case Histogram::OpNnzIn: return "spbla.op.nnz_in";
        case Histogram::OpNnzOut: return "spbla.op.nnz_out";
        case Histogram::ProfSpanNs: return "spbla.prof.span_ns";
        case Histogram::Count_: break;
    }
    return "spbla.unknown.histogram";
}

}  // namespace spbla::telemetry
