/// \file csr.hpp
/// \brief Compressed-sparse-row (CSR) Boolean matrix — the cuBool format.
///
/// Storage is two arrays: row_offsets (nrows + 1 entries) and cols (column
/// indices, strictly increasing within a row). Boolean matrices carry no
/// value array — a true cell is encoded purely by its (i, j) position —
/// which is the core of the paper's memory advantage over generic formats:
/// a matrix of size m x n costs (m + nnz) * sizeof(Index) bytes.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace spbla {

class CooMatrix;

/// CSR Boolean matrix with sorted, duplicate-free rows.
class CsrMatrix {
public:
    /// Empty matrix of the given shape (all rows empty).
    CsrMatrix(Index nrows, Index ncols);

    CsrMatrix() : CsrMatrix(0, 0) {}

    /// Build from an arbitrary coordinate list (sorted + deduplicated here).
    static CsrMatrix from_coords(Index nrows, Index ncols, std::vector<Coord> coords);

    /// Adopt raw CSR arrays; validated in debug builds.
    static CsrMatrix from_raw(Index nrows, Index ncols, std::vector<Index> row_offsets,
                              std::vector<Index> cols);

    /// Identity matrix of size n x n.
    static CsrMatrix identity(Index n);

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return cols_.size(); }
    [[nodiscard]] bool empty() const noexcept { return cols_.empty(); }

    [[nodiscard]] std::span<const Index> row_offsets() const noexcept { return row_offsets_; }
    [[nodiscard]] std::span<const Index> cols() const noexcept { return cols_; }

    /// Column indices of row \p r (sorted ascending).
    [[nodiscard]] std::span<const Index> row(Index r) const {
        check(r < nrows_, Status::OutOfRange, "CsrMatrix::row: out of range");
        return std::span<const Index>(cols_).subspan(row_offsets_[r],
                                                     row_offsets_[r + 1] - row_offsets_[r]);
    }

    /// Number of set cells in row \p r.
    [[nodiscard]] Index row_nnz(Index r) const {
        check(r < nrows_, Status::OutOfRange, "CsrMatrix::row_nnz: out of range");
        return row_offsets_[r + 1] - row_offsets_[r];
    }

    /// True iff cell (r, c) is set (binary search within the row).
    [[nodiscard]] bool get(Index r, Index c) const;

    /// Export the coordinate list in (row, col) order.
    [[nodiscard]] std::vector<Coord> to_coords() const;

    /// Simulated device footprint: (nrows + 1 + nnz) * sizeof(Index).
    [[nodiscard]] std::size_t device_bytes() const noexcept {
        return (row_offsets_.size() + cols_.size()) * sizeof(Index);
    }

    /// Relinquish the two storage arrays as {row_offsets, cols} — the O(1)
    /// path for recycling a dropped product or cached representation through
    /// a backend::BufferPool. Leaves the matrix empty with shape 0 x 0.
    [[nodiscard]] std::pair<std::vector<Index>, std::vector<Index>> release_raw() && {
        auto out = std::make_pair(std::move(row_offsets_), std::move(cols_));
        nrows_ = 0;
        ncols_ = 0;
        row_offsets_.assign(1, 0);
        cols_.clear();
        return out;
    }

    /// Check all storage invariants; throws Error on violation.
    void validate() const;

    friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) noexcept {
        return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
               a.row_offsets_ == b.row_offsets_ && a.cols_ == b.cols_;
    }

private:
    Index nrows_;
    Index ncols_;
    std::vector<Index> row_offsets_;  // size nrows_ + 1, non-decreasing
    std::vector<Index> cols_;         // size nnz, sorted within each row
};

}  // namespace spbla
