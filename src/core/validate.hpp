/// \file validate.hpp
/// \brief Structural validators for the sparse formats, plus the op wiring
/// macro.
///
/// Every kernel in src/ops and the CFPQ/RPQ drivers calls SPBLA_VALIDATE on
/// its operands at entry and its result at exit. At the default checks level
/// the macro compiles to nothing; at SPBLA_CHECKS=full each call runs the
/// full O(nnz) structural check (monotone row offsets, in-bounds
/// strictly-sorted columns, nnz consistency) and throws Error on violation,
/// so a kernel that emits a corrupt matrix fails at its own boundary instead
/// of poisoning a later op.
#pragma once

#include "core/bitblocks.hpp"
#include "core/coo.hpp"
#include "core/csr.hpp"
#include "core/spvector.hpp"
#include "util/contracts.hpp"

namespace spbla::core {

/// Check all CsrMatrix storage invariants; throws Error(InvalidState).
void validate(const CsrMatrix& m);

/// Check all CooMatrix storage invariants; throws Error(InvalidState).
void validate(const CooMatrix& m);

/// Check all BitBlockMatrix storage invariants; throws Error(InvalidState).
void validate(const BitBlockMatrix& m);

/// Check all SpVector storage invariants; throws Error(InvalidState).
void validate(const SpVector& v);

}  // namespace spbla::core

/// Structural validation of a matrix/vector, active at SPBLA_CHECKS=full.
#define SPBLA_VALIDATE(m) SPBLA_CHECKED(::spbla::core::validate(m))
