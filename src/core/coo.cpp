#include "core/coo.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace spbla {

CooMatrix::CooMatrix(Index nrows, Index ncols) : nrows_{nrows}, ncols_{ncols} {}

CooMatrix CooMatrix::from_coords(Index nrows, Index ncols, std::vector<Coord> coords) {
    for (const auto& c : coords) {
        check(c.row < nrows && c.col < ncols, Status::OutOfRange,
              "CooMatrix::from_coords: coordinate out of range");
    }
    std::sort(coords.begin(), coords.end());
    coords.erase(std::unique(coords.begin(), coords.end()), coords.end());

    CooMatrix m{nrows, ncols};
    m.rows_.reserve(coords.size());
    m.cols_.reserve(coords.size());
    for (const auto& c : coords) {
        m.rows_.push_back(c.row);
        m.cols_.push_back(c.col);
    }
    return m;
}

CooMatrix CooMatrix::from_sorted(Index nrows, Index ncols, std::vector<Index> rows,
                                 std::vector<Index> cols) {
    check(rows.size() == cols.size(), Status::InvalidArgument,
          "CooMatrix::from_sorted: rows/cols size mismatch");
    CooMatrix m{nrows, ncols};
    m.rows_ = std::move(rows);
    m.cols_ = std::move(cols);
#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_FULL || !defined(NDEBUG)
    m.validate();
#endif
    return m;
}

bool CooMatrix::get(Index r, Index c) const {
    check(r < nrows_ && c < ncols_, Status::OutOfRange, "CooMatrix::get: out of range");
    // Find the row segment, then the column within it.
    const auto row_begin = std::lower_bound(rows_.begin(), rows_.end(), r);
    const auto row_end = std::upper_bound(row_begin, rows_.end(), r);
    const auto first = cols_.begin() + (row_begin - rows_.begin());
    const auto last = cols_.begin() + (row_end - rows_.begin());
    return std::binary_search(first, last, c);
}

std::vector<Coord> CooMatrix::to_coords() const {
    std::vector<Coord> out;
    out.reserve(rows_.size());
    for (std::size_t k = 0; k < rows_.size(); ++k) out.push_back({rows_[k], cols_[k]});
    return out;
}

void CooMatrix::validate() const {
    check(rows_.size() == cols_.size(), Status::InvalidState,
          "CooMatrix: rows/cols length mismatch");
    for (std::size_t k = 0; k < rows_.size(); ++k) {
        check(rows_[k] < nrows_, Status::InvalidState, "CooMatrix: row index out of range");
        check(cols_[k] < ncols_, Status::InvalidState, "CooMatrix: col index out of range");
        if (k > 0) {
            const bool ordered = rows_[k - 1] < rows_[k] ||
                                 (rows_[k - 1] == rows_[k] && cols_[k - 1] < cols_[k]);
            check(ordered, Status::InvalidState,
                  "CooMatrix: entries not strictly sorted by (row, col)");
        }
    }
}

}  // namespace spbla
