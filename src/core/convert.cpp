#include "core/convert.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace spbla {

namespace {

// Grain sizes for the conversion launches: rows are cheap (a search or a
// popcount each), entries cheaper still, so keep chunks large enough that
// ticket bookkeeping never dominates.
constexpr std::size_t kRowGrain = 1024;

/// Row pointers of a sorted COO: offsets[r] = first entry with row >= r,
/// found independently per row (binary search), so the pass parallelises
/// with no carried dependency — the two-pass count+scan the serial version
/// used is replaced by nrows searches over the sorted rows array.
std::vector<Index> coo_row_offsets(backend::Context& ctx, const CooMatrix& coo) {
    const auto rows = coo.rows();
    std::vector<Index> offsets(static_cast<std::size_t>(coo.nrows()) + 1, 0);
    offsets[coo.nrows()] = static_cast<Index>(rows.size());
    ctx.parallel_for(coo.nrows(), kRowGrain, [&](std::size_t r) {
        offsets[r] = static_cast<Index>(
            std::lower_bound(rows.begin(), rows.end(), static_cast<Index>(r)) -
            rows.begin());
    });
    return offsets;
}

}  // namespace

CsrMatrix to_csr(backend::Context& ctx, const CooMatrix& coo) {
    std::vector<Index> row_offsets = coo_row_offsets(ctx, coo);
    std::vector<Index> cols(coo.cols().begin(), coo.cols().end());
    return CsrMatrix::from_raw(coo.nrows(), coo.ncols(), std::move(row_offsets),
                               std::move(cols));
}

CooMatrix to_coo(backend::Context& ctx, const CsrMatrix& csr) {
    std::vector<Index> rows(csr.nnz());
    ctx.parallel_for(csr.nrows(), kRowGrain, [&](std::size_t r) {
        const auto offsets = csr.row_offsets();
        std::fill(rows.begin() + offsets[r], rows.begin() + offsets[r + 1],
                  static_cast<Index>(r));
    });
    std::vector<Index> cols(csr.cols().begin(), csr.cols().end());
    return CooMatrix::from_sorted(csr.nrows(), csr.ncols(), std::move(rows),
                                  std::move(cols));
}

namespace {

/// Shared dense -> sparse pass: per-row popcount, exclusive scan for the
/// destination offsets, then an independent per-row bit scatter.
struct DenseScatter {
    std::vector<Index> row_offsets;  // nrows + 1
    std::vector<Index> cols;         // nnz, sorted within each row
};

DenseScatter dense_scatter(backend::Context& ctx, const DenseMatrix& dense) {
    const Index nrows = dense.nrows();
    std::vector<std::uint32_t> counts(nrows, 0);
    ctx.parallel_for(nrows, kRowGrain, [&](std::size_t r) {
        counts[r] = dense.row_nnz(static_cast<Index>(r));
    });
    const std::uint64_t total = ctx.exclusive_scan(counts);

    DenseScatter out;
    out.cols.resize(total);
    out.row_offsets.assign(static_cast<std::size_t>(nrows) + 1, 0);
    out.row_offsets[nrows] = static_cast<Index>(total);
    ctx.parallel_for(nrows, kRowGrain / 4, [&](std::size_t r) {
        out.row_offsets[r] = static_cast<Index>(counts[r]);
        std::size_t dst = counts[r];
        const auto words = dense.row_words(static_cast<Index>(r));
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t bits = words[w];
            while (bits != 0) {
                out.cols[dst++] = static_cast<Index>(
                    w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
                bits &= bits - 1;
            }
        }
    });
    return out;
}

}  // namespace

CsrMatrix to_csr(backend::Context& ctx, const DenseMatrix& dense) {
    DenseScatter s = dense_scatter(ctx, dense);
    return CsrMatrix::from_raw(dense.nrows(), dense.ncols(), std::move(s.row_offsets),
                               std::move(s.cols));
}

CooMatrix to_coo(backend::Context& ctx, const DenseMatrix& dense) {
    DenseScatter s = dense_scatter(ctx, dense);
    std::vector<Index> rows(s.cols.size());
    ctx.parallel_for(dense.nrows(), kRowGrain, [&](std::size_t r) {
        std::fill(rows.begin() + s.row_offsets[r], rows.begin() + s.row_offsets[r + 1],
                  static_cast<Index>(r));
    });
    return CooMatrix::from_sorted(dense.nrows(), dense.ncols(), std::move(rows),
                                  std::move(s.cols));
}

DenseMatrix to_dense(backend::Context& ctx, const CsrMatrix& csr) {
    DenseMatrix out{csr.nrows(), csr.ncols()};
    // Rows own disjoint word ranges of the bitmap, so per-row writes do not
    // race.
    ctx.parallel_for(csr.nrows(), kRowGrain / 4, [&](std::size_t r) {
        for (const auto c : csr.row(static_cast<Index>(r))) {
            out.set(static_cast<Index>(r), c);
        }
    });
    return out;
}

DenseMatrix to_dense(backend::Context& ctx, const CooMatrix& coo) {
    DenseMatrix out{coo.nrows(), coo.ncols()};
    const std::vector<Index> offsets = coo_row_offsets(ctx, coo);
    const auto rows = coo.rows();
    const auto cols = coo.cols();
    ctx.parallel_for(coo.nrows(), kRowGrain / 4, [&](std::size_t r) {
        for (Index k = offsets[r]; k < offsets[r + 1]; ++k) {
            out.set(rows[k], cols[k]);
        }
    });
    return out;
}

CsrMatrix to_csr(const CooMatrix& coo) { return to_csr(backend::default_context(), coo); }
CooMatrix to_coo(const CsrMatrix& csr) { return to_coo(backend::default_context(), csr); }
CsrMatrix to_csr(const DenseMatrix& dense) {
    return to_csr(backend::default_context(), dense);
}
CooMatrix to_coo(const DenseMatrix& dense) {
    return to_coo(backend::default_context(), dense);
}
DenseMatrix to_dense(const CsrMatrix& csr) {
    return to_dense(backend::default_context(), csr);
}
DenseMatrix to_dense(const CooMatrix& coo) {
    return to_dense(backend::default_context(), coo);
}

}  // namespace spbla
