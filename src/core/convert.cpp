#include "core/convert.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "backend/arena.hpp"
#include "util/bit_ops.hpp"

namespace spbla {

namespace {

// Grain sizes for the conversion launches: rows are cheap (a search or a
// popcount each), entries cheaper still, so keep chunks large enough that
// ticket bookkeeping never dominates.
constexpr std::size_t kRowGrain = 1024;

/// Row pointers of a sorted COO: offsets[r] = first entry with row >= r,
/// found independently per row (binary search), so the pass parallelises
/// with no carried dependency — the two-pass count+scan the serial version
/// used is replaced by nrows searches over the sorted rows array.
std::vector<Index> coo_row_offsets(backend::Context& ctx, const CooMatrix& coo) {
    const auto rows = coo.rows();
    std::vector<Index> offsets(static_cast<std::size_t>(coo.nrows()) + 1, 0);
    offsets[coo.nrows()] = static_cast<Index>(rows.size());
    ctx.parallel_for(coo.nrows(), kRowGrain, [&](std::size_t r) {
        offsets[r] = static_cast<Index>(
            std::lower_bound(rows.begin(), rows.end(), static_cast<Index>(r)) -
            rows.begin());
    });
    return offsets;
}

}  // namespace

CsrMatrix to_csr(backend::Context& ctx, const CooMatrix& coo) {
    std::vector<Index> row_offsets = coo_row_offsets(ctx, coo);
    std::vector<Index> cols(coo.cols().begin(), coo.cols().end());
    return CsrMatrix::from_raw(coo.nrows(), coo.ncols(), std::move(row_offsets),
                               std::move(cols));
}

CooMatrix to_coo(backend::Context& ctx, const CsrMatrix& csr) {
    std::vector<Index> rows(csr.nnz());
    ctx.parallel_for(csr.nrows(), kRowGrain, [&](std::size_t r) {
        const auto offsets = csr.row_offsets();
        std::fill(rows.begin() + offsets[r], rows.begin() + offsets[r + 1],
                  static_cast<Index>(r));
    });
    std::vector<Index> cols(csr.cols().begin(), csr.cols().end());
    return CooMatrix::from_sorted(csr.nrows(), csr.ncols(), std::move(rows),
                                  std::move(cols));
}

namespace {

/// Shared dense -> sparse pass: per-row popcount, exclusive scan for the
/// destination offsets, then an independent per-row bit scatter.
struct DenseScatter {
    std::vector<Index> row_offsets;  // nrows + 1
    std::vector<Index> cols;         // nnz, sorted within each row
};

DenseScatter dense_scatter(backend::Context& ctx, const DenseMatrix& dense) {
    const Index nrows = dense.nrows();
    std::vector<std::uint32_t> counts(nrows, 0);
    ctx.parallel_for(nrows, kRowGrain, [&](std::size_t r) {
        counts[r] = dense.row_nnz(static_cast<Index>(r));
    });
    const std::uint64_t total = ctx.exclusive_scan(counts);

    DenseScatter out;
    out.cols.resize(total);
    out.row_offsets.assign(static_cast<std::size_t>(nrows) + 1, 0);
    out.row_offsets[nrows] = static_cast<Index>(total);
    ctx.parallel_for(nrows, kRowGrain / 4, [&](std::size_t r) {
        out.row_offsets[r] = static_cast<Index>(counts[r]);
        std::size_t dst = counts[r];
        const auto words = dense.row_words(static_cast<Index>(r));
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t bits = words[w];
            while (bits != 0) {
                out.cols[dst++] = static_cast<Index>(
                    w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
                bits &= bits - 1;
            }
        }
    });
    return out;
}

}  // namespace

CsrMatrix to_csr(backend::Context& ctx, const DenseMatrix& dense) {
    DenseScatter s = dense_scatter(ctx, dense);
    return CsrMatrix::from_raw(dense.nrows(), dense.ncols(), std::move(s.row_offsets),
                               std::move(s.cols));
}

CooMatrix to_coo(backend::Context& ctx, const DenseMatrix& dense) {
    DenseScatter s = dense_scatter(ctx, dense);
    std::vector<Index> rows(s.cols.size());
    ctx.parallel_for(dense.nrows(), kRowGrain, [&](std::size_t r) {
        std::fill(rows.begin() + s.row_offsets[r], rows.begin() + s.row_offsets[r + 1],
                  static_cast<Index>(r));
    });
    return CooMatrix::from_sorted(dense.nrows(), dense.ncols(), std::move(rows),
                                  std::move(s.cols));
}

DenseMatrix to_dense(backend::Context& ctx, const CsrMatrix& csr) {
    DenseMatrix out{csr.nrows(), csr.ncols()};
    // Rows own disjoint word ranges of the bitmap, so per-row writes do not
    // race.
    ctx.parallel_for(csr.nrows(), kRowGrain / 4, [&](std::size_t r) {
        for (const auto c : csr.row(static_cast<Index>(r))) {
            out.set(static_cast<Index>(r), c);
        }
    });
    return out;
}

DenseMatrix to_dense(backend::Context& ctx, const CooMatrix& coo) {
    DenseMatrix out{coo.nrows(), coo.ncols()};
    const std::vector<Index> offsets = coo_row_offsets(ctx, coo);
    const auto rows = coo.rows();
    const auto cols = coo.cols();
    ctx.parallel_for(coo.nrows(), kRowGrain / 4, [&](std::size_t r) {
        for (Index k = offsets[r]; k < offsets[r + 1]; ++k) {
            out.set(rows[k], cols[k]);
        }
    });
    return out;
}

// ---------------------------------------------------------------------------
// BitBlocks conversions. Tilings run per block row (64 matrix rows each):
// a counting pass sizes the descriptor and pool demand per block row, serial
// scans place the per-row bases, and an independent fill pass materialises
// the tiles — the same count/scan/scatter shape as the dense conversions.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kBlockRowGrain = 16;

[[nodiscard]] Index block_count(Index cells) noexcept {
    return static_cast<Index>((static_cast<std::size_t>(cells) + 63) / 64);
}

/// Exclusive scan of per-block-row demand into base offsets; returns total.
[[nodiscard]] std::uint64_t place(std::vector<std::uint32_t>& demand) {
    std::uint64_t total = 0;
    for (auto& d : demand) {
        const std::uint32_t here = d;
        d = static_cast<std::uint32_t>(total);
        total += here;
    }
    return total;
}

}  // namespace

BitBlockMatrix to_bitblocks(backend::Context& ctx, const CsrMatrix& csr) {
    using BlockRef = BitBlockMatrix::BlockRef;
    using BlockKind = BitBlockMatrix::BlockKind;
    constexpr std::uint32_t kMin = BitBlockMatrix::kBitmapMinNnz;
    const Index nrows = csr.nrows();
    const Index brows = block_count(nrows);
    const Index bcols = block_count(csr.ncols());

    std::vector<std::uint32_t> blocks_in(brows, 0);
    std::vector<std::uint32_t> words_in(brows, 0);
    std::vector<std::uint32_t> entries_in(brows, 0);
    // Per-tile-column tallies live on the worker's op arena, constructed once
    // per chunk and re-assigned per block row (heap-free on the hot path).
    ctx.parallel_for_chunks(brows, kBlockRowGrain, [&](std::size_t cb, std::size_t ce) {
        backend::ArenaVector<std::uint16_t> counts{
            backend::ArenaAllocator<std::uint16_t>{ctx.scratch_arena()}};
        for (std::size_t br = cb; br < ce; ++br) {
            counts.assign(bcols, 0);
            const Index r0 = static_cast<Index>(br) * 64;
            const Index r1 = std::min<Index>(nrows, r0 + 64);
            for (Index r = r0; r < r1; ++r) {
                for (const Index c : csr.row(r)) ++counts[c >> 6];
            }
            for (Index bc = 0; bc < bcols; ++bc) {
                if (counts[bc] == 0) continue;
                ++blocks_in[br];
                if (counts[bc] >= kMin) {
                    words_in[br] += BitBlockMatrix::kBlockWords;
                } else {
                    entries_in[br] += counts[bc];
                }
            }
        }
    });

    const std::uint64_t total_blocks = place(blocks_in);
    const std::uint64_t total_words = place(words_in);
    const std::uint64_t total_entries = place(entries_in);

    std::vector<Index> block_row_offsets(static_cast<std::size_t>(brows) + 1, 0);
    for (Index br = 0; br < brows; ++br) block_row_offsets[br] = blocks_in[br];
    block_row_offsets[brows] = static_cast<Index>(total_blocks);

    std::vector<BlockRef> blocks(total_blocks);
    std::vector<std::uint64_t> words(total_words, 0);
    std::vector<std::uint16_t> entries(total_entries);
    ctx.parallel_for_chunks(brows, kBlockRowGrain, [&](std::size_t cb, std::size_t ce) {
        backend::Arena& arena = ctx.scratch_arena();
        backend::ArenaVector<std::uint16_t> counts{
            backend::ArenaAllocator<std::uint16_t>{arena}};
        backend::ArenaVector<std::uint32_t> word_base{
            backend::ArenaAllocator<std::uint32_t>{arena}};
        backend::ArenaVector<std::uint32_t> entry_cursor{
            backend::ArenaAllocator<std::uint32_t>{arena}};
        for (std::size_t br = cb; br < ce; ++br) {
            counts.assign(bcols, 0);
            word_base.assign(bcols, 0);
            entry_cursor.assign(bcols, 0);
            const Index r0 = static_cast<Index>(br) * 64;
            const Index r1 = std::min<Index>(nrows, r0 + 64);
            for (Index r = r0; r < r1; ++r) {
                for (const Index c : csr.row(r)) ++counts[c >> 6];
            }
            std::uint32_t bcur = blocks_in[br];
            std::uint32_t wcur = words_in[br];
            std::uint32_t ecur = entries_in[br];
            for (Index bc = 0; bc < bcols; ++bc) {
                if (counts[bc] == 0) continue;
                BlockRef ref{};
                ref.bcol = bc;
                ref.nnz = counts[bc];
                if (counts[bc] >= kMin) {
                    ref.kind = BlockKind::Bitmap;
                    ref.offset = wcur;
                    word_base[bc] = wcur;
                    wcur += BitBlockMatrix::kBlockWords;
                } else {
                    ref.kind = BlockKind::Sparse;
                    ref.offset = ecur;
                    entry_cursor[bc] = ecur;
                    ecur += counts[bc];
                }
                blocks[bcur++] = ref;
            }
            // Row-major refill: ascending (row, col) emits sparse-tile
            // entries in ascending packed order and sets bitmap bits
            // race-free (this thread owns every tile of the block row).
            for (Index r = r0; r < r1; ++r) {
                const Index rl = r & 63;
                for (const Index c : csr.row(r)) {
                    const Index bc = c >> 6;
                    if (counts[bc] >= kMin) {
                        words[word_base[bc] + rl] |= std::uint64_t{1} << (c & 63);
                    } else {
                        entries[entry_cursor[bc]++] =
                            static_cast<std::uint16_t>((rl << 6) | (c & 63));
                    }
                }
            }
        }
    });

    return BitBlockMatrix::from_raw(csr.nrows(), csr.ncols(),
                                    std::move(block_row_offsets), std::move(blocks),
                                    std::move(words), std::move(entries));
}

BitBlockMatrix to_bitblocks(backend::Context& ctx, const CooMatrix& coo) {
    return to_bitblocks(ctx, to_csr(ctx, coo));
}

BitBlockMatrix to_bitblocks(backend::Context& ctx, const DenseMatrix& dense) {
    using BlockRef = BitBlockMatrix::BlockRef;
    using BlockKind = BitBlockMatrix::BlockKind;
    constexpr std::uint32_t kMin = BitBlockMatrix::kBitmapMinNnz;
    const Index nrows = dense.nrows();
    const Index brows = block_count(nrows);
    const Index bcols = block_count(dense.ncols());

    // Tile columns coincide with the dense rep's word columns, so a tile is
    // the 64-word gather dense.row_words(r)[bc] for r in the block row.
    const auto tile_pop = [&](Index r0, Index r1, Index bc) {
        std::uint32_t pop = 0;
        for (Index r = r0; r < r1; ++r) {
            pop += static_cast<std::uint32_t>(util::popcount64(dense.row_words(r)[bc]));
        }
        return pop;
    };

    std::vector<std::uint32_t> blocks_in(brows, 0);
    std::vector<std::uint32_t> words_in(brows, 0);
    std::vector<std::uint32_t> entries_in(brows, 0);
    ctx.parallel_for(brows, kBlockRowGrain, [&](std::size_t br) {
        const Index r0 = static_cast<Index>(br) * 64;
        const Index r1 = std::min<Index>(nrows, r0 + 64);
        for (Index bc = 0; bc < bcols; ++bc) {
            const std::uint32_t pop = tile_pop(r0, r1, bc);
            if (pop == 0) continue;
            ++blocks_in[br];
            if (pop >= kMin) {
                words_in[br] += BitBlockMatrix::kBlockWords;
            } else {
                entries_in[br] += pop;
            }
        }
    });

    const std::uint64_t total_blocks = place(blocks_in);
    const std::uint64_t total_words = place(words_in);
    const std::uint64_t total_entries = place(entries_in);

    std::vector<Index> block_row_offsets(static_cast<std::size_t>(brows) + 1, 0);
    for (Index br = 0; br < brows; ++br) block_row_offsets[br] = blocks_in[br];
    block_row_offsets[brows] = static_cast<Index>(total_blocks);

    std::vector<BlockRef> blocks(total_blocks);
    std::vector<std::uint64_t> words(total_words, 0);
    std::vector<std::uint16_t> entries(total_entries);
    ctx.parallel_for(brows, kBlockRowGrain, [&](std::size_t br) {
        const Index r0 = static_cast<Index>(br) * 64;
        const Index r1 = std::min<Index>(nrows, r0 + 64);
        std::uint32_t bcur = blocks_in[br];
        std::uint32_t wcur = words_in[br];
        std::uint32_t ecur = entries_in[br];
        for (Index bc = 0; bc < bcols; ++bc) {
            const std::uint32_t pop = tile_pop(r0, r1, bc);
            if (pop == 0) continue;
            BlockRef ref{};
            ref.bcol = bc;
            ref.nnz = static_cast<std::uint16_t>(pop);
            if (pop >= kMin) {
                ref.kind = BlockKind::Bitmap;
                ref.offset = wcur;
                for (Index r = r0; r < r1; ++r) {
                    words[wcur + (r & 63)] = dense.row_words(r)[bc];
                }
                wcur += BitBlockMatrix::kBlockWords;
            } else {
                ref.kind = BlockKind::Sparse;
                ref.offset = ecur;
                for (Index r = r0; r < r1; ++r) {
                    const Index rl = r & 63;
                    util::for_each_set_bit(dense.row_words(r)[bc], [&](unsigned bit) {
                        entries[ecur++] = static_cast<std::uint16_t>((rl << 6) | bit);
                    });
                }
            }
            blocks[bcur++] = ref;
        }
    });

    return BitBlockMatrix::from_raw(dense.nrows(), dense.ncols(),
                                    std::move(block_row_offsets), std::move(blocks),
                                    std::move(words), std::move(entries));
}

CsrMatrix to_csr(backend::Context& ctx, const BitBlockMatrix& bb) {
    const Index nrows = bb.nrows();
    // This conversion materialises cached secondary representations, so its
    // output arrays cycle through the pool: Matrix::drop_slot hands them
    // back and the next materialisation re-acquires them in O(1).
    auto counts = ctx.buffer_pool().acquire_zeroed(nrows);
    ctx.parallel_for(bb.brows(), kBlockRowGrain, [&](std::size_t br) {
        const Index r0 = static_cast<Index>(br) * 64;
        const Index live = std::min<Index>(nrows - r0, 64);
        for (const auto& tile : bb.block_row(static_cast<Index>(br))) {
            if (tile.kind == BitBlockMatrix::BlockKind::Bitmap) {
                const auto w = bb.bitmap_words(tile);
                for (Index rl = 0; rl < live; ++rl) {
                    counts[r0 + rl] += static_cast<std::uint32_t>(util::popcount64(w[rl]));
                }
            } else {
                for (const std::uint16_t e : bb.sparse_entries(tile)) {
                    ++counts[r0 + (e >> 6)];
                }
            }
        }
    });
    const std::uint64_t total = ctx.exclusive_scan(counts);

    auto row_offsets =
        ctx.buffer_pool().acquire_zeroed(static_cast<std::size_t>(nrows) + 1);
    row_offsets[nrows] = static_cast<Index>(total);
    auto cols = ctx.buffer_pool().acquire(static_cast<std::size_t>(total));
    ctx.parallel_for_chunks(bb.brows(), kBlockRowGrain, [&](std::size_t cb,
                                                            std::size_t ce) {
        backend::ArenaVector<std::uint32_t> cursor{
            backend::ArenaAllocator<std::uint32_t>{ctx.scratch_arena()}};
        for (std::size_t br = cb; br < ce; ++br) {
            const auto row = bb.block_row(static_cast<Index>(br));
            const Index r0 = static_cast<Index>(br) * 64;
            const Index live = std::min<Index>(nrows - r0, 64);
            cursor.assign(row.size(), 0);  // sparse-tile scan heads
            for (Index rl = 0; rl < live; ++rl) {
                const Index r = r0 + rl;
                row_offsets[r] = static_cast<Index>(counts[r]);
                std::size_t dst = counts[r];
                for (std::size_t t = 0; t < row.size(); ++t) {
                    const Index cbase = row[t].bcol * 64;
                    if (row[t].kind == BitBlockMatrix::BlockKind::Bitmap) {
                        util::for_each_set_bit(bb.bitmap_words(row[t])[rl],
                                               [&](unsigned bit) {
                                                   cols[dst++] = cbase + bit;
                                               });
                    } else {
                        const auto es = bb.sparse_entries(row[t]);
                        while (cursor[t] < es.size() &&
                               static_cast<Index>(es[cursor[t]] >> 6) == rl) {
                            cols[dst++] = cbase + (es[cursor[t]] & 63);
                            ++cursor[t];
                        }
                    }
                }
            }
        }
    });
    ctx.buffer_pool().release(std::move(counts));
    return CsrMatrix::from_raw(bb.nrows(), bb.ncols(), std::move(row_offsets),
                               std::move(cols));
}

CooMatrix to_coo(backend::Context& ctx, const BitBlockMatrix& bb) {
    return to_coo(ctx, to_csr(ctx, bb));
}

DenseMatrix to_dense(backend::Context& ctx, const BitBlockMatrix& bb) {
    DenseMatrix out{bb.nrows(), bb.ncols()};
    const Index nrows = bb.nrows();
    // Block rows own disjoint dense rows, so per-block-row writes don't race.
    ctx.parallel_for(bb.brows(), kBlockRowGrain, [&](std::size_t br) {
        const Index r0 = static_cast<Index>(br) * 64;
        const Index live = std::min<Index>(nrows - r0, 64);
        for (const auto& tile : bb.block_row(static_cast<Index>(br))) {
            const Index cbase = tile.bcol * 64;
            if (tile.kind == BitBlockMatrix::BlockKind::Bitmap) {
                const auto w = bb.bitmap_words(tile);
                for (Index rl = 0; rl < live; ++rl) {
                    util::for_each_set_bit(w[rl], [&](unsigned bit) {
                        out.set(r0 + rl, cbase + bit);
                    });
                }
            } else {
                for (const std::uint16_t e : bb.sparse_entries(tile)) {
                    out.set(r0 + (e >> 6), cbase + (e & 63));
                }
            }
        }
    });
    return out;
}

CsrMatrix to_csr(const CooMatrix& coo) { return to_csr(backend::default_context(), coo); }
CooMatrix to_coo(const CsrMatrix& csr) { return to_coo(backend::default_context(), csr); }
CsrMatrix to_csr(const DenseMatrix& dense) {
    return to_csr(backend::default_context(), dense);
}
CooMatrix to_coo(const DenseMatrix& dense) {
    return to_coo(backend::default_context(), dense);
}
DenseMatrix to_dense(const CsrMatrix& csr) {
    return to_dense(backend::default_context(), csr);
}
DenseMatrix to_dense(const CooMatrix& coo) {
    return to_dense(backend::default_context(), coo);
}
BitBlockMatrix to_bitblocks(const CsrMatrix& csr) {
    return to_bitblocks(backend::default_context(), csr);
}
BitBlockMatrix to_bitblocks(const CooMatrix& coo) {
    return to_bitblocks(backend::default_context(), coo);
}
BitBlockMatrix to_bitblocks(const DenseMatrix& dense) {
    return to_bitblocks(backend::default_context(), dense);
}
CsrMatrix to_csr(const BitBlockMatrix& bb) {
    return to_csr(backend::default_context(), bb);
}
CooMatrix to_coo(const BitBlockMatrix& bb) {
    return to_coo(backend::default_context(), bb);
}
DenseMatrix to_dense(const BitBlockMatrix& bb) {
    return to_dense(backend::default_context(), bb);
}

}  // namespace spbla
