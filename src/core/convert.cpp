#include "core/convert.hpp"

namespace spbla {

CsrMatrix to_csr(const CooMatrix& coo) {
    std::vector<Index> row_offsets(static_cast<std::size_t>(coo.nrows()) + 1, 0);
    const auto rows = coo.rows();
    for (const auto r : rows) ++row_offsets[r + 1];
    for (Index r = 0; r < coo.nrows(); ++r) row_offsets[r + 1] += row_offsets[r];
    std::vector<Index> cols(coo.cols().begin(), coo.cols().end());
    return CsrMatrix::from_raw(coo.nrows(), coo.ncols(), std::move(row_offsets),
                               std::move(cols));
}

CooMatrix to_coo(const CsrMatrix& csr) {
    std::vector<Index> rows;
    rows.reserve(csr.nnz());
    for (Index r = 0; r < csr.nrows(); ++r) {
        rows.insert(rows.end(), csr.row_nnz(r), r);
    }
    std::vector<Index> cols(csr.cols().begin(), csr.cols().end());
    return CooMatrix::from_sorted(csr.nrows(), csr.ncols(), std::move(rows),
                                  std::move(cols));
}

CsrMatrix to_csr(const DenseMatrix& dense) {
    return CsrMatrix::from_coords(dense.nrows(), dense.ncols(), dense.to_coords());
}

CooMatrix to_coo(const DenseMatrix& dense) {
    return CooMatrix::from_coords(dense.nrows(), dense.ncols(), dense.to_coords());
}

DenseMatrix to_dense(const CsrMatrix& csr) {
    DenseMatrix out{csr.nrows(), csr.ncols()};
    for (Index r = 0; r < csr.nrows(); ++r) {
        for (const auto c : csr.row(r)) out.set(r, c);
    }
    return out;
}

DenseMatrix to_dense(const CooMatrix& coo) {
    DenseMatrix out{coo.nrows(), coo.ncols()};
    const auto rows = coo.rows();
    const auto cols = coo.cols();
    for (std::size_t k = 0; k < rows.size(); ++k) out.set(rows[k], cols[k]);
    return out;
}

}  // namespace spbla
