/// \file bitblocks.hpp
/// \brief Tiled 64x64 bit-matrix format — the broadword kernel tier's rep.
///
/// The matrix is a sparse grid of 64x64-bit tiles indexed CSR-of-blocks
/// style: block_row_offsets (brows + 1 entries) points into a flat array of
/// BlockRef descriptors sorted by block column within each block row. Each
/// non-empty tile is stored in one of two hybrid modes (Bit-GraphBLAS
/// style):
///
///  - Bitmap: 64 uint64_t words in the word pool — row r of the tile is one
///    word, bit c is column c (LSB-first, the DenseMatrix packing). One AND
///    or OR processes 64 Boolean cells; this is where the bit-parallel
///    multiply earns its speedup.
///  - Sparse: a sorted list of packed 12-bit (r << 6 | c) entries in the
///    entry pool — tiles with only a handful of set cells keep the
///    index-based layout and skip the 512-byte bitmap.
///
/// A tile flips to Bitmap at kBitmapMinNnz set cells: below that the
/// per-entry scatter loops beat whole-tile word sweeps and the sparse list
/// is 8-16x smaller; above it the broadword kernels win on both counts.
///
/// The grid carries only non-empty tiles, so hypersparse regions cost
/// nothing — the format degrades gracefully toward COO instead of toward
/// the dense bitmap's full-grid footprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace spbla {

/// Sparse grid of 64x64-bit tiles with hybrid bitmap/sparse tile storage.
class BitBlockMatrix {
public:
    /// Tile edge in cells; one machine word per tile row.
    static constexpr Index kBlockDim = 64;
    /// Words per bitmap tile.
    static constexpr std::size_t kBlockWords = 64;
    /// Cells per tile.
    static constexpr std::size_t kBlockCells = 4096;
    /// Tiles with at least this many set cells store a bitmap; sparser tiles
    /// keep the packed entry list.
    static constexpr std::uint32_t kBitmapMinNnz = 32;

    /// Storage mode of one tile.
    enum class BlockKind : std::uint8_t { Bitmap = 0, Sparse = 1 };

    /// Descriptor of one non-empty tile.
    struct BlockRef {
        Index bcol{0};            ///< block column of the tile
        std::uint32_t offset{0};  ///< start in the word pool (Bitmap) or entry pool (Sparse)
        std::uint16_t nnz{0};     ///< set cells in the tile (1..4096)
        BlockKind kind{BlockKind::Bitmap};

        friend bool operator==(const BlockRef&, const BlockRef&) = default;
    };

    /// Empty matrix of the given shape (no tiles).
    BitBlockMatrix(Index nrows, Index ncols);

    BitBlockMatrix() : BitBlockMatrix(0, 0) {}

    /// Build from an arbitrary coordinate list (sorted + deduplicated here).
    static BitBlockMatrix from_coords(Index nrows, Index ncols, std::vector<Coord> coords);

    /// Adopt raw pools without re-deriving them (validated in debug builds).
    /// \p blocks must be sorted by (block row, block column) consistent with
    /// \p block_row_offsets; bitmap tiles own 64-word ranges of \p words,
    /// sparse tiles own sorted ranges of \p entries (packed r << 6 | c).
    static BitBlockMatrix from_raw(Index nrows, Index ncols,
                                   std::vector<Index> block_row_offsets,
                                   std::vector<BlockRef> blocks,
                                   std::vector<std::uint64_t> words,
                                   std::vector<std::uint16_t> entries);

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return nnz_; }
    [[nodiscard]] bool empty() const noexcept { return nnz_ == 0; }

    /// Block-grid shape: ceil(nrows / 64) x ceil(ncols / 64).
    [[nodiscard]] Index brows() const noexcept { return brows_; }
    [[nodiscard]] Index bcols() const noexcept { return bcols_; }

    [[nodiscard]] std::span<const Index> block_row_offsets() const noexcept {
        return block_row_offsets_;
    }
    [[nodiscard]] std::span<const BlockRef> blocks() const noexcept { return blocks_; }

    /// Tiles of block row \p br, sorted by block column.
    [[nodiscard]] std::span<const BlockRef> block_row(Index br) const {
        check(br < brows_, Status::OutOfRange, "BitBlockMatrix::block_row");
        return std::span<const BlockRef>(blocks_).subspan(
            block_row_offsets_[br], block_row_offsets_[br + 1] - block_row_offsets_[br]);
    }

    /// The 64 words of a Bitmap tile.
    [[nodiscard]] std::span<const std::uint64_t> bitmap_words(const BlockRef& b) const {
        check(b.kind == BlockKind::Bitmap, Status::InvalidState,
              "BitBlockMatrix::bitmap_words: sparse tile");
        return std::span<const std::uint64_t>(words_).subspan(b.offset, kBlockWords);
    }

    /// The sorted packed (r << 6 | c) entries of a Sparse tile.
    [[nodiscard]] std::span<const std::uint16_t> sparse_entries(const BlockRef& b) const {
        check(b.kind == BlockKind::Sparse, Status::InvalidState,
              "BitBlockMatrix::sparse_entries: bitmap tile");
        return std::span<const std::uint16_t>(entries_).subspan(b.offset, b.nnz);
    }

    /// Materialise tile \p b (either kind) into a caller-owned 64-word
    /// scratch buffer (overwritten, not OR-ed).
    void expand(const BlockRef& b, std::uint64_t out[kBlockWords]) const;

    /// True iff cell (r, c) is set.
    [[nodiscard]] bool get(Index r, Index c) const;

    /// Export the coordinate list in (row, col) order.
    [[nodiscard]] std::vector<Coord> to_coords() const;

    /// Simulated device footprint: grid index + descriptors + both pools.
    [[nodiscard]] std::size_t device_bytes() const noexcept {
        return block_row_offsets_.size() * sizeof(Index) +
               blocks_.size() * sizeof(BlockRef) +
               words_.size() * sizeof(std::uint64_t) +
               entries_.size() * sizeof(std::uint16_t);
    }

    /// Check all storage invariants; throws Error(InvalidState) on violation.
    void validate() const;

    friend bool operator==(const BitBlockMatrix& a, const BitBlockMatrix& b) noexcept {
        return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
               a.block_row_offsets_ == b.block_row_offsets_ && a.blocks_ == b.blocks_ &&
               a.words_ == b.words_ && a.entries_ == b.entries_;
    }

private:
    Index nrows_;
    Index ncols_;
    Index brows_;
    Index bcols_;
    std::size_t nnz_{0};
    std::vector<Index> block_row_offsets_;  // size brows_ + 1, non-decreasing
    std::vector<BlockRef> blocks_;          // sorted by (brow, bcol)
    std::vector<std::uint64_t> words_;      // bitmap tile pool (64 words each)
    std::vector<std::uint16_t> entries_;    // sparse tile pool (packed r<<6|c)
};

}  // namespace spbla
