#include "core/dense.hpp"

#include "util/bit_ops.hpp"

namespace spbla {

DenseMatrix::DenseMatrix(Index nrows, Index ncols)
    : nrows_{nrows},
      ncols_{ncols},
      words_per_row_{(static_cast<std::size_t>(ncols) + 63) / 64},
      words_(static_cast<std::size_t>(nrows) * words_per_row_, 0) {}

std::size_t DenseMatrix::nnz() const noexcept {
    std::size_t total = 0;
    for (const auto w : words_) total += static_cast<std::size_t>(util::popcount64(w));
    return total;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
    check(ncols_ == other.nrows_, Status::DimensionMismatch, "DenseMatrix::multiply");
    DenseMatrix out{nrows_, other.ncols_};
    // Row-by-row: OR together the rows of `other` selected by this row's bits.
    for (Index i = 0; i < nrows_; ++i) {
        const std::size_t row_base = static_cast<std::size_t>(i) * words_per_row_;
        std::uint64_t* out_row = out.words_.data() +
                                 static_cast<std::size_t>(i) * out.words_per_row_;
        for (std::size_t w = 0; w < words_per_row_; ++w) {
            util::for_each_set_bit(words_[row_base + w], [&](unsigned bit) {
                const std::size_t k = w * 64 + bit;
                const std::uint64_t* b_row =
                    other.words_.data() + k * other.words_per_row_;
                for (std::size_t v = 0; v < other.words_per_row_; ++v) out_row[v] |= b_row[v];
            });
        }
    }
    return out;
}

DenseMatrix DenseMatrix::ewise_or(const DenseMatrix& other) const {
    check(nrows_ == other.nrows_ && ncols_ == other.ncols_, Status::DimensionMismatch,
          "DenseMatrix::ewise_or");
    DenseMatrix out{nrows_, ncols_};
    for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] | other.words_[w];
    return out;
}

DenseMatrix DenseMatrix::ewise_and(const DenseMatrix& other) const {
    check(nrows_ == other.nrows_ && ncols_ == other.ncols_, Status::DimensionMismatch,
          "DenseMatrix::ewise_and");
    DenseMatrix out{nrows_, ncols_};
    for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] & other.words_[w];
    return out;
}

DenseMatrix DenseMatrix::ewise_andnot(const DenseMatrix& other) const {
    check(nrows_ == other.nrows_ && ncols_ == other.ncols_, Status::DimensionMismatch,
          "DenseMatrix::ewise_andnot");
    DenseMatrix out{nrows_, ncols_};
    for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] & ~other.words_[w];
    return out;
}

Index DenseMatrix::row_nnz(Index r) const {
    check(r < nrows_, Status::OutOfRange, "DenseMatrix::row_nnz");
    const std::size_t row_base = static_cast<std::size_t>(r) * words_per_row_;
    Index total = 0;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
        total += static_cast<Index>(util::popcount64(words_[row_base + w]));
    }
    return total;
}

DenseMatrix DenseMatrix::kronecker(const DenseMatrix& other) const {
    DenseMatrix out{nrows_ * other.nrows_, ncols_ * other.ncols_};
    for (Index i1 = 0; i1 < nrows_; ++i1) {
        for (Index j1 = 0; j1 < ncols_; ++j1) {
            if (!get(i1, j1)) continue;
            for (Index i2 = 0; i2 < other.nrows_; ++i2) {
                for (Index j2 = 0; j2 < other.ncols_; ++j2) {
                    if (other.get(i2, j2)) {
                        out.set(i1 * other.nrows_ + i2, j1 * other.ncols_ + j2);
                    }
                }
            }
        }
    }
    return out;
}

DenseMatrix DenseMatrix::transpose() const {
    DenseMatrix out{ncols_, nrows_};
    for (Index r = 0; r < nrows_; ++r) {
        for (Index c = 0; c < ncols_; ++c) {
            if (get(r, c)) out.set(c, r);
        }
    }
    return out;
}

DenseMatrix DenseMatrix::submatrix(Index r0, Index c0, Index m, Index n) const {
    check(static_cast<std::size_t>(r0) + m <= nrows_ &&
              static_cast<std::size_t>(c0) + n <= ncols_,
          Status::OutOfRange, "DenseMatrix::submatrix");
    DenseMatrix out{m, n};
    for (Index r = 0; r < m; ++r) {
        for (Index c = 0; c < n; ++c) {
            if (get(r0 + r, c0 + c)) out.set(r, c);
        }
    }
    return out;
}

std::vector<Coord> DenseMatrix::to_coords() const {
    std::vector<Coord> out;
    for (Index r = 0; r < nrows_; ++r) {
        const std::size_t row_base = static_cast<std::size_t>(r) * words_per_row_;
        for (std::size_t w = 0; w < words_per_row_; ++w) {
            util::for_each_set_bit(words_[row_base + w], [&](unsigned bit) {
                out.push_back({r, static_cast<Index>(w * 64 + bit)});
            });
        }
    }
    return out;
}

}  // namespace spbla
