#include "core/bitblocks.hpp"

#include <algorithm>
#include <cstring>

#include "util/bit_ops.hpp"
#include "util/contracts.hpp"

namespace spbla {

namespace {

[[nodiscard]] constexpr Index blocks_of(Index cells) noexcept {
    return static_cast<Index>((static_cast<std::size_t>(cells) + 63) / 64);
}

/// Sort key grouping coords by tile, then by position within the tile:
/// 26 bits block row | 26 bits block col | 6 bits local row | 6 bits local
/// col. Packs the whole ordering into one uint64_t compare.
[[nodiscard]] constexpr std::uint64_t tile_key(Coord p) noexcept {
    return (static_cast<std::uint64_t>(p.row >> 6) << 38) |
           (static_cast<std::uint64_t>(p.col >> 6) << 12) |
           (static_cast<std::uint64_t>(p.row & 63) << 6) |
           static_cast<std::uint64_t>(p.col & 63);
}

}  // namespace

BitBlockMatrix::BitBlockMatrix(Index nrows, Index ncols)
    : nrows_{nrows},
      ncols_{ncols},
      brows_{blocks_of(nrows)},
      bcols_{blocks_of(ncols)},
      block_row_offsets_(static_cast<std::size_t>(blocks_of(nrows)) + 1, 0) {}

BitBlockMatrix BitBlockMatrix::from_coords(Index nrows, Index ncols,
                                           std::vector<Coord> coords) {
    for (const auto& p : coords) {
        check(p.row < nrows && p.col < ncols, Status::OutOfRange,
              "BitBlockMatrix::from_coords: coordinate out of range");
    }
    std::sort(coords.begin(), coords.end(),
              [](Coord a, Coord b) { return tile_key(a) < tile_key(b); });
    coords.erase(std::unique(coords.begin(), coords.end()), coords.end());

    BitBlockMatrix out{nrows, ncols};
    std::vector<Index> block_brows;  // block row of each emitted tile
    std::size_t i = 0;
    while (i < coords.size()) {
        const Index br = coords[i].row >> 6;
        const Index bc = coords[i].col >> 6;
        std::size_t j = i;
        while (j < coords.size() && (coords[j].row >> 6) == br &&
               (coords[j].col >> 6) == bc) {
            ++j;
        }
        const auto count = static_cast<std::uint32_t>(j - i);
        BlockRef ref{};
        ref.bcol = bc;
        ref.nnz = static_cast<std::uint16_t>(count);
        if (count >= kBitmapMinNnz) {
            ref.kind = BlockKind::Bitmap;
            ref.offset = static_cast<std::uint32_t>(out.words_.size());
            out.words_.resize(out.words_.size() + kBlockWords, 0);
            std::uint64_t* words = out.words_.data() + ref.offset;
            for (std::size_t k = i; k < j; ++k) {
                words[coords[k].row & 63] |= std::uint64_t{1} << (coords[k].col & 63);
            }
        } else {
            ref.kind = BlockKind::Sparse;
            ref.offset = static_cast<std::uint32_t>(out.entries_.size());
            for (std::size_t k = i; k < j; ++k) {
                out.entries_.push_back(static_cast<std::uint16_t>(
                    ((coords[k].row & 63) << 6) | (coords[k].col & 63)));
            }
        }
        out.blocks_.push_back(ref);
        block_brows.push_back(br);
        i = j;
    }
    for (const Index br : block_brows) ++out.block_row_offsets_[br + 1];
    for (Index b = 0; b < out.brows_; ++b) {
        out.block_row_offsets_[b + 1] += out.block_row_offsets_[b];
    }
    out.nnz_ = coords.size();
    return out;
}

BitBlockMatrix BitBlockMatrix::from_raw(Index nrows, Index ncols,
                                        std::vector<Index> block_row_offsets,
                                        std::vector<BlockRef> blocks,
                                        std::vector<std::uint64_t> words,
                                        std::vector<std::uint16_t> entries) {
    BitBlockMatrix out{nrows, ncols};
    out.block_row_offsets_ = std::move(block_row_offsets);
    out.blocks_ = std::move(blocks);
    out.words_ = std::move(words);
    out.entries_ = std::move(entries);
    out.nnz_ = 0;
    for (const auto& b : out.blocks_) out.nnz_ += b.nnz;
    // Adopted pools are trusted in the default build; SPBLA_CHECKS=full (and
    // classic debug builds) re-check every structural invariant here.
#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_FULL || !defined(NDEBUG)
    out.validate();
#endif
    return out;
}

void BitBlockMatrix::expand(const BlockRef& b, std::uint64_t out[kBlockWords]) const {
    if (b.kind == BlockKind::Bitmap) {
        std::memcpy(out, words_.data() + b.offset, kBlockWords * sizeof(std::uint64_t));
        return;
    }
    std::memset(out, 0, kBlockWords * sizeof(std::uint64_t));
    const std::uint16_t* e = entries_.data() + b.offset;
    for (std::uint16_t k = 0; k < b.nnz; ++k) {
        out[e[k] >> 6] |= std::uint64_t{1} << (e[k] & 63);
    }
}

bool BitBlockMatrix::get(Index r, Index c) const {
    check(r < nrows_ && c < ncols_, Status::OutOfRange, "BitBlockMatrix::get");
    const auto row = block_row(r >> 6);
    const Index bc = c >> 6;
    const auto it = std::lower_bound(
        row.begin(), row.end(), bc,
        [](const BlockRef& b, Index col) { return b.bcol < col; });
    if (it == row.end() || it->bcol != bc) return false;
    if (it->kind == BlockKind::Bitmap) {
        return (words_[it->offset + (r & 63)] >> (c & 63)) & 1u;
    }
    const auto packed = static_cast<std::uint16_t>(((r & 63) << 6) | (c & 63));
    const auto entries = sparse_entries(*it);
    return std::binary_search(entries.begin(), entries.end(), packed);
}

std::vector<Coord> BitBlockMatrix::to_coords() const {
    std::vector<Coord> out;
    out.reserve(nnz_);
    std::vector<std::uint64_t> scratch;
    for (Index br = 0; br < brows_; ++br) {
        const auto row = block_row(br);
        if (row.empty()) continue;
        // Expand the whole block row so cells stream out in global
        // (row, col) order even though tiles interleave the rows.
        scratch.assign(row.size() * kBlockWords, 0);
        for (std::size_t t = 0; t < row.size(); ++t) {
            expand(row[t], scratch.data() + t * kBlockWords);
        }
        const Index row_base = br * kBlockDim;
        for (Index rl = 0; rl < static_cast<Index>(kBlockDim); ++rl) {
            for (std::size_t t = 0; t < row.size(); ++t) {
                const Index col_base = row[t].bcol * kBlockDim;
                util::for_each_set_bit(scratch[t * kBlockWords + rl], [&](unsigned bit) {
                    out.push_back({row_base + rl, col_base + bit});
                });
            }
        }
    }
    return out;
}

void BitBlockMatrix::validate() const {
    check(block_row_offsets_.size() == static_cast<std::size_t>(brows_) + 1,
          Status::InvalidState, "BitBlockMatrix: bad block_row_offsets size");
    check(block_row_offsets_.front() == 0 &&
              block_row_offsets_.back() == blocks_.size(),
          Status::InvalidState, "BitBlockMatrix: bad block_row_offsets bounds");
    std::size_t total = 0;
    for (Index br = 0; br < brows_; ++br) {
        check(block_row_offsets_[br] <= block_row_offsets_[br + 1], Status::InvalidState,
              "BitBlockMatrix: decreasing block_row_offsets");
        // Edge tiles must not carry bits outside the matrix bounds.
        const bool edge_row = (br + 1 == brows_) && (nrows_ & 63) != 0;
        const std::uint64_t live_rows = nrows_ & 63;
        for (Index k = block_row_offsets_[br]; k < block_row_offsets_[br + 1]; ++k) {
            const BlockRef& b = blocks_[k];
            check(b.bcol < bcols_, Status::InvalidState,
                  "BitBlockMatrix: block column out of range");
            check(k == block_row_offsets_[br] || blocks_[k - 1].bcol < b.bcol,
                  Status::InvalidState, "BitBlockMatrix: unsorted block columns");
            check(b.nnz > 0 && b.nnz <= kBlockCells, Status::InvalidState,
                  "BitBlockMatrix: bad tile population");
            const bool edge_col = (b.bcol + 1 == bcols_) && (ncols_ & 63) != 0;
            const std::uint64_t col_mask =
                edge_col ? (std::uint64_t{1} << (ncols_ & 63)) - 1 : ~std::uint64_t{0};
            if (b.kind == BlockKind::Bitmap) {
                check(static_cast<std::size_t>(b.offset) + kBlockWords <= words_.size(),
                      Status::InvalidState, "BitBlockMatrix: bitmap offset out of pool");
                std::size_t pop = 0;
                for (std::size_t r = 0; r < kBlockWords; ++r) {
                    const std::uint64_t w = words_[b.offset + r];
                    check((w & ~col_mask) == 0, Status::InvalidState,
                          "BitBlockMatrix: bit outside column bounds");
                    check(!edge_row || r < live_rows || w == 0, Status::InvalidState,
                          "BitBlockMatrix: bit outside row bounds");
                    pop += static_cast<std::size_t>(util::popcount64(w));
                }
                check(pop == b.nnz, Status::InvalidState,
                      "BitBlockMatrix: bitmap population mismatch");
            } else {
                check(static_cast<std::size_t>(b.offset) + b.nnz <= entries_.size(),
                      Status::InvalidState, "BitBlockMatrix: entry offset out of pool");
                for (std::uint16_t e = 0; e < b.nnz; ++e) {
                    const std::uint16_t packed = entries_[b.offset + e];
                    check(packed < kBlockCells, Status::InvalidState,
                          "BitBlockMatrix: packed entry out of range");
                    check(e == 0 || entries_[b.offset + e - 1] < packed,
                          Status::InvalidState, "BitBlockMatrix: unsorted tile entries");
                    const Index rl = packed >> 6;
                    const Index cl = packed & 63;
                    check(br * kBlockDim + rl < nrows_ && b.bcol * kBlockDim + cl < ncols_,
                          Status::InvalidState, "BitBlockMatrix: entry outside bounds");
                }
            }
            total += b.nnz;
        }
    }
    check(total == nnz_, Status::InvalidState, "BitBlockMatrix: nnz mismatch");
}

}  // namespace spbla
