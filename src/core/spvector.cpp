#include "core/spvector.hpp"

#include <algorithm>

namespace spbla {

SpVector SpVector::from_indices(Index size, std::vector<Index> indices) {
    for (const auto i : indices) {
        check(i < size, Status::OutOfRange, "SpVector::from_indices: index out of range");
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    SpVector v{size};
    v.indices_ = std::move(indices);
    return v;
}

bool SpVector::get(Index i) const {
    check(i < size_, Status::OutOfRange, "SpVector::get: index out of range");
    return std::binary_search(indices_.begin(), indices_.end(), i);
}

SpVector SpVector::ewise_or(const SpVector& other) const {
    check(size_ == other.size_, Status::DimensionMismatch, "SpVector::ewise_or");
    SpVector out{size_};
    out.indices_.reserve(indices_.size() + other.indices_.size());
    std::set_union(indices_.begin(), indices_.end(), other.indices_.begin(),
                   other.indices_.end(), std::back_inserter(out.indices_));
    return out;
}

SpVector SpVector::ewise_and(const SpVector& other) const {
    check(size_ == other.size_, Status::DimensionMismatch, "SpVector::ewise_and");
    SpVector out{size_};
    std::set_intersection(indices_.begin(), indices_.end(), other.indices_.begin(),
                          other.indices_.end(), std::back_inserter(out.indices_));
    return out;
}

void SpVector::validate() const {
    for (std::size_t k = 0; k < indices_.size(); ++k) {
        check(indices_[k] < size_, Status::InvalidState, "SpVector: index out of range");
        if (k > 0) {
            check(indices_[k - 1] < indices_[k], Status::InvalidState,
                  "SpVector: indices must be strictly increasing");
        }
    }
}

}  // namespace spbla
