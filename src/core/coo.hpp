/// \file coo.hpp
/// \brief Coordinate-format (COO) sparse Boolean matrix — the clBool format.
///
/// Entries are stored as two parallel index arrays (rows, cols), sorted by
/// (row, col) with no duplicates. For a matrix with nnz non-zeros the device
/// footprint is 2 * nnz * sizeof(Index) bytes; the paper selects this format
/// for clBool because it beats CSR on very sparse matrices with many empty
/// rows (no m+1 row-pointer array).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace spbla {

/// Sorted, duplicate-free COO Boolean matrix.
class CooMatrix {
public:
    /// Empty matrix of the given shape.
    CooMatrix(Index nrows, Index ncols);

    CooMatrix() : CooMatrix(0, 0) {}

    /// Build from an arbitrary (unsorted, possibly duplicated) coordinate
    /// list; out-of-range coordinates raise Status::OutOfRange.
    static CooMatrix from_coords(Index nrows, Index ncols, std::vector<Coord> coords);

    /// Adopt pre-sorted duplicate-free parallel arrays without re-checking
    /// (validated in debug builds via validate()).
    static CooMatrix from_sorted(Index nrows, Index ncols, std::vector<Index> rows,
                                 std::vector<Index> cols);

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return rows_.size(); }
    [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

    [[nodiscard]] std::span<const Index> rows() const noexcept { return rows_; }
    [[nodiscard]] std::span<const Index> cols() const noexcept { return cols_; }

    /// True iff cell (r, c) is set (binary search; O(log nnz)).
    [[nodiscard]] bool get(Index r, Index c) const;

    /// Export the coordinate list in (row, col) order.
    [[nodiscard]] std::vector<Coord> to_coords() const;

    /// Simulated device memory footprint in bytes: 2 * nnz * sizeof(Index).
    [[nodiscard]] std::size_t device_bytes() const noexcept {
        return 2 * rows_.size() * sizeof(Index);
    }

    /// Check all storage invariants; throws Error on violation.
    void validate() const;

    friend bool operator==(const CooMatrix& a, const CooMatrix& b) noexcept {
        return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.rows_ == b.rows_ &&
               a.cols_ == b.cols_;
    }

private:
    Index nrows_;
    Index ncols_;
    std::vector<Index> rows_;
    std::vector<Index> cols_;
};

}  // namespace spbla
