/// \file dense.hpp
/// \brief Dense bit-packed Boolean matrix.
///
/// Used as (a) the exhaustive reference implementation every sparse kernel
/// is tested against, and (b) the dense fallback for pathologically dense
/// rows inside the hash SpGEMM (the Nsparse "global memory bin" analog).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace spbla {

/// Row-major bit-packed dense Boolean matrix.
class DenseMatrix {
public:
    DenseMatrix(Index nrows, Index ncols);

    DenseMatrix() : DenseMatrix(0, 0) {}

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }

    [[nodiscard]] bool get(Index r, Index c) const {
        check(r < nrows_ && c < ncols_, Status::OutOfRange, "DenseMatrix::get");
        return (words_[word_index(r, c)] >> (c & 63)) & 1u;
    }

    void set(Index r, Index c, bool value = true) {
        check(r < nrows_ && c < ncols_, Status::OutOfRange, "DenseMatrix::set");
        const std::uint64_t mask = std::uint64_t{1} << (c & 63);
        if (value)
            words_[word_index(r, c)] |= mask;
        else
            words_[word_index(r, c)] &= ~mask;
    }

    /// Number of true cells.
    [[nodiscard]] std::size_t nnz() const noexcept;

    /// Boolean matrix multiply: this (m x k) times other (k x n).
    [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

    /// Element-wise OR; shapes must match.
    [[nodiscard]] DenseMatrix ewise_or(const DenseMatrix& other) const;

    /// Kronecker product.
    [[nodiscard]] DenseMatrix kronecker(const DenseMatrix& other) const;

    /// Transpose.
    [[nodiscard]] DenseMatrix transpose() const;

    /// Sub-matrix of shape (m x n) anchored at (r0, c0).
    [[nodiscard]] DenseMatrix submatrix(Index r0, Index c0, Index m, Index n) const;

    /// Coordinate list of all true cells in (row, col) order.
    [[nodiscard]] std::vector<Coord> to_coords() const;

    friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) noexcept {
        return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.words_ == b.words_;
    }

private:
    [[nodiscard]] std::size_t word_index(Index r, Index c) const noexcept {
        return static_cast<std::size_t>(r) * words_per_row_ + (c >> 6);
    }

    Index nrows_;
    Index ncols_;
    std::size_t words_per_row_;
    std::vector<std::uint64_t> words_;
};

}  // namespace spbla
