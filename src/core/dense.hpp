/// \file dense.hpp
/// \brief Dense bit-packed Boolean matrix.
///
/// Used as (a) the exhaustive reference implementation every sparse kernel
/// is tested against, and (b) the dense fallback for pathologically dense
/// rows inside the hash SpGEMM (the Nsparse "global memory bin" analog).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace spbla {

/// Row-major bit-packed dense Boolean matrix.
class DenseMatrix {
public:
    DenseMatrix(Index nrows, Index ncols);

    DenseMatrix() : DenseMatrix(0, 0) {}

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }

    [[nodiscard]] bool get(Index r, Index c) const {
        check(r < nrows_ && c < ncols_, Status::OutOfRange, "DenseMatrix::get");
        return (words_[word_index(r, c)] >> (c & 63)) & 1u;
    }

    void set(Index r, Index c, bool value = true) {
        check(r < nrows_ && c < ncols_, Status::OutOfRange, "DenseMatrix::set");
        const std::uint64_t mask = std::uint64_t{1} << (c & 63);
        if (value)
            words_[word_index(r, c)] |= mask;
        else
            words_[word_index(r, c)] &= ~mask;
    }

    /// Number of true cells.
    [[nodiscard]] std::size_t nnz() const noexcept;

    /// Number of true cells in row \p r (popcount over the row's words).
    [[nodiscard]] Index row_nnz(Index r) const;

    /// The packed words of row \p r (64 columns per word, LSB-first).
    [[nodiscard]] std::span<const std::uint64_t> row_words(Index r) const {
        check(r < nrows_, Status::OutOfRange, "DenseMatrix::row_words");
        return std::span<const std::uint64_t>(words_)
            .subspan(static_cast<std::size_t>(r) * words_per_row_, words_per_row_);
    }

    /// Boolean matrix multiply: this (m x k) times other (k x n).
    [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

    /// Element-wise OR; shapes must match.
    [[nodiscard]] DenseMatrix ewise_or(const DenseMatrix& other) const;

    /// Element-wise AND; shapes must match.
    [[nodiscard]] DenseMatrix ewise_and(const DenseMatrix& other) const;

    /// Element-wise difference (this AND NOT other); shapes must match.
    [[nodiscard]] DenseMatrix ewise_andnot(const DenseMatrix& other) const;

    /// Kronecker product.
    [[nodiscard]] DenseMatrix kronecker(const DenseMatrix& other) const;

    /// Transpose.
    [[nodiscard]] DenseMatrix transpose() const;

    /// Sub-matrix of shape (m x n) anchored at (r0, c0).
    [[nodiscard]] DenseMatrix submatrix(Index r0, Index c0, Index m, Index n) const;

    /// Coordinate list of all true cells in (row, col) order.
    [[nodiscard]] std::vector<Coord> to_coords() const;

    /// Simulated device footprint: one word per 64 columns per row.
    [[nodiscard]] std::size_t device_bytes() const noexcept {
        return words_.size() * sizeof(std::uint64_t);
    }

    friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) noexcept {
        return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.words_ == b.words_;
    }

private:
    [[nodiscard]] std::size_t word_index(Index r, Index c) const noexcept {
        return static_cast<std::size_t>(r) * words_per_row_ + (c >> 6);
    }

    Index nrows_;
    Index ncols_;
    std::size_t words_per_row_;
    std::vector<std::uint64_t> words_;
};

}  // namespace spbla
