#include "core/validate.hpp"

namespace spbla::core {

void validate(const CsrMatrix& m) { m.validate(); }

void validate(const CooMatrix& m) { m.validate(); }

void validate(const BitBlockMatrix& m) { m.validate(); }

void validate(const SpVector& v) { v.validate(); }

}  // namespace spbla::core
