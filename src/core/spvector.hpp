/// \file spvector.hpp
/// \brief Sparse Boolean vector.
///
/// The paper notes the sparse vector is "partially presented" in SPbLA with
/// full support planned; this reproduction provides the primitive plus the
/// vector ops the path-querying layer needs (reduce target, mxv/vxm source).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace spbla {

/// Sorted, duplicate-free set of indices representing a Boolean vector.
class SpVector {
public:
    explicit SpVector(Index size) : size_{size} {}

    SpVector() : SpVector(0) {}

    /// Build from arbitrary (unsorted, possibly duplicated) index list.
    static SpVector from_indices(Index size, std::vector<Index> indices);

    [[nodiscard]] Index size() const noexcept { return size_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return indices_.size(); }
    [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }
    [[nodiscard]] std::span<const Index> indices() const noexcept { return indices_; }

    /// True iff element \p i is set.
    [[nodiscard]] bool get(Index i) const;

    /// Element-wise OR of two vectors of equal size.
    [[nodiscard]] SpVector ewise_or(const SpVector& other) const;

    /// Element-wise AND of two vectors of equal size.
    [[nodiscard]] SpVector ewise_and(const SpVector& other) const;

    /// Simulated device footprint: nnz * sizeof(Index).
    [[nodiscard]] std::size_t device_bytes() const noexcept {
        return indices_.size() * sizeof(Index);
    }

    /// Check invariants: sorted, unique, in range.
    void validate() const;

    friend bool operator==(const SpVector& a, const SpVector& b) noexcept {
        return a.size_ == b.size_ && a.indices_ == b.indices_;
    }

private:
    Index size_;
    std::vector<Index> indices_;
};

}  // namespace spbla
