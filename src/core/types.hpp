/// \file types.hpp
/// \brief Common index types, status codes and error handling.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace spbla {

/// Index type of stored rows/columns. The paper stores matrices as
/// uint32_t indices; a matrix of size m x n with nnz non-zeros occupies
/// (m + nnz) * sizeof(Index) bytes in CSR and 2 * nnz * sizeof(Index) in COO.
using Index = std::uint32_t;

/// A (row, column) coordinate of a true cell.
struct Coord {
    Index row{0};
    Index col{0};

    friend constexpr bool operator==(const Coord&, const Coord&) = default;
    friend constexpr auto operator<=>(const Coord& a, const Coord& b) {
        if (auto c = a.row <=> b.row; c != 0) return c;
        return a.col <=> b.col;
    }
};

/// Status codes surfaced verbatim through the C API.
enum class Status : int {
    Ok = 0,
    InvalidArgument = 1,
    DimensionMismatch = 2,
    OutOfRange = 3,
    NotInitialized = 4,
    InvalidState = 5,
};

/// Human-readable name of a status code.
[[nodiscard]] constexpr const char* status_name(Status s) noexcept {
    switch (s) {
        case Status::Ok: return "Ok";
        case Status::InvalidArgument: return "InvalidArgument";
        case Status::DimensionMismatch: return "DimensionMismatch";
        case Status::OutOfRange: return "OutOfRange";
        case Status::NotInitialized: return "NotInitialized";
        case Status::InvalidState: return "InvalidState";
    }
    return "Unknown";
}

/// Exception carrying a Status; the C API boundary converts it to a code.
class Error : public std::runtime_error {
public:
    Error(Status status, std::string message)
        : std::runtime_error(std::move(message)), status_{status} {}

    [[nodiscard]] Status status() const noexcept { return status_; }

private:
    Status status_;
};

/// Throw Error(status, message) if \p condition is false.
inline void check(bool condition, Status status, const char* message) {
    if (!condition) throw Error(status, message);
}

/// Overload for dynamically built messages.
inline void check(bool condition, Status status, const std::string& message) {
    if (!condition) throw Error(status, message);
}

}  // namespace spbla
