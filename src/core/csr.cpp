#include "core/csr.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace spbla {

CsrMatrix::CsrMatrix(Index nrows, Index ncols)
    : nrows_{nrows}, ncols_{ncols}, row_offsets_(static_cast<std::size_t>(nrows) + 1, 0) {}

CsrMatrix CsrMatrix::from_coords(Index nrows, Index ncols, std::vector<Coord> coords) {
    for (const auto& c : coords) {
        check(c.row < nrows && c.col < ncols, Status::OutOfRange,
              "CsrMatrix::from_coords: coordinate out of range");
    }
    std::sort(coords.begin(), coords.end());
    coords.erase(std::unique(coords.begin(), coords.end()), coords.end());

    CsrMatrix m{nrows, ncols};
    m.cols_.reserve(coords.size());
    for (const auto& c : coords) {
        ++m.row_offsets_[c.row + 1];
        m.cols_.push_back(c.col);
    }
    for (std::size_t r = 0; r < nrows; ++r) m.row_offsets_[r + 1] += m.row_offsets_[r];
    return m;
}

CsrMatrix CsrMatrix::from_raw(Index nrows, Index ncols, std::vector<Index> row_offsets,
                              std::vector<Index> cols) {
    CsrMatrix m{nrows, ncols};
    m.row_offsets_ = std::move(row_offsets);
    m.cols_ = std::move(cols);
    // Adopted arrays are trusted in the default build; SPBLA_CHECKS=full (and
    // classic debug builds) re-check every structural invariant here.
#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_FULL || !defined(NDEBUG)
    m.validate();
#endif
    return m;
}

CsrMatrix CsrMatrix::identity(Index n) {
    CsrMatrix m{n, n};
    m.cols_.resize(n);
    for (Index i = 0; i < n; ++i) {
        m.row_offsets_[i + 1] = i + 1;
        m.cols_[i] = i;
    }
    return m;
}

bool CsrMatrix::get(Index r, Index c) const {
    check(r < nrows_ && c < ncols_, Status::OutOfRange, "CsrMatrix::get: out of range");
    const auto cols = row(r);
    return std::binary_search(cols.begin(), cols.end(), c);
}

std::vector<Coord> CsrMatrix::to_coords() const {
    std::vector<Coord> out;
    out.reserve(cols_.size());
    for (Index r = 0; r < nrows_; ++r) {
        for (Index k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
            out.push_back({r, cols_[k]});
        }
    }
    return out;
}

void CsrMatrix::validate() const {
    check(row_offsets_.size() == static_cast<std::size_t>(nrows_) + 1, Status::InvalidState,
          "CsrMatrix: row_offsets size must be nrows + 1");
    check(row_offsets_.front() == 0, Status::InvalidState,
          "CsrMatrix: row_offsets[0] must be 0");
    check(row_offsets_.back() == cols_.size(), Status::InvalidState,
          "CsrMatrix: row_offsets[nrows] must equal nnz");
    for (Index r = 0; r < nrows_; ++r) {
        check(row_offsets_[r] <= row_offsets_[r + 1], Status::InvalidState,
              "CsrMatrix: row_offsets must be non-decreasing");
        for (Index k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
            check(cols_[k] < ncols_, Status::InvalidState,
                  "CsrMatrix: column index out of range");
            if (k > row_offsets_[r]) {
                check(cols_[k - 1] < cols_[k], Status::InvalidState,
                      "CsrMatrix: columns must be strictly increasing within a row");
            }
        }
    }
}

}  // namespace spbla
