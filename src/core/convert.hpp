/// \file convert.hpp
/// \brief Conversions between the storage formats.
///
/// cuBool (CSR) and clBool (COO) are distinct backends in the paper; this
/// reproduction keeps both formats first-class and converts losslessly
/// between them and the dense reference.
#pragma once

#include "core/coo.hpp"
#include "core/csr.hpp"
#include "core/dense.hpp"

namespace spbla {

/// COO -> CSR (O(nnz)).
[[nodiscard]] CsrMatrix to_csr(const CooMatrix& coo);

/// CSR -> COO (O(nnz)).
[[nodiscard]] CooMatrix to_coo(const CsrMatrix& csr);

/// Dense -> CSR.
[[nodiscard]] CsrMatrix to_csr(const DenseMatrix& dense);

/// Dense -> COO.
[[nodiscard]] CooMatrix to_coo(const DenseMatrix& dense);

/// CSR -> dense.
[[nodiscard]] DenseMatrix to_dense(const CsrMatrix& csr);

/// COO -> dense.
[[nodiscard]] DenseMatrix to_dense(const CooMatrix& coo);

}  // namespace spbla
