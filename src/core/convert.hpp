/// \file convert.hpp
/// \brief Conversions between the storage formats.
///
/// cuBool (CSR) and clBool (COO) are distinct backends in the paper; this
/// reproduction keeps both formats first-class and converts losslessly
/// between them and the dense reference. The Context& overloads run on the
/// device pool (parallel row passes + exclusive scan) — they are the hot
/// path of the storage engine's format dispatch; the context-free overloads
/// delegate to the process default context.
#pragma once

#include "backend/context.hpp"
#include "core/bitblocks.hpp"
#include "core/coo.hpp"
#include "core/csr.hpp"
#include "core/dense.hpp"

namespace spbla {

/// COO -> CSR (O(nnz) work, parallel row-pointer search + copy).
[[nodiscard]] CsrMatrix to_csr(backend::Context& ctx, const CooMatrix& coo);

/// CSR -> COO (O(nnz) work, parallel row expansion).
[[nodiscard]] CooMatrix to_coo(backend::Context& ctx, const CsrMatrix& csr);

/// Dense -> CSR (parallel popcount + exclusive scan + parallel bit scatter).
[[nodiscard]] CsrMatrix to_csr(backend::Context& ctx, const DenseMatrix& dense);

/// Dense -> COO.
[[nodiscard]] CooMatrix to_coo(backend::Context& ctx, const DenseMatrix& dense);

/// CSR -> dense (parallel per-row bit fill).
[[nodiscard]] DenseMatrix to_dense(backend::Context& ctx, const CsrMatrix& csr);

/// COO -> dense.
[[nodiscard]] DenseMatrix to_dense(backend::Context& ctx, const CooMatrix& coo);

/// CSR -> BitBlocks (parallel per-block-row tiling; hybrid tiles chosen by
/// population against BitBlockMatrix::kBitmapMinNnz).
[[nodiscard]] BitBlockMatrix to_bitblocks(backend::Context& ctx, const CsrMatrix& csr);

/// COO -> BitBlocks.
[[nodiscard]] BitBlockMatrix to_bitblocks(backend::Context& ctx, const CooMatrix& coo);

/// Dense -> BitBlocks (tile columns align with the dense word columns, so
/// bitmap tiles are straight word gathers).
[[nodiscard]] BitBlockMatrix to_bitblocks(backend::Context& ctx, const DenseMatrix& dense);

/// BitBlocks -> CSR (parallel per-block-row expansion).
[[nodiscard]] CsrMatrix to_csr(backend::Context& ctx, const BitBlockMatrix& bb);

/// BitBlocks -> COO.
[[nodiscard]] CooMatrix to_coo(backend::Context& ctx, const BitBlockMatrix& bb);

/// BitBlocks -> dense.
[[nodiscard]] DenseMatrix to_dense(backend::Context& ctx, const BitBlockMatrix& bb);

/// Context-free conveniences (default context's pool).
[[nodiscard]] CsrMatrix to_csr(const CooMatrix& coo);
[[nodiscard]] CooMatrix to_coo(const CsrMatrix& csr);
[[nodiscard]] CsrMatrix to_csr(const DenseMatrix& dense);
[[nodiscard]] CooMatrix to_coo(const DenseMatrix& dense);
[[nodiscard]] DenseMatrix to_dense(const CsrMatrix& csr);
[[nodiscard]] DenseMatrix to_dense(const CooMatrix& coo);
[[nodiscard]] BitBlockMatrix to_bitblocks(const CsrMatrix& csr);
[[nodiscard]] BitBlockMatrix to_bitblocks(const CooMatrix& coo);
[[nodiscard]] BitBlockMatrix to_bitblocks(const DenseMatrix& dense);
[[nodiscard]] CsrMatrix to_csr(const BitBlockMatrix& bb);
[[nodiscard]] CooMatrix to_coo(const BitBlockMatrix& bb);
[[nodiscard]] DenseMatrix to_dense(const BitBlockMatrix& bb);

}  // namespace spbla
