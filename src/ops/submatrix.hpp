/// \file submatrix.hpp
/// \brief Sub-matrix extraction M = N[i..i+m, j..j+n].
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// Extract the m x n sub-matrix of \p src anchored at (row0, col0).
[[nodiscard]] CsrMatrix submatrix(backend::Context& ctx, const CsrMatrix& src, Index row0,
                                  Index col0, Index m, Index n);

}  // namespace spbla::ops
