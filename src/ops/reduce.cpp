#include "ops/reduce.hpp"

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

SpVector reduce_to_column(backend::Context& ctx, const CsrMatrix& m) {
    (void)ctx;
    SPBLA_VALIDATE(m);
    SPBLA_PROF_SPAN("reduce.to_column");
    SPBLA_PROF_COUNT(nnz_in, m.nnz());
    std::vector<Index> indices;
    for (Index r = 0; r < m.nrows(); ++r) {
        if (m.row_nnz(r) > 0) indices.push_back(r);
    }
    SPBLA_PROF_COUNT(nnz_out, indices.size());
    SpVector out = SpVector::from_indices(m.nrows(), std::move(indices));
    SPBLA_VALIDATE(out);
    return out;
}

SpVector reduce_to_row(backend::Context& ctx, const CsrMatrix& m) {
    (void)ctx;
    SPBLA_VALIDATE(m);
    SPBLA_PROF_SPAN("reduce.to_row");
    SPBLA_PROF_COUNT(nnz_in, m.nnz());
    std::vector<bool> seen(m.ncols(), false);
    for (const auto c : m.cols()) seen[c] = true;
    std::vector<Index> indices;
    for (Index c = 0; c < m.ncols(); ++c) {
        if (seen[c]) indices.push_back(c);
    }
    SPBLA_PROF_COUNT(nnz_out, indices.size());
    SpVector out = SpVector::from_indices(m.ncols(), std::move(indices));
    SPBLA_VALIDATE(out);
    return out;
}

std::size_t reduce_scalar(const CsrMatrix& m) noexcept { return m.nnz(); }

}  // namespace spbla::ops
