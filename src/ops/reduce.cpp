#include "ops/reduce.hpp"

#include <algorithm>
#include <vector>

namespace spbla::ops {

SpVector reduce_to_column(backend::Context& ctx, const CsrMatrix& m) {
    (void)ctx;
    std::vector<Index> indices;
    for (Index r = 0; r < m.nrows(); ++r) {
        if (m.row_nnz(r) > 0) indices.push_back(r);
    }
    return SpVector::from_indices(m.nrows(), std::move(indices));
}

SpVector reduce_to_row(backend::Context& ctx, const CsrMatrix& m) {
    (void)ctx;
    std::vector<bool> seen(m.ncols(), false);
    for (const auto c : m.cols()) seen[c] = true;
    std::vector<Index> indices;
    for (Index c = 0; c < m.ncols(); ++c) {
        if (seen[c]) indices.push_back(c);
    }
    return SpVector::from_indices(m.ncols(), std::move(indices));
}

std::size_t reduce_scalar(const CsrMatrix& m) noexcept { return m.nnz(); }

}  // namespace spbla::ops
