#include "ops/mxv.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

SpVector mxv(backend::Context& ctx, const CsrMatrix& m, const SpVector& x) {
    SPBLA_REQUIRE(m.ncols() == x.size(), Status::DimensionMismatch,
                  "mxv: shape mismatch");
    SPBLA_VALIDATE(m);
    SPBLA_VALIDATE(x);
    SPBLA_PROF_SPAN("mxv");
    SPBLA_PROF_COUNT(nnz_in, m.nnz() + x.nnz());
    const auto xs = x.indices();
    std::vector<std::uint8_t> hit(m.nrows(), 0);
    ctx.parallel_for(m.nrows(), 512, [&](std::size_t i) {
        const auto row = m.row(static_cast<Index>(i));
        // Intersect the sorted row with the sorted frontier.
        std::size_t a = 0, b = 0;
        while (a < row.size() && b < xs.size()) {
            if (row[a] < xs[b])
                ++a;
            else if (xs[b] < row[a])
                ++b;
            else {
                hit[i] = 1;
                break;
            }
        }
    });
    std::vector<Index> out;
    for (Index i = 0; i < m.nrows(); ++i) {
        if (hit[i]) out.push_back(i);
    }
    SPBLA_PROF_COUNT(nnz_out, out.size());
    SpVector result = SpVector::from_indices(m.nrows(), std::move(out));
    SPBLA_VALIDATE(result);
    return result;
}

SpVector vxm(backend::Context& ctx, const SpVector& x, const CsrMatrix& m) {
    (void)ctx;
    SPBLA_REQUIRE(m.nrows() == x.size(), Status::DimensionMismatch,
                  "vxm: shape mismatch");
    SPBLA_VALIDATE(m);
    SPBLA_VALIDATE(x);
    SPBLA_PROF_SPAN("vxm");
    SPBLA_PROF_COUNT(nnz_in, m.nnz() + x.nnz());
    // Union of the rows selected by the frontier.
    std::vector<std::uint8_t> hit(m.ncols(), 0);
    for (const auto i : x.indices()) {
        for (const auto c : m.row(i)) hit[c] = 1;
    }
    std::vector<Index> out;
    for (Index c = 0; c < m.ncols(); ++c) {
        if (hit[c]) out.push_back(c);
    }
    SPBLA_PROF_COUNT(nnz_out, out.size());
    SpVector result = SpVector::from_indices(m.ncols(), std::move(out));
    SPBLA_VALIDATE(result);
    return result;
}

}  // namespace spbla::ops
