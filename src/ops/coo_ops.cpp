#include "ops/coo_ops.hpp"

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {
namespace {

/// Row segment offsets of a (row, col)-sorted COO matrix: offsets[r] is the
/// first entry of row r; size nrows + 1.
std::vector<std::size_t> row_segments(const CooMatrix& m) {
    std::vector<std::size_t> offsets(static_cast<std::size_t>(m.nrows()) + 1, 0);
    for (const auto r : m.rows()) ++offsets[r + 1];
    for (Index r = 0; r < m.nrows(); ++r) offsets[r + 1] += offsets[r];
    return offsets;
}

}  // namespace

CooMatrix multiply(backend::Context& ctx, const CooMatrix& a, const CooMatrix& b) {
    SPBLA_REQUIRE(a.ncols() == b.nrows(), Status::DimensionMismatch,
                  "coo multiply: A.ncols must equal B.nrows");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("coo.multiply");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());
    const auto b_offsets = row_segments(b);
    const auto a_rows = a.rows();
    const auto a_cols = a.cols();
    const auto b_cols = b.cols();

    // Expand: one packed (row, col) key per partial product. The buffer is
    // proportional to the raw product count — the same transient-memory
    // trade-off the paper describes for the one-pass COO addition.
    std::size_t products = 0;
    for (const auto k : a_cols) products += b_offsets[k + 1] - b_offsets[k];
    SPBLA_PROF_COUNT(esc_products, products);
    auto keys = ctx.alloc<std::uint64_t>(products);

    std::size_t out = 0;
    for (std::size_t e = 0; e < a_rows.size(); ++e) {
        const std::uint64_t row_base =
            static_cast<std::uint64_t>(a_rows[e]) * b.ncols();
        for (std::size_t t = b_offsets[a_cols[e]]; t < b_offsets[a_cols[e] + 1]; ++t) {
            keys[out++] = row_base + b_cols[t];
        }
    }

    // Sort-deduplicate: the whole "numeric" phase of a Boolean ESC — there
    // are no values to combine.
    std::sort(keys.begin(), keys.end());
    const auto unique_end = std::unique(keys.begin(), keys.end());
    const auto distinct =
        static_cast<std::size_t>(std::distance(keys.begin(), unique_end));
    SPBLA_PROF_COUNT(nnz_out, distinct);

    std::vector<Index> rows(distinct);
    std::vector<Index> cols(distinct);
    for (std::size_t k = 0; k < distinct; ++k) {
        rows[k] = static_cast<Index>(keys[k] / b.ncols());
        cols[k] = static_cast<Index>(keys[k] % b.ncols());
    }
    CooMatrix result = CooMatrix::from_sorted(a.nrows(), b.ncols(), std::move(rows),
                                              std::move(cols));
    SPBLA_VALIDATE(result);
    return result;
}

CooMatrix transpose(backend::Context& ctx, const CooMatrix& n) {
    SPBLA_VALIDATE(n);
    SPBLA_PROF_SPAN("coo.transpose");
    SPBLA_PROF_COUNT(nnz_in, n.nnz());
    SPBLA_PROF_COUNT(nnz_out, n.nnz());
    // Pack as (col, row) keys and sort — simple and exactly nnz extra words.
    auto keys = ctx.alloc<std::uint64_t>(n.nnz());
    const auto rows = n.rows();
    const auto cols = n.cols();
    for (std::size_t k = 0; k < rows.size(); ++k) {
        keys[k] = (static_cast<std::uint64_t>(cols[k]) << 32) | rows[k];
    }
    std::sort(keys.begin(), keys.end());
    std::vector<Index> out_rows(n.nnz());
    std::vector<Index> out_cols(n.nnz());
    for (std::size_t k = 0; k < n.nnz(); ++k) {
        out_rows[k] = static_cast<Index>(keys[k] >> 32);
        out_cols[k] = static_cast<Index>(keys[k] & 0xFFFFFFFFu);
    }
    CooMatrix result = CooMatrix::from_sorted(n.ncols(), n.nrows(), std::move(out_rows),
                                              std::move(out_cols));
    SPBLA_VALIDATE(result);
    return result;
}

CooMatrix submatrix(backend::Context& ctx, const CooMatrix& src, Index row0, Index col0,
                    Index m, Index n) {
    (void)ctx;
    SPBLA_REQUIRE(static_cast<std::uint64_t>(row0) + m <= src.nrows() &&
                      static_cast<std::uint64_t>(col0) + n <= src.ncols(),
                  Status::OutOfRange, "coo submatrix: window exceeds source shape");
    SPBLA_VALIDATE(src);
    std::vector<Index> rows;
    std::vector<Index> cols;
    const auto src_rows = src.rows();
    const auto src_cols = src.cols();
    for (std::size_t k = 0; k < src_rows.size(); ++k) {
        const Index r = src_rows[k];
        const Index c = src_cols[k];
        if (r >= row0 && r < row0 + m && c >= col0 && c < col0 + n) {
            rows.push_back(r - row0);
            cols.push_back(c - col0);
        }
    }
    CooMatrix result = CooMatrix::from_sorted(m, n, std::move(rows), std::move(cols));
    SPBLA_VALIDATE(result);
    return result;
}

SpVector reduce_to_column(backend::Context& ctx, const CooMatrix& m) {
    (void)ctx;
    SPBLA_VALIDATE(m);
    std::vector<Index> indices;
    Index last = 0;
    bool have_last = false;
    for (const auto r : m.rows()) {  // rows are sorted; emit each once
        if (!have_last || r != last) {
            indices.push_back(r);
            last = r;
            have_last = true;
        }
    }
    SpVector out = SpVector::from_indices(m.nrows(), std::move(indices));
    SPBLA_VALIDATE(out);
    return out;
}

}  // namespace spbla::ops
