/// \file ewise_mult.hpp
/// \brief Element-wise Boolean multiplication (AND) — sparse intersection.
///
/// Part of the "library extension up to full GraphBLAS API" direction the
/// paper's conclusion names: GraphBLAS eWiseMult over the Boolean semiring.
/// Implemented as a two-pass per-row sorted intersection (same launch shape
/// as the addition kernel, but the result can only shrink, so the counting
/// pass is bounded by min(nnz(A), nnz(B))).
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// C = A & B for CSR matrices of equal shape.
[[nodiscard]] CsrMatrix ewise_mult(backend::Context& ctx, const CsrMatrix& a,
                                   const CsrMatrix& b);

/// C = A & ~B (set difference) for CSR matrices of equal shape. Backs the
/// semi-naive (delta) transitive-closure strategy: the next frontier is the
/// freshly discovered edges only.
[[nodiscard]] CsrMatrix ewise_diff(backend::Context& ctx, const CsrMatrix& a,
                                   const CsrMatrix& b);

}  // namespace spbla::ops
