#include "ops/kronecker.hpp"

#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

CsrMatrix kronecker(backend::Context& ctx, const CsrMatrix& a, const CsrMatrix& b) {
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    const std::uint64_t out_rows = static_cast<std::uint64_t>(a.nrows()) * b.nrows();
    const std::uint64_t out_cols = static_cast<std::uint64_t>(a.ncols()) * b.ncols();
    SPBLA_REQUIRE(out_rows <= 0xFFFFFFFFull && out_cols <= 0xFFFFFFFFull,
                  Status::OutOfRange, "kronecker: result shape overflows Index");
    const std::uint64_t total = static_cast<std::uint64_t>(a.nnz()) * b.nnz();
    SPBLA_REQUIRE(total <= 0xFFFFFFFFull, Status::OutOfRange,
                  "kronecker: result nnz overflows Index");
    SPBLA_PROF_SPAN("kronecker");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());
    SPBLA_PROF_COUNT(nnz_out, total);

    const Index m = static_cast<Index>(out_rows);
    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);

    // Row sizes factorise: |K(i1*rB + i2, :)| = |A(i1, :)| * |B(i2, :)|.
    std::uint64_t running = 0;
    for (Index i1 = 0; i1 < a.nrows(); ++i1) {
        const std::uint64_t an = a.row_nnz(i1);
        for (Index i2 = 0; i2 < b.nrows(); ++i2) {
            const Index r = i1 * b.nrows() + i2;
            row_offsets[r] = static_cast<Index>(running);
            running += an * b.row_nnz(i2);
        }
    }
    row_offsets[m] = static_cast<Index>(running);

    std::vector<Index> cols(static_cast<std::size_t>(total));
    // One launch item per output row; ascending (j1, j2) iteration emits
    // sorted columns because j1*cB + j2 is monotone in that order.
    ctx.parallel_for(m, 256, [&](std::size_t r) {
        const Index i1 = static_cast<Index>(r) / b.nrows();
        const Index i2 = static_cast<Index>(r) % b.nrows();
        std::size_t out = row_offsets[r];
        for (const auto j1 : a.row(i1)) {
            const Index base = j1 * b.ncols();
            for (const auto j2 : b.row(i2)) cols[out++] = base + j2;
        }
    });

    CsrMatrix out = CsrMatrix::from_raw(m, static_cast<Index>(out_cols),
                                        std::move(row_offsets), std::move(cols));
    SPBLA_VALIDATE(out);
    return out;
}

}  // namespace spbla::ops
