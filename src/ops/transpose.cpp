#include "ops/transpose.hpp"

#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

CsrMatrix transpose(backend::Context& ctx, const CsrMatrix& n) {
    (void)ctx;  // histogram + placement are cheap; kept single-launch
    SPBLA_VALIDATE(n);
    SPBLA_PROF_SPAN("transpose");
    SPBLA_PROF_COUNT(nnz_in, n.nnz());
    SPBLA_PROF_COUNT(nnz_out, n.nnz());
    std::vector<Index> row_offsets(static_cast<std::size_t>(n.ncols()) + 1, 0);
    for (const auto c : n.cols()) ++row_offsets[c + 1];
    for (Index c = 0; c < n.ncols(); ++c) row_offsets[c + 1] += row_offsets[c];

    std::vector<Index> cols(n.nnz());
    std::vector<Index> cursor(row_offsets.begin(), row_offsets.end() - 1);
    // Row-major traversal emits ascending source rows per target row,
    // so the output columns are already sorted.
    for (Index r = 0; r < n.nrows(); ++r) {
        for (const auto c : n.row(r)) cols[cursor[c]++] = r;
    }
    CsrMatrix out = CsrMatrix::from_raw(n.ncols(), n.nrows(), std::move(row_offsets),
                                        std::move(cols));
    SPBLA_VALIDATE(out);
    return out;
}

}  // namespace spbla::ops
