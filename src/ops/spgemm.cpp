#include "ops/spgemm.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "ops/ewise_add.hpp"
#include "util/bit_ops.hpp"

namespace spbla::ops {
namespace {

constexpr Index kEmptySlot = 0xFFFFFFFFu;

/// Per-worker scratch reused across the rows of one chunk. In Nsparse the
/// hash table lives in GPU shared memory and the dense bitmap in global
/// memory; here both are worker-local arrays.
struct RowScratch {
    std::vector<Index> hash_slots;
    std::vector<Index> tiny_buffer;
    std::vector<std::uint64_t> bitmap_words;
    std::vector<Index> extracted;
};

enum class RowKind { Empty, Tiny, Hash, Dense };

/// Upper bound on the number of products contributing to row \p i of A*B.
[[nodiscard]] std::uint64_t row_upper_bound(const CsrMatrix& a, const CsrMatrix& b,
                                            Index i) {
    std::uint64_t ub = 0;
    for (const auto k : a.row(i)) ub += b.row_nnz(k);
    return ub;
}

[[nodiscard]] RowKind classify_row(std::uint64_t ub, Index b_ncols,
                                   const SpGemmOptions& opts) {
    if (ub == 0) return RowKind::Empty;
    if (ub <= opts.tiny_row_threshold) return RowKind::Tiny;
    if (opts.use_binning && b_ncols >= 256 &&
        static_cast<double>(ub) >=
            static_cast<double>(b_ncols) * opts.dense_row_fraction) {
        return RowKind::Dense;
    }
    return RowKind::Hash;
}

/// Compute the distinct column set of row \p i of A*B into s.extracted
/// (sorted ascending). Returns the distinct count.
Index accumulate_row(const CsrMatrix& a, const CsrMatrix& b, Index i, std::uint64_t ub,
                     const SpGemmOptions& opts, RowScratch& s, bool need_columns) {
    const RowKind kind = classify_row(ub, b.ncols(), opts);
    s.extracted.clear();

    switch (kind) {
        case RowKind::Empty:
            return 0;

        case RowKind::Tiny: {
            // Gather every candidate column, then sort + unique in place.
            s.tiny_buffer.clear();
            for (const auto k : a.row(i)) {
                const auto brow = b.row(k);
                s.tiny_buffer.insert(s.tiny_buffer.end(), brow.begin(), brow.end());
            }
            std::sort(s.tiny_buffer.begin(), s.tiny_buffer.end());
            s.tiny_buffer.erase(std::unique(s.tiny_buffer.begin(), s.tiny_buffer.end()),
                                s.tiny_buffer.end());
            if (need_columns) s.extracted = s.tiny_buffer;
            return static_cast<Index>(s.tiny_buffer.size());
        }

        case RowKind::Dense: {
            // Dense bitmap accumulator; output is naturally sorted.
            const std::size_t words = (static_cast<std::size_t>(b.ncols()) + 63) / 64;
            s.bitmap_words.assign(words, 0);
            for (const auto k : a.row(i)) {
                for (const auto c : b.row(k)) {
                    s.bitmap_words[c >> 6] |= std::uint64_t{1} << (c & 63);
                }
            }
            Index count = 0;
            for (std::size_t w = 0; w < words; ++w) {
                std::uint64_t bits = s.bitmap_words[w];
                count += static_cast<Index>(std::popcount(bits));
                if (need_columns) {
                    while (bits != 0) {
                        s.extracted.push_back(static_cast<Index>(
                            w * 64 + static_cast<std::size_t>(std::countr_zero(bits))));
                        bits &= bits - 1;
                    }
                }
            }
            return count;
        }

        case RowKind::Hash: {
            // Open-addressing hash *set* (Boolean specialisation: no values).
            const double load = opts.hash_load_factor > 0 ? opts.hash_load_factor : 0.5;
            std::uint64_t want =
                util::next_pow2(static_cast<std::uint64_t>(
                    static_cast<double>(ub) / load + 1.0));
            const std::uint64_t cap = util::next_pow2(
                static_cast<std::uint64_t>(b.ncols()) * 2);
            if (want > cap) want = cap;
            if (want < 16) want = 16;
            const Index mask = static_cast<Index>(want - 1);
            s.hash_slots.assign(static_cast<std::size_t>(want), kEmptySlot);

            Index count = 0;
            for (const auto k : a.row(i)) {
                for (const auto c : b.row(k)) {
                    Index h = (c * 2654435761u) & mask;
                    for (;;) {
                        const Index cur = s.hash_slots[h];
                        if (cur == c) break;  // duplicate: Boolean OR is idempotent
                        if (cur == kEmptySlot) {
                            s.hash_slots[h] = c;
                            ++count;
                            break;
                        }
                        h = (h + 1) & mask;
                    }
                }
            }
            if (need_columns) {
                s.extracted.reserve(count);
                for (const auto slot : s.hash_slots) {
                    if (slot != kEmptySlot) s.extracted.push_back(slot);
                }
                std::sort(s.extracted.begin(), s.extracted.end());
            }
            return count;
        }
    }
    return 0;  // unreachable
}

}  // namespace

CsrMatrix multiply(backend::Context& ctx, const CsrMatrix& a, const CsrMatrix& b,
                   const SpGemmOptions& opts) {
    check(a.ncols() == b.nrows(), Status::DimensionMismatch,
          "spgemm: A.ncols must equal B.nrows");
    const Index m = a.nrows();

    // Symbolic phase 1: per-row product upper bounds (tracked device array).
    auto ub = ctx.alloc<std::uint64_t>(m);
    ctx.parallel_for(m, 1024, [&](std::size_t i) {
        ub[i] = row_upper_bound(a, b, static_cast<Index>(i));
    });

    // Symbolic phase 2: exact per-row sizes via the accumulators.
    auto row_sizes = ctx.alloc<Index>(static_cast<std::size_t>(m) + 1);
    ctx.parallel_for_chunks(m, 64, [&](std::size_t begin, std::size_t end) {
        RowScratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
            row_sizes[i] = accumulate_row(a, b, static_cast<Index>(i), ub[i], opts,
                                          scratch, /*need_columns=*/false);
        }
    });

    // Exact allocation: exclusive scan of row sizes (thrust analog).
    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    std::uint64_t total = 0;
    for (Index i = 0; i < m; ++i) {
        row_offsets[i] = static_cast<Index>(total);
        total += row_sizes[i];
    }
    row_offsets[m] = static_cast<Index>(total);
    check(total <= 0xFFFFFFFFull, Status::OutOfRange, "spgemm: result nnz overflows Index");

    // Numeric phase: re-run the accumulators and emit sorted columns.
    std::vector<Index> cols(static_cast<std::size_t>(total));
    ctx.parallel_for_chunks(m, 64, [&](std::size_t begin, std::size_t end) {
        RowScratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
            accumulate_row(a, b, static_cast<Index>(i), ub[i], opts, scratch,
                           /*need_columns=*/true);
            std::copy(scratch.extracted.begin(), scratch.extracted.end(),
                      cols.begin() + row_offsets[i]);
        }
    });

    return CsrMatrix::from_raw(m, b.ncols(), std::move(row_offsets), std::move(cols));
}

CsrMatrix multiply_add(backend::Context& ctx, const CsrMatrix& c, const CsrMatrix& a,
                       const CsrMatrix& b, const SpGemmOptions& opts) {
    check(c.nrows() == a.nrows() && c.ncols() == b.ncols(), Status::DimensionMismatch,
          "spgemm: accumulator shape must match A.nrows x B.ncols");
    const CsrMatrix product = multiply(ctx, a, b, opts);
    return ewise_add(ctx, c, product);
}

}  // namespace spbla::ops
