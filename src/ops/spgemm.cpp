#include "ops/spgemm.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "backend/arena.hpp"
#include "core/validate.hpp"
#include "ops/ewise_add.hpp"
#include "prof/prof.hpp"
#include "util/bit_ops.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {
namespace {

constexpr Index kEmptySlot = 0xFFFFFFFFu;

/// Per-worker scratch reused across the rows of one chunk. In Nsparse the
/// hash table lives in GPU shared memory and the dense bitmap in global
/// memory; here both are worker-local arrays on the executing worker's op
/// arena: constructed once per chunk, grown by bump allocation, reclaimed
/// wholesale when the chunk's ScopedArena resets — zero heap traffic on the
/// row loop once the worker's slabs are warm.
struct RowScratch {
    explicit RowScratch(backend::Arena& arena)
        : hash_slots{backend::ArenaAllocator<Index>{arena}},
          inserted{backend::ArenaAllocator<Index>{arena}},
          tiny_buffer{backend::ArenaAllocator<Index>{arena}},
          bitmap_words{backend::ArenaAllocator<std::uint64_t>{arena}},
          touched_words{backend::ArenaAllocator<std::uint32_t>{arena}},
          extracted{backend::ArenaAllocator<Index>{arena}} {}

    backend::ArenaVector<Index> hash_slots;
    backend::ArenaVector<Index> inserted;  ///< values placed in hash_slots by the current row
    backend::ArenaVector<Index> tiny_buffer;
    backend::ArenaVector<std::uint64_t> bitmap_words;
    backend::ArenaVector<std::uint32_t> touched_words;  ///< bitmap words set by the current row
    backend::ArenaVector<Index> extracted;
};

/// Size classes double as scheduling bins; kNumKinds bins are launched
/// heaviest-first so straggler rows overlap with the light bins.
enum class RowKind : std::uint8_t { Empty, Tiny, HashSmall, HashLarge, Dense };
constexpr std::size_t kNumKinds = 5;

/// Upper bound on the number of products contributing to row \p i of A*B.
[[nodiscard]] std::uint64_t row_upper_bound(const CsrMatrix& a, const CsrMatrix& b,
                                            Index i) {
    std::uint64_t ub = 0;
    for (const auto k : a.row(i)) ub += b.row_nnz(k);
    return ub;
}

[[nodiscard]] RowKind classify_row(std::uint64_t ub, Index b_ncols,
                                   const SpGemmOptions& opts) {
    if (ub == 0) return RowKind::Empty;
    if (ub <= opts.tiny_row_threshold) return RowKind::Tiny;
    if (opts.use_binning && b_ncols >= 256 &&
        static_cast<double>(ub) >=
            static_cast<double>(b_ncols) * opts.dense_row_fraction) {
        return RowKind::Dense;
    }
    return ub <= opts.hash_large_threshold ? RowKind::HashSmall : RowKind::HashLarge;
}

/// Compute the distinct column set of row \p i of A*B into s.extracted
/// (sorted ascending). Returns the distinct count.
Index accumulate_row(const CsrMatrix& a, const CsrMatrix& b, Index i, std::uint64_t ub,
                     const SpGemmOptions& opts, RowScratch& s, bool need_columns) {
    const RowKind kind = classify_row(ub, b.ncols(), opts);
    s.extracted.clear();

    switch (kind) {
        case RowKind::Empty:
            return 0;

        case RowKind::Tiny: {
            // Gather every candidate column, then sort + unique in place.
            s.tiny_buffer.clear();
            for (const auto k : a.row(i)) {
                const auto brow = b.row(k);
                s.tiny_buffer.insert(s.tiny_buffer.end(), brow.begin(), brow.end());
            }
            std::sort(s.tiny_buffer.begin(), s.tiny_buffer.end());
            s.tiny_buffer.erase(std::unique(s.tiny_buffer.begin(), s.tiny_buffer.end()),
                                s.tiny_buffer.end());
            if (need_columns) s.extracted = s.tiny_buffer;
            return static_cast<Index>(s.tiny_buffer.size());
        }

        case RowKind::Dense: {
            // Dense bitmap accumulator; output is naturally sorted. The
            // bitmap is all-zero on entry and restored to all-zero on exit
            // by clearing only the words this row touched — rezeroing the
            // full ncols/64-word bitmap per row is what made hub-heavy
            // inputs crawl.
            const std::size_t words = (static_cast<std::size_t>(b.ncols()) + 63) / 64;
            if (opts.legacy_accumulator_reset) {
                s.bitmap_words.assign(words, 0);
                for (const auto k : a.row(i)) {
                    for (const auto c : b.row(k)) {
                        s.bitmap_words[c >> 6] |= std::uint64_t{1} << (c & 63);
                    }
                }
                Index count = 0;
                for (std::size_t w = 0; w < words; ++w) {
                    std::uint64_t bits = s.bitmap_words[w];
                    count += static_cast<Index>(std::popcount(bits));
                    if (need_columns) {
                        while (bits != 0) {
                            s.extracted.push_back(static_cast<Index>(
                                w * 64 +
                                static_cast<std::size_t>(std::countr_zero(bits))));
                            bits &= bits - 1;
                        }
                    }
                }
                return count;
            }
            if (s.bitmap_words.size() < words) s.bitmap_words.resize(words, 0);
            s.touched_words.clear();
            for (const auto k : a.row(i)) {
                for (const auto c : b.row(k)) {
                    const std::size_t w = c >> 6;
                    if (s.bitmap_words[w] == 0) {
                        s.touched_words.push_back(static_cast<std::uint32_t>(w));
                    }
                    s.bitmap_words[w] |= std::uint64_t{1} << (c & 63);
                }
            }
            std::sort(s.touched_words.begin(), s.touched_words.end());
            Index count = 0;
            if (!need_columns) {
                for (const auto w : s.touched_words) {
                    count += static_cast<Index>(std::popcount(s.bitmap_words[w]));
                    s.bitmap_words[w] = 0;
                }
                return count;
            }
            for (const auto w : s.touched_words) {
                count += static_cast<Index>(std::popcount(s.bitmap_words[w]));
            }
            s.extracted.resize(count);
            Index* out = s.extracted.data();
            for (const auto w : s.touched_words) {
                std::uint64_t bits = s.bitmap_words[w];
                s.bitmap_words[w] = 0;
                const Index base = static_cast<Index>(w) << 6;
                while (bits != 0) {
                    *out++ = base + static_cast<Index>(std::countr_zero(bits));
                    bits &= bits - 1;
                }
            }
            return count;
        }

        case RowKind::HashSmall:
        case RowKind::HashLarge: {
            // Open-addressing hash *set* (Boolean specialisation: no values).
            // The table is all-empty on entry; the invariant is restored on
            // exit by erasing only the slots this row filled (tracked in
            // s.inserted) — a full-table assign per row costs several times
            // the insert work at the default load factor.
            const double load = opts.hash_load_factor > 0 ? opts.hash_load_factor : 0.5;
            std::uint64_t want =
                util::next_pow2(static_cast<std::uint64_t>(
                    static_cast<double>(ub) / load + 1.0));
            const std::uint64_t cap = util::next_pow2(
                static_cast<std::uint64_t>(b.ncols()) * 2);
            if (want > cap) want = cap;
            if (want < 16) want = 16;
            const Index mask = static_cast<Index>(want - 1);
            // Probe/collision tallies stay in registers inside the row loop;
            // one prof flush per row keeps the hot path unperturbed.
            std::uint64_t probes = 0;
            std::uint64_t collisions = 0;
            if (opts.legacy_accumulator_reset) {
                s.hash_slots.assign(static_cast<std::size_t>(want), kEmptySlot);
                Index count = 0;
                for (const auto k : a.row(i)) {
                    for (const auto c : b.row(k)) {
                        Index h = (c * 2654435761u) & mask;
                        for (;;) {
                            ++probes;
                            const Index cur = s.hash_slots[h];
                            if (cur == c) break;
                            if (cur == kEmptySlot) {
                                s.hash_slots[h] = c;
                                ++count;
                                break;
                            }
                            ++collisions;
                            h = (h + 1) & mask;
                        }
                    }
                }
                SPBLA_PROF_COUNT(hash_probes, probes);
                SPBLA_PROF_COUNT(hash_collisions, collisions);
                if (need_columns) {
                    s.extracted.reserve(count);
                    for (std::size_t slot = 0; slot < want; ++slot) {
                        if (s.hash_slots[slot] != kEmptySlot) {
                            s.extracted.push_back(s.hash_slots[slot]);
                        }
                    }
                    std::sort(s.extracted.begin(), s.extracted.end());
                }
                return count;
            }
            if (s.hash_slots.size() < want) {
                s.hash_slots.resize(static_cast<std::size_t>(want), kEmptySlot);
            }
            s.inserted.clear();

            for (const auto k : a.row(i)) {
                for (const auto c : b.row(k)) {
                    Index h = (c * 2654435761u) & mask;
                    for (;;) {
                        ++probes;
                        const Index cur = s.hash_slots[h];
                        if (cur == c) break;  // duplicate: Boolean OR is idempotent
                        if (cur == kEmptySlot) {
                            s.hash_slots[h] = c;
                            s.inserted.push_back(c);
                            break;
                        }
                        ++collisions;
                        h = (h + 1) & mask;
                    }
                }
            }
            SPBLA_PROF_COUNT(hash_probes, probes);
            SPBLA_PROF_COUNT(hash_collisions, collisions);
            const Index count = static_cast<Index>(s.inserted.size());
            if (static_cast<std::uint64_t>(count) * 2 >= want) {
                std::fill(s.hash_slots.begin(),
                          s.hash_slots.begin() + static_cast<std::ptrdiff_t>(want),
                          kEmptySlot);
            } else {
                // Re-probe each inserted value; earlier erasures may punch
                // holes in a later value's chain, so skip over empties
                // instead of stopping at them.
                for (const auto c : s.inserted) {
                    Index h = (c * 2654435761u) & mask;
                    while (s.hash_slots[h] != c) h = (h + 1) & mask;
                    s.hash_slots[h] = kEmptySlot;
                }
            }
            if (need_columns) {
                s.extracted.swap(s.inserted);
                std::sort(s.extracted.begin(), s.extracted.end());
            }
            return count;
        }
    }
    return 0;  // unreachable
}

/// Chunk grain per bin: heavy bins get one row per ticket so a hub row
/// cannot stall the rows queued behind it; light bins amortise ticket
/// claims over many rows.
[[nodiscard]] constexpr std::size_t bin_grain(RowKind kind) {
    switch (kind) {
        case RowKind::Dense:
        case RowKind::HashLarge:
            return 1;
        case RowKind::HashSmall:
            return 32;
        case RowKind::Tiny:
            return 256;
        case RowKind::Empty:
            break;
    }
    return 256;
}

/// Per-size-class row lists, built once from the upper bounds and reused by
/// the symbolic and numeric launches.
struct BinSchedule {
    std::array<std::vector<Index>, kNumKinds> rows;

    /// One ticket of the fused launch: a slice of one bin's row list.
    struct Chunk {
        const std::vector<Index>* rows;
        std::size_t begin;
        std::size_t end;
    };
    std::vector<Chunk> chunks;

    void build(const std::uint64_t* ub, Index m, Index b_ncols,
               const SpGemmOptions& opts) {
        for (Index i = 0; i < m; ++i) {
            const auto kind = classify_row(ub[i], b_ncols, opts);
            if (kind == RowKind::Empty) continue;
            rows[static_cast<std::size_t>(kind)].push_back(i);
        }
        // Heaviest bins first: their stragglers overlap with the light work
        // that follows in ticket order.
        for (const RowKind kind : {RowKind::Dense, RowKind::HashLarge,
                                   RowKind::HashSmall, RowKind::Tiny}) {
            const auto& bin = rows[static_cast<std::size_t>(kind)];
            const std::size_t grain = bin_grain(kind);
            for (std::size_t begin = 0; begin < bin.size(); begin += grain) {
                chunks.push_back({&bin, begin, std::min(begin + grain, bin.size())});
            }
        }
    }
};

/// Frees a one-shot aggregate MemoryTracker charge on scope exit (the
/// symbolic-column cache stands in for device scratch, so its footprint
/// must appear in the tracker like any other device allocation).
struct ScratchCharge {
    backend::MemoryTracker* tracker{nullptr};
    std::size_t bytes{0};

    void charge(backend::MemoryTracker& t, std::size_t b) {
        tracker = &t;
        bytes = b;
        t.on_alloc(b);
    }
    ~ScratchCharge() {
        if (tracker) tracker->on_free(bytes);
    }
};

}  // namespace

CsrMatrix multiply(backend::Context& ctx, const CsrMatrix& a, const CsrMatrix& b,
                   const SpGemmOptions& opts) {
    SPBLA_REQUIRE(a.ncols() == b.nrows(), Status::DimensionMismatch,
                  "spgemm: A.ncols must equal B.nrows");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("spgemm.multiply");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());
    const Index m = a.nrows();
    const util::Schedule sched =
        opts.use_ticket_scheduler ? util::Schedule::Dynamic : util::Schedule::Static;

    // Everything this op allocates on the calling thread's arena (the upper
    // bound array below) dies here; worker-side scratch lives in the per-chunk
    // scopes parallel_for* opens on each worker's own arena.
    backend::ScopedArena op_scope{ctx.scratch_arena()};

    // Symbolic phase 1: per-row product upper bounds (arena-backed device
    // scratch — charged via the arena's slab accounting, freed at op exit).
    auto ub = ctx.scratch_alloc<std::uint64_t>(m);
    ctx.parallel_for(
        m, 1024, [&](std::size_t i) { ub[i] = row_upper_bound(a, b, static_cast<Index>(i)); },
        sched);

    // Launch helper shared by the symbolic and numeric passes: runs
    // row_fn(row, scratch) for every non-empty row, either as the bin
    // schedule's fused heavy-first grid or as a flat chunked sweep.
    BinSchedule bins;
    if (opts.use_bin_scheduler) bins.build(ub.data(), m, b.ncols(), opts);

    // Bin-occupancy counters: an O(m) classify tally on the calling thread,
    // so the numbers land deterministically on this span's trace event.
    if constexpr (prof::kCompiledLevel >= SPBLA_PROFILE_COUNTERS) {
        if (prof::counting()) {
            std::array<std::uint64_t, kNumKinds> tally{};
            for (Index i = 0; i < m; ++i) {
                ++tally[static_cast<std::size_t>(classify_row(ub[i], b.ncols(), opts))];
            }
            SPBLA_PROF_COUNT(rows_total, m);
            SPBLA_PROF_COUNT(rows_empty, tally[static_cast<std::size_t>(RowKind::Empty)]);
            SPBLA_PROF_COUNT(rows_tiny, tally[static_cast<std::size_t>(RowKind::Tiny)]);
            SPBLA_PROF_COUNT(rows_hash_small,
                             tally[static_cast<std::size_t>(RowKind::HashSmall)]);
            SPBLA_PROF_COUNT(rows_hash_large,
                             tally[static_cast<std::size_t>(RowKind::HashLarge)]);
            SPBLA_PROF_COUNT(rows_dense, tally[static_cast<std::size_t>(RowKind::Dense)]);
        }
    }
    const auto launch_rows = [&](const std::function<void(Index, RowScratch&)>& row_fn) {
        if (opts.use_bin_scheduler) {
            ctx.parallel_for_chunks(
                bins.chunks.size(), 1,
                [&](std::size_t cb, std::size_t ce) {
                    RowScratch scratch{ctx.scratch_arena()};
                    for (std::size_t c = cb; c < ce; ++c) {
                        const auto& chunk = bins.chunks[c];
                        for (std::size_t p = chunk.begin; p < chunk.end; ++p) {
                            row_fn((*chunk.rows)[p], scratch);
                        }
                    }
                },
                sched);
        } else {
            ctx.parallel_for_chunks(
                m, 64,
                [&](std::size_t begin, std::size_t end) {
                    RowScratch scratch{ctx.scratch_arena()};
                    for (std::size_t i = begin; i < end; ++i) {
                        row_fn(static_cast<Index>(i), scratch);
                    }
                },
                sched);
        }
    };

    // Symbolic-column cache: rows whose extracted column set fits the budget
    // keep it between the count and fill passes, making the numeric phase a
    // plain copy for them. ub (clamped to ncols) over-reserves; the refund
    // after the exact count keeps the accounting tight.
    const bool caching = opts.symbolic_cache_budget > 0;
    std::vector<std::vector<Index>> cache;
    std::vector<std::uint8_t> cached;
    std::atomic<std::size_t> cache_bytes{0};
    if (caching) {
        cache.resize(m);
        cached.assign(m, 0);
    }

    // Symbolic phase 2: exact per-row sizes via the accumulators (columns
    // extracted along the way for rows the cache accepts). The offsets and
    // column arrays become the output matrix, so they come from the pooled
    // free lists rather than the arena: a dropped product hands them back.
    static_assert(std::is_same_v<backend::BufferPool::Buffer, std::vector<Index>>,
                  "pooled buffers must be CSR index arrays");
    auto row_offsets = ctx.buffer_pool().acquire_zeroed(static_cast<std::size_t>(m) + 1);
    {
    SPBLA_PROF_SPAN("spgemm.symbolic");
    launch_rows([&](Index i, RowScratch& scratch) {
        std::size_t reserved = 0;
        bool keep = false;
        if (caching) {
            reserved = static_cast<std::size_t>(
                           std::min<std::uint64_t>(ub[i], b.ncols())) *
                       sizeof(Index);
            const std::size_t prior = cache_bytes.fetch_add(reserved);
            if (prior + reserved <= opts.symbolic_cache_budget) {
                keep = true;
            } else {
                cache_bytes.fetch_sub(reserved);
                reserved = 0;
            }
        }
        const Index size =
            accumulate_row(a, b, i, ub[i], opts, scratch, /*need_columns=*/keep);
        row_offsets[i] = size;
        if (keep) {
            // The cache outlives this worker's chunk scope, so it copies out
            // of the arena-backed extraction buffer into heap storage (the
            // old swap-steal would leak arena memory past its scope).
            cache[i].assign(scratch.extracted.begin(), scratch.extracted.end());
            cached[i] = 1;
            cache_bytes.fetch_sub(reserved - cache[i].size() * sizeof(Index));
        }
    });
    }
    ScratchCharge cache_charge;
    if (caching) cache_charge.charge(ctx.tracker(), cache_bytes.load());

    // Exact allocation: exclusive scan of row sizes (thrust analog; the
    // trailing 0 turns the scanned array into the CSR offsets directly).
    const std::uint64_t total = ctx.exclusive_scan(row_offsets);
    SPBLA_REQUIRE(total <= 0xFFFFFFFFull, Status::OutOfRange,
                  "spgemm: result nnz overflows Index");

    // Numeric phase: cached rows are copied straight out; only rows the
    // budget excluded re-run their accumulator. Every element is written
    // exactly once, so the unspecified pooled contents are fine.
    auto cols = ctx.buffer_pool().acquire(static_cast<std::size_t>(total));
    {
    SPBLA_PROF_SPAN("spgemm.numeric");
    launch_rows([&](Index i, RowScratch& scratch) {
        if (caching && cached[i]) {
            std::copy(cache[i].begin(), cache[i].end(), cols.begin() + row_offsets[i]);
            return;
        }
        accumulate_row(a, b, i, ub[i], opts, scratch, /*need_columns=*/true);
        std::copy(scratch.extracted.begin(), scratch.extracted.end(),
                  cols.begin() + row_offsets[i]);
    });
    }
    SPBLA_PROF_COUNT(nnz_out, total);
    if constexpr (prof::kCompiledLevel >= SPBLA_PROFILE_COUNTERS) {
        if (caching && prof::counting()) {
            std::uint64_t kept = 0;
            for (Index i = 0; i < m; ++i) kept += cached[i];
            SPBLA_PROF_COUNT(cached_rows, kept);
        }
    }

    CsrMatrix out =
        CsrMatrix::from_raw(m, b.ncols(), std::move(row_offsets), std::move(cols));
    SPBLA_VALIDATE(out);
    return out;
}

CsrMatrix multiply_add(backend::Context& ctx, const CsrMatrix& c, const CsrMatrix& a,
                       const CsrMatrix& b, const SpGemmOptions& opts) {
    SPBLA_REQUIRE(c.nrows() == a.nrows() && c.ncols() == b.ncols(),
                  Status::DimensionMismatch,
                  "spgemm: accumulator shape must match A.nrows x B.ncols");
    SPBLA_VALIDATE(c);
    CsrMatrix product = multiply(ctx, a, b, opts);
    CsrMatrix out = ewise_add(ctx, c, product);
    // The intermediate product is dead once accumulated; hand its arrays
    // back to the pool so the next iteration's multiply re-acquires them
    // (the closure/CFPQ loops hit this every round).
    auto [offsets, cols] = std::move(product).release_raw();
    ctx.buffer_pool().release(std::move(offsets));
    ctx.buffer_pool().release(std::move(cols));
    return out;
}

}  // namespace spbla::ops
