#include "ops/ewise_add.hpp"

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {
namespace {

/// Count |union| of two sorted ranges without materialising it.
[[nodiscard]] Index union_size(std::span<const Index> x, std::span<const Index> y) {
    std::size_t i = 0, j = 0, n = 0;
    while (i < x.size() && j < y.size()) {
        if (x[i] < y[j])
            ++i;
        else if (y[j] < x[i])
            ++j;
        else {
            ++i;
            ++j;
        }
        ++n;
    }
    return static_cast<Index>(n + (x.size() - i) + (y.size() - j));
}

}  // namespace

CsrMatrix ewise_add(backend::Context& ctx, const CsrMatrix& a, const CsrMatrix& b) {
    SPBLA_REQUIRE(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                  Status::DimensionMismatch, "ewise_add: shape mismatch");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("ewise_add");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());
    const Index m = a.nrows();

    // Pass 1: exact union size per row (enables precise allocation), scanned
    // in place into CSR offsets (trailing 0 receives the total).
    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        row_offsets[i] = union_size(a.row(r), b.row(r));
    });
    const std::uint64_t total = ctx.exclusive_scan(row_offsets);
    check(total <= 0xFFFFFFFFull, Status::OutOfRange, "ewise_add: nnz overflows Index");
    SPBLA_PROF_COUNT(nnz_out, total);
    // Merge length: candidate entries fed to the two-pointer merge vs the
    // union that survives — the gap is the duplicate (overlap) work.
    SPBLA_PROF_COUNT(merge_len, a.nnz() + b.nnz());

    // Pass 2: merge each row pair into its exact slot.
    std::vector<Index> cols(static_cast<std::size_t>(total));
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        const auto x = a.row(r);
        const auto y = b.row(r);
        std::set_union(x.begin(), x.end(), y.begin(), y.end(),
                       cols.begin() + row_offsets[i]);
    });

    CsrMatrix out =
        CsrMatrix::from_raw(m, a.ncols(), std::move(row_offsets), std::move(cols));
    SPBLA_VALIDATE(out);
    return out;
}

CooMatrix ewise_add(backend::Context& ctx, const CooMatrix& a, const CooMatrix& b) {
    SPBLA_REQUIRE(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                  Status::DimensionMismatch, "ewise_add: shape mismatch");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("ewise_add.coo");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());
    // One-pass merge into a buffer of size nnz(A) + nnz(B); duplicates
    // (entries present in both operands) are dropped during the merge.
    auto rows_buf = ctx.alloc<Index>(a.nnz() + b.nnz());
    auto cols_buf = ctx.alloc<Index>(a.nnz() + b.nnz());

    const auto ar = a.rows();
    const auto ac = a.cols();
    const auto br = b.rows();
    const auto bc = b.cols();
    std::size_t i = 0, j = 0, out = 0;
    while (i < ar.size() && j < br.size()) {
        const bool a_first = ar[i] < br[j] || (ar[i] == br[j] && ac[i] < bc[j]);
        const bool equal = ar[i] == br[j] && ac[i] == bc[j];
        if (equal) {
            rows_buf[out] = ar[i];
            cols_buf[out] = ac[i];
            ++i;
            ++j;
        } else if (a_first) {
            rows_buf[out] = ar[i];
            cols_buf[out] = ac[i];
            ++i;
        } else {
            rows_buf[out] = br[j];
            cols_buf[out] = bc[j];
            ++j;
        }
        ++out;
    }
    for (; i < ar.size(); ++i, ++out) {
        rows_buf[out] = ar[i];
        cols_buf[out] = ac[i];
    }
    for (; j < br.size(); ++j, ++out) {
        rows_buf[out] = br[j];
        cols_buf[out] = bc[j];
    }

    SPBLA_PROF_COUNT(nnz_out, out);
    std::vector<Index> rows(rows_buf.begin(), rows_buf.begin() + static_cast<std::ptrdiff_t>(out));
    std::vector<Index> cols(cols_buf.begin(), cols_buf.begin() + static_cast<std::ptrdiff_t>(out));
    CooMatrix result =
        CooMatrix::from_sorted(a.nrows(), a.ncols(), std::move(rows), std::move(cols));
    SPBLA_VALIDATE(result);
    return result;
}

}  // namespace spbla::ops
