/// \file ops.hpp
/// \brief Umbrella header for every Boolean kernel in the library.
#pragma once

#include "ops/bitblock_ops.hpp"  // IWYU pragma: export
#include "ops/ewise_add.hpp"   // IWYU pragma: export
#include "ops/coo_ops.hpp"     // IWYU pragma: export
#include "ops/ewise_mult.hpp"  // IWYU pragma: export
#include "ops/kronecker.hpp"   // IWYU pragma: export
#include "ops/masked.hpp"      // IWYU pragma: export
#include "ops/mxv.hpp"         // IWYU pragma: export
#include "ops/reduce.hpp"      // IWYU pragma: export
#include "ops/spgemm.hpp"      // IWYU pragma: export
#include "ops/submatrix.hpp"   // IWYU pragma: export
#include "ops/transpose.hpp"   // IWYU pragma: export
