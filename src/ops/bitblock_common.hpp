/// \file bitblock_common.hpp
/// \brief Shared staging buffers for the bitblock kernel family (private).
///
/// The bitblock kernels all end the same way: each worker leaves one
/// BlockRowStage per block row — result tiles as raw 64-word buffers in
/// ascending block-column order — and assemble() does the single serial
/// sweep that popcounts every tile, picks its hybrid kind and packs the
/// pools for BitBlockMatrix::from_raw. Keeping the per-row results
/// word-shaped until the very end means the parallel phase never contends
/// on the shared pools.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/bitblocks.hpp"
#include "util/bit_ops.hpp"

namespace spbla::ops::detail {

/// Result tiles of one output block row, ascending block column; words holds
/// 64 raw words per tile (all-zero tiles are dropped by assemble()).
struct BlockRowStage {
    std::vector<Index> bcols;
    std::vector<std::uint64_t> words;
};

/// Pack staged block rows into the final matrix: popcount each tile, store
/// it as Bitmap or Sparse by population, drop empties.
inline BitBlockMatrix assemble(Index nrows, Index ncols,
                               std::vector<BlockRowStage>&& stages) {
    constexpr std::size_t kW = BitBlockMatrix::kBlockWords;
    const auto brows = static_cast<Index>(stages.size());
    std::vector<Index> block_row_offsets(static_cast<std::size_t>(brows) + 1, 0);
    std::vector<BitBlockMatrix::BlockRef> blocks;
    std::vector<std::uint64_t> words;
    std::vector<std::uint16_t> entries;

    for (Index br = 0; br < brows; ++br) {
        const BlockRowStage& stage = stages[br];
        for (std::size_t t = 0; t < stage.bcols.size(); ++t) {
            const std::uint64_t* w = stage.words.data() + t * kW;
            std::uint32_t pop = 0;
            for (std::size_t i = 0; i < kW; ++i) pop += util::popcount64(w[i]);
            if (pop == 0) continue;
            BitBlockMatrix::BlockRef ref;
            ref.bcol = stage.bcols[t];
            ref.nnz = static_cast<std::uint16_t>(pop);
            if (pop >= BitBlockMatrix::kBitmapMinNnz) {
                ref.kind = BitBlockMatrix::BlockKind::Bitmap;
                ref.offset = static_cast<std::uint32_t>(words.size());
                words.insert(words.end(), w, w + kW);
            } else {
                ref.kind = BitBlockMatrix::BlockKind::Sparse;
                ref.offset = static_cast<std::uint32_t>(entries.size());
                for (std::size_t rl = 0; rl < kW; ++rl) {
                    util::for_each_set_bit(w[rl], [&](unsigned cl) {
                        entries.push_back(static_cast<std::uint16_t>((rl << 6) | cl));
                    });
                }
            }
            blocks.push_back(ref);
            ++block_row_offsets[br + 1];
        }
        // Free the stage eagerly: peak memory stays one block row ahead of
        // the packed pools instead of double the whole output.
        stages[br] = BlockRowStage{};
    }
    for (Index br = 0; br < brows; ++br) {
        block_row_offsets[br + 1] += block_row_offsets[br];
    }
    return BitBlockMatrix::from_raw(nrows, ncols, std::move(block_row_offsets),
                                    std::move(blocks), std::move(words),
                                    std::move(entries));
}

}  // namespace spbla::ops::detail
