/// \file ewise_add.hpp
/// \brief Element-wise Boolean addition (OR) of sparse matrices.
///
/// CSR path reproduces cuBool: a GPU-Merge-Path-style two-pass per-row merge
/// — the first pass counts the union size of every row pair so the result is
/// allocated exactly, the second pass merges. The COO path reproduces
/// clBool: a classic one-pass merge into a single buffer of size
/// nnz(A) + nnz(B) allocated up front (cheaper in passes, potentially larger
/// transient footprint — exactly the trade-off the paper describes).
#pragma once

#include "backend/context.hpp"
#include "core/coo.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// C = A | B for CSR matrices of equal shape (two-pass row merge).
[[nodiscard]] CsrMatrix ewise_add(backend::Context& ctx, const CsrMatrix& a,
                                  const CsrMatrix& b);

/// C = A | B for COO matrices of equal shape (one-pass whole-array merge).
[[nodiscard]] CooMatrix ewise_add(backend::Context& ctx, const CooMatrix& a,
                                  const CooMatrix& b);

}  // namespace spbla::ops
