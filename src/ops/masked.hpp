/// \file masked.hpp
/// \brief Masked multiplication — GraphBLAS-style C<M> = A x B.
///
/// Part of the paper's "library extension up to full GraphBLAS API"
/// direction. The masked product only materialises output cells permitted
/// by the mask, using the output-driven (dot-product) formulation: for every
/// (i, j) in the mask, C(i, j) = OR over k of A(i, k) & B(k, j), evaluated
/// as a sorted intersection of A's row i with column j of B (passed in as a
/// row of B^T). This is the kernel behind the classic masked triangle
/// counting idiom C<A> = A x A^T and is asymptotically better than
/// multiply-then-filter whenever the mask is sparser than the full product.
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// C = (A x B) restricted to the structure of \p mask.
/// \p b_transposed must be B^T (the caller often already has it; for
/// symmetric B it is B itself). With \p complement the mask selects cells to
/// *exclude* instead (C = (A x B) minus mask's structure).
[[nodiscard]] CsrMatrix multiply_masked(backend::Context& ctx, const CsrMatrix& mask,
                                        const CsrMatrix& a,
                                        const CsrMatrix& b_transposed,
                                        bool complement = false);

}  // namespace spbla::ops
