/// \file kronecker.hpp
/// \brief Kronecker (tensor) product of Boolean matrices.
///
/// K = A (x) B where K(i1*rB + i2, j1*cB + j2) = A(i1, j1) & B(i2, j2).
/// This is the primitive the tensor-based path-querying algorithm is built
/// on: the product of a query automaton with a graph adjacency matrix.
/// Row nnz of K factorises as nnz(A row) * nnz(B row), so the result can be
/// allocated exactly without a counting pass.
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// K = A (x) B. Result shape (rA*rB) x (cA*cB) must fit the Index type.
[[nodiscard]] CsrMatrix kronecker(backend::Context& ctx, const CsrMatrix& a,
                                  const CsrMatrix& b);

}  // namespace spbla::ops
