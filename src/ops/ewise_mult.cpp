#include "ops/ewise_mult.hpp"

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

CsrMatrix ewise_mult(backend::Context& ctx, const CsrMatrix& a, const CsrMatrix& b) {
    SPBLA_REQUIRE(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                  Status::DimensionMismatch, "ewise_mult: shape mismatch");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("ewise_mult");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());
    const Index m = a.nrows();

    // Pass 1: intersection size per row.
    auto row_sizes = ctx.alloc<Index>(m);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        const auto x = a.row(r);
        const auto y = b.row(r);
        std::size_t p = 0, q = 0, n = 0;
        while (p < x.size() && q < y.size()) {
            if (x[p] < y[q])
                ++p;
            else if (y[q] < x[p])
                ++q;
            else {
                ++p;
                ++q;
                ++n;
            }
        }
        row_sizes[i] = static_cast<Index>(n);
    });

    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    for (Index i = 0; i < m; ++i) row_offsets[i + 1] = row_offsets[i] + row_sizes[i];

    SPBLA_PROF_COUNT(nnz_out, row_offsets[m]);

    // Pass 2: emit the intersections.
    std::vector<Index> cols(row_offsets[m]);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        const auto x = a.row(r);
        const auto y = b.row(r);
        std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                              cols.begin() + row_offsets[i]);
    });

    CsrMatrix out =
        CsrMatrix::from_raw(m, a.ncols(), std::move(row_offsets), std::move(cols));
    SPBLA_VALIDATE(out);
    return out;
}

CsrMatrix ewise_diff(backend::Context& ctx, const CsrMatrix& a, const CsrMatrix& b) {
    SPBLA_REQUIRE(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                  Status::DimensionMismatch, "ewise_diff: shape mismatch");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("ewise_diff");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());
    const Index m = a.nrows();

    auto row_sizes = ctx.alloc<Index>(m);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        const auto x = a.row(r);
        const auto y = b.row(r);
        std::size_t p = 0, q = 0, kept = 0;
        while (p < x.size()) {
            if (q == y.size() || x[p] < y[q]) {
                ++kept;
                ++p;
            } else if (y[q] < x[p]) {
                ++q;
            } else {
                ++p;
                ++q;
            }
        }
        row_sizes[i] = static_cast<Index>(kept);
    });

    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    for (Index i = 0; i < m; ++i) row_offsets[i + 1] = row_offsets[i] + row_sizes[i];

    SPBLA_PROF_COUNT(nnz_out, row_offsets[m]);
    std::vector<Index> cols(row_offsets[m]);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        const auto x = a.row(r);
        const auto y = b.row(r);
        std::set_difference(x.begin(), x.end(), y.begin(), y.end(),
                            cols.begin() + row_offsets[i]);
    });

    CsrMatrix out =
        CsrMatrix::from_raw(m, a.ncols(), std::move(row_offsets), std::move(cols));
    SPBLA_VALIDATE(out);
    return out;
}

}  // namespace spbla::ops
