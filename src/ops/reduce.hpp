/// \file reduce.hpp
/// \brief Matrix-to-vector reductions V = reduce(M) over the Boolean semiring.
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"
#include "core/spvector.hpp"

namespace spbla::ops {

/// V = reduceToColumn(M): V[i] = OR over j of M(i, j) — i.e. the set of
/// non-empty rows. This is the reduce the paper lists.
[[nodiscard]] SpVector reduce_to_column(backend::Context& ctx, const CsrMatrix& m);

/// V = reduceToRow(M): V[j] = OR over i of M(i, j) — the set of non-empty
/// columns (provided for symmetry; equals reduce_to_column(M^T)).
[[nodiscard]] SpVector reduce_to_row(backend::Context& ctx, const CsrMatrix& m);

/// Total number of set cells (Boolean "sum" of all entries).
[[nodiscard]] std::size_t reduce_scalar(const CsrMatrix& m) noexcept;

}  // namespace spbla::ops
