#include "ops/masked.hpp"

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "ops/ewise_mult.hpp"
#include "ops/spgemm.hpp"
#include "ops/transpose.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {
namespace {

/// True iff the sorted ranges share an element.
[[nodiscard]] bool intersects(std::span<const Index> x, std::span<const Index> y) {
    std::size_t a = 0, b = 0;
    while (a < x.size() && b < y.size()) {
        if (x[a] < y[b])
            ++a;
        else if (y[b] < x[a])
            ++b;
        else
            return true;
    }
    return false;
}

}  // namespace

CsrMatrix multiply_masked(backend::Context& ctx, const CsrMatrix& mask,
                          const CsrMatrix& a, const CsrMatrix& b_transposed,
                          bool complement) {
    SPBLA_REQUIRE(a.ncols() == b_transposed.ncols(), Status::DimensionMismatch,
                  "multiply_masked: A.ncols must equal B.nrows (B passed transposed)");
    SPBLA_REQUIRE(mask.nrows() == a.nrows() && mask.ncols() == b_transposed.nrows(),
                  Status::DimensionMismatch, "multiply_masked: mask shape mismatch");
    SPBLA_VALIDATE(mask);
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b_transposed);
    SPBLA_PROF_SPAN("multiply_masked");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b_transposed.nnz());
    SPBLA_PROF_COUNT(mask_nnz, mask.nnz());

    if (complement) {
        // The complement mask permits almost everything; the dot formulation
        // would degenerate to the dense cross product, so compute the full
        // product and subtract (still exact, just not output-driven).
        const CsrMatrix full =
            multiply(ctx, a, transpose(ctx, b_transposed), SpGemmOptions{});
        return ewise_diff(ctx, full, mask);
    }

    // Pass 1: per-mask-row survivors count.
    const Index m = mask.nrows();
    auto row_sizes = ctx.alloc<Index>(m);
    ctx.parallel_for(m, 128, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        Index kept = 0;
        const auto arow = a.row(r);
        for (const auto j : mask.row(r)) {
            if (intersects(arow, b_transposed.row(j))) ++kept;
        }
        row_sizes[i] = kept;
    });

    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    for (Index i = 0; i < m; ++i) row_offsets[i + 1] = row_offsets[i] + row_sizes[i];

    SPBLA_PROF_COUNT(nnz_out, row_offsets[m]);

    // Pass 2: emit survivors (mask rows are sorted, so output rows are too).
    std::vector<Index> cols(row_offsets[m]);
    ctx.parallel_for(m, 128, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        std::size_t out = row_offsets[i];
        const auto arow = a.row(r);
        for (const auto j : mask.row(r)) {
            if (intersects(arow, b_transposed.row(j))) cols[out++] = j;
        }
    });

    CsrMatrix result = CsrMatrix::from_raw(m, mask.ncols(), std::move(row_offsets),
                                           std::move(cols));
    SPBLA_VALIDATE(result);
    return result;
}

}  // namespace spbla::ops
