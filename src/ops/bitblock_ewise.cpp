/// Element-wise OR / AND on the 64x64 tile grid.
///
/// Both kernels are a per-block-row merge of the two tile lists by block
/// column. OR keeps every tile (unmatched tiles copy through, matched pairs
/// OR word-wise); AND keeps only matched pairs, 64 word ANDs each — that is
/// the counter bitblock_words_anded, the broadword tier's unit of useful
/// work (one AND = 64 Boolean cell products). Sparse-kind tiles are
/// expanded into a 64-word scratch first; at < 32 entries the expansion is
/// a memset plus a handful of stores, cheaper than a dedicated entry-merge
/// path would save.
#include <cstring>
#include <vector>

#include "core/validate.hpp"
#include "ops/bitblock_common.hpp"
#include "ops/bitblock_ops.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

namespace {

constexpr std::size_t kW = BitBlockMatrix::kBlockWords;
constexpr std::size_t kBlockRowGrain = 16;

/// Append one staged tile and return its word buffer (zero-initialised).
std::uint64_t* push_tile(detail::BlockRowStage& stage, Index bcol) {
    stage.bcols.push_back(bcol);
    stage.words.resize(stage.words.size() + kW, 0);
    return stage.words.data() + stage.words.size() - kW;
}

}  // namespace

BitBlockMatrix ewise_add(backend::Context& ctx, const BitBlockMatrix& a,
                         const BitBlockMatrix& b) {
    check(a.nrows() == b.nrows() && a.ncols() == b.ncols(), Status::DimensionMismatch,
          "bitblock ewise_add");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("bitblock.ewise_add");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());

    const Index brows = a.brows();
    std::vector<detail::BlockRowStage> stages(static_cast<std::size_t>(brows));
    ctx.parallel_for(static_cast<std::size_t>(brows), kBlockRowGrain, [&](std::size_t bri) {
        const auto br = static_cast<Index>(bri);
        const auto ra = a.block_row(br);
        const auto rb = b.block_row(br);
        detail::BlockRowStage& stage = stages[bri];
        std::uint64_t tiles = 0;
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < ra.size() || j < rb.size()) {
            const bool take_a =
                j >= rb.size() || (i < ra.size() && ra[i].bcol <= rb[j].bcol);
            const bool take_b =
                i >= ra.size() || (j < rb.size() && rb[j].bcol <= ra[i].bcol);
            const Index bcol = take_a ? ra[i].bcol : rb[j].bcol;
            std::uint64_t* dst = push_tile(stage, bcol);
            if (take_a) a.expand(ra[i++], dst);
            if (take_b) {
                if (take_a) {
                    std::uint64_t tmp[kW];
                    b.expand(rb[j], tmp);
                    for (std::size_t w = 0; w < kW; ++w) dst[w] |= tmp[w];
                } else {
                    b.expand(rb[j], dst);
                }
                ++j;
            }
            ++tiles;
        }
        SPBLA_PROF_COUNT(bitblock_blocks_touched, tiles);
    });

    BitBlockMatrix out = detail::assemble(a.nrows(), a.ncols(), std::move(stages));
    SPBLA_PROF_COUNT(nnz_out, out.nnz());
    SPBLA_VALIDATE(out);
    return out;
}

BitBlockMatrix ewise_mult(backend::Context& ctx, const BitBlockMatrix& a,
                          const BitBlockMatrix& b) {
    check(a.nrows() == b.nrows() && a.ncols() == b.ncols(), Status::DimensionMismatch,
          "bitblock ewise_mult");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("bitblock.ewise_mult");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());

    const Index brows = a.brows();
    std::vector<detail::BlockRowStage> stages(static_cast<std::size_t>(brows));
    ctx.parallel_for(static_cast<std::size_t>(brows), kBlockRowGrain, [&](std::size_t bri) {
        const auto br = static_cast<Index>(bri);
        const auto ra = a.block_row(br);
        const auto rb = b.block_row(br);
        detail::BlockRowStage& stage = stages[bri];
        std::uint64_t tiles = 0;
        std::uint64_t anded = 0;
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < ra.size() && j < rb.size()) {
            if (ra[i].bcol < rb[j].bcol) {
                ++i;
            } else if (rb[j].bcol < ra[i].bcol) {
                ++j;
            } else {
                std::uint64_t* dst = push_tile(stage, ra[i].bcol);
                std::uint64_t tmp[kW];
                a.expand(ra[i], dst);
                b.expand(rb[j], tmp);
                for (std::size_t w = 0; w < kW; ++w) dst[w] &= tmp[w];
                anded += kW;
                ++tiles;
                ++i;
                ++j;
            }
        }
        SPBLA_PROF_COUNT(bitblock_blocks_touched, tiles);
        SPBLA_PROF_COUNT(bitblock_words_anded, anded);
    });

    BitBlockMatrix out = detail::assemble(a.nrows(), a.ncols(), std::move(stages));
    SPBLA_PROF_COUNT(nnz_out, out.nnz());
    SPBLA_VALIDATE(out);
    return out;
}

}  // namespace spbla::ops
