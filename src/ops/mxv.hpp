/// \file mxv.hpp
/// \brief Boolean matrix-vector products.
///
/// These back the BFS-style traversals in the algorithms layer; the paper
/// lists the sparse vector as partially supported, and these are exactly the
/// vector kernels path querying needs.
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"
#include "core/spvector.hpp"

namespace spbla::ops {

/// y = M x: y[i] = OR over j of (M(i, j) & x[j]).
[[nodiscard]] SpVector mxv(backend::Context& ctx, const CsrMatrix& m, const SpVector& x);

/// y = x M: y[j] = OR over i of (x[i] & M(i, j)) — the BFS frontier push.
[[nodiscard]] SpVector vxm(backend::Context& ctx, const SpVector& x, const CsrMatrix& m);

}  // namespace spbla::ops
