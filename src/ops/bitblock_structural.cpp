/// Structural kernels on the 64x64 tile grid: transpose, reduce, mxv.
///
/// transpose() is two nested transposes that never leave registers for the
/// inner one: the block grid is scattered CSR-transpose style (histogram +
/// cursor placement, like ops/transpose.cpp does for rows), and each bitmap
/// tile is flipped in place with the 6-round masked-XOR 64x64 bit transpose
/// from util/bit_ops.hpp — ~384 word ops per tile, no lookup tables, no
/// per-bit loops. Sparse-kind tiles just swap their packed coordinates.
///
/// reduce_to_column() folds each tile into one 64-bit row-occupancy mask;
/// mxv() packs the operand vector into one word per block column so a tile
/// row is tested with a single AND (counted in bitblock_words_anded).
#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "ops/bitblock_ops.hpp"
#include "prof/prof.hpp"
#include "util/bit_ops.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

namespace {

constexpr std::size_t kW = BitBlockMatrix::kBlockWords;
constexpr std::size_t kBlockRowGrain = 16;

using BlockRef = BitBlockMatrix::BlockRef;
using BlockKind = BitBlockMatrix::BlockKind;

}  // namespace

BitBlockMatrix transpose(backend::Context& ctx, const BitBlockMatrix& a) {
    (void)ctx;  // grid histogram + per-tile register transpose; single-launch
    SPBLA_VALIDATE(a);
    SPBLA_PROF_SPAN("bitblock.transpose");
    SPBLA_PROF_COUNT(nnz_in, a.nnz());
    SPBLA_PROF_COUNT(nnz_out, a.nnz());
    SPBLA_PROF_COUNT(bitblock_blocks_touched, a.blocks().size());

    const Index obrows = a.bcols();
    std::vector<Index> offsets(static_cast<std::size_t>(obrows) + 1, 0);
    for (const auto& t : a.blocks()) ++offsets[t.bcol + 1];
    for (Index br = 0; br < obrows; ++br) offsets[br + 1] += offsets[br];

    // Pass 1: scatter (source tile, target column) pairs into target block
    // rows, CSR-transpose style. Ascending source block rows per target block
    // row keep each output tile list sorted by bcol.
    struct Placed {
        const BlockRef* src;
        Index bcol;  // output column = source block row
    };
    std::vector<Placed> placed(a.blocks().size());
    std::vector<Index> cursor(offsets.begin(), offsets.end() - 1);
    for (Index br = 0; br < a.brows(); ++br) {
        for (const auto& t : a.block_row(br)) {
            placed[cursor[t.bcol]++] = {&t, br};
        }
    }

    // Pass 2: walk tiles in output order so pool offsets are assigned
    // canonically (equal matrices stay bitwise-equal, which operator== and
    // the law tests rely on), flipping each tile as it lands.
    std::vector<BlockRef> blocks(a.blocks().size());
    std::vector<std::uint64_t> words;
    std::vector<std::uint16_t> entries;
    std::vector<std::uint16_t> scratch;
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const BlockRef& t = *placed[i].src;
        BlockRef out;
        out.bcol = placed[i].bcol;
        out.nnz = t.nnz;
        out.kind = t.kind;
        if (t.kind == BlockKind::Bitmap) {
            out.offset = static_cast<std::uint32_t>(words.size());
            const auto src = a.bitmap_words(t);
            words.insert(words.end(), src.begin(), src.end());
            util::bit_transpose_64x64(words.data() + out.offset);
        } else {
            out.offset = static_cast<std::uint32_t>(entries.size());
            scratch.clear();
            for (const std::uint16_t e : a.sparse_entries(t)) {
                scratch.push_back(
                    static_cast<std::uint16_t>(((e & 63) << 6) | (e >> 6)));
            }
            std::sort(scratch.begin(), scratch.end());
            entries.insert(entries.end(), scratch.begin(), scratch.end());
        }
        blocks[i] = out;
    }

    BitBlockMatrix out = BitBlockMatrix::from_raw(a.ncols(), a.nrows(), std::move(offsets),
                                                  std::move(blocks), std::move(words),
                                                  std::move(entries));
    SPBLA_VALIDATE(out);
    return out;
}

SpVector reduce_to_column(backend::Context& ctx, const BitBlockMatrix& a) {
    SPBLA_VALIDATE(a);
    SPBLA_PROF_SPAN("bitblock.reduce_to_column");
    SPBLA_PROF_COUNT(nnz_in, a.nnz());

    const Index brows = a.brows();
    std::vector<std::uint64_t> masks(static_cast<std::size_t>(brows), 0);
    ctx.parallel_for(static_cast<std::size_t>(brows), kBlockRowGrain, [&](std::size_t bri) {
        std::uint64_t mask = 0;
        std::uint64_t tiles = 0;
        for (const auto& t : a.block_row(static_cast<Index>(bri))) {
            if (t.kind == BlockKind::Bitmap) {
                const auto w = a.bitmap_words(t);
                for (std::size_t rl = 0; rl < kW; ++rl) {
                    if (w[rl] != 0) mask |= std::uint64_t{1} << rl;
                }
            } else {
                for (const std::uint16_t e : a.sparse_entries(t)) {
                    mask |= std::uint64_t{1} << (e >> 6);
                }
            }
            ++tiles;
        }
        masks[bri] = mask;
        SPBLA_PROF_COUNT(bitblock_blocks_touched, tiles);
    });

    std::vector<Index> indices;
    for (Index br = 0; br < brows; ++br) {
        util::for_each_set_bit(masks[br], [&](unsigned rl) {
            indices.push_back(br * BitBlockMatrix::kBlockDim + rl);
        });
    }
    SpVector out = SpVector::from_indices(a.nrows(), std::move(indices));
    SPBLA_PROF_COUNT(nnz_out, out.nnz());
    SPBLA_VALIDATE(out);
    return out;
}

SpVector mxv(backend::Context& ctx, const BitBlockMatrix& a, const SpVector& x) {
    check(x.size() == a.ncols(), Status::DimensionMismatch, "bitblock mxv");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(x);
    SPBLA_PROF_SPAN("bitblock.mxv");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + x.nnz());

    // One word per block column: tile row r intersects x iff
    // words[r] & xw[bcol] != 0 — a 64-way Boolean dot product per AND.
    std::vector<std::uint64_t> xw(static_cast<std::size_t>(a.bcols()), 0);
    for (const Index i : x.indices()) {
        xw[i >> 6] |= std::uint64_t{1} << (i & 63);
    }

    const Index brows = a.brows();
    std::vector<std::uint64_t> masks(static_cast<std::size_t>(brows), 0);
    ctx.parallel_for(static_cast<std::size_t>(brows), kBlockRowGrain, [&](std::size_t bri) {
        std::uint64_t mask = 0;
        std::uint64_t tiles = 0;
        std::uint64_t anded = 0;
        for (const auto& t : a.block_row(static_cast<Index>(bri))) {
            const std::uint64_t xk = xw[t.bcol];
            ++tiles;
            if (xk == 0) continue;
            if (t.kind == BlockKind::Bitmap) {
                const auto w = a.bitmap_words(t);
                for (std::size_t rl = 0; rl < kW; ++rl) {
                    if (w[rl] & xk) mask |= std::uint64_t{1} << rl;
                }
                anded += kW;
            } else {
                for (const std::uint16_t e : a.sparse_entries(t)) {
                    if ((xk >> (e & 63)) & 1) mask |= std::uint64_t{1} << (e >> 6);
                }
            }
        }
        masks[bri] = mask;
        SPBLA_PROF_COUNT(bitblock_blocks_touched, tiles);
        SPBLA_PROF_COUNT(bitblock_words_anded, anded);
    });

    std::vector<Index> indices;
    for (Index br = 0; br < brows; ++br) {
        util::for_each_set_bit(masks[br], [&](unsigned rl) {
            indices.push_back(br * BitBlockMatrix::kBlockDim + rl);
        });
    }
    SpVector out = SpVector::from_indices(a.nrows(), std::move(indices));
    SPBLA_PROF_COUNT(nnz_out, out.nnz());
    SPBLA_VALIDATE(out);
    return out;
}

}  // namespace spbla::ops
