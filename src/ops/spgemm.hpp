/// \file spgemm.hpp
/// \brief Boolean sparse matrix-matrix multiplication (SpGEMM).
///
/// Reproduces cuBool's multiplication kernel: the Nsparse algorithm
/// (Nagasaka et al.) adapted to the Boolean semiring. The generic algorithm
/// accumulates value products in per-row hash *maps*; the Boolean
/// specialisation only needs per-row hash *sets* of column indices — no
/// value array is ever read, written, or allocated, which is where the
/// paper's time and memory advantage over generic SpGEMM comes from.
///
/// Structure (faithful to Nsparse):
///  1. symbolic upper bound: ub(i) = sum over k in A(i,:) of nnz(B(k,:))
///  2. rows are binned by ub into size classes; each class uses the
///     cheapest accumulator that fits (tiny sorted buffer / open-addressing
///     hash set / dense bitmap for pathological rows)
///  3. count pass computes exact row sizes, an exclusive scan allocates the
///     result exactly, and the fill pass re-runs the accumulator and emits
///     sorted column indices.
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// Tuning knobs for the hash SpGEMM (defaults follow Nsparse).
struct SpGemmOptions {
    /// Hash-table slots = next_pow2(upper_bound / load_factor).
    double hash_load_factor = 0.5;
    /// Rows with upper bound <= this use a tiny sort-merge buffer instead of
    /// a hash table (the "pwarp" bin analog).
    Index tiny_row_threshold = 32;
    /// Rows whose upper bound exceeds ncols(B) * this fraction fall back to a
    /// dense bitmap accumulator (the "global bin" analog).
    double dense_row_fraction = 0.25;
    /// Disable size-class binning: every non-tiny row uses the hash path.
    /// Exists for the ablation benchmark.
    bool use_binning = true;
};

/// C = A x B over the Boolean semiring. Shapes: (m x k) * (k x n) -> (m x n).
[[nodiscard]] CsrMatrix multiply(backend::Context& ctx, const CsrMatrix& a,
                                 const CsrMatrix& b, const SpGemmOptions& opts = {});

/// C += A x B: returns the element-wise OR of \p c and A x B (the paper's
/// fused multiply-add primitive used by every fixpoint loop).
[[nodiscard]] CsrMatrix multiply_add(backend::Context& ctx, const CsrMatrix& c,
                                     const CsrMatrix& a, const CsrMatrix& b,
                                     const SpGemmOptions& opts = {});

}  // namespace spbla::ops
