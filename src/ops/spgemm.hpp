/// \file spgemm.hpp
/// \brief Boolean sparse matrix-matrix multiplication (SpGEMM).
///
/// Reproduces cuBool's multiplication kernel: the Nsparse algorithm
/// (Nagasaka et al.) adapted to the Boolean semiring. The generic algorithm
/// accumulates value products in per-row hash *maps*; the Boolean
/// specialisation only needs per-row hash *sets* of column indices — no
/// value array is ever read, written, or allocated, which is where the
/// paper's time and memory advantage over generic SpGEMM comes from.
///
/// Structure (Nsparse symbolic/numeric split, OpSparse-style bin schedule):
///  1. symbolic upper bound: ub(i) = sum over k in A(i,:) of nnz(B(k,:))
///  2. rows are binned by ub into size classes (empty / tiny / hash-small /
///     hash-large / dense); each class uses the cheapest accumulator that
///     fits, and the bins are launched heavy-first as one dynamically
///     scheduled grid so straggler rows overlap with the light bins
///  3. the count pass computes exact row sizes — and, for rows within the
///     symbolic cache budget, already extracts the sorted column set into a
///     per-row cache; an exclusive scan allocates the result exactly, and
///     the fill pass copies cached rows straight out, re-running the
///     accumulator only for rows the budget excluded.
#pragma once

#include <cstddef>

#include "backend/context.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// Tuning knobs for the hash SpGEMM (defaults follow Nsparse/OpSparse).
struct SpGemmOptions {
    /// Hash-table slots = next_pow2(upper_bound / load_factor).
    double hash_load_factor = 0.5;
    /// Rows with upper bound <= this use a tiny sort-merge buffer instead of
    /// a hash table (the "pwarp" bin analog).
    Index tiny_row_threshold = 32;
    /// Rows whose upper bound exceeds ncols(B) * this fraction fall back to a
    /// dense bitmap accumulator (the "global bin" analog). The default is the
    /// one-bit-per-bitmap-word crossover (1/64): past it the bitmap insert
    /// (one OR, no probing) plus the already-sorted touched-word extraction
    /// beats the hash path, which must sort its column list per row.
    double dense_row_fraction = 1.0 / 64.0;
    /// Disable size-class binning: every non-tiny row uses the hash path.
    /// Exists for the ablation benchmark.
    bool use_binning = true;
    /// Hash rows with upper bound above this go to the hash-large bin
    /// (scheduled one row per chunk so a hub row cannot stall a chunk).
    Index hash_large_threshold = 4096;
    /// Schedule rows as per-size-class bins, heaviest bin first, instead of
    /// in natural row order. Off reproduces the pre-bin flat schedule.
    bool use_bin_scheduler = true;
    /// Claim chunks off the pool's atomic ticket counter (work stealing).
    /// Off reproduces the static one-closure-per-chunk schedule.
    bool use_ticket_scheduler = true;
    /// Byte budget for caching symbolic column sets between the count and
    /// fill passes (the single-pass numeric optimisation). The cache stands
    /// in for device scratch and is charged to the context's MemoryTracker.
    /// 0 disables caching and recomputes every row (the pre-PR two-pass
    /// behaviour).
    std::size_t symbolic_cache_budget = std::size_t{64} << 20;
    /// Reset accumulators the pre-PR way: rezero the full dense bitmap and
    /// the full hash table on every row and extract columns by scanning the
    /// whole table. Exists only so the perf-trajectory benchmark can measure
    /// against a faithful pre-PR baseline; never enable otherwise.
    bool legacy_accumulator_reset = false;
};

/// C = A x B over the Boolean semiring. Shapes: (m x k) * (k x n) -> (m x n).
[[nodiscard]] CsrMatrix multiply(backend::Context& ctx, const CsrMatrix& a,
                                 const CsrMatrix& b, const SpGemmOptions& opts = {});

/// C += A x B: returns the element-wise OR of \p c and A x B (the paper's
/// fused multiply-add primitive used by every fixpoint loop).
[[nodiscard]] CsrMatrix multiply_add(backend::Context& ctx, const CsrMatrix& c,
                                     const CsrMatrix& a, const CsrMatrix& b,
                                     const SpGemmOptions& opts = {});

}  // namespace spbla::ops
