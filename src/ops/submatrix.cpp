#include "ops/submatrix.hpp"

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

CsrMatrix submatrix(backend::Context& ctx, const CsrMatrix& src, Index row0, Index col0,
                    Index m, Index n) {
    SPBLA_REQUIRE(static_cast<std::uint64_t>(row0) + m <= src.nrows() &&
                      static_cast<std::uint64_t>(col0) + n <= src.ncols(),
                  Status::OutOfRange, "submatrix: window exceeds source shape");
    SPBLA_VALIDATE(src);
    SPBLA_PROF_SPAN("submatrix");
    SPBLA_PROF_COUNT(nnz_in, src.nnz());

    // Pass 1: per-row count via two binary searches into [col0, col0 + n).
    auto row_sizes = ctx.alloc<Index>(m);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto cols = src.row(row0 + static_cast<Index>(i));
        const auto first = std::lower_bound(cols.begin(), cols.end(), col0);
        const auto last = std::lower_bound(first, cols.end(), col0 + n);
        row_sizes[i] = static_cast<Index>(last - first);
    });

    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    for (Index i = 0; i < m; ++i) row_offsets[i + 1] = row_offsets[i] + row_sizes[i];

    SPBLA_PROF_COUNT(nnz_out, row_offsets[m]);

    // Pass 2: copy and rebase the column indices.
    std::vector<Index> cols(row_offsets[m]);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto src_cols = src.row(row0 + static_cast<Index>(i));
        const auto first = std::lower_bound(src_cols.begin(), src_cols.end(), col0);
        std::size_t out = row_offsets[i];
        for (auto it = first; it != src_cols.end() && *it < col0 + n; ++it) {
            cols[out++] = *it - col0;
        }
    });

    CsrMatrix result = CsrMatrix::from_raw(m, n, std::move(row_offsets), std::move(cols));
    SPBLA_VALIDATE(result);
    return result;
}

}  // namespace spbla::ops
