/// \file bitblock_ops.hpp
/// \brief Broadword kernels on the tiled 64x64 bit-matrix format.
///
/// The bit-parallel tier of the library: every kernel below works on packed
/// words — one AND/OR touches 64 Boolean cells — instead of index lists.
/// multiply() accumulates per-tile products Gustavson-style over the block
/// grid with three inner paths picked per tile pair (sparse scatter, row-OR,
/// and an 8-bit Four-Russians lookup table for dense tiles); transpose() is
/// an in-register 64x64 bit transpose per tile; the element-wise family and
/// mxv/reduce are word-wide sweeps. Work is observable through the
/// bitblock_* prof counter family (blocks touched, words ANDed, lookup
/// hits).
#pragma once

#include "backend/context.hpp"
#include "core/bitblocks.hpp"
#include "core/spvector.hpp"

namespace spbla::ops {

/// Boolean product C = A x B on the block grid.
[[nodiscard]] BitBlockMatrix multiply(backend::Context& ctx, const BitBlockMatrix& a,
                                      const BitBlockMatrix& b);

/// Element-wise OR; shapes must match.
[[nodiscard]] BitBlockMatrix ewise_add(backend::Context& ctx, const BitBlockMatrix& a,
                                       const BitBlockMatrix& b);

/// Element-wise AND; shapes must match.
[[nodiscard]] BitBlockMatrix ewise_mult(backend::Context& ctx, const BitBlockMatrix& a,
                                        const BitBlockMatrix& b);

/// Transpose (per-tile in-register 64x64 bit transpose + grid transpose).
[[nodiscard]] BitBlockMatrix transpose(backend::Context& ctx, const BitBlockMatrix& a);

/// V[i] = OR over row i (the paper's reduce-to-column-vector).
[[nodiscard]] SpVector reduce_to_column(backend::Context& ctx, const BitBlockMatrix& a);

/// y = A x (Boolean matrix-vector product on packed words).
[[nodiscard]] SpVector mxv(backend::Context& ctx, const BitBlockMatrix& a,
                           const SpVector& x);

}  // namespace spbla::ops
