/// \file coo_ops.hpp
/// \brief The clBool (COO) backend's operation set.
///
/// The paper's clBool section describes COO storage and the one-pass merge
/// addition, but its matrix-multiplication subsection is an unfinished
/// placeholder in the source ("!!! Matrix-matrix multiplication !!!").
/// We complete it the way a COO backend naturally would (and the way CUSP
/// does): expand-sort-compress specialised to the Boolean semiring, where
/// "compress" is pure deduplication — no value array, no additions.
/// Transpose, sub-matrix and reduce round out the backend so that the COO
/// side supports the full operation list of the paper's Libraries Design
/// section.
#pragma once

#include "backend/context.hpp"
#include "core/coo.hpp"
#include "core/spvector.hpp"

namespace spbla::ops {

/// C = A x B over the Boolean semiring (expand-sort-deduplicate).
[[nodiscard]] CooMatrix multiply(backend::Context& ctx, const CooMatrix& a,
                                 const CooMatrix& b);

/// M = N^T (coordinate swap + re-sort).
[[nodiscard]] CooMatrix transpose(backend::Context& ctx, const CooMatrix& n);

/// Extract the m x n window of \p src anchored at (row0, col0).
[[nodiscard]] CooMatrix submatrix(backend::Context& ctx, const CooMatrix& src,
                                  Index row0, Index col0, Index m, Index n);

/// V = reduceToColumn(M): the set of non-empty rows.
[[nodiscard]] SpVector reduce_to_column(backend::Context& ctx, const CooMatrix& m);

}  // namespace spbla::ops
