/// Boolean SpGEMM on the 64x64 tile grid.
///
/// Gustavson over panels of A block rows: workers own kPanelRows output
/// block rows at a time and sweep A's tiles of the panel in ascending inner
/// block column, so each B tile is fetched once per panel and the
/// Four-Russians table built for it amortises across up to kPanelRows A
/// tiles. Three inner paths per (A tile, B tile) pair:
///
///  - sparse scatter: A tile is entry-based — per entry (r, k) OR B's row k
///    into accumulator row r (nnz_A word ORs);
///  - row-OR: A tile is a bitmap below the lookup threshold — walk its set
///    bits with for_each_set_bit and OR the matching B rows;
///  - Four-Russians: dense A tile — build the 8 x 256-word table of all
///    row-subset ORs of the B tile (2048 ORs, incremental over subsets),
///    then each of A's 64 rows costs just 8 table lookups + ORs instead of
///    up to 64.
///
/// The lookup path turns per-row work from O(row popcount) into O(8): at
/// tile density 1/4 and up it does 4-8x fewer word ops, which is the bench
/// ladder's headline. Counters: bitblock_blocks_touched counts tile pairs,
/// bitblock_lookup_hits counts table probes.
#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "backend/arena.hpp"
#include "core/validate.hpp"
#include "ops/bitblock_common.hpp"
#include "ops/bitblock_ops.hpp"
#include "prof/prof.hpp"
#include "util/bit_ops.hpp"
#include "util/contracts.hpp"

namespace spbla::ops {

namespace {

constexpr std::size_t kW = BitBlockMatrix::kBlockWords;

/// A tiles at or above this population take the Four-Russians path. The
/// table costs 2048 ORs to build (amortised over the panel) plus 512
/// lookup-ORs to apply; the row-OR path costs one OR per set cell, so the
/// crossover sits near 1024 cells (tile density 1/4).
constexpr std::uint32_t kFourRussiansMinNnz = 1024;

/// Output block rows owned by one worker task. Larger panels amortise the
/// lookup-table build across more A tiles but shrink the task count; four
/// keeps 256-row matrices at a full task per core on typical pools.
constexpr std::size_t kPanelRows = 4;

/// All-subset row ORs of one B tile: table[t][m] = OR of B rows
/// { 8t + i : bit i set in m }. Built incrementally — each subset extends
/// the subset with its lowest bit cleared by one OR.
struct FourRussiansTable {
    std::uint64_t at[8][256];

    void build(const std::uint64_t* bw) noexcept {
        for (unsigned t = 0; t < 8; ++t) {
            const std::uint64_t* base = bw + t * 8;
            at[t][0] = 0;
            for (unsigned m = 1; m < 256; ++m) {
                at[t][m] = at[t][m & (m - 1)] | base[util::lowest_set_bit(m)];
            }
        }
    }
};

/// One A tile of the current panel, keyed by its inner block column.
struct PanelTile {
    Index bk;                                 ///< inner block column
    Index bil;                                ///< panel-local block row
    const BitBlockMatrix::BlockRef* tile;
};

}  // namespace

BitBlockMatrix multiply(backend::Context& ctx, const BitBlockMatrix& a,
                        const BitBlockMatrix& b) {
    check(a.ncols() == b.nrows(), Status::DimensionMismatch, "bitblock multiply");
    SPBLA_VALIDATE(a);
    SPBLA_VALIDATE(b);
    SPBLA_PROF_SPAN("bitblock.multiply");
    SPBLA_PROF_COUNT(nnz_in, a.nnz() + b.nnz());

    const Index brows = a.brows();
    const Index bcols_out = b.bcols();
    std::vector<detail::BlockRowStage> stages(static_cast<std::size_t>(brows));

    const std::size_t npanels =
        (static_cast<std::size_t>(brows) + kPanelRows - 1) / kPanelRows;
    ctx.parallel_for_chunks(npanels, 1, [&](std::size_t p0, std::size_t p1) {
        // Panel scratch on the worker's op arena: built once per chunk,
        // re-assigned per panel, reclaimed wholesale at chunk-scope reset.
        backend::Arena& arena = ctx.scratch_arena();
        backend::ArenaVector<PanelTile> atiles{
            backend::ArenaAllocator<PanelTile>{arena}};
        backend::ArenaVector<std::int32_t> slot{
            backend::ArenaAllocator<std::int32_t>{arena}};
        backend::ArenaVector<std::uint64_t> acc{
            backend::ArenaAllocator<std::uint64_t>{arena}};
        backend::ArenaVector<std::pair<Index, Index>> touched{  // (bil, bj)
            backend::ArenaAllocator<std::pair<Index, Index>>{arena}};
        backend::ArenaVector<std::uint32_t> order{
            backend::ArenaAllocator<std::uint32_t>{arena}};

        const auto run_panel = [&](std::size_t p) {
        const Index bi0 = static_cast<Index>(p * kPanelRows);
        const Index bi1 = std::min<Index>(brows, bi0 + static_cast<Index>(kPanelRows));
        const std::size_t nbi = bi1 - bi0;

        // Panel tiles sorted by inner block column: all A tiles that read
        // B block row bk are adjacent, so each B tile is visited once.
        atiles.clear();
        for (Index bi = bi0; bi < bi1; ++bi) {
            for (const auto& t : a.block_row(bi)) {
                atiles.push_back(PanelTile{t.bcol, static_cast<Index>(bi - bi0), &t});
            }
        }
        if (atiles.empty()) return;
        std::stable_sort(atiles.begin(), atiles.end(),
                         [](const PanelTile& x, const PanelTile& y) { return x.bk < y.bk; });

        // Accumulator tiles, allocated on first touch of (panel row, bcol).
        slot.assign(nbi * static_cast<std::size_t>(bcols_out), -1);
        acc.clear();
        touched.clear();

        std::uint64_t bexp[kW];
        FourRussiansTable table;
        std::uint64_t pairs = 0;
        std::uint64_t lookups = 0;

        std::size_t i = 0;
        while (i < atiles.size()) {
            const Index bk = atiles[i].bk;
            std::size_t j = i;
            while (j < atiles.size() && atiles[j].bk == bk) ++j;
            const auto brow_b = b.block_row(bk);
            for (const auto& btile : brow_b) {
                const Index bj = btile.bcol;
                const std::uint64_t* bw;
                if (btile.kind == BitBlockMatrix::BlockKind::Bitmap) {
                    bw = b.bitmap_words(btile).data();
                } else {
                    b.expand(btile, bexp);
                    bw = bexp;
                }
                bool table_built = false;
                for (std::size_t k = i; k < j; ++k) {
                    const auto& atile = *atiles[k].tile;
                    const std::size_t bil = atiles[k].bil;
                    std::int32_t& s = slot[bil * static_cast<std::size_t>(bcols_out) + bj];
                    if (s < 0) {
                        s = static_cast<std::int32_t>(touched.size());
                        touched.emplace_back(static_cast<Index>(bil), bj);
                        acc.resize(acc.size() + kW, 0);
                    }
                    std::uint64_t* dst = acc.data() + static_cast<std::size_t>(s) * kW;
                    ++pairs;
                    if (atile.kind == BitBlockMatrix::BlockKind::Sparse) {
                        for (const std::uint16_t e : a.sparse_entries(atile)) {
                            dst[e >> 6] |= bw[e & 63];
                        }
                    } else if (atile.nnz >= kFourRussiansMinNnz) {
                        if (!table_built) {
                            table.build(bw);
                            table_built = true;
                        }
                        const std::uint64_t* aw = a.bitmap_words(atile).data();
                        for (std::size_t rl = 0; rl < kW; ++rl) {
                            const std::uint64_t x = aw[rl];
                            if (x == 0) continue;
                            dst[rl] |= table.at[0][x & 0xff] |
                                       table.at[1][(x >> 8) & 0xff] |
                                       table.at[2][(x >> 16) & 0xff] |
                                       table.at[3][(x >> 24) & 0xff] |
                                       table.at[4][(x >> 32) & 0xff] |
                                       table.at[5][(x >> 40) & 0xff] |
                                       table.at[6][(x >> 48) & 0xff] |
                                       table.at[7][x >> 56];
                            lookups += 8;
                        }
                    } else {
                        const std::uint64_t* aw = a.bitmap_words(atile).data();
                        for (std::size_t rl = 0; rl < kW; ++rl) {
                            std::uint64_t* out_row = dst + rl;
                            util::for_each_set_bit(aw[rl],
                                                   [&](unsigned kk) { *out_row |= bw[kk]; });
                        }
                    }
                }
            }
            i = j;
        }

        // Flush: regroup accumulator tiles per panel row in bcol order — a
        // flat sorted index over `touched` (pairs order by bil, then bj)
        // instead of the old vector-of-vectors regroup.
        order.resize(touched.size());
        for (std::size_t t = 0; t < order.size(); ++t) {
            order[t] = static_cast<std::uint32_t>(t);
        }
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t x, std::uint32_t y) { return touched[x] < touched[y]; });
        std::size_t t = 0;
        while (t < order.size()) {
            const Index bil = touched[order[t]].first;
            std::size_t e = t;
            while (e < order.size() && touched[order[e]].first == bil) ++e;
            detail::BlockRowStage& stage = stages[bi0 + bil];
            stage.bcols.reserve(e - t);
            stage.words.resize((e - t) * kW);
            for (std::size_t q = t; q < e; ++q) {
                stage.bcols.push_back(touched[order[q]].second);
                std::memcpy(stage.words.data() + (q - t) * kW,
                            acc.data() + static_cast<std::size_t>(order[q]) * kW,
                            kW * sizeof(std::uint64_t));
            }
            t = e;
        }
        SPBLA_PROF_COUNT(bitblock_blocks_touched, pairs);
        SPBLA_PROF_COUNT(bitblock_lookup_hits, lookups);
        };
        for (std::size_t p = p0; p < p1; ++p) run_panel(p);
    });

    BitBlockMatrix out = detail::assemble(a.nrows(), b.ncols(), std::move(stages));
    SPBLA_PROF_COUNT(nnz_out, out.nnz());
    SPBLA_VALIDATE(out);
    return out;
}

}  // namespace spbla::ops
