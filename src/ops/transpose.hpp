/// \file transpose.hpp
/// \brief Boolean sparse matrix transposition.
///
/// Implemented as a counting sort over column indices (the standard
/// CSR -> CSC conversion specialised to Boolean: no value gather).
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"

namespace spbla::ops {

/// M = N^T.
[[nodiscard]] CsrMatrix transpose(backend::Context& ctx, const CsrMatrix& n);

}  // namespace spbla::ops
