/// \file matrix.hpp
/// \brief Format-polymorphic Boolean matrix handle — the storage engine.
///
/// The paper presents CSR (cuBool) and COO (clBool) as co-equal backends
/// behind one API; this layer makes that literal. A spbla::Matrix owns one
/// *primary* representation (CSR, COO or dense-bitmap) and may cache the
/// other representations after a conversion, so that repeated dispatches to
/// the same format pay the conversion once. Cached secondaries are charged
/// to the converting Context's MemoryTracker (the simulated device memory),
/// live under a process-wide byte budget, are invalidated whenever the
/// handle's content changes, and are released — and therefore leak-checked —
/// before Context teardown like any other device allocation.
///
/// The handle deliberately exposes *no* mutable access to a concrete format:
/// layers above (capi, algorithms, cfpq, rpq) operate on Matrix through the
/// dispatch layer (storage/dispatch.hpp), which picks the representation per
/// operation with a cost model. Kernel code (src/ops, src/baseline) keeps
/// working on the concrete classes it always had.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "backend/context.hpp"
#include "core/bitblocks.hpp"
#include "core/coo.hpp"
#include "core/csr.hpp"
#include "core/dense.hpp"
#include "core/spvector.hpp"
#include "util/thread_annotations.hpp"

namespace spbla {

/// Storage representation of a Boolean matrix.
enum class Format : std::uint8_t {
    Csr = 0,       ///< compressed sparse row (the cuBool format)
    Coo = 1,       ///< coordinate list (the clBool format)
    Dense = 2,     ///< bit-packed dense rows (closure endgame / oracle format)
    BitBlocks = 3, ///< sparse grid of 64x64-bit tiles (broadword kernel tier)
};

inline constexpr std::size_t kNumFormats = 4;

[[nodiscard]] constexpr const char* format_name(Format f) noexcept {
    switch (f) {
        case Format::Csr: return "csr";
        case Format::Coo: return "coo";
        case Format::Dense: return "dense";
        case Format::BitBlocks: return "bitblock";
    }
    return "unknown";
}

namespace storage {

/// Process-wide storage-engine counters. Always compiled (they are a handful
/// of relaxed atomics); the same events are also mirrored into spbla::prof
/// counters so they appear in traces and bench JSON.
struct Stats {
    std::atomic<std::uint64_t> format_conversions{0};  ///< concrete conversions run
    std::atomic<std::uint64_t> repr_cache_hits{0};     ///< secondary rep reused
    std::atomic<std::uint64_t> repr_cache_stores{0};   ///< secondary rep retained
    std::atomic<std::uint64_t> repr_cache_drops{0};    ///< secondary rep released
    std::atomic<std::uint64_t> dispatch_csr{0};        ///< ops routed to CSR kernels
    std::atomic<std::uint64_t> dispatch_coo{0};        ///< ops routed to COO kernels
    std::atomic<std::uint64_t> dispatch_dense{0};      ///< ops routed to dense kernels
    std::atomic<std::uint64_t> dispatch_bitblock{0};   ///< ops routed to bitblock kernels
};

[[nodiscard]] Stats& stats() noexcept;

/// Zero every dispatch/conversion counter (not the cached-byte gauge).
void reset_stats() noexcept;

/// Bytes of cached secondary representations currently alive process-wide.
[[nodiscard]] std::size_t cached_bytes() noexcept;

/// Budget for cached secondary representations (process-wide, bytes).
/// Handles stop retaining conversions once the gauge exceeds the budget;
/// dispatch additionally trims caches back under it after each operation.
[[nodiscard]] std::size_t cache_budget() noexcept;
void set_cache_budget(std::size_t bytes) noexcept;

/// Dispatch-wide format override — the spbla_SetFormatHint escape hatch and
/// the lever the format-sweep tests and benchmarks use. Auto restores the
/// cost model.
enum class FormatHint : std::uint8_t {
    Auto = 0,
    ForceCsr = 1,
    ForceCoo = 2,
    ForceDense = 3,
    ForceBitBlocks = 4,
};

[[nodiscard]] FormatHint global_hint() noexcept;
void set_global_hint(FormatHint hint) noexcept;

/// RAII override of the global hint (used by tests/bench sweeps).
class ScopedHint {
public:
    explicit ScopedHint(FormatHint hint) : prev_{global_hint()} {
        set_global_hint(hint);
    }
    ~ScopedHint() { set_global_hint(prev_); }
    ScopedHint(const ScopedHint&) = delete;
    ScopedHint& operator=(const ScopedHint&) = delete;

private:
    FormatHint prev_;
};

}  // namespace storage

/// Value-semantic Boolean matrix handle with format-polymorphic storage,
/// bound to an execution context. This is both the storage-engine handle the
/// C API wraps and the high-level C++ facade (operators for the Boolean
/// semiring: `*` = multiply, `+` = element-wise or, `kron`).
class Matrix {
public:
    /// Empty matrix of the given shape (primary representation: CSR).
    Matrix(Index nrows, Index ncols, backend::Context& ctx = backend::default_context());

    Matrix() : Matrix(0, 0) {}

    /// Adopt a concrete representation as the primary.
    explicit Matrix(CsrMatrix data, backend::Context& ctx = backend::default_context());
    explicit Matrix(CooMatrix data, backend::Context& ctx = backend::default_context());
    explicit Matrix(DenseMatrix data, backend::Context& ctx = backend::default_context());
    explicit Matrix(BitBlockMatrix data, backend::Context& ctx = backend::default_context());

    /// Build from a coordinate list (duplicates collapse); CSR primary.
    static Matrix from_coords(Index nrows, Index ncols, std::vector<Coord> coords,
                              backend::Context& ctx = backend::default_context());

    /// Identity matrix.
    static Matrix identity(Index n, backend::Context& ctx = backend::default_context());

    /// Copies carry the primary representation only; cached secondaries stay
    /// with the source (they are a per-handle device-memory charge).
    Matrix(const Matrix& other);
    Matrix& operator=(const Matrix& other);
    Matrix(Matrix&& other) noexcept;
    Matrix& operator=(Matrix&& other) noexcept;
    ~Matrix();

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return nnz_; }
    [[nodiscard]] bool empty() const noexcept { return nnz_ == 0; }
    [[nodiscard]] double density() const noexcept;
    [[nodiscard]] bool get(Index r, Index c) const;
    [[nodiscard]] std::vector<Coord> to_coords() const;
    [[nodiscard]] backend::Context& context() const noexcept { return *ctx_; }

    /// Format of the primary (owned) representation.
    [[nodiscard]] Format format() const noexcept { return primary_; }

    /// True iff a representation in \p f is materialised on this handle.
    [[nodiscard]] bool has_format(Format f) const noexcept;

    /// Content version of this handle: a process-unique stamp assigned when
    /// the cell set is (re)built and carried across copies/moves of the same
    /// content. Any mutation (assignment, `+=`, `multiply_add`) installs a
    /// fresh stamp, so derived caches — e.g. the dist layer's shardings —
    /// compare versions to detect staleness. 0 only on moved-from handles
    /// (never considered current).
    [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

    /// Largest row population of the matrix (0 for empty). Computed once per
    /// handle content and cached; the dispatch cost model's skew signal.
    [[nodiscard]] Index max_row_nnz() const;

    /// Representation accessors. If the requested format is not materialised
    /// the primary is converted through core/convert (parallel, on \p ctx);
    /// the conversion result is retained as a cached secondary — charged to
    /// the handle's own context's MemoryTracker — while the process-wide
    /// cache gauge is under budget, and dropped after use otherwise (see
    /// dispatch's trim pass). References stay valid until the handle is
    /// mutated, trimmed or destroyed.
    ///
    /// Safe to call concurrently with other const member functions, including
    /// concurrent *first* materialisation of the same or different formats:
    /// each slot is published through an atomic pointer (the per-slot latch),
    /// and the losing threads of a materialisation race wait on the handle's
    /// repr mutex and then reuse the winner's conversion — it is never run
    /// twice, so the tracker is charged exactly once. An already-materialised
    /// representation is returned with a single acquire load (no lock).
    /// Mutation (assignment, convert_to, +=, multiply_add, destruction) still
    /// requires exclusive access to the handle, like any value type.
    [[nodiscard]] const CsrMatrix& csr(backend::Context& ctx) const;
    [[nodiscard]] const CooMatrix& coo(backend::Context& ctx) const;
    [[nodiscard]] const DenseMatrix& dense(backend::Context& ctx) const;
    [[nodiscard]] const BitBlockMatrix& bitblocks(backend::Context& ctx) const;

    /// Convenience accessors on the handle's own context.
    [[nodiscard]] const CsrMatrix& csr() const { return csr(*ctx_); }
    [[nodiscard]] const CooMatrix& coo() const { return coo(*ctx_); }
    [[nodiscard]] const DenseMatrix& dense() const { return dense(*ctx_); }
    [[nodiscard]] const BitBlockMatrix& bitblocks() const { return bitblocks(*ctx_); }

    /// Column indices of row \p r (sorted). Materialises the CSR rep.
    [[nodiscard]] std::span<const Index> row(Index r) const { return csr().row(r); }

    /// Re-anchor the primary representation to \p f (converting if needed).
    /// The previous primary remains available as a cached secondary.
    void convert_to(Format f, backend::Context& ctx);
    void convert_to(Format f) { convert_to(f, *ctx_); }

    /// Apply an insert/delete batch in place:
    /// this := (this \ removes) | adds — delete-then-insert, so a cell named
    /// by both deltas ends up present. Both deltas must match this shape.
    /// A no-op batch (both deltas empty) keeps the content stamp; any other
    /// batch installs a fresh version() even when the resulting cell set is
    /// value-equal, so every version-keyed derived cache (dist shardings, the
    /// incr layer's op memo) treats the handle as new content.
    void apply_delta(const Matrix& adds, const Matrix& removes, backend::Context& ctx);
    void apply_delta(const Matrix& adds, const Matrix& removes) {
        apply_delta(adds, removes, *ctx_);
    }

    /// Release cached secondary representations (and their tracker charge).
    /// Not safe against readers concurrently holding accessor references.
    void drop_cached() const noexcept SPBLA_EXCLUDES(repr_mutex_);

    /// Release cached secondaries while the process-wide gauge exceeds the
    /// budget. Called by dispatch after each routed operation.
    void trim_cache() const noexcept SPBLA_EXCLUDES(repr_mutex_);

    /// Bytes of cached secondaries currently charged by this handle.
    [[nodiscard]] std::size_t cached_bytes() const noexcept
        SPBLA_EXCLUDES(repr_mutex_);

    /// Simulated device footprint of the primary representation.
    [[nodiscard]] std::size_t device_bytes() const noexcept;

    // ---- facade sugar (routes through storage/dispatch.cpp) ----

    /// this := this | other (the paper's M += N).
    Matrix& operator+=(const Matrix& other);

    /// this := this | a * b (the paper's C += M x N fused form).
    Matrix& multiply_add(const Matrix& a, const Matrix& b);

    [[nodiscard]] friend Matrix operator+(const Matrix& a, const Matrix& b) {
        return Matrix::add(a, b);
    }
    [[nodiscard]] friend Matrix operator*(const Matrix& a, const Matrix& b) {
        return Matrix::mul(a, b);
    }

    /// Kronecker product K = this (x) other.
    [[nodiscard]] Matrix kron(const Matrix& other) const;

    /// Transpose.
    [[nodiscard]] Matrix transposed() const;

    /// Sub-matrix extraction M = this[r0..r0+m, c0..c0+n].
    [[nodiscard]] Matrix submatrix(Index r0, Index c0, Index m, Index n) const;

    /// V = reduceToColumn(this).
    [[nodiscard]] SpVector reduce_to_column() const;

    /// Structural equality (format-independent: same shape, same cells).
    friend bool operator==(const Matrix& a, const Matrix& b);

private:
    static Matrix add(const Matrix& a, const Matrix& b);
    static Matrix mul(const Matrix& a, const Matrix& b);

    /// Charge/release accounting for one cached secondary slot.
    struct SlotCharge {
        backend::MemoryTracker* tracker{nullptr};
        std::size_t bytes{0};
    };

    static std::uint64_t next_version() noexcept;  // process-unique, never 0

    void adopt_shape() noexcept;    // refresh nrows_/ncols_/nnz_ from primary
    void publish_primary() noexcept;  // expose the primary slot lock-free
    void release_all() noexcept SPBLA_EXCLUDES(repr_mutex_);
    void steal_from(Matrix& other) noexcept;  // move guts (ctor/assign body)
    void store_secondary(Format f) const SPBLA_REQUIRES(repr_mutex_);
    void drop_slot(Format f) const noexcept SPBLA_REQUIRES(repr_mutex_);

    /// Materialise format \p f (converting from the primary on \p ctx) and
    /// publish it through its atomic slot pointer. Idempotent.
    void materialise(Format f, backend::Context& ctx) const
        SPBLA_REQUIRES(repr_mutex_);

    backend::Context* ctx_;
    Index nrows_{0};
    Index ncols_{0};
    std::size_t nnz_{0};
    Format primary_{Format::Csr};
    std::uint64_t version_{0};  // content stamp; see version()

    /// Guards slot ownership, cache charges and the max_row_nnz fill; held
    /// only while materialising, dropping or moving representations — every
    /// read goes through the atomic published pointers below. Leaf lock: no
    /// other spbla mutex is ever acquired while it is held (the conversions
    /// it covers launch onto the pool, whose own mutex is release-before-run).
    mutable util::Mutex repr_mutex_;

    // One ownership slot per Format; primary_ names the owned one, any other
    // non-null slot is a cached secondary with its charge recorded below.
    mutable std::unique_ptr<const CsrMatrix> csr_ SPBLA_GUARDED_BY(repr_mutex_);
    mutable std::unique_ptr<const CooMatrix> coo_ SPBLA_GUARDED_BY(repr_mutex_);
    mutable std::unique_ptr<const DenseMatrix> dense_ SPBLA_GUARDED_BY(repr_mutex_);
    mutable std::unique_ptr<const BitBlockMatrix> bb_ SPBLA_GUARDED_BY(repr_mutex_);
    mutable SlotCharge charge_[kNumFormats] SPBLA_GUARDED_BY(repr_mutex_) {};

    // Per-slot latches: a slot becomes readable the instant its pointer is
    // release-published here; readers take one acquire load and never the
    // mutex. Null means "not materialised — take the mutex and convert".
    mutable std::atomic<const CsrMatrix*> csr_pub_{nullptr};
    mutable std::atomic<const CooMatrix*> coo_pub_{nullptr};
    mutable std::atomic<const DenseMatrix*> dense_pub_{nullptr};
    mutable std::atomic<const BitBlockMatrix*> bb_pub_{nullptr};

    // max_row_nnz cache: value is release-published by the valid flag.
    mutable std::atomic<Index> max_row_nnz_{0};
    mutable std::atomic<bool> max_row_nnz_valid_{false};
};

}  // namespace spbla
