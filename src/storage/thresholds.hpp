/// \file thresholds.hpp
/// \brief Named crossover constants of the storage engine's cost model.
///
/// Every density / byte-cap gate the dispatcher uses to admit a format as a
/// candidate lives here, in one place, so the dense-bitmap and BitBlocks
/// tiers share one definition instead of each op carrying its own copy. The
/// constants are crossovers, not laws: the bench ladder
/// (bench_ops_micro --formats, BENCH_formats.json) keeps them honest against
/// the acceptance bar (auto within 10% of the best static format).
#pragma once

#include <cstddef>

namespace spbla::storage {

/// Dense candidacy gates: a matrix qualifies for the dense bit-parallel
/// kernels only when it is dense enough that one 64-bit word carries about
/// one set bit...
inline constexpr double kDenseMinDensity = 1.0 / 64.0;

/// ...and small enough that materialising the full bitmap cannot blow the
/// simulated device memory (bytes).
inline constexpr std::size_t kDenseByteCap = std::size_t{64} << 20;  // 64 MiB

/// BitBlocks candidacy gate: the tiled 64x64 bit format starts paying for
/// its block bookkeeping once an average 64x64 tile region carries at least
/// ~8 entries, i.e. density >= 8 / 4096. Below that the per-block expansion
/// and accumulator flushes swamp the broadword savings and the index-based
/// kernels win.
inline constexpr double kBitBlockMinDensity = 8.0 / 4096.0;

/// BitBlocks byte cap. The worst case (every non-empty block bitmapped) is
/// bounded by the dense footprint, but the grid stays sparse — empty block
/// regions cost nothing — so the format is admitted on a larger envelope
/// than the flat bitmap.
inline constexpr std::size_t kBitBlockByteCap = std::size_t{256} << 20;  // 256 MiB

}  // namespace spbla::storage
