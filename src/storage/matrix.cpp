/// \file matrix.cpp
/// \brief Format-polymorphic handle: representation caching + accounting.
///
/// Concurrency model of the representation cache (the per-slot latch): each
/// format has an *ownership* slot (unique_ptr, guarded by repr_mutex_) and a
/// *published* slot (atomic pointer). Readers take one acquire load of the
/// published pointer; a miss takes the mutex, runs the conversion exactly
/// once, charges the tracker, and release-publishes the pointer. Concurrent
/// first materialisation from many pool threads is therefore safe — the PR 6
/// dist prewarm workaround this replaces is gone — while the hot path stays
/// a single atomic load (within noise on the format/dist bench ladders).

#include "storage/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "core/convert.hpp"
#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "telemetry/metrics.hpp"
#include "util/bit_ops.hpp"
#include "util/contracts.hpp"

namespace spbla {

namespace storage {

namespace {

// Default budget for cached secondary representations: generous enough that
// fixpoint loops keep both reps of their operands alive, small enough that a
// sweep over many large matrices recycles instead of doubling the footprint.
constexpr std::size_t kDefaultCacheBudget = std::size_t{256} << 20;  // 256 MiB

std::atomic<std::size_t> g_cached_bytes{0};
std::atomic<std::size_t> g_cache_budget{kDefaultCacheBudget};
std::atomic<FormatHint> g_hint{FormatHint::Auto};

}  // namespace

Stats& stats() noexcept {
    static Stats instance;
    return instance;
}

void reset_stats() noexcept {
    auto& s = stats();
    s.format_conversions.store(0, std::memory_order_relaxed);
    s.repr_cache_hits.store(0, std::memory_order_relaxed);
    s.repr_cache_stores.store(0, std::memory_order_relaxed);
    s.repr_cache_drops.store(0, std::memory_order_relaxed);
    s.dispatch_csr.store(0, std::memory_order_relaxed);
    s.dispatch_coo.store(0, std::memory_order_relaxed);
    s.dispatch_dense.store(0, std::memory_order_relaxed);
    s.dispatch_bitblock.store(0, std::memory_order_relaxed);
}

std::size_t cached_bytes() noexcept {
    return g_cached_bytes.load(std::memory_order_relaxed);
}

std::size_t cache_budget() noexcept {
    return g_cache_budget.load(std::memory_order_relaxed);
}

void set_cache_budget(std::size_t bytes) noexcept {
    g_cache_budget.store(bytes, std::memory_order_relaxed);
}

FormatHint global_hint() noexcept { return g_hint.load(std::memory_order_relaxed); }

void set_global_hint(FormatHint hint) noexcept {
    g_hint.store(hint, std::memory_order_relaxed);
}

namespace {

void gauge_add(std::size_t bytes) noexcept {
    g_cached_bytes.fetch_add(bytes, std::memory_order_relaxed);
    telemetry::gauge_add(telemetry::Gauge::StorageCachedBytes,
                         static_cast<std::int64_t>(bytes));
}

void gauge_sub(std::size_t bytes) noexcept {
    g_cached_bytes.fetch_sub(bytes, std::memory_order_relaxed);
    telemetry::gauge_add(telemetry::Gauge::StorageCachedBytes,
                         -static_cast<std::int64_t>(bytes));
}

}  // namespace

}  // namespace storage

// ---------------------------------------------------------------------------
// Construction / special members
// ---------------------------------------------------------------------------

Matrix::Matrix(Index nrows, Index ncols, backend::Context& ctx)
    : ctx_{&ctx}, primary_{Format::Csr}, csr_{std::make_unique<CsrMatrix>(nrows, ncols)} {
    publish_primary();
    adopt_shape();
    version_ = next_version();
}

Matrix::Matrix(CsrMatrix data, backend::Context& ctx)
    : ctx_{&ctx},
      primary_{Format::Csr},
      csr_{std::make_unique<const CsrMatrix>(std::move(data))} {
    publish_primary();
    adopt_shape();
    version_ = next_version();
}

Matrix::Matrix(CooMatrix data, backend::Context& ctx)
    : ctx_{&ctx},
      primary_{Format::Coo},
      coo_{std::make_unique<const CooMatrix>(std::move(data))} {
    publish_primary();
    adopt_shape();
    version_ = next_version();
}

Matrix::Matrix(DenseMatrix data, backend::Context& ctx)
    : ctx_{&ctx},
      primary_{Format::Dense},
      dense_{std::make_unique<const DenseMatrix>(std::move(data))} {
    publish_primary();
    adopt_shape();
    version_ = next_version();
}

Matrix::Matrix(BitBlockMatrix data, backend::Context& ctx)
    : ctx_{&ctx},
      primary_{Format::BitBlocks},
      bb_{std::make_unique<const BitBlockMatrix>(std::move(data))} {
    publish_primary();
    adopt_shape();
    version_ = next_version();
}

Matrix Matrix::from_coords(Index nrows, Index ncols, std::vector<Coord> coords,
                           backend::Context& ctx) {
    return Matrix{CsrMatrix::from_coords(nrows, ncols, std::move(coords)), ctx};
}

Matrix Matrix::identity(Index n, backend::Context& ctx) {
    return Matrix{CsrMatrix::identity(n), ctx};
}

Matrix::Matrix(const Matrix& other) : ctx_{other.ctx_}, primary_{other.primary_} {
    // Copies carry the primary only: cached secondaries are a per-handle
    // device-memory charge that must not silently double. The source's
    // primary is read through its published pointer, so copying is safe
    // against concurrent secondary materialisation on `other`.
    switch (other.primary_) {
        case Format::Csr:
            csr_ = std::make_unique<const CsrMatrix>(
                *other.csr_pub_.load(std::memory_order_acquire));
            break;
        case Format::Coo:
            coo_ = std::make_unique<const CooMatrix>(
                *other.coo_pub_.load(std::memory_order_acquire));
            break;
        case Format::Dense:
            dense_ = std::make_unique<const DenseMatrix>(
                *other.dense_pub_.load(std::memory_order_acquire));
            break;
        case Format::BitBlocks:
            bb_ = std::make_unique<const BitBlockMatrix>(
                *other.bb_pub_.load(std::memory_order_acquire));
            break;
    }
    publish_primary();
    adopt_shape();
    version_ = other.version_;
}

Matrix& Matrix::operator=(const Matrix& other) {
    if (this != &other) {
        Matrix tmp{other};
        *this = std::move(tmp);
    }
    return *this;
}

Matrix::Matrix(Matrix&& other) noexcept { steal_from(other); }

Matrix& Matrix::operator=(Matrix&& other) noexcept {
    if (this != &other) {
        release_all();
        steal_from(other);
    }
    return *this;
}

Matrix::~Matrix() { release_all(); }

/// Moving requires exclusive access to both handles (use-after-move and
/// read-during-move are caller bugs no lock here could repair), so the slot
/// transfer runs unlocked; the analysis cannot see that contract.
void Matrix::steal_from(Matrix& other) noexcept SPBLA_NO_THREAD_SAFETY_ANALYSIS {
    ctx_ = other.ctx_;
    nrows_ = other.nrows_;
    ncols_ = other.ncols_;
    nnz_ = other.nnz_;
    primary_ = other.primary_;
    version_ = other.version_;
    csr_ = std::move(other.csr_);
    coo_ = std::move(other.coo_);
    dense_ = std::move(other.dense_);
    bb_ = std::move(other.bb_);
    for (std::size_t i = 0; i < kNumFormats; ++i) {
        charge_[i] = other.charge_[i];
        other.charge_[i] = SlotCharge{};
    }
    csr_pub_.store(csr_.get(), std::memory_order_relaxed);
    coo_pub_.store(coo_.get(), std::memory_order_relaxed);
    dense_pub_.store(dense_.get(), std::memory_order_relaxed);
    bb_pub_.store(bb_.get(), std::memory_order_relaxed);
    other.csr_pub_.store(nullptr, std::memory_order_relaxed);
    other.coo_pub_.store(nullptr, std::memory_order_relaxed);
    other.dense_pub_.store(nullptr, std::memory_order_relaxed);
    other.bb_pub_.store(nullptr, std::memory_order_relaxed);
    max_row_nnz_.store(other.max_row_nnz_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    max_row_nnz_valid_.store(
        other.max_row_nnz_valid_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.nnz_ = 0;
    other.version_ = 0;
    other.max_row_nnz_valid_.store(false, std::memory_order_relaxed);
}

std::uint64_t Matrix::next_version() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Matrix::publish_primary() noexcept {
    util::LockGuard lock{repr_mutex_};
    csr_pub_.store(csr_.get(), std::memory_order_release);
    coo_pub_.store(coo_.get(), std::memory_order_release);
    dense_pub_.store(dense_.get(), std::memory_order_release);
    bb_pub_.store(bb_.get(), std::memory_order_release);
}

void Matrix::adopt_shape() noexcept {
    switch (primary_) {
        case Format::Csr: {
            const auto* p = csr_pub_.load(std::memory_order_acquire);
            nrows_ = p->nrows();
            ncols_ = p->ncols();
            nnz_ = p->nnz();
            break;
        }
        case Format::Coo: {
            const auto* p = coo_pub_.load(std::memory_order_acquire);
            nrows_ = p->nrows();
            ncols_ = p->ncols();
            nnz_ = p->nnz();
            break;
        }
        case Format::Dense: {
            const auto* p = dense_pub_.load(std::memory_order_acquire);
            nrows_ = p->nrows();
            ncols_ = p->ncols();
            nnz_ = p->nnz();
            break;
        }
        case Format::BitBlocks: {
            const auto* p = bb_pub_.load(std::memory_order_acquire);
            nrows_ = p->nrows();
            ncols_ = p->ncols();
            nnz_ = p->nnz();
            break;
        }
    }
    max_row_nnz_valid_.store(false, std::memory_order_relaxed);
}

void Matrix::release_all() noexcept {
    util::LockGuard lock{repr_mutex_};
    for (std::size_t i = 0; i < kNumFormats; ++i) drop_slot(static_cast<Format>(i));
    csr_pub_.store(nullptr, std::memory_order_relaxed);
    coo_pub_.store(nullptr, std::memory_order_relaxed);
    dense_pub_.store(nullptr, std::memory_order_relaxed);
    bb_pub_.store(nullptr, std::memory_order_relaxed);
    csr_.reset();
    coo_.reset();
    dense_.reset();
    bb_.reset();
}

// ---------------------------------------------------------------------------
// Representation cache
// ---------------------------------------------------------------------------

bool Matrix::has_format(Format f) const noexcept {
    switch (f) {
        case Format::Csr:
            return csr_pub_.load(std::memory_order_acquire) != nullptr;
        case Format::Coo:
            return coo_pub_.load(std::memory_order_acquire) != nullptr;
        case Format::Dense:
            return dense_pub_.load(std::memory_order_acquire) != nullptr;
        case Format::BitBlocks:
            return bb_pub_.load(std::memory_order_acquire) != nullptr;
    }
    return false;
}

void Matrix::store_secondary(Format f) const {
    std::size_t bytes = 0;
    switch (f) {
        case Format::Csr: bytes = csr_->device_bytes(); break;
        case Format::Coo: bytes = coo_->device_bytes(); break;
        case Format::Dense: bytes = dense_->device_bytes(); break;
        case Format::BitBlocks: bytes = bb_->device_bytes(); break;
    }
    // The charge always lands on the handle's own context: a conversion may
    // run on a borrowed context's pool, but the cached bytes live as long as
    // the handle, whose lifetime is bounded by its bound context.
    ctx_->tracker().on_alloc(bytes);
    charge_[static_cast<std::size_t>(f)] = SlotCharge{&ctx_->tracker(), bytes};
    storage::gauge_add(bytes);
    storage::stats().repr_cache_stores.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::StorageCacheStores);
}

void Matrix::drop_slot(Format f) const noexcept {
    auto& charge = charge_[static_cast<std::size_t>(f)];
    if (charge.tracker == nullptr) return;
    charge.tracker->on_free(charge.bytes);
    storage::gauge_sub(charge.bytes);
    storage::stats().repr_cache_drops.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::StorageCacheDrops);
    charge = SlotCharge{};
    // Retract the published pointer before destroying the rep so late
    // readers miss and fall through to the mutex (where they re-materialise)
    // instead of dereferencing a freed slot.
    switch (f) {
        case Format::Csr:
            csr_pub_.store(nullptr, std::memory_order_relaxed);
            if (csr_ != nullptr) {
                // This handle uniquely owns the dropped rep (readers were
                // retracted above), so un-consting it to recycle its arrays
                // through the context's pool is safe — the next conversion
                // re-acquires them in O(1) instead of reallocating.
                auto [offsets, cols] =
                    std::move(const_cast<CsrMatrix&>(*csr_)).release_raw();
                ctx_->buffer_pool().release(std::move(offsets));
                ctx_->buffer_pool().release(std::move(cols));
                csr_.reset();
            }
            break;
        case Format::Coo:
            coo_pub_.store(nullptr, std::memory_order_relaxed);
            coo_.reset();
            break;
        case Format::Dense:
            dense_pub_.store(nullptr, std::memory_order_relaxed);
            dense_.reset();
            break;
        case Format::BitBlocks:
            bb_pub_.store(nullptr, std::memory_order_relaxed);
            bb_.reset();
            break;
    }
}

void Matrix::drop_cached() const noexcept {
    util::LockGuard lock{repr_mutex_};
    for (std::size_t i = 0; i < kNumFormats; ++i) {
        const auto f = static_cast<Format>(i);
        if (f != primary_) drop_slot(f);
    }
}

void Matrix::trim_cache() const noexcept {
    util::LockGuard lock{repr_mutex_};
    for (std::size_t i = 0; i < kNumFormats; ++i) {
        if (storage::cached_bytes() <= storage::cache_budget()) return;
        const auto f = static_cast<Format>(i);
        if (f != primary_) drop_slot(f);
    }
}

std::size_t Matrix::cached_bytes() const noexcept {
    util::LockGuard lock{repr_mutex_};
    std::size_t total = 0;
    for (const auto& charge : charge_) total += charge.bytes;
    return total;
}

std::size_t Matrix::device_bytes() const noexcept {
    switch (primary_) {
        case Format::Csr:
            return csr_pub_.load(std::memory_order_acquire)->device_bytes();
        case Format::Coo:
            return coo_pub_.load(std::memory_order_acquire)->device_bytes();
        case Format::Dense:
            return dense_pub_.load(std::memory_order_acquire)->device_bytes();
        case Format::BitBlocks:
            return bb_pub_.load(std::memory_order_acquire)->device_bytes();
    }
    return 0;
}

void Matrix::materialise(Format f, backend::Context& ctx) const {
    switch (f) {
        case Format::Csr:
            if (csr_ == nullptr) {
                SPBLA_PROF_SPAN("storage.convert_to_csr");
                switch (primary_) {
                    case Format::Coo:
                        csr_ = std::make_unique<const CsrMatrix>(to_csr(ctx, *coo_));
                        break;
                    case Format::Dense:
                        csr_ = std::make_unique<const CsrMatrix>(to_csr(ctx, *dense_));
                        break;
                    case Format::BitBlocks:
                        csr_ = std::make_unique<const CsrMatrix>(to_csr(ctx, *bb_));
                        break;
                    case Format::Csr: break;  // unreachable: slot non-null
                }
                storage::stats().format_conversions.fetch_add(
                    1, std::memory_order_relaxed);
                SPBLA_PROF_COUNT(format_conversions, 1);
                telemetry::count(telemetry::Counter::StorageConversions);
                store_secondary(Format::Csr);
            }
            csr_pub_.store(csr_.get(), std::memory_order_release);
            break;
        case Format::Coo:
            if (coo_ == nullptr) {
                SPBLA_PROF_SPAN("storage.convert_to_coo");
                switch (primary_) {
                    case Format::Csr:
                        coo_ = std::make_unique<const CooMatrix>(to_coo(ctx, *csr_));
                        break;
                    case Format::Dense:
                        coo_ = std::make_unique<const CooMatrix>(to_coo(ctx, *dense_));
                        break;
                    case Format::BitBlocks:
                        coo_ = std::make_unique<const CooMatrix>(to_coo(ctx, *bb_));
                        break;
                    case Format::Coo: break;  // unreachable: slot non-null
                }
                storage::stats().format_conversions.fetch_add(
                    1, std::memory_order_relaxed);
                SPBLA_PROF_COUNT(format_conversions, 1);
                telemetry::count(telemetry::Counter::StorageConversions);
                store_secondary(Format::Coo);
            }
            coo_pub_.store(coo_.get(), std::memory_order_release);
            break;
        case Format::Dense:
            if (dense_ == nullptr) {
                SPBLA_PROF_SPAN("storage.convert_to_dense");
                switch (primary_) {
                    case Format::Csr:
                        dense_ = std::make_unique<const DenseMatrix>(to_dense(ctx, *csr_));
                        break;
                    case Format::Coo:
                        dense_ = std::make_unique<const DenseMatrix>(to_dense(ctx, *coo_));
                        break;
                    case Format::BitBlocks:
                        dense_ = std::make_unique<const DenseMatrix>(to_dense(ctx, *bb_));
                        break;
                    case Format::Dense: break;  // unreachable: slot non-null
                }
                storage::stats().format_conversions.fetch_add(
                    1, std::memory_order_relaxed);
                SPBLA_PROF_COUNT(format_conversions, 1);
                telemetry::count(telemetry::Counter::StorageConversions);
                store_secondary(Format::Dense);
            }
            dense_pub_.store(dense_.get(), std::memory_order_release);
            break;
        case Format::BitBlocks:
            if (bb_ == nullptr) {
                SPBLA_PROF_SPAN("storage.convert_to_bitblock");
                switch (primary_) {
                    case Format::Csr:
                        bb_ = std::make_unique<const BitBlockMatrix>(
                            to_bitblocks(ctx, *csr_));
                        break;
                    case Format::Coo:
                        bb_ = std::make_unique<const BitBlockMatrix>(
                            to_bitblocks(ctx, *coo_));
                        break;
                    case Format::Dense:
                        bb_ = std::make_unique<const BitBlockMatrix>(
                            to_bitblocks(ctx, *dense_));
                        break;
                    case Format::BitBlocks: break;  // unreachable: slot non-null
                }
                storage::stats().format_conversions.fetch_add(
                    1, std::memory_order_relaxed);
                SPBLA_PROF_COUNT(format_conversions, 1);
                telemetry::count(telemetry::Counter::StorageConversions);
                store_secondary(Format::BitBlocks);
            }
            bb_pub_.store(bb_.get(), std::memory_order_release);
            break;
    }
}

const CsrMatrix& Matrix::csr(backend::Context& ctx) const {
    if (const CsrMatrix* pub = csr_pub_.load(std::memory_order_acquire)) {
        if (primary_ != Format::Csr) {
            storage::stats().repr_cache_hits.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(repr_cache_hits, 1);
            telemetry::count(telemetry::Counter::StorageCacheHits);
        }
        return *pub;
    }
    util::LockGuard lock{repr_mutex_};
    materialise(Format::Csr, ctx);
    return *csr_;
}

const CooMatrix& Matrix::coo(backend::Context& ctx) const {
    if (const CooMatrix* pub = coo_pub_.load(std::memory_order_acquire)) {
        if (primary_ != Format::Coo) {
            storage::stats().repr_cache_hits.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(repr_cache_hits, 1);
            telemetry::count(telemetry::Counter::StorageCacheHits);
        }
        return *pub;
    }
    util::LockGuard lock{repr_mutex_};
    materialise(Format::Coo, ctx);
    return *coo_;
}

const DenseMatrix& Matrix::dense(backend::Context& ctx) const {
    if (const DenseMatrix* pub = dense_pub_.load(std::memory_order_acquire)) {
        if (primary_ != Format::Dense) {
            storage::stats().repr_cache_hits.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(repr_cache_hits, 1);
            telemetry::count(telemetry::Counter::StorageCacheHits);
        }
        return *pub;
    }
    util::LockGuard lock{repr_mutex_};
    materialise(Format::Dense, ctx);
    return *dense_;
}

const BitBlockMatrix& Matrix::bitblocks(backend::Context& ctx) const {
    if (const BitBlockMatrix* pub = bb_pub_.load(std::memory_order_acquire)) {
        if (primary_ != Format::BitBlocks) {
            storage::stats().repr_cache_hits.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(repr_cache_hits, 1);
            telemetry::count(telemetry::Counter::StorageCacheHits);
        }
        return *pub;
    }
    util::LockGuard lock{repr_mutex_};
    materialise(Format::BitBlocks, ctx);
    return *bb_;
}

void Matrix::convert_to(Format f, backend::Context& ctx) {
    if (primary_ == f) return;
    util::LockGuard lock{repr_mutex_};
    // Materialise the target (charging it as a secondary for the moment)…
    materialise(f, ctx);
    // …then swap roles: the target's cache charge is released (it is now the
    // owned primary) while the old primary becomes a charged secondary.
    const auto target = static_cast<std::size_t>(f);
    auto& target_charge = charge_[target];
    if (target_charge.tracker != nullptr) {
        target_charge.tracker->on_free(target_charge.bytes);
        storage::gauge_sub(target_charge.bytes);
        target_charge = SlotCharge{};
    }
    store_secondary(primary_);
    primary_ = f;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

double Matrix::density() const noexcept {
    const auto cells = static_cast<double>(nrows_) * static_cast<double>(ncols_);
    return cells > 0.0 ? static_cast<double>(nnz_) / cells : 0.0;
}

bool Matrix::get(Index r, Index c) const {
    switch (primary_) {
        case Format::Csr:
            return csr_pub_.load(std::memory_order_acquire)->get(r, c);
        case Format::Coo:
            return coo_pub_.load(std::memory_order_acquire)->get(r, c);
        case Format::Dense:
            return dense_pub_.load(std::memory_order_acquire)->get(r, c);
        case Format::BitBlocks:
            return bb_pub_.load(std::memory_order_acquire)->get(r, c);
    }
    return false;
}

std::vector<Coord> Matrix::to_coords() const {
    switch (primary_) {
        case Format::Csr:
            return csr_pub_.load(std::memory_order_acquire)->to_coords();
        case Format::Coo:
            return coo_pub_.load(std::memory_order_acquire)->to_coords();
        case Format::Dense:
            return dense_pub_.load(std::memory_order_acquire)->to_coords();
        case Format::BitBlocks:
            return bb_pub_.load(std::memory_order_acquire)->to_coords();
    }
    return {};
}

Index Matrix::max_row_nnz() const {
    if (max_row_nnz_valid_.load(std::memory_order_acquire))
        return max_row_nnz_.load(std::memory_order_relaxed);
    util::LockGuard lock{repr_mutex_};
    // A racer may have filled the cache while we queued on the mutex.
    if (max_row_nnz_valid_.load(std::memory_order_relaxed))
        return max_row_nnz_.load(std::memory_order_relaxed);
    Index best = 0;
    switch (primary_) {
        case Format::Csr: {
            const auto* m = csr_pub_.load(std::memory_order_acquire);
            for (Index r = 0; r < m->nrows(); ++r) best = std::max(best, m->row_nnz(r));
            break;
        }
        case Format::Coo: {
            // Rows are sorted, so row populations are run lengths.
            const auto rows = coo_pub_.load(std::memory_order_acquire)->rows();
            Index run = 0;
            for (std::size_t k = 0; k < rows.size(); ++k) {
                run = (k > 0 && rows[k] == rows[k - 1]) ? run + 1 : 1;
                best = std::max(best, run);
            }
            break;
        }
        case Format::Dense: {
            const auto* m = dense_pub_.load(std::memory_order_acquire);
            for (Index r = 0; r < m->nrows(); ++r)
                best = std::max(best, m->row_nnz(r));
            break;
        }
        case Format::BitBlocks: {
            const auto* m = bb_pub_.load(std::memory_order_acquire);
            for (Index br = 0; br < m->brows(); ++br) {
                Index pops[BitBlockMatrix::kBlockDim] = {};
                for (const auto& t : m->block_row(br)) {
                    if (t.kind == BitBlockMatrix::BlockKind::Bitmap) {
                        const auto w = m->bitmap_words(t);
                        for (std::size_t rl = 0; rl < BitBlockMatrix::kBlockWords; ++rl)
                            pops[rl] += static_cast<Index>(util::popcount64(w[rl]));
                    } else {
                        for (const std::uint16_t e : m->sparse_entries(t)) ++pops[e >> 6];
                    }
                }
                for (const Index p : pops) best = std::max(best, p);
            }
            break;
        }
    }
    max_row_nnz_.store(best, std::memory_order_relaxed);
    max_row_nnz_valid_.store(true, std::memory_order_release);
    return best;
}

bool operator==(const Matrix& a, const Matrix& b) {
    if (a.nrows() != b.nrows() || a.ncols() != b.ncols() || a.nnz() != b.nnz())
        return false;
    // Every format exports coords in the same (row, col) order, so equality
    // is format-independent.
    return a.to_coords() == b.to_coords();
}

// ---------------------------------------------------------------------------
// Facade sugar — routed through dispatch
// ---------------------------------------------------------------------------

Matrix& Matrix::operator+=(const Matrix& other) {
    *this = storage::ewise_add(*ctx_, *this, other);
    return *this;
}

Matrix& Matrix::multiply_add(const Matrix& a, const Matrix& b) {
    *this = storage::multiply_add(*ctx_, *this, a, b);
    return *this;
}

void Matrix::apply_delta(const Matrix& adds, const Matrix& removes,
                         backend::Context& ctx) {
    SPBLA_REQUIRE(adds.nrows() == nrows_ && adds.ncols() == ncols_,
                  Status::DimensionMismatch, "apply_delta: insert delta shape");
    SPBLA_REQUIRE(removes.nrows() == nrows_ && removes.ncols() == ncols_,
                  Status::DimensionMismatch, "apply_delta: delete delta shape");
    telemetry::count(telemetry::Counter::IncrBatches);
    telemetry::count(telemetry::Counter::IncrDeltaNnz,
                     adds.nnz() + removes.nnz());
    if (adds.empty() && removes.empty()) return;  // no-op batch: stamp kept
    Matrix next =
        removes.empty() ? *this : storage::ewise_diff(ctx, *this, removes);
    if (!adds.empty()) next = storage::ewise_add(ctx, next, adds);
    // The routed ops return freshly stamped handles, so the assignment below
    // installs a new content version even for a value-equal result.
    *this = std::move(next);
}

Matrix Matrix::add(const Matrix& a, const Matrix& b) {
    return storage::ewise_add(a.context(), a, b);
}

Matrix Matrix::mul(const Matrix& a, const Matrix& b) {
    return storage::multiply(a.context(), a, b);
}

Matrix Matrix::kron(const Matrix& other) const {
    return storage::kronecker(*ctx_, *this, other);
}

Matrix Matrix::transposed() const { return storage::transpose(*ctx_, *this); }

Matrix Matrix::submatrix(Index r0, Index c0, Index m, Index n) const {
    return storage::submatrix(*ctx_, *this, r0, c0, m, n);
}

SpVector Matrix::reduce_to_column() const {
    return storage::reduce_to_column(*ctx_, *this);
}

}  // namespace spbla
