/// \file dispatch.cpp
/// \brief The storage engine's cost model and per-op format routing.
///
/// Cost model, in units of "index touches": for each candidate format the
/// estimated kernel work is added to the conversion work needed to
/// materialise any missing operand representation (zero when cached). The
/// constants are deliberately coarse — the model only has to rank formats,
/// and the bench ladder (bench_ops_micro --formats) keeps it honest against
/// the acceptance bar (auto within 10% of best static, strictly above worst).
///
/// Hysteresis: for binary ops the primary format of the nnz-dominant operand
/// is "preferred" and a rival must undercut its cost by kHysteresis (2x) to
/// win. A fixpoint loop whose iterates stay in one format therefore keeps
/// dispatching to that format until the balance tips decisively — the
/// conversion counter stays bounded by the number of regime changes (at most
/// a couple per run), not by the iteration count.

#include "storage/dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "backend/arena.hpp"
#include "ops/ops.hpp"
#include "prof/prof.hpp"
#include "storage/thresholds.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace spbla::storage {

namespace {

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// A rival format must be this much cheaper than the preferred (incumbent)
/// format to displace it — the anti-thrash margin.
constexpr double kHysteresis = 2.0;

// The density / byte-cap candidacy gates (kDenseMinDensity, kDenseByteCap,
// kBitBlockMinDensity, kBitBlockByteCap) live in storage/thresholds.hpp so
// the dense and bitblock tiers share one set of named crossovers.

/// Broadword ops run ~one word per model "index touch" unit but each word
/// carries 64 cells; this factor converts word-op counts into the sparse
/// kernels' cost units. Shared by the dense and bitblock cost formulas.
constexpr double kWordOpScale = 0.08;

[[nodiscard]] double words_of(Index nrows, Index ncols) noexcept {
    return static_cast<double>(nrows) *
           static_cast<double>((static_cast<std::size_t>(ncols) + 63) / 64);
}

[[nodiscard]] std::size_t dense_bytes_of(Index nrows, Index ncols) noexcept {
    return static_cast<std::size_t>(words_of(nrows, ncols)) * sizeof(std::uint64_t);
}

[[nodiscard]] bool dense_eligible(const Matrix& m) noexcept {
    if (m.nrows() == 0 || m.ncols() == 0) return false;
    if (m.has_format(Format::Dense)) return true;  // already paid for
    return m.density() >= kDenseMinDensity &&
           dense_bytes_of(m.nrows(), m.ncols()) <= kDenseByteCap;
}

[[nodiscard]] bool dense_output_eligible(Index nrows, Index ncols) noexcept {
    return dense_bytes_of(nrows, ncols) <= kDenseByteCap;
}

/// Element-wise ops get a byte-cap-only dense gate: their dense cost is one
/// exact word sweep (0.5 * words), so the cost comparison itself rejects
/// oversized grids and the density floor — which exists for multiply, whose
/// dense estimate is fuzzier — would only mask wins on small dense-ish inputs.
[[nodiscard]] bool dense_ewise_eligible(const Matrix& m) noexcept {
    if (m.nrows() == 0 || m.ncols() == 0) return false;
    if (m.has_format(Format::Dense)) return true;  // already paid for
    return dense_bytes_of(m.nrows(), m.ncols()) <= kDenseByteCap;
}

/// Non-empty tiles of the 64x64 block grid, estimated from the gate density:
/// an admitted matrix carries at least ~8 entries per occupied tile, so the
/// occupied count is bounded by nnz / 8 and by the grid itself.
[[nodiscard]] double grid_tiles_of(Index nrows, Index ncols) noexcept {
    return static_cast<double>((static_cast<std::size_t>(nrows) + 63) / 64) *
           static_cast<double>((static_cast<std::size_t>(ncols) + 63) / 64);
}

[[nodiscard]] double est_blocks(const Matrix& m) noexcept {
    return std::min(grid_tiles_of(m.nrows(), m.ncols()),
                    static_cast<double>(m.nnz()) / 8.0 + 1.0);
}

/// Worst-case BitBlocks footprint: never above the flat bitmap, and sparse
/// inputs stay entry-bounded (2 bytes per cell plus tile descriptors).
[[nodiscard]] std::size_t bitblock_bytes_of(const Matrix& m) noexcept {
    const auto entry_bound = static_cast<std::size_t>(m.nnz()) * 16;
    return std::min(dense_bytes_of(m.nrows(), m.ncols()), entry_bound);
}

[[nodiscard]] bool bitblock_eligible(const Matrix& m) noexcept {
    if (m.nrows() == 0 || m.ncols() == 0) return false;
    if (m.has_format(Format::BitBlocks)) return true;  // already paid for
    return m.density() >= kBitBlockMinDensity &&
           bitblock_bytes_of(m) <= kBitBlockByteCap;
}

/// Work to materialise format \p f on \p m; zero when already cached.
[[nodiscard]] double convert_cost(const Matrix& m, Format f) noexcept {
    if (m.has_format(f)) return 0.0;
    const auto nnz = static_cast<double>(m.nnz());
    switch (f) {
        case Format::Csr:
        case Format::Coo:
            // Sparse <-> sparse conversions are linear scans over the entries
            // (plus the row-pointer pass for CSR targets).
            return 2.0 * nnz + 0.5 * static_cast<double>(m.nrows());
        case Format::Dense:
            // Clearing the bitmap dominates for sparse sources.
            return words_of(m.nrows(), m.ncols()) + nnz;
        case Format::BitBlocks:
            // Two parallel passes over the entries plus the occupied-tile
            // bookkeeping; empty tile regions cost nothing.
            return 2.0 * nnz + 8.0 * est_blocks(m);
    }
    return kInfiniteCost;
}

/// Estimated multiply work per candidate format.
struct MultiplyCosts {
    double csr;
    double coo;
    double dense;
    double bitblock;
};

[[nodiscard]] MultiplyCosts multiply_costs(const Matrix& a, const Matrix& b) noexcept {
    const auto nnz_a = static_cast<double>(a.nnz());
    const auto nnz_b = static_cast<double>(b.nnz());
    // Expected FLOP proxy: each entry of A selects a row of B of average
    // population nnz_b / nrows_b; row skew inflates the tail bins.
    const double rows_b = std::max(1.0, static_cast<double>(b.nrows()));
    const double flops = nnz_a * (nnz_b / rows_b);
    const double skew =
        b.nrows() > 0
            ? std::max(1.0, static_cast<double>(b.max_row_nnz()) / (nnz_b / rows_b + 1.0))
            : 1.0;
    MultiplyCosts costs{};
    // Hash SpGEMM: symbolic + numeric passes, hash probes ~ constant each.
    costs.csr = 4.0 * flops + 0.25 * static_cast<double>(a.nrows());
    // Expand-sort-dedup: the sort pays log of the expanded list, and skewed
    // rows expand multiplicatively.
    costs.coo = flops * (1.0 + std::log2(flops + 2.0) * 0.25) * std::min(skew, 4.0);
    // Bit-parallel row-OR: every entry of A ORs one row of B (word-wide).
    costs.dense = kWordOpScale * nnz_a * (words_of(1, b.ncols())) +
                  words_of(a.nrows(), b.ncols());
    // Tile-grid Gustavson: each (A tile, B tile) pair costs accumulator
    // traffic (64 words) plus the cheaper of per-cell row-ORs and the
    // Four-Russians bound (512 lookups + amortised table build).
    const double blocks_a = est_blocks(a);
    const double blocks_b = est_blocks(b);
    const double brows_b = std::max(1.0, static_cast<double>((b.nrows() + 63) / 64));
    const double pairs = blocks_a * (blocks_b / brows_b);
    const double tile_nnz_a = nnz_a / std::max(1.0, blocks_a);
    const double per_pair = 64.0 + std::min(tile_nnz_a, 576.0);
    costs.bitblock = kWordOpScale * pairs * per_pair + 8.0 * blocks_a;
    return costs;
}

void count_dispatch(Format f) noexcept {
    switch (f) {
        case Format::Csr:
            stats().dispatch_csr.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(dispatch_csr, 1);
            telemetry::count(telemetry::Counter::DispatchCsr);
            break;
        case Format::Coo:
            stats().dispatch_coo.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(dispatch_coo, 1);
            telemetry::count(telemetry::Counter::DispatchCoo);
            break;
        case Format::Dense:
            stats().dispatch_dense.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(dispatch_dense, 1);
            telemetry::count(telemetry::Counter::DispatchDense);
            break;
        case Format::BitBlocks:
            stats().dispatch_bitblock.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(dispatch_bitblock, 1);
            telemetry::count(telemetry::Counter::DispatchBitBlocks);
            break;
    }
}

/// Short routed-format tag for the flight recorder (static storage, as its
/// records keep the pointer).
[[nodiscard]] const char* format_tag(Format f) noexcept {
    switch (f) {
        case Format::Csr: return "csr";
        case Format::Coo: return "coo";
        case Format::Dense: return "dense";
        case Format::BitBlocks: return "bitblock";
    }
    return "?";
}

[[nodiscard]] telemetry::Histogram latency_histogram(Format f) noexcept {
    switch (f) {
        case Format::Coo: return telemetry::Histogram::OpLatencyCooNs;
        case Format::Dense: return telemetry::Histogram::OpLatencyDenseNs;
        case Format::BitBlocks: return telemetry::Histogram::OpLatencyBitBlocksNs;
        case Format::Csr: break;
    }
    return telemetry::Histogram::OpLatencyCsrNs;
}

/// Per-op telemetry scope. Constructed at dispatch entry (so the measured
/// wall time covers cost modelling, operand conversions and the kernel) and
/// closed via done()/done_sharded() once the result exists: one DispatchOps
/// count, the routed format's latency histogram, the nnz in/out histograms,
/// and a flight-recorder record. Ops that throw record nothing — the
/// invariant "sum of latency-histogram counts == spbla.dispatch.ops" is what
/// check_trace --require-metrics verifies.
class OpTelemetry {
public:
    OpTelemetry(const char* op, backend::Context& ctx, std::uint64_t nnz_in) noexcept
        : op_(op), nnz_in_(nnz_in), arena_scope_{ctx.scratch_arena()} {}

    void done(Format f, Index nrows, Index ncols, std::uint64_t nnz_out) noexcept {
        finish(latency_histogram(f), format_tag(f), nrows, ncols, nnz_out);
    }

    void done_sharded(Index nrows, Index ncols, std::uint64_t nnz_out) noexcept {
        finish(telemetry::Histogram::OpLatencyShardedNs, "sharded", nrows, ncols,
               nnz_out);
    }

private:
    void finish(telemetry::Histogram latency, const char* tag, Index nrows,
                Index ncols, std::uint64_t nnz_out) noexcept {
        const auto ns = static_cast<std::uint64_t>(timer_.seconds() * 1e9);
        telemetry::count(telemetry::Counter::DispatchOps);
        telemetry::observe(latency, ns);
        telemetry::observe(telemetry::Histogram::OpNnzIn, nnz_in_);
        telemetry::observe(telemetry::Histogram::OpNnzOut, nnz_out);
        telemetry::flight::record(op_, tag, nrows, ncols, nnz_in_, nnz_out, ns);
    }

    const char* op_;
    std::uint64_t nnz_in_;
    util::Timer timer_;
    /// Per-op arena scope on the dispatching thread: op-level scratch from
    /// conversions and inline kernel launches is reclaimed when the op
    /// returns. One scope (and so one spbla.arena.resets) per dispatched op
    /// — the invariant tools/check_trace.py --require-arena verifies.
    backend::ScopedArena arena_scope_;
};

/// Keep the caches of every operand under the process-wide budget once the
/// routed kernel has run (their borrowed references are dead by then).
void trim(std::initializer_list<const Matrix*> operands) noexcept {
    if (cached_bytes() <= cache_budget()) return;
    for (const Matrix* m : operands) m->trim_cache();
}

/// Map a forced hint onto the candidate set; Auto and unsupported formats
/// yield no override.
[[nodiscard]] bool forced(FormatHint hint, std::initializer_list<Format> candidates,
                          Format& out) noexcept {
    Format want{};
    switch (hint) {
        case FormatHint::Auto: return false;
        case FormatHint::ForceCsr: want = Format::Csr; break;
        case FormatHint::ForceCoo: want = Format::Coo; break;
        case FormatHint::ForceDense: want = Format::Dense; break;
        case FormatHint::ForceBitBlocks: want = Format::BitBlocks; break;
    }
    for (const Format f : candidates) {
        if (f == want) {
            out = want;
            return true;
        }
    }
    // Forced format has no kernel for this op: CSR is the universal
    // fallback, keeping forced sweeps semantically identical.
    out = Format::Csr;
    return true;
}

/// Pick the cheapest candidate, honouring the incumbent's hysteresis margin.
/// \p preferred is the format the dominant operand already owns (or a
/// sentinel cost of infinity when it is not a candidate).
[[nodiscard]] Format pick(std::initializer_list<std::pair<Format, double>> costed,
                          Format preferred) noexcept {
    Format best = Format::Csr;
    double best_cost = kInfiniteCost;
    double preferred_cost = kInfiniteCost;
    for (const auto& [f, cost] : costed) {
        if (cost < best_cost) {
            best = f;
            best_cost = cost;
        }
        if (f == preferred) preferred_cost = cost;
    }
    if (preferred_cost < kInfiniteCost && preferred_cost <= kHysteresis * best_cost) {
        return preferred;
    }
    return best;
}

/// The operand whose format should anchor hysteresis: the larger one.
[[nodiscard]] Format dominant_format(const Matrix& a, const Matrix& b) noexcept {
    return (b.nnz() > a.nnz() ? b : a).format();
}

}  // namespace

// ---------------------------------------------------------------------------
// multiply / multiply_add
// ---------------------------------------------------------------------------

Matrix multiply(backend::Context& ctx, const Matrix& a, const Matrix& b,
                const ops::SpGemmOptions& opts) {
    SPBLA_PROF_SPAN("storage.dispatch.multiply");
    OpTelemetry tel("multiply", ctx, a.nnz() + b.nnz());
    if (a.empty() || b.empty()) {
        // Delta-shaped operand: a drained frontier (or empty base) makes the
        // product empty without running a kernel. The fast path still counts
        // a format pick and closes the telemetry scope so the dispatch
        // invariants check_trace --require-metrics verifies keep holding.
        SPBLA_REQUIRE(a.ncols() == b.nrows(), Status::DimensionMismatch,
                      "multiply: inner dimensions disagree");
        telemetry::count(telemetry::Counter::IncrShortCircuits);
        SPBLA_PROF_COUNT(incr_shortcircuit, 1);
        count_dispatch(Format::Csr);
        Matrix out{a.nrows(), b.ncols(), ctx};
        tel.done(Format::Csr, out.nrows(), out.ncols(), 0);
        return out;
    }
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&a, &b})) {
        Matrix out = db->multiply(ctx, a, b, opts);
        tel.done_sharded(out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    Format f;
    if (!forced(global_hint(),
                {Format::Csr, Format::Coo, Format::Dense, Format::BitBlocks}, f)) {
        const auto k = multiply_costs(a, b);
        const bool dense_ok = dense_eligible(a) && dense_eligible(b) &&
                              dense_output_eligible(a.nrows(), b.ncols());
        const bool bb_ok = bitblock_eligible(a) && bitblock_eligible(b);
        f = pick({{Format::Csr, k.csr + convert_cost(a, Format::Csr) +
                                    convert_cost(b, Format::Csr)},
                  {Format::Coo, k.coo + convert_cost(a, Format::Coo) +
                                    convert_cost(b, Format::Coo)},
                  {Format::Dense, dense_ok ? k.dense + convert_cost(a, Format::Dense) +
                                                 convert_cost(b, Format::Dense)
                                           : kInfiniteCost},
                  {Format::BitBlocks,
                   bb_ok ? k.bitblock + convert_cost(a, Format::BitBlocks) +
                               convert_cost(b, Format::BitBlocks)
                         : kInfiniteCost}},
                 dominant_format(a, b));
    }
    count_dispatch(f);
    Matrix out = [&] {
        switch (f) {
            case Format::Coo:
                return Matrix{ops::multiply(ctx, a.coo(ctx), b.coo(ctx)), ctx};
            case Format::Dense:
                return Matrix{a.dense(ctx).multiply(b.dense(ctx)), ctx};
            case Format::BitBlocks:
                return Matrix{ops::multiply(ctx, a.bitblocks(ctx), b.bitblocks(ctx)), ctx};
            case Format::Csr:
            default:
                return Matrix{ops::multiply(ctx, a.csr(ctx), b.csr(ctx), opts), ctx};
        }
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&a, &b});
    return out;
}

Matrix multiply_add(backend::Context& ctx, const Matrix& c, const Matrix& a,
                    const Matrix& b, const ops::SpGemmOptions& opts) {
    SPBLA_PROF_SPAN("storage.dispatch.multiply_add");
    OpTelemetry tel("multiply_add", ctx, c.nnz() + a.nnz() + b.nnz());
    if (a.empty() || b.empty()) {
        // Empty product term: the fused form degenerates to C itself. The
        // copy carries C's content version (same cells, same stamp), which
        // the version-keyed caches rely on.
        SPBLA_REQUIRE(a.ncols() == b.nrows(), Status::DimensionMismatch,
                      "multiply_add: inner dimensions disagree");
        SPBLA_REQUIRE(c.nrows() == a.nrows() && c.ncols() == b.ncols(),
                      Status::DimensionMismatch,
                      "multiply_add: accumulator shape disagrees");
        telemetry::count(telemetry::Counter::IncrShortCircuits);
        SPBLA_PROF_COUNT(incr_shortcircuit, 1);
        count_dispatch(Format::Csr);
        Matrix out{c};
        tel.done(Format::Csr, out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&c, &a, &b})) {
        Matrix out = db->multiply_add(ctx, c, a, b, opts);
        tel.done_sharded(out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    Format f;
    if (!forced(global_hint(), {Format::Csr, Format::Dense, Format::BitBlocks}, f)) {
        const auto k = multiply_costs(a, b);
        const bool dense_ok = dense_eligible(a) && dense_eligible(b) &&
                              dense_eligible(c) &&
                              dense_output_eligible(c.nrows(), c.ncols());
        const bool bb_ok =
            bitblock_eligible(a) && bitblock_eligible(b) && bitblock_eligible(c);
        const double csr_cost = k.csr + 2.0 * static_cast<double>(c.nnz()) +
                                convert_cost(c, Format::Csr) +
                                convert_cost(a, Format::Csr) + convert_cost(b, Format::Csr);
        const double dense_cost =
            dense_ok ? k.dense + words_of(c.nrows(), c.ncols()) +
                           convert_cost(c, Format::Dense) + convert_cost(a, Format::Dense) +
                           convert_cost(b, Format::Dense)
                     : kInfiniteCost;
        const double bb_cost =
            bb_ok ? k.bitblock + kWordOpScale * 320.0 * est_blocks(c) +
                        convert_cost(c, Format::BitBlocks) +
                        convert_cost(a, Format::BitBlocks) +
                        convert_cost(b, Format::BitBlocks)
                  : kInfiniteCost;
        f = pick({{Format::Csr, csr_cost},
                  {Format::Dense, dense_cost},
                  {Format::BitBlocks, bb_cost}},
                 c.format());
    }
    if (f == Format::Coo) f = Format::Csr;  // no fused COO kernel
    count_dispatch(f);
    Matrix out = [&] {
        if (f == Format::Dense) {
            return Matrix{c.dense(ctx).ewise_or(a.dense(ctx).multiply(b.dense(ctx))), ctx};
        }
        if (f == Format::BitBlocks) {
            return Matrix{ops::ewise_add(ctx, c.bitblocks(ctx),
                                         ops::multiply(ctx, a.bitblocks(ctx),
                                                       b.bitblocks(ctx))),
                          ctx};
        }
        return Matrix{ops::multiply_add(ctx, c.csr(ctx), a.csr(ctx), b.csr(ctx), opts), ctx};
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&c, &a, &b});
    return out;
}

// ---------------------------------------------------------------------------
// element-wise family
// ---------------------------------------------------------------------------

Matrix ewise_add(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    SPBLA_PROF_SPAN("storage.dispatch.ewise_add");
    OpTelemetry tel("ewise_add", ctx, a.nnz() + b.nnz());
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&a, &b})) {
        Matrix out = db->ewise_add(ctx, a, b);
        tel.done_sharded(out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    Format f;
    if (!forced(global_hint(),
                {Format::Csr, Format::Coo, Format::Dense, Format::BitBlocks}, f)) {
        const auto total = static_cast<double>(a.nnz() + b.nnz());
        const bool dense_ok = dense_ewise_eligible(a) && dense_ewise_eligible(b);
        const bool bb_ok = bitblock_eligible(a) && bitblock_eligible(b);
        // CSR pays the per-row merge bookkeeping; the flat COO merge is the
        // natural very-sparse winner; dense is one OR sweep over the words;
        // bitblock pays ~5 word sweeps per occupied tile (expand both sides,
        // merge, then the popcount + pack of reassembly).
        f = pick({{Format::Csr, 2.0 * total + 0.5 * static_cast<double>(a.nrows()) +
                                    convert_cost(a, Format::Csr) +
                                    convert_cost(b, Format::Csr)},
                  {Format::Coo, total + convert_cost(a, Format::Coo) +
                                    convert_cost(b, Format::Coo)},
                  {Format::Dense, dense_ok ? 0.5 * words_of(a.nrows(), a.ncols()) +
                                                 convert_cost(a, Format::Dense) +
                                                 convert_cost(b, Format::Dense)
                                           : kInfiniteCost},
                  {Format::BitBlocks,
                   bb_ok ? kWordOpScale * 320.0 * (est_blocks(a) + est_blocks(b)) +
                               convert_cost(a, Format::BitBlocks) +
                               convert_cost(b, Format::BitBlocks)
                         : kInfiniteCost}},
                 dominant_format(a, b));
    }
    count_dispatch(f);
    Matrix out = [&] {
        switch (f) {
            case Format::Coo:
                return Matrix{ops::ewise_add(ctx, a.coo(ctx), b.coo(ctx)), ctx};
            case Format::Dense:
                return Matrix{a.dense(ctx).ewise_or(b.dense(ctx)), ctx};
            case Format::BitBlocks:
                return Matrix{ops::ewise_add(ctx, a.bitblocks(ctx), b.bitblocks(ctx)),
                              ctx};
            case Format::Csr:
            default:
                return Matrix{ops::ewise_add(ctx, a.csr(ctx), b.csr(ctx)), ctx};
        }
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&a, &b});
    return out;
}

Matrix ewise_mult(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    SPBLA_PROF_SPAN("storage.dispatch.ewise_mult");
    OpTelemetry tel("ewise_mult", ctx, a.nnz() + b.nnz());
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&a, &b})) {
        Matrix out = db->ewise_mult(ctx, a, b);
        tel.done_sharded(out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    Format f;
    if (!forced(global_hint(), {Format::Csr, Format::Dense, Format::BitBlocks}, f)) {
        const auto total = static_cast<double>(a.nnz() + b.nnz());
        const bool dense_ok = dense_ewise_eligible(a) && dense_ewise_eligible(b);
        const bool bb_ok = bitblock_eligible(a) && bitblock_eligible(b);
        // The bitblock intersection expands both sides of every matched tile
        // pair (~5 word sweeps, as in ewise_add); the occupied-tile sum is
        // the upper bound on matches and keeps disjoint patterns on CSR.
        f = pick({{Format::Csr, 2.0 * total + convert_cost(a, Format::Csr) +
                                    convert_cost(b, Format::Csr)},
                  {Format::Dense, dense_ok ? 0.5 * words_of(a.nrows(), a.ncols()) +
                                                 convert_cost(a, Format::Dense) +
                                                 convert_cost(b, Format::Dense)
                                           : kInfiniteCost},
                  {Format::BitBlocks,
                   bb_ok ? kWordOpScale * 320.0 *
                               (est_blocks(a) + est_blocks(b)) +
                               convert_cost(a, Format::BitBlocks) +
                               convert_cost(b, Format::BitBlocks)
                         : kInfiniteCost}},
                 dominant_format(a, b));
    }
    if (f == Format::Coo) f = Format::Csr;
    count_dispatch(f);
    Matrix out = [&] {
        if (f == Format::Dense) return Matrix{a.dense(ctx).ewise_and(b.dense(ctx)), ctx};
        if (f == Format::BitBlocks) {
            return Matrix{ops::ewise_mult(ctx, a.bitblocks(ctx), b.bitblocks(ctx)), ctx};
        }
        return Matrix{ops::ewise_mult(ctx, a.csr(ctx), b.csr(ctx)), ctx};
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&a, &b});
    return out;
}

Matrix ewise_diff(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    SPBLA_PROF_SPAN("storage.dispatch.ewise_diff");
    OpTelemetry tel("ewise_diff", ctx, a.nnz() + b.nnz());
    Format f;
    if (!forced(global_hint(), {Format::Csr, Format::Dense}, f)) {
        const auto total = static_cast<double>(a.nnz() + b.nnz());
        const bool dense_ok = dense_eligible(a) && dense_eligible(b);
        f = pick({{Format::Csr, 2.0 * total + convert_cost(a, Format::Csr) +
                                    convert_cost(b, Format::Csr)},
                  {Format::Dense, dense_ok ? 0.5 * words_of(a.nrows(), a.ncols()) +
                                                 convert_cost(a, Format::Dense) +
                                                 convert_cost(b, Format::Dense)
                                           : kInfiniteCost}},
                 dominant_format(a, b));
    }
    if (f == Format::Coo) f = Format::Csr;
    count_dispatch(f);
    Matrix out = [&] {
        if (f == Format::Dense) return Matrix{a.dense(ctx).ewise_andnot(b.dense(ctx)), ctx};
        return Matrix{ops::ewise_diff(ctx, a.csr(ctx), b.csr(ctx)), ctx};
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&a, &b});
    return out;
}

// ---------------------------------------------------------------------------
// structural family
// ---------------------------------------------------------------------------

Matrix kronecker(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    SPBLA_PROF_SPAN("storage.dispatch.kronecker");
    OpTelemetry tel("kronecker", ctx, a.nnz() + b.nnz());
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&a, &b})) {
        Matrix out = db->kronecker(ctx, a, b);
        tel.done_sharded(out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    // The CSR kernel's work is exactly the nnz_a * nnz_b output entries;
    // the dense nested loop touches every cell pair and only wins on tiny,
    // saturated blocks, so route CSR except under an explicit force.
    Format f;
    if (!forced(global_hint(), {Format::Csr, Format::Dense}, f)) f = Format::Csr;
    if (f == Format::Dense &&
        !(dense_eligible(a) && dense_eligible(b) &&
          dense_output_eligible(a.nrows() * b.nrows(), a.ncols() * b.ncols()))) {
        f = Format::Csr;  // forced-dense sweep on an output too big to bitmap
    }
    if (f == Format::Coo) f = Format::Csr;
    count_dispatch(f);
    Matrix out = [&] {
        if (f == Format::Dense) return Matrix{a.dense(ctx).kronecker(b.dense(ctx)), ctx};
        return Matrix{ops::kronecker(ctx, a.csr(ctx), b.csr(ctx)), ctx};
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&a, &b});
    return out;
}

Matrix transpose(backend::Context& ctx, const Matrix& a) {
    SPBLA_PROF_SPAN("storage.dispatch.transpose");
    OpTelemetry tel("transpose", ctx, a.nnz());
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&a})) {
        Matrix out = db->transpose(ctx, a);
        tel.done_sharded(out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    Format f;
    if (!forced(global_hint(),
                {Format::Csr, Format::Coo, Format::Dense, Format::BitBlocks}, f)) {
        const auto nnz = static_cast<double>(a.nnz());
        const bool dense_ok = dense_eligible(a);
        const bool bb_ok = bitblock_eligible(a);
        // COO transpose is swap + sort; CSR is a counting pass + scatter;
        // bitblock is ~384 register word ops per occupied tile.
        f = pick({{Format::Csr, 2.0 * nnz + 0.5 * static_cast<double>(a.ncols()) +
                                    convert_cost(a, Format::Csr)},
                  {Format::Coo, nnz * (1.0 + 0.25 * std::log2(nnz + 2.0)) +
                                    convert_cost(a, Format::Coo)},
                  {Format::Dense, dense_ok ? static_cast<double>(a.nrows()) *
                                                     static_cast<double>(a.ncols()) +
                                                 convert_cost(a, Format::Dense)
                                           : kInfiniteCost},
                  {Format::BitBlocks,
                   bb_ok ? kWordOpScale * 448.0 * est_blocks(a) +
                               convert_cost(a, Format::BitBlocks)
                         : kInfiniteCost}},
                 a.format());
    }
    count_dispatch(f);
    Matrix out = [&] {
        switch (f) {
            case Format::Coo: return Matrix{ops::transpose(ctx, a.coo(ctx)), ctx};
            case Format::Dense: return Matrix{a.dense(ctx).transpose(), ctx};
            case Format::BitBlocks:
                return Matrix{ops::transpose(ctx, a.bitblocks(ctx)), ctx};
            case Format::Csr:
            default: return Matrix{ops::transpose(ctx, a.csr(ctx)), ctx};
        }
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&a});
    return out;
}

Matrix submatrix(backend::Context& ctx, const Matrix& a, Index r0, Index c0, Index m,
                 Index n) {
    SPBLA_PROF_SPAN("storage.dispatch.submatrix");
    OpTelemetry tel("submatrix", ctx, a.nnz());
    Format f;
    if (!forced(global_hint(), {Format::Csr, Format::Coo, Format::Dense}, f)) {
        const auto nnz = static_cast<double>(a.nnz());
        const bool dense_ok = dense_eligible(a) && dense_output_eligible(m, n);
        // CSR touches only the selected row windows; COO scans all entries.
        const double row_fraction =
            a.nrows() > 0 ? static_cast<double>(m) / static_cast<double>(a.nrows()) : 1.0;
        f = pick({{Format::Csr, nnz * row_fraction + 8.0 * static_cast<double>(m) +
                                    convert_cost(a, Format::Csr)},
                  {Format::Coo, nnz + convert_cost(a, Format::Coo)},
                  {Format::Dense, dense_ok ? static_cast<double>(m) *
                                                     static_cast<double>(n) +
                                                 convert_cost(a, Format::Dense)
                                           : kInfiniteCost}},
                 a.format());
    }
    count_dispatch(f);
    Matrix out = [&] {
        switch (f) {
            case Format::Coo:
                return Matrix{ops::submatrix(ctx, a.coo(ctx), r0, c0, m, n), ctx};
            case Format::Dense:
                return Matrix{a.dense(ctx).submatrix(r0, c0, m, n), ctx};
            case Format::Csr:
            default:
                return Matrix{ops::submatrix(ctx, a.csr(ctx), r0, c0, m, n), ctx};
        }
    }();
    tel.done(f, out.nrows(), out.ncols(), out.nnz());
    trim({&a});
    return out;
}

// ---------------------------------------------------------------------------
// reductions and vector products
// ---------------------------------------------------------------------------

SpVector reduce_to_column(backend::Context& ctx, const Matrix& a) {
    SPBLA_PROF_SPAN("storage.dispatch.reduce_to_column");
    OpTelemetry tel("reduce_to_col", ctx, a.nnz());
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&a})) {
        SpVector out = db->reduce_to_column(ctx, a);
        tel.done_sharded(out.size(), 1, out.nnz());
        return out;
    }
    Format f;
    if (!forced(global_hint(), {Format::Csr, Format::Coo, Format::BitBlocks}, f)) {
        // All kernels are linear; whichever representation exists wins.
        f = pick({{Format::Csr, 0.5 * static_cast<double>(a.nrows()) +
                                    convert_cost(a, Format::Csr)},
                  {Format::Coo, static_cast<double>(a.nnz()) +
                                    convert_cost(a, Format::Coo)},
                  {Format::BitBlocks, kWordOpScale * 64.0 * est_blocks(a) +
                                          convert_cost(a, Format::BitBlocks)}},
                 a.format());
    }
    if (f == Format::Dense) f = Format::Csr;
    count_dispatch(f);
    SpVector out = f == Format::Coo         ? ops::reduce_to_column(ctx, a.coo(ctx))
                   : f == Format::BitBlocks ? ops::reduce_to_column(ctx, a.bitblocks(ctx))
                                            : ops::reduce_to_column(ctx, a.csr(ctx));
    tel.done(f, out.size(), 1, out.nnz());
    trim({&a});
    return out;
}

SpVector reduce_to_row(backend::Context& ctx, const Matrix& a) {
    SPBLA_PROF_SPAN("storage.dispatch.reduce_to_row");
    OpTelemetry tel("reduce_to_row", ctx, a.nnz());
    Format f;
    if (!forced(global_hint(), {Format::Csr}, f)) f = Format::Csr;
    if (f != Format::Csr) f = Format::Csr;
    count_dispatch(f);
    SpVector out = ops::reduce_to_row(ctx, a.csr(ctx));
    tel.done(f, 1, out.size(), out.nnz());
    trim({&a});
    return out;
}

std::size_t reduce_scalar(const Matrix& a) noexcept { return a.nnz(); }

SpVector mxv(backend::Context& ctx, const Matrix& a, const SpVector& x) {
    SPBLA_PROF_SPAN("storage.dispatch.mxv");
    OpTelemetry tel("mxv", ctx, a.nnz() + x.nnz());
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&a})) {
        SpVector out = db->mxv(ctx, a, x);
        tel.done_sharded(out.size(), 1, out.nnz());
        return out;
    }
    Format f;
    if (!forced(global_hint(), {Format::Csr, Format::BitBlocks}, f)) {
        // CSR walks the rows the frontier lands on; bitblock tests one packed
        // word per (tile row, frontier tile) and wins once the matrix is
        // dense enough that its representation is (or will be) materialised.
        f = pick({{Format::Csr, static_cast<double>(a.nnz()) * 0.5 +
                                    convert_cost(a, Format::Csr)},
                  {Format::BitBlocks,
                   bitblock_eligible(a)
                       ? kWordOpScale * 64.0 * est_blocks(a) +
                             convert_cost(a, Format::BitBlocks)
                       : kInfiniteCost}},
                 a.format());
    }
    if (f != Format::BitBlocks) f = Format::Csr;
    count_dispatch(f);
    SpVector out = f == Format::BitBlocks ? ops::mxv(ctx, a.bitblocks(ctx), x)
                                          : ops::mxv(ctx, a.csr(ctx), x);
    tel.done(f, out.size(), 1, out.nnz());
    trim({&a});
    return out;
}

SpVector vxm(backend::Context& ctx, const SpVector& x, const Matrix& a) {
    SPBLA_PROF_SPAN("storage.dispatch.vxm");
    OpTelemetry tel("vxm", ctx, a.nnz() + x.nnz());
    count_dispatch(Format::Csr);
    SpVector out = ops::vxm(ctx, x, a.csr(ctx));
    tel.done(Format::Csr, 1, out.size(), out.nnz());
    trim({&a});
    return out;
}

Matrix multiply_masked(backend::Context& ctx, const Matrix& mask, const Matrix& a,
                       const Matrix& b_transposed, bool complement) {
    SPBLA_PROF_SPAN("storage.dispatch.multiply_masked");
    OpTelemetry tel("mxm_masked", ctx, mask.nnz() + a.nnz() + b_transposed.nnz());
    if (const DistBridge* db = dist_bridge(); db != nullptr && db->should_shard({&mask, &a, &b_transposed})) {
        Matrix out = db->multiply_masked(ctx, mask, a, b_transposed, complement);
        tel.done_sharded(out.nrows(), out.ncols(), out.nnz());
        return out;
    }
    count_dispatch(Format::Csr);
    Matrix out{ops::multiply_masked(ctx, mask.csr(ctx), a.csr(ctx),
                                    b_transposed.csr(ctx), complement),
               ctx};
    tel.done(Format::Csr, out.nrows(), out.ncols(), out.nnz());
    trim({&mask, &a, &b_transposed});
    return out;
}

// ---------------------------------------------------------------------------
// multi-device bridge
// ---------------------------------------------------------------------------

namespace {
std::atomic<const DistBridge*> g_dist_bridge{nullptr};
}  // namespace

void set_dist_bridge(const DistBridge* bridge) noexcept {
    g_dist_bridge.store(bridge, std::memory_order_release);
}

const DistBridge* dist_bridge() noexcept {
    return g_dist_bridge.load(std::memory_order_acquire);
}

}  // namespace spbla::storage
