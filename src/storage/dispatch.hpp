/// \file dispatch.hpp
/// \brief Cost-driven routing of every public operation over spbla::Matrix.
///
/// Each function mirrors one kernel family in ops/ops.hpp but takes the
/// format-polymorphic handle. The implementation picks the representation
/// per call with a small cost model over the signals the handle already
/// tracks (nnz, density, row skew) plus the conversion cost of any
/// representation the operands do not have materialised, and applies
/// hysteresis — the primary format of the dominant operand is kept unless a
/// rival is decisively (2x) cheaper — so fixpoint drivers (closure, CFPQ,
/// RPQ) settle into a stable format instead of thrashing.
///
/// The storage::FormatHint global (see matrix.hpp) short-circuits the cost
/// model for ops the forced backend implements; ops without a kernel in the
/// forced format fall back to CSR, which every operation supports, so a
/// forced sweep still computes identical results.
#pragma once

#include "backend/context.hpp"
#include "core/spvector.hpp"
#include "ops/spgemm.hpp"  // SpGemmOptions ride through the CSR path
#include "storage/matrix.hpp"

namespace spbla::storage {

/// C = A x B over the Boolean semiring.
[[nodiscard]] Matrix multiply(backend::Context& ctx, const Matrix& a, const Matrix& b,
                              const ops::SpGemmOptions& opts = {});

/// C = C | A x B (fused accumulate form used by the fixpoint drivers).
[[nodiscard]] Matrix multiply_add(backend::Context& ctx, const Matrix& c, const Matrix& a,
                                  const Matrix& b, const ops::SpGemmOptions& opts = {});

/// C = A | B.
[[nodiscard]] Matrix ewise_add(backend::Context& ctx, const Matrix& a, const Matrix& b);

/// C = A & B.
[[nodiscard]] Matrix ewise_mult(backend::Context& ctx, const Matrix& a, const Matrix& b);

/// C = A \ B (cells of A not in B).
[[nodiscard]] Matrix ewise_diff(backend::Context& ctx, const Matrix& a, const Matrix& b);

/// C = A (x) B (Kronecker product).
[[nodiscard]] Matrix kronecker(backend::Context& ctx, const Matrix& a, const Matrix& b);

/// C = A^T.
[[nodiscard]] Matrix transpose(backend::Context& ctx, const Matrix& a);

/// C = A[r0 .. r0+m, c0 .. c0+n].
[[nodiscard]] Matrix submatrix(backend::Context& ctx, const Matrix& a, Index r0, Index c0,
                               Index m, Index n);

/// V[i] = OR_j A[i, j].
[[nodiscard]] SpVector reduce_to_column(backend::Context& ctx, const Matrix& a);

/// V[j] = OR_i A[i, j].
[[nodiscard]] SpVector reduce_to_row(backend::Context& ctx, const Matrix& a);

/// Total number of set cells (format-independent, O(1) on the handle).
[[nodiscard]] std::size_t reduce_scalar(const Matrix& a) noexcept;

/// y = A x (Boolean matrix-vector product).
[[nodiscard]] SpVector mxv(backend::Context& ctx, const Matrix& a, const SpVector& x);

/// y = x A (Boolean vector-matrix product).
[[nodiscard]] SpVector vxm(backend::Context& ctx, const SpVector& x, const Matrix& a);

/// C = (A x B^T) masked by \p mask (complemented if \p complement).
[[nodiscard]] Matrix multiply_masked(backend::Context& ctx, const Matrix& mask,
                                     const Matrix& a, const Matrix& b_transposed,
                                     bool complement = false);

// ---- Multi-device bridge --------------------------------------------------

/// Hook the sharded multi-device layer (src/dist) installs at configure time
/// so above-threshold ops route through it transparently. A function-pointer
/// table (rather than a direct call) keeps the dependency one-way: dist links
/// against storage, never the reverse. Entries may be null for ops the layer
/// does not shard; `should_shard` is consulted per call with the routed op's
/// matrix operands.
struct DistBridge {
    bool (*should_shard)(std::initializer_list<const Matrix*> operands);
    Matrix (*multiply)(backend::Context&, const Matrix&, const Matrix&,
                       const ops::SpGemmOptions&);
    Matrix (*multiply_add)(backend::Context&, const Matrix&, const Matrix&, const Matrix&,
                           const ops::SpGemmOptions&);
    Matrix (*multiply_masked)(backend::Context&, const Matrix&, const Matrix&,
                              const Matrix&, bool);
    Matrix (*ewise_add)(backend::Context&, const Matrix&, const Matrix&);
    Matrix (*ewise_mult)(backend::Context&, const Matrix&, const Matrix&);
    Matrix (*kronecker)(backend::Context&, const Matrix&, const Matrix&);
    Matrix (*transpose)(backend::Context&, const Matrix&);
    SpVector (*reduce_to_column)(backend::Context&, const Matrix&);
    SpVector (*mxv)(backend::Context&, const Matrix&, const SpVector&);
};

/// Install (or, with nullptr, remove) the sharded-execution bridge. The
/// pointed-to table must outlive every routed call.
void set_dist_bridge(const DistBridge* bridge) noexcept;

/// The active bridge, or nullptr when sharded execution is not configured.
[[nodiscard]] const DistBridge* dist_bridge() noexcept;

}  // namespace spbla::storage
