/// \file capi.cpp
/// \brief Implementation of the C-compatible API (include/spbla/spbla.h).
///
/// Every entry point converts C++ exceptions into status codes at the
/// boundary and records the message in a thread-local slot, mirroring how
/// cuBool surfaces device errors through its C API.

#include "spbla/spbla.h"

#include <atomic>
#include <memory>
#include <string>

#include "algorithms/closure.hpp"
#include "backend/context.hpp"
#include "dist/dist.hpp"
#include "incr/incremental.hpp"
#include "incr/memo.hpp"
#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "storage/matrix.hpp"
#include "telemetry/metrics.hpp"

struct spbla_Matrix_t {
    spbla::Matrix data;
};

struct spbla_Vector_t {
    spbla::SpVector data;
};

namespace {

std::unique_ptr<spbla::backend::Context> g_context;
std::atomic<std::uint64_t> g_live_objects{0};
thread_local std::string g_last_error;

spbla_Status to_c_status(spbla::Status s) noexcept {
    switch (s) {
        case spbla::Status::Ok: return SPBLA_STATUS_SUCCESS;
        case spbla::Status::InvalidArgument: return SPBLA_STATUS_INVALID_ARGUMENT;
        case spbla::Status::DimensionMismatch: return SPBLA_STATUS_DIMENSION_MISMATCH;
        case spbla::Status::OutOfRange: return SPBLA_STATUS_OUT_OF_RANGE;
        case spbla::Status::NotInitialized: return SPBLA_STATUS_NOT_INITIALIZED;
        case spbla::Status::InvalidState: return SPBLA_STATUS_INVALID_STATE;
    }
    return SPBLA_STATUS_ERROR;
}

/// Run \p body, translating exceptions to status codes at the C boundary.
template <class Body>
spbla_Status guarded(Body&& body) noexcept {
    try {
        g_last_error.clear();
        return body();
    } catch (const spbla::Error& e) {
        g_last_error = e.what();
        return to_c_status(e.status());
    } catch (const std::exception& e) {
        g_last_error = e.what();
        return SPBLA_STATUS_ERROR;
    } catch (...) {
        g_last_error = "unknown error";
        return SPBLA_STATUS_ERROR;
    }
}

spbla_Status require_init() noexcept {
    if (!g_context) {
        g_last_error = "spbla is not initialized";
        return SPBLA_STATUS_NOT_INITIALIZED;
    }
    return SPBLA_STATUS_SUCCESS;
}

}  // namespace

extern "C" {

spbla_Status spbla_Initialize(spbla_InitHint hint) {
    return guarded([&]() -> spbla_Status {
        if (g_context) {
            g_last_error = "spbla is already initialized";
            return SPBLA_STATUS_INVALID_STATE;
        }
        const auto policy = hint == SPBLA_INIT_SEQUENTIAL
                                ? spbla::backend::Policy::Sequential
                                : spbla::backend::Policy::Parallel;
        g_context = std::make_unique<spbla::backend::Context>(policy);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Finalize(void) {
    return guarded([]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (g_live_objects.load() != 0) {
            g_last_error = "spbla_Finalize: live matrix handles remain";
            return SPBLA_STATUS_INVALID_STATE;
        }
        // The incremental op memo retains matrices charged to this context's
        // tracker; drop them before the leak-checked teardown.
        spbla::incr::memo().clear();
        g_context.reset();
        return SPBLA_STATUS_SUCCESS;
    });
}

int spbla_IsInitialized(void) { return g_context ? 1 : 0; }

const char* spbla_Status_Name(spbla_Status status) {
    switch (status) {
        case SPBLA_STATUS_SUCCESS: return "SUCCESS";
        case SPBLA_STATUS_INVALID_ARGUMENT: return "INVALID_ARGUMENT";
        case SPBLA_STATUS_DIMENSION_MISMATCH: return "DIMENSION_MISMATCH";
        case SPBLA_STATUS_OUT_OF_RANGE: return "OUT_OF_RANGE";
        case SPBLA_STATUS_NOT_INITIALIZED: return "NOT_INITIALIZED";
        case SPBLA_STATUS_INVALID_STATE: return "INVALID_STATE";
        case SPBLA_STATUS_ERROR: return "ERROR";
    }
    return "UNKNOWN";
}

const char* spbla_GetLastError(void) { return g_last_error.c_str(); }

uint32_t spbla_GetVersion(void) { return 1 * 10000 + 0 * 100 + 0; }

uint64_t spbla_GetLiveObjects(void) { return g_live_objects.load(); }

spbla_Status spbla_ProfEnable(int level) {
    return guarded([&]() -> spbla_Status {
        if (level < 0 || level > 2) {
            g_last_error = "spbla_ProfEnable: level must be 0, 1 or 2";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        spbla::prof::set_runtime_level(level);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_ProfDump(const char* path) {
    return guarded([&]() -> spbla_Status {
        if (path == nullptr || path[0] == '\0') {
            g_last_error = "spbla_ProfDump: path must be non-empty";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        if (!spbla::prof::write_chrome_trace(path)) {
            g_last_error = std::string("spbla_ProfDump: cannot write ") + path;
            return SPBLA_STATUS_ERROR;
        }
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_MetricsDump(const char* path, spbla_MetricsFormat format) {
    return guarded([&]() -> spbla_Status {
        if (path == nullptr || path[0] == '\0') {
            g_last_error = "spbla_MetricsDump: path must be non-empty";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        if (format != SPBLA_METRICS_JSON && format != SPBLA_METRICS_PROMETHEUS) {
            g_last_error = "spbla_MetricsDump: unknown format";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        const auto fmt = format == SPBLA_METRICS_PROMETHEUS
                             ? spbla::telemetry::ExportFormat::Prometheus
                             : spbla::telemetry::ExportFormat::Json;
        if (!spbla::telemetry::write_file(path, fmt)) {
            g_last_error = std::string("spbla_MetricsDump: cannot write ") + path;
            return SPBLA_STATUS_ERROR;
        }
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_MetricsReset(void) {
    return guarded([]() -> spbla_Status {
        spbla::telemetry::reset();
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_SetFormatHint(spbla_FormatHint hint) {
    return guarded([&]() -> spbla_Status {
        switch (hint) {
            case SPBLA_FORMAT_AUTO:
                spbla::storage::set_global_hint(spbla::storage::FormatHint::Auto);
                break;
            case SPBLA_FORMAT_CSR:
                spbla::storage::set_global_hint(spbla::storage::FormatHint::ForceCsr);
                break;
            case SPBLA_FORMAT_COO:
                spbla::storage::set_global_hint(spbla::storage::FormatHint::ForceCoo);
                break;
            case SPBLA_FORMAT_DENSE:
                spbla::storage::set_global_hint(spbla::storage::FormatHint::ForceDense);
                break;
            case SPBLA_FORMAT_BITBLOCK:
                spbla::storage::set_global_hint(spbla::storage::FormatHint::ForceBitBlocks);
                break;
            default:
                g_last_error = "spbla_SetFormatHint: unknown hint";
                return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_SetCacheBudget(uint64_t bytes) {
    return guarded([&]() -> spbla_Status {
        spbla::storage::set_cache_budget(static_cast<std::size_t>(bytes));
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_DistConfigure(const spbla_DistConfig* config) {
    return guarded([&]() -> spbla_Status {
        if (config == nullptr || config->n_devices == 0) {
            spbla::dist::disable();
            return SPBLA_STATUS_SUCCESS;
        }
        spbla::dist::Config cfg;
        cfg.devices = config->n_devices;
        cfg.threads_per_device =
            config->threads_per_device == 0 ? 1 : config->threads_per_device;
        cfg.grid_rows = config->grid_rows;
        cfg.grid_cols = config->grid_cols;
        if (config->tile_budget_bytes != 0) {
            cfg.tile_budget_bytes = static_cast<std::size_t>(config->tile_budget_bytes);
        }
        if (config->min_nnz != 0) {
            cfg.min_nnz = static_cast<std::size_t>(config->min_nnz);
        }
        if (config->min_dim != 0) cfg.min_dim = config->min_dim;
        spbla::dist::configure(cfg);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_SetFormatHint(spbla_Matrix matrix, spbla_FormatHint hint) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr) {
            g_last_error = "spbla_Matrix_SetFormatHint: null handle";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        switch (hint) {
            case SPBLA_FORMAT_CSR:
                matrix->data.convert_to(spbla::Format::Csr, *g_context);
                break;
            case SPBLA_FORMAT_COO:
                matrix->data.convert_to(spbla::Format::Coo, *g_context);
                break;
            case SPBLA_FORMAT_DENSE:
                matrix->data.convert_to(spbla::Format::Dense, *g_context);
                break;
            case SPBLA_FORMAT_BITBLOCK:
                matrix->data.convert_to(spbla::Format::BitBlocks, *g_context);
                break;
            case SPBLA_FORMAT_AUTO:
            default:
                g_last_error = "spbla_Matrix_SetFormatHint: hint must name a format";
                return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_New(spbla_Matrix* matrix, spbla_Index nrows, spbla_Index ncols) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr) {
            g_last_error = "spbla_Matrix_New: null output handle";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        // FFI handles are raw by contract; freed in spbla_Matrix_Free.
        *matrix = new spbla_Matrix_t{spbla::Matrix{nrows, ncols, *g_context}};  // lint:allow(raw-new-delete)
        g_live_objects.fetch_add(1);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Free(spbla_Matrix* matrix) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || *matrix == nullptr) {
            g_last_error = "spbla_Matrix_Free: null handle";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        delete *matrix;  // lint:allow(raw-new-delete)
        *matrix = nullptr;
        g_live_objects.fetch_sub(1);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Build(spbla_Matrix matrix, const spbla_Index* rows,
                                const spbla_Index* cols, spbla_Index nvals,
                                spbla_OpHint hint) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || (nvals > 0 && (rows == nullptr || cols == nullptr))) {
            g_last_error = "spbla_Matrix_Build: null argument";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        std::vector<spbla::Coord> coords;
        coords.reserve(nvals);
        for (spbla_Index k = 0; k < nvals; ++k) coords.push_back({rows[k], cols[k]});
        auto built = spbla::Matrix::from_coords(matrix->data.nrows(), matrix->data.ncols(),
                                                std::move(coords), *g_context);
        matrix->data = hint == SPBLA_HINT_ACCUMULATE
                           ? spbla::storage::ewise_add(*g_context, matrix->data, built)
                           : std::move(built);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_ExtractPairs(spbla_Matrix matrix, spbla_Index* rows,
                                       spbla_Index* cols, spbla_Index* nvals) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || nvals == nullptr) {
            g_last_error = "spbla_Matrix_ExtractPairs: null argument";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        const auto coords = matrix->data.to_coords();
        if (coords.size() > *nvals) {
            g_last_error = "spbla_Matrix_ExtractPairs: buffer too small";
            *nvals = static_cast<spbla_Index>(coords.size());
            return SPBLA_STATUS_OUT_OF_RANGE;
        }
        if (!coords.empty() && (rows == nullptr || cols == nullptr)) {
            g_last_error = "spbla_Matrix_ExtractPairs: null buffer";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        for (std::size_t k = 0; k < coords.size(); ++k) {
            rows[k] = coords[k].row;
            cols[k] = coords[k].col;
        }
        *nvals = static_cast<spbla_Index>(coords.size());
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Nrows(spbla_Matrix matrix, spbla_Index* nrows) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || nrows == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        *nrows = matrix->data.nrows();
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Ncols(spbla_Matrix matrix, spbla_Index* ncols) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || ncols == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        *ncols = matrix->data.ncols();
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Nvals(spbla_Matrix matrix, spbla_Index* nvals) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || nvals == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        *nvals = static_cast<spbla_Index>(matrix->data.nnz());
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Duplicate(spbla_Matrix matrix, spbla_Matrix* duplicate) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || duplicate == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        *duplicate = new spbla_Matrix_t{matrix->data};  // lint:allow(raw-new-delete)
        g_live_objects.fetch_add(1);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_MxM(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b,
                       spbla_OpHint hint) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr || b == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = hint == SPBLA_HINT_ACCUMULATE
                           ? spbla::storage::multiply_add(*g_context, result->data,
                                                          a->data, b->data)
                           : spbla::storage::multiply(*g_context, a->data, b->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_EWiseAdd(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr || b == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::ewise_add(*g_context, a->data, b->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_EWiseMult(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr || b == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::ewise_mult(*g_context, a->data, b->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Kronecker(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr || b == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::kronecker(*g_context, a->data, b->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Transpose(spbla_Matrix result, spbla_Matrix a) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::transpose(*g_context, a->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_ExtractSubMatrix(spbla_Matrix result, spbla_Matrix a,
                                           spbla_Index row0, spbla_Index col0,
                                           spbla_Index m, spbla_Index n) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::submatrix(*g_context, a->data, row0, col0, m, n);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_Reduce(spbla_Matrix result, spbla_Matrix a) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        const auto v = spbla::storage::reduce_to_column(*g_context, a->data);
        std::vector<spbla::Coord> coords;
        coords.reserve(v.nnz());
        for (const auto i : v.indices()) coords.push_back({i, 0});
        result->data = spbla::Matrix::from_coords(a->data.nrows(), 1, std::move(coords),
                                                  *g_context);
        return SPBLA_STATUS_SUCCESS;
    });
}

namespace {

/// Build a cell matrix at \p nrows × \p ncols from parallel coordinate arrays.
spbla::Matrix cells_from_arrays(spbla_Index nrows, spbla_Index ncols,
                                const spbla_Index* rows, const spbla_Index* cols,
                                spbla_Index nvals) {
    std::vector<spbla::Coord> coords;
    coords.reserve(nvals);
    for (spbla_Index k = 0; k < nvals; ++k) coords.push_back({rows[k], cols[k]});
    return spbla::Matrix::from_coords(nrows, ncols, std::move(coords), *g_context);
}

}  // namespace

spbla_Status spbla_MatrixApplyDelta(spbla_Matrix matrix, const spbla_Index* add_rows,
                                    const spbla_Index* add_cols, spbla_Index n_add,
                                    const spbla_Index* del_rows, const spbla_Index* del_cols,
                                    spbla_Index n_del) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (matrix == nullptr || (n_add > 0 && (add_rows == nullptr || add_cols == nullptr)) ||
            (n_del > 0 && (del_rows == nullptr || del_cols == nullptr))) {
            g_last_error = "spbla_MatrixApplyDelta: null argument";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        const auto nr = matrix->data.nrows();
        const auto nc = matrix->data.ncols();
        const auto adds = cells_from_arrays(nr, nc, add_rows, add_cols, n_add);
        const auto dels = cells_from_arrays(nr, nc, del_rows, del_cols, n_del);
        matrix->data.apply_delta(adds, dels, *g_context);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_ClosureIncremental(spbla_Matrix closure, spbla_Matrix adj,
                                      const spbla_Index* add_rows, const spbla_Index* add_cols,
                                      spbla_Index n_add, const spbla_Index* del_rows,
                                      const spbla_Index* del_cols, spbla_Index n_del) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (closure == nullptr || adj == nullptr ||
            (n_add > 0 && (add_rows == nullptr || add_cols == nullptr)) ||
            (n_del > 0 && (del_rows == nullptr || del_cols == nullptr))) {
            g_last_error = "spbla_ClosureIncremental: null argument";
            return SPBLA_STATUS_INVALID_ARGUMENT;
        }
        auto& ctx = *g_context;
        const auto nr = adj->data.nrows();
        const auto nc = adj->data.ncols();
        const auto adds = cells_from_arrays(nr, nc, add_rows, add_cols, n_add);
        const auto dels = cells_from_arrays(nr, nc, del_rows, del_cols, n_del);
        // Normalize to effective deltas against the pre-batch adjacency
        // before mutating it: add_eff ∩ A = ∅, del_eff ⊆ A, and a cell named
        // by both arrays is treated as present afterwards (insert wins).
        const auto add_eff = spbla::storage::ewise_diff(ctx, adds, adj->data);
        const auto del_eff = spbla::storage::ewise_diff(
            ctx, spbla::storage::ewise_mult(ctx, dels, adj->data), adds);
        adj->data.apply_delta(adds, dels, ctx);
        if (closure->data.empty()) {
            // An empty closure handle requests a scratch build (it is only a
            // valid pre-batch closure when the graph itself was empty).
            closure->data = spbla::algorithms::transitive_closure(
                ctx, adj->data, spbla::algorithms::ClosureStrategy::Delta);
        } else {
            (void)spbla::incr::update_closure(ctx, closure->data, adj->data, add_eff,
                                              del_eff);
        }
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_New(spbla_Vector* vector, spbla_Index size) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (vector == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        // FFI handles are raw by contract; freed in spbla_Vector_Free.
        *vector = new spbla_Vector_t{spbla::SpVector{size}};  // lint:allow(raw-new-delete)
        g_live_objects.fetch_add(1);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_Free(spbla_Vector* vector) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (vector == nullptr || *vector == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        delete *vector;  // lint:allow(raw-new-delete)
        *vector = nullptr;
        g_live_objects.fetch_sub(1);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_Build(spbla_Vector vector, const spbla_Index* indices,
                                spbla_Index nvals) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (vector == nullptr || (nvals > 0 && indices == nullptr))
            return SPBLA_STATUS_INVALID_ARGUMENT;
        vector->data = spbla::SpVector::from_indices(
            vector->data.size(), std::vector<spbla::Index>(indices, indices + nvals));
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_ExtractValues(spbla_Vector vector, spbla_Index* indices,
                                        spbla_Index* nvals) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (vector == nullptr || nvals == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        const auto& idx = vector->data.indices();
        if (idx.size() > *nvals) {
            *nvals = static_cast<spbla_Index>(idx.size());
            g_last_error = "spbla_Vector_ExtractValues: buffer too small";
            return SPBLA_STATUS_OUT_OF_RANGE;
        }
        if (!idx.empty() && indices == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        std::copy(idx.begin(), idx.end(), indices);
        *nvals = static_cast<spbla_Index>(idx.size());
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_Size(spbla_Vector vector, spbla_Index* size) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (vector == nullptr || size == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        *size = vector->data.size();
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_Nvals(spbla_Vector vector, spbla_Index* nvals) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (vector == nullptr || nvals == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        *nvals = static_cast<spbla_Index>(vector->data.nnz());
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_EWiseAdd(spbla_Vector result, spbla_Vector a, spbla_Vector b) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr || b == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = a->data.ewise_or(b->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Vector_EWiseMult(spbla_Vector result, spbla_Vector a, spbla_Vector b) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || a == nullptr || b == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = a->data.ewise_and(b->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_MxV(spbla_Vector result, spbla_Matrix m, spbla_Vector v) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || m == nullptr || v == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::mxv(*g_context, m->data, v->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_VxM(spbla_Vector result, spbla_Vector v, spbla_Matrix m) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || m == nullptr || v == nullptr)
            return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::vxm(*g_context, v->data, m->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

spbla_Status spbla_Matrix_ReduceVector(spbla_Vector result, spbla_Matrix m) {
    return guarded([&]() -> spbla_Status {
        if (auto s = require_init(); s != SPBLA_STATUS_SUCCESS) return s;
        if (result == nullptr || m == nullptr) return SPBLA_STATUS_INVALID_ARGUMENT;
        result->data = spbla::storage::reduce_to_column(*g_context, m->data);
        return SPBLA_STATUS_SUCCESS;
    });
}

}  // extern "C"
