/// \file device_group.hpp
/// \brief N virtual devices + the cross-device tile scheduler.
///
/// The paper's device abstraction hosts one backend per process; the ROADMAP
/// north star asks for scaling past a single simulated device. A DeviceGroup
/// virtualizes N of them: each device is a backend::Context of its own (its
/// worker pool is the device's lanes, its MemoryTracker the device memory),
/// and a driver pool overlaps per-tile kernels across devices — each driver
/// ticket drains one device's tile queue and then steals from its neighbours
/// (the multi-accelerator analog of the pool's dynamic ticket scheduler).
///
/// This header is private to src/dist/ (lint `format-leak` enforces it);
/// callers outside the layer configure groups through dist/dist.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/context.hpp"
#include "util/thread_pool.hpp"

namespace spbla::dist {

/// A fixed set of simulated devices executing tile tasks cooperatively.
class DeviceGroup {
public:
    /// \p n_devices simulated devices, each owning a Context with
    /// \p threads_per_device pool workers (<= 1 means the device computes on
    /// the driver thread serving it, i.e. one lane per device).
    explicit DeviceGroup(std::size_t n_devices, std::size_t threads_per_device = 1);

    DeviceGroup(const DeviceGroup&) = delete;
    DeviceGroup& operator=(const DeviceGroup&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }

    [[nodiscard]] backend::Context& device(std::size_t d) noexcept {
        return *devices_[d];
    }

    /// Run body(task, executing_device) for every task in [0, n_tasks).
    /// owner(task) names the device whose queue the task starts on; a device
    /// that drains its queue steals from the others (dist_steals counter).
    /// Bodies for distinct tasks run concurrently and must not share mutable
    /// state. Blocks until every task completed. With one device the tasks
    /// run inline, in order, with no steals (the deterministic baseline the
    /// strong-scaling ladder measures against).
    void run(std::size_t n_tasks, const std::function<std::size_t(std::size_t)>& owner,
             const std::function<void(std::size_t, std::size_t)>& body);

    /// Cumulative per-device busy time (nanoseconds spent inside tile
    /// bodies). max over devices of the delta across an op is the modeled
    /// makespan the strong-scaling ladder reports: it is schedule-accurate on
    /// any host, including single-core ones where wall clock cannot show
    /// overlap.
    [[nodiscard]] std::vector<std::uint64_t> busy_ns() const;

    /// True iff every device's MemoryTracker is balanced (per-device leak
    /// check used by the shard-oracle harness on teardown).
    [[nodiscard]] bool balanced() const noexcept;

    /// Concatenated leak reports of the unbalanced devices.
    [[nodiscard]] std::string leak_report() const;

private:
    // Concurrency contract: devices_ and driver_ are immutable after
    // construction; busy_ns_ entries are atomics; the per-run tile queues
    // and steal cursors live on run()'s stack as atomic claim indices. All
    // shared state is lock-free, so there is no mutex for the capability
    // annotations (util/thread_annotations.hpp) to attach to — the dist CI
    // job race-checks this scheduler under TSan instead.
    std::vector<std::unique_ptr<backend::Context>> devices_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;
    std::unique_ptr<util::ThreadPool> driver_;  // null when size() == 1
};

}  // namespace spbla::dist
