/// \file sharded_matrix.hpp
/// \brief A Boolean matrix 2D block-partitioned into storage::Matrix tiles.
///
/// Each tile is an ordinary format-polymorphic spbla::Matrix bound to the
/// context of the device that owns it, so tile kernels run on — and charge
/// scratch to — their device. A sharding is a *view of a content version*:
/// it records storage::Matrix::version() of its source at build time, and
/// the shard cache in dist.cpp refuses to reuse it once the handle mutated
/// (the invalidation-epoch contract the harness pins down).
///
/// Private to src/dist/ (lint `format-leak`); external callers go through
/// dist/dist.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/device_group.hpp"
#include "dist/dist.hpp"
#include "dist/partition.hpp"
#include "storage/matrix.hpp"

namespace spbla::dist {

/// Tiles of one matrix, placed across a DeviceGroup.
class ShardedMatrix {
public:
    /// Scatter \p source into \p part tiles placed per \p placement.
    /// Tile construction runs through the group scheduler (the simulated
    /// host-to-device upload).
    ShardedMatrix(DeviceGroup& group, const Matrix& source, Partition part,
                  Placement placement = Placement::LoadBalanced);

    [[nodiscard]] const Partition& partition() const noexcept { return part_; }
    [[nodiscard]] DeviceGroup& group() const noexcept { return *group_; }

    [[nodiscard]] Index nrows() const noexcept { return part_.nrows(); }
    [[nodiscard]] Index ncols() const noexcept { return part_.ncols(); }
    [[nodiscard]] std::size_t nnz() const noexcept { return nnz_; }

    /// Device owning tile (i, j).
    [[nodiscard]] std::size_t owner(std::size_t i, std::size_t j) const noexcept {
        return owners_[part_.tile_index(i, j)];
    }

    /// The tile at grid cell (i, j) (CSR-primary, bound to its owner's
    /// context; safe for concurrent read-only access).
    [[nodiscard]] const Matrix& tile(std::size_t i, std::size_t j) const noexcept {
        return tiles_[part_.tile_index(i, j)];
    }

    /// Content version of the source handle at build time.
    [[nodiscard]] std::uint64_t source_version() const noexcept { return source_version_; }

    /// True iff \p m still carries the content this sharding was built from.
    [[nodiscard]] bool in_sync_with(const Matrix& m) const noexcept {
        return source_version_ != 0 && m.version() == source_version_;
    }

    /// Reassemble the single-device matrix on \p ctx (O(nnz), no sort).
    [[nodiscard]] Matrix gather(backend::Context& ctx) const;

private:
    DeviceGroup* group_;
    Partition part_;
    std::vector<std::size_t> owners_;  // tile -> device, row-major
    std::vector<Matrix> tiles_;        // row-major grid
    std::size_t nnz_{0};
    std::uint64_t source_version_{0};
};

}  // namespace spbla::dist
