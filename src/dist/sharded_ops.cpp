/// \file sharded_ops.cpp
/// \brief Tile-level sharded kernels: SUMMA multiply, masked/element-wise
///        variants, kronecker broadcast, transpose, reduce and mxv.

#include "dist/sharded_ops.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <ranges>
#include <utility>
#include <vector>

#include "core/convert.hpp"
#include "core/csr.hpp"
#include "ops/bitblock_ops.hpp"
#include "ops/ewise_add.hpp"
#include "ops/ewise_mult.hpp"
#include "storage/thresholds.hpp"
#include "ops/kronecker.hpp"
#include "ops/masked.hpp"
#include "ops/mxv.hpp"
#include "ops/reduce.hpp"
#include "ops/transpose.hpp"
#include "prof/prof.hpp"
#include "telemetry/metrics.hpp"
#include "util/contracts.hpp"

namespace spbla::dist {

namespace {

/// Charge a cross-device tile read: the executing device pulls \p tile from
/// its owner. Reads of resident or empty tiles are free.
void note_transfer(const Matrix& tile, std::size_t tile_owner, std::size_t exec_device) {
    if (tile_owner == exec_device || tile.nnz() == 0) return;
    // Charge the resident representation's bytes: a BitBlocks tile ships its
    // packed tiles, not a CSR materialised just for accounting.
    const std::size_t bytes = tile.device_bytes();
    stats().tile_transfers.fetch_add(1, std::memory_order_relaxed);
    stats().transfer_bytes.fetch_add(bytes, std::memory_order_relaxed);
    SPBLA_PROF_COUNT(dist_transfers, 1);
    SPBLA_PROF_COUNT(dist_transfer_bytes, bytes);
    telemetry::count(telemetry::Counter::DistTileTransfers);
    telemetry::count(telemetry::Counter::DistTransferBytes, bytes);
}

/// Stitch per-tile CSR results (row-major over \p part's grid; disengaged
/// slots are empty tiles) into one global CSR on \p out_ctx. Tile rows are
/// disjoint row ranges and tile columns ascend, so this is a counting pass
/// plus a cursor fill — O(nnz + nrows), no sort.
Matrix assemble(backend::Context& out_ctx, const Partition& part,
                const std::vector<std::optional<CsrMatrix>>& tiles) {
    const std::size_t gr = part.grid_rows();
    const std::size_t gc = part.grid_cols();
    const Index nr = part.nrows();

    // The stitched arrays come from the output device's pool: every sharded
    // op assembles here, so round-tripping results through the free lists
    // means steady-state SUMMA iterations reuse the same blocks.
    auto offsets = out_ctx.buffer_pool().acquire_zeroed(static_cast<std::size_t>(nr) + 1);
    for (std::size_t i = 0; i < gr; ++i) {
        const Index base = part.row_begin(i);
        for (std::size_t j = 0; j < gc; ++j) {
            const auto& t = tiles[part.tile_index(i, j)];
            if (!t) continue;
            SPBLA_ASSERT(t->nrows() == part.tile_nrows(i) &&
                             t->ncols() == part.tile_ncols(j),
                         "dist::assemble: tile shape does not match the grid cell");
            for (Index r = 0; r < t->nrows(); ++r)
                offsets[static_cast<std::size_t>(base) + r + 1] += t->row_nnz(r);
        }
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nr); ++r)
        offsets[r + 1] += offsets[r];

    auto cols = out_ctx.buffer_pool().acquire(offsets[nr]);
    auto cursor = out_ctx.buffer_pool().acquire(nr);
    std::copy(offsets.begin(), offsets.end() - 1, cursor.begin());
    for (std::size_t i = 0; i < gr; ++i) {
        const Index base = part.row_begin(i);
        for (std::size_t j = 0; j < gc; ++j) {
            const auto& t = tiles[part.tile_index(i, j)];
            if (!t) continue;
            const Index col_base = part.col_begin(j);
            for (Index r = 0; r < t->nrows(); ++r) {
                Index& at = cursor[static_cast<std::size_t>(base) + r];
                for (const Index c : t->row(r)) cols[at++] = col_base + c;
            }
        }
    }
    out_ctx.buffer_pool().release(std::move(cursor));
    return Matrix{CsrMatrix::from_raw(nr, part.ncols(), std::move(offsets),
                                      std::move(cols)),
                  out_ctx};
}

/// Stitch per-tile partial column vectors: OR across the grid columns of
/// each grid row, then concatenate the row ranges.
SpVector assemble_column(const Partition& part,
                         const std::vector<std::optional<SpVector>>& partials) {
    const std::size_t gr = part.grid_rows();
    const std::size_t gc = part.grid_cols();
    std::vector<Index> all;
    for (std::size_t i = 0; i < gr; ++i) {
        SpVector acc{part.tile_nrows(i)};
        for (std::size_t j = 0; j < gc; ++j) {
            const auto& p = partials[part.tile_index(i, j)];
            if (!p) continue;
            acc = acc.ewise_or(*p);
        }
        const Index base = part.row_begin(i);
        for (const Index r : acc.indices()) all.push_back(base + r);
    }
    return SpVector::from_indices(part.nrows(), std::move(all));
}

/// A tile pair routes through the broadword kernels when both sides are at
/// (or already in) the bitblock regime — same gate the dispatcher applies
/// globally (storage/thresholds.hpp), evaluated per tile so a dense corner
/// of an otherwise sparse sharded matrix still gets the bit-parallel path.
[[nodiscard]] bool tile_prefers_bitblock(const Matrix& at, const Matrix& bt) noexcept {
    const auto in_regime = [](const Matrix& m) {
        return m.has_format(Format::BitBlocks) ||
               m.density() >= storage::kBitBlockMinDensity;
    };
    return in_regime(at) && in_regime(bt);
}

}  // namespace

Matrix sharded_multiply(backend::Context& out_ctx, const ShardedMatrix& a,
                        const ShardedMatrix& b, const ShardedMatrix* c_in,
                        const ops::SpGemmOptions& opts) {
    SPBLA_REQUIRE(a.ncols() == b.nrows(), Status::DimensionMismatch,
                  "dist::multiply: inner dimensions differ");
    SPBLA_REQUIRE(std::ranges::equal(a.partition().col_splits(), b.partition().row_splits()),
                  Status::DimensionMismatch, "dist::multiply: partitions are not conformal");
    const auto rs = a.partition().row_splits();
    const auto cs = b.partition().col_splits();
    Partition out_part{std::vector<Index>(rs.begin(), rs.end()),
                       std::vector<Index>(cs.begin(), cs.end())};
    if (c_in != nullptr) {
        SPBLA_REQUIRE(c_in->partition() == out_part, Status::DimensionMismatch,
                  "dist::multiply_add: accumulator partition mismatch");
    }

    const std::size_t gc = out_part.grid_cols();
    const std::size_t inner = a.partition().grid_cols();
    const std::size_t n_dev = a.group().size();

    // Input tiles are shared across concurrently executing output tiles; the
    // repr cache synchronises first materialisation per slot, so concurrent
    // bitblocks()/csr() below is safe without prewarming.
    std::vector<std::optional<CsrMatrix>> results(out_part.tiles());
    a.group().run(
        out_part.tiles(), [&](std::size_t t) { return t % n_dev; },
        [&](std::size_t t, std::size_t exec) {
            const std::size_t i = t / gc;
            const std::size_t j = t % gc;
            backend::Context& dev = a.group().device(exec);
            std::optional<CsrMatrix> acc;
            std::optional<BitBlockMatrix> bb_acc;
            if (c_in != nullptr && c_in->tile(i, j).nnz() > 0) {
                note_transfer(c_in->tile(i, j), c_in->owner(i, j), exec);
                acc = c_in->tile(i, j).csr();  // lint:allow(parallel-capture)
            }
            for (std::size_t k = 0; k < inner; ++k) {
                const Matrix& at = a.tile(i, k);
                const Matrix& bt = b.tile(k, j);
                if (at.nnz() == 0 || bt.nnz() == 0) continue;
                note_transfer(at, a.owner(i, k), exec);
                note_transfer(bt, b.owner(k, j), exec);
                if (tile_prefers_bitblock(at, bt)) {
                    BitBlockMatrix p =
                        ops::multiply(dev, at.bitblocks(dev), bt.bitblocks(dev));  // lint:allow(parallel-capture)
                    if (p.nnz() > 0) {
                        bb_acc = bb_acc ? ops::ewise_add(dev, *bb_acc, p) : std::move(p);
                    }
                } else if (acc) {
                    CsrMatrix next =
                        ops::multiply_add(dev, *acc, at.csr(), bt.csr(), opts);  // lint:allow(parallel-capture)
                    // The superseded accumulator's arrays go back to this
                    // device's pool; the next round's product re-draws them.
                    auto [offsets, cols] = std::move(*acc).release_raw();
                    dev.buffer_pool().release(std::move(offsets));
                    dev.buffer_pool().release(std::move(cols));
                    acc = std::move(next);
                } else {
                    acc = ops::multiply(dev, at.csr(), bt.csr(), opts);  // lint:allow(parallel-capture)
                }
            }
            if (bb_acc) {
                CsrMatrix flat = to_csr(dev, *bb_acc);
                acc = acc ? ops::ewise_add(dev, *acc, flat) : std::move(flat);
            }
            if (acc && acc->nnz() > 0) results[t] = std::move(acc);
        });
    return assemble(out_ctx, out_part, results);
}

Matrix sharded_multiply_masked(backend::Context& out_ctx, const ShardedMatrix& mask,
                               const ShardedMatrix& a, const ShardedMatrix& b_transposed,
                               bool complement) {
    SPBLA_REQUIRE(a.ncols() == b_transposed.ncols(), Status::DimensionMismatch,
                  "dist::multiply_masked: inner dimensions differ");
    SPBLA_REQUIRE(mask.nrows() == a.nrows() && mask.ncols() == b_transposed.nrows(), Status::DimensionMismatch,
                  "dist::multiply_masked: mask shape mismatch");
    SPBLA_REQUIRE(
        std::ranges::equal(mask.partition().row_splits(), a.partition().row_splits()) &&
            std::ranges::equal(mask.partition().col_splits(),
                               b_transposed.partition().row_splits()) &&
            std::ranges::equal(a.partition().col_splits(),
                               b_transposed.partition().col_splits()),
        Status::DimensionMismatch, "dist::multiply_masked: partitions are not conformal");

    const Partition& out_part = mask.partition();
    const std::size_t gc = out_part.grid_cols();
    const std::size_t inner = a.partition().grid_cols();
    const std::size_t n_dev = a.group().size();

    // The mask distributes over the OR accumulation in both modes:
    // OR_k (m & X_k) == m & OR_k X_k and OR_k (X_k & ~m) == (OR_k X_k) & ~m,
    // so each (i, k) pair is masked independently and the partials OR up.
    std::vector<std::optional<CsrMatrix>> results(out_part.tiles());
    a.group().run(
        out_part.tiles(), [&](std::size_t t) { return t % n_dev; },
        [&](std::size_t t, std::size_t exec) {
            const std::size_t i = t / gc;
            const std::size_t j = t % gc;
            const Matrix& mt = mask.tile(i, j);
            if (!complement && mt.nnz() == 0) return;
            backend::Context& dev = a.group().device(exec);
            bool read_mask = false;
            std::optional<CsrMatrix> acc;
            for (std::size_t k = 0; k < inner; ++k) {
                const Matrix& at = a.tile(i, k);
                const Matrix& bt = b_transposed.tile(j, k);
                if (at.nnz() == 0 || bt.nnz() == 0) continue;
                note_transfer(at, a.owner(i, k), exec);
                note_transfer(bt, b_transposed.owner(j, k), exec);
                if (!read_mask) {
                    note_transfer(mt, mask.owner(i, j), exec);
                    read_mask = true;
                }
                CsrMatrix part =
                    ops::multiply_masked(dev, mt.csr(), at.csr(), bt.csr(), complement);  // lint:allow(parallel-capture)
                if (part.nnz() == 0) continue;
                acc = acc ? ops::ewise_add(dev, *acc, part) : std::move(part);
            }
            if (acc && acc->nnz() > 0) results[t] = std::move(acc);
        });
    return assemble(out_ctx, out_part, results);
}

namespace {

template <typename TileOp>
Matrix sharded_ewise(backend::Context& out_ctx, const ShardedMatrix& a,
                     const ShardedMatrix& b, bool intersect, TileOp&& tile_op) {
    SPBLA_REQUIRE(a.partition() == b.partition(), Status::DimensionMismatch,
                  "dist::ewise: operands are sharded on different grids");
    const Partition& part = a.partition();
    std::vector<std::optional<CsrMatrix>> results(part.tiles());
    const std::size_t gc = part.grid_cols();
    a.group().run(
        part.tiles(),
        [&](std::size_t t) { return a.owner(t / gc, t % gc); },
        [&](std::size_t t, std::size_t exec) {
            const std::size_t i = t / gc;
            const std::size_t j = t % gc;
            const Matrix& at = a.tile(i, j);
            const Matrix& bt = b.tile(i, j);
            if (intersect && (at.nnz() == 0 || bt.nnz() == 0)) return;
            if (at.nnz() == 0 && bt.nnz() == 0) return;
            note_transfer(at, a.owner(i, j), exec);
            note_transfer(bt, b.owner(i, j), exec);
            CsrMatrix r = tile_op(a.group().device(exec), at, bt);
            if (r.nnz() > 0) results[t] = std::move(r);
        });
    return assemble(out_ctx, part, results);
}

}  // namespace

Matrix sharded_ewise_add(backend::Context& out_ctx, const ShardedMatrix& a,
                         const ShardedMatrix& b) {
    return sharded_ewise(out_ctx, a, b, /*intersect=*/false,
                         [](backend::Context& dev, const Matrix& x, const Matrix& y) {
                             if (tile_prefers_bitblock(x, y)) {
                                 return to_csr(dev, ops::ewise_add(dev, x.bitblocks(dev),
                                                                   y.bitblocks(dev)));
                             }
                             return ops::ewise_add(dev, x.csr(dev), y.csr(dev));
                         });
}

Matrix sharded_ewise_mult(backend::Context& out_ctx, const ShardedMatrix& a,
                          const ShardedMatrix& b) {
    return sharded_ewise(out_ctx, a, b, /*intersect=*/true,
                         [](backend::Context& dev, const Matrix& x, const Matrix& y) {
                             if (tile_prefers_bitblock(x, y)) {
                                 return to_csr(dev, ops::ewise_mult(dev, x.bitblocks(dev),
                                                                    y.bitblocks(dev)));
                             }
                             return ops::ewise_mult(dev, x.csr(dev), y.csr(dev));
                         });
}

Matrix sharded_kronecker(backend::Context& out_ctx, const ShardedMatrix& a,
                         const Matrix& b) {
    // Block (i, j) of A (x) B is tile A(i,j) (x) B: A's grid scales by B's
    // shape and whole-B broadcasts to every device that computes a block.
    const Partition& pa = a.partition();
    std::vector<Index> row_splits(pa.row_splits().begin(), pa.row_splits().end());
    std::vector<Index> col_splits(pa.col_splits().begin(), pa.col_splits().end());
    for (Index& s : row_splits) s *= b.nrows();
    for (Index& s : col_splits) s *= b.ncols();
    Partition out_part{std::move(row_splits), std::move(col_splits)};

    // Materialise B's CSR once, serially, before the parallel region — the
    // tasks then share it read-only.
    const CsrMatrix& bcsr = b.csr(out_ctx);

    const std::size_t n_dev = a.group().size();
    const std::size_t gc = pa.grid_cols();
    auto used = std::make_unique<std::atomic<std::uint32_t>[]>(n_dev);
    for (std::size_t d = 0; d < n_dev; ++d) used[d].store(0, std::memory_order_relaxed);

    std::vector<std::optional<CsrMatrix>> results(pa.tiles());
    a.group().run(
        pa.tiles(),
        [&](std::size_t t) { return a.owner(t / gc, t % gc); },
        [&](std::size_t t, std::size_t exec) {
            const std::size_t i = t / gc;
            const std::size_t j = t % gc;
            const Matrix& at = a.tile(i, j);
            if (at.nnz() == 0 || b.nnz() == 0) return;
            note_transfer(at, a.owner(i, j), exec);
            used[exec].store(1, std::memory_order_relaxed);
            CsrMatrix r = ops::kronecker(a.group().device(exec), at.csr(), bcsr);  // lint:allow(parallel-capture)
            if (r.nnz() > 0) results[t] = std::move(r);
        });

    // Charge the B broadcast: one copy per participating device beyond the
    // first (the host seeds one device for free).
    std::size_t participants = 0;
    for (std::size_t d = 0; d < n_dev; ++d)
        participants += used[d].load(std::memory_order_relaxed);
    if (participants > 1 && b.nnz() > 0) {
        const std::size_t copies = participants - 1;
        const std::size_t bytes = copies * bcsr.device_bytes();
        stats().tile_transfers.fetch_add(copies, std::memory_order_relaxed);
        stats().transfer_bytes.fetch_add(bytes, std::memory_order_relaxed);
        SPBLA_PROF_COUNT(dist_transfers, copies);
        SPBLA_PROF_COUNT(dist_transfer_bytes, bytes);
    }
    return assemble(out_ctx, out_part, results);
}

Matrix sharded_transpose(backend::Context& out_ctx, const ShardedMatrix& a) {
    const Partition& pa = a.partition();
    Partition out_part = pa.transposed();
    const std::size_t gc = pa.grid_cols();

    std::vector<std::optional<CsrMatrix>> results(out_part.tiles());
    a.group().run(
        pa.tiles(),
        [&](std::size_t t) { return a.owner(t / gc, t % gc); },
        [&](std::size_t t, std::size_t exec) {
            const std::size_t i = t / gc;
            const std::size_t j = t % gc;
            const Matrix& at = a.tile(i, j);
            if (at.nnz() == 0) return;
            note_transfer(at, a.owner(i, j), exec);
            // Tile (i, j) transposed lands at grid cell (j, i) of the
            // transposed partition.
            results[out_part.tile_index(j, i)] =
                ops::transpose(a.group().device(exec), at.csr());  // lint:allow(parallel-capture)
        });
    return assemble(out_ctx, out_part, results);
}

SpVector sharded_reduce_to_column(backend::Context& /*out_ctx*/, const ShardedMatrix& a) {
    const Partition& pa = a.partition();
    const std::size_t gc = pa.grid_cols();
    std::vector<std::optional<SpVector>> partials(pa.tiles());
    a.group().run(
        pa.tiles(),
        [&](std::size_t t) { return a.owner(t / gc, t % gc); },
        [&](std::size_t t, std::size_t exec) {
            const std::size_t i = t / gc;
            const std::size_t j = t % gc;
            const Matrix& at = a.tile(i, j);
            if (at.nnz() == 0) return;
            note_transfer(at, a.owner(i, j), exec);
            partials[t] = ops::reduce_to_column(a.group().device(exec), at.csr());  // lint:allow(parallel-capture)
        });
    return assemble_column(pa, partials);
}

SpVector sharded_mxv(backend::Context& /*out_ctx*/, const ShardedMatrix& a,
                     const SpVector& x) {
    SPBLA_REQUIRE(x.size() == a.ncols(), Status::DimensionMismatch,
                  "dist::mxv: vector size mismatch");
    const Partition& pa = a.partition();
    const std::size_t gc = pa.grid_cols();

    // Slice x per grid column, rebased to tile-local indices (x's index list
    // is sorted, so each slice is a contiguous range of it).
    std::vector<SpVector> slices;
    slices.reserve(gc);
    const std::span<const Index> xi = x.indices();
    for (std::size_t j = 0; j < gc; ++j) {
        const Index lo = pa.col_begin(j);
        const Index hi = lo + pa.tile_ncols(j);
        const auto first = std::lower_bound(xi.begin(), xi.end(), lo);
        const auto last = std::lower_bound(first, xi.end(), hi);
        std::vector<Index> local;
        local.reserve(static_cast<std::size_t>(last - first));
        for (auto it = first; it != last; ++it) local.push_back(*it - lo);
        slices.push_back(SpVector::from_indices(pa.tile_ncols(j), std::move(local)));
    }

    std::vector<std::optional<SpVector>> partials(pa.tiles());
    a.group().run(
        pa.tiles(),
        [&](std::size_t t) { return a.owner(t / gc, t % gc); },
        [&](std::size_t t, std::size_t exec) {
            const std::size_t i = t / gc;
            const std::size_t j = t % gc;
            const Matrix& at = a.tile(i, j);
            if (at.nnz() == 0 || slices[j].nnz() == 0) return;
            note_transfer(at, a.owner(i, j), exec);
            partials[t] = ops::mxv(a.group().device(exec), at.csr(), slices[j]);  // lint:allow(parallel-capture)
        });
    return assemble_column(pa, partials);
}

}  // namespace spbla::dist
