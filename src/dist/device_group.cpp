/// \file device_group.cpp
/// \brief Device construction and the stealing tile scheduler.

#include "dist/device_group.hpp"

#include <algorithm>

#include "dist/dist.hpp"
#include "prof/prof.hpp"
#include "telemetry/metrics.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace spbla::dist {

DeviceGroup::DeviceGroup(std::size_t n_devices, std::size_t threads_per_device) {
    const std::size_t n = std::max<std::size_t>(n_devices, 1);
    devices_.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
        // A device with one lane computes on the driver thread that serves
        // it (Sequential context, no idle pool thread); more lanes get a
        // dedicated pool the kernels' parallel_for launches onto.
        if (threads_per_device <= 1) {
            devices_.push_back(
                std::make_unique<backend::Context>(backend::Policy::Sequential));
        } else {
            devices_.push_back(std::make_unique<backend::Context>(
                backend::Policy::Parallel, threads_per_device));
        }
    }
    busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t d = 0; d < n; ++d) busy_ns_[d].store(0, std::memory_order_relaxed);
    if (n > 1) driver_ = std::make_unique<util::ThreadPool>(n);
}

void DeviceGroup::run(std::size_t n_tasks,
                      const std::function<std::size_t(std::size_t)>& owner,
                      const std::function<void(std::size_t, std::size_t)>& body) {
    if (n_tasks == 0) return;
    const std::size_t n_dev = size();

    // Per-device FIFO of task indices with an atomic claim cursor: the
    // device-granular analog of the pool's ticket scheduler. A cursor racing
    // past the queue end is harmless — the claimer just moves on.
    struct Queue {
        std::vector<std::size_t> tasks;
        std::atomic<std::size_t> head{0};
    };
    std::vector<Queue> queues(n_dev);
    for (std::size_t t = 0; t < n_tasks; ++t) {
        const std::size_t d = owner(t);
        SPBLA_ASSERT(d < n_dev, "DeviceGroup::run: owner out of range");
        queues[d].tasks.push_back(t);
    }

    auto serve = [&](std::size_t d) {
        auto execute = [&](std::size_t task, bool stolen) {
            // Charge thread CPU time, not wall time: driver threads are
            // multiplexed onto however many physical cores the host has, so
            // wall time would bill preemption gaps as device work and the
            // strong-scaling makespan model would read flat. Hosts without a
            // per-thread clock fall back to the wall stopwatch.
            const std::uint64_t cpu0 = util::thread_cpu_ns();
            util::Timer timer;
            body(task, d);
            const std::uint64_t cpu1 = util::thread_cpu_ns();
            busy_ns_[d].fetch_add(
                cpu1 > cpu0 ? cpu1 - cpu0
                            : static_cast<std::uint64_t>(timer.seconds() * 1e9),
                std::memory_order_relaxed);
            stats().tiles_processed.fetch_add(1, std::memory_order_relaxed);
            SPBLA_PROF_COUNT(dist_tiles, 1);
            telemetry::count(telemetry::Counter::DistTilesProcessed);
            if (stolen) {
                stats().tile_steals.fetch_add(1, std::memory_order_relaxed);
                SPBLA_PROF_COUNT(dist_steals, 1);
                telemetry::count(telemetry::Counter::DistTileSteals);
            }
        };
        auto& own = queues[d];
        for (;;) {
            const std::size_t i = own.head.fetch_add(1, std::memory_order_relaxed);
            if (i >= own.tasks.size()) break;
            execute(own.tasks[i], false);
        }
        for (std::size_t off = 1; off < n_dev; ++off) {
            auto& victim = queues[(d + off) % n_dev];
            for (;;) {
                const std::size_t i =
                    victim.head.fetch_add(1, std::memory_order_relaxed);
                if (i >= victim.tasks.size()) break;
                execute(victim.tasks[i], true);
            }
        }
    };

    if (driver_ == nullptr) {
        serve(0);
        return;
    }
    driver_->run_dynamic(n_dev, serve);
}

std::vector<std::uint64_t> DeviceGroup::busy_ns() const {
    std::vector<std::uint64_t> out(size());
    for (std::size_t d = 0; d < size(); ++d)
        out[d] = busy_ns_[d].load(std::memory_order_relaxed);
    return out;
}

bool DeviceGroup::balanced() const noexcept {
    for (const auto& dev : devices_) {
        if (!dev->tracker().balanced()) return false;
    }
    return true;
}

std::string DeviceGroup::leak_report() const {
    std::string report;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (devices_[d]->tracker().balanced()) continue;
        report += "device " + std::to_string(d) + ": " +
                  devices_[d]->tracker().leak_report() + "\n";
    }
    return report;
}

}  // namespace spbla::dist
