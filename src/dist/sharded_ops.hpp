/// \file sharded_ops.hpp
/// \brief Tile-level sharded kernels over ShardedMatrix operands.
///
/// Each kernel launches one task per output tile through the group's
/// stealing scheduler; a task runs the single-device CSR kernel of its tiles
/// on the executing device's context and charges any non-resident input tile
/// it reads to the dist transfer counters. Results assemble directly into a
/// single CSR (no sort) bound to \p out_ctx.
///
/// Private to src/dist/ (lint `format-leak`); the Matrix-level entry points
/// in dist/dist.hpp shard, call these and gather.
#pragma once

#include "dist/sharded_matrix.hpp"
#include "ops/spgemm.hpp"

namespace spbla::dist {

/// C = A x B (SUMMA over matching inner splits); with \p c_in, C |= c_in.
[[nodiscard]] Matrix sharded_multiply(backend::Context& out_ctx, const ShardedMatrix& a,
                                      const ShardedMatrix& b,
                                      const ShardedMatrix* c_in = nullptr,
                                      const ops::SpGemmOptions& opts = {});

/// C = (A x B) filtered by \p mask's structure (complement: excluded by it).
/// \p b_transposed is B^T sharded with row splits = mask's column splits.
[[nodiscard]] Matrix sharded_multiply_masked(backend::Context& out_ctx,
                                             const ShardedMatrix& mask,
                                             const ShardedMatrix& a,
                                             const ShardedMatrix& b_transposed,
                                             bool complement = false);

/// C = A | B / C = A & B over identical partitions.
[[nodiscard]] Matrix sharded_ewise_add(backend::Context& out_ctx, const ShardedMatrix& a,
                                       const ShardedMatrix& b);
[[nodiscard]] Matrix sharded_ewise_mult(backend::Context& out_ctx, const ShardedMatrix& a,
                                        const ShardedMatrix& b);

/// K = A (x) B: block (i, j) of K is tile A(i,j) (x) B, so only A shards; B
/// broadcasts to every participating device (counted as transfers).
[[nodiscard]] Matrix sharded_kronecker(backend::Context& out_ctx, const ShardedMatrix& a,
                                       const Matrix& b);

/// C = A^T, tile-local (transposed tile lands at the transposed grid cell).
[[nodiscard]] Matrix sharded_transpose(backend::Context& out_ctx, const ShardedMatrix& a);

/// V = reduceToColumn(A): per-tile reduce, OR across each tile row.
[[nodiscard]] SpVector sharded_reduce_to_column(backend::Context& out_ctx,
                                                const ShardedMatrix& a);

/// y = A x: per-tile mxv against the matching slice of x, OR across tiles.
[[nodiscard]] SpVector sharded_mxv(backend::Context& out_ctx, const ShardedMatrix& a,
                                   const SpVector& x);

}  // namespace spbla::dist
