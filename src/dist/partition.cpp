/// \file partition.cpp
/// \brief Split-array construction and the grid-size heuristic.

#include "dist/partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace spbla::dist {

namespace {

std::vector<Index> uniform_splits(Index extent, std::size_t parts) {
    std::vector<Index> splits;
    splits.reserve(parts + 1);
    const Index base = parts > 0 ? extent / static_cast<Index>(parts) : 0;
    const Index rem = parts > 0 ? extent % static_cast<Index>(parts) : 0;
    Index at = 0;
    splits.push_back(at);
    for (std::size_t p = 0; p < parts; ++p) {
        at += base + (p < rem ? 1 : 0);
        splits.push_back(at);
    }
    return splits;
}

std::size_t locate(std::span<const Index> splits, Index x) noexcept {
    // First split strictly greater than x, minus one: the owning interval.
    // Empty intervals share a boundary; upper_bound lands past all of them.
    const auto it = std::upper_bound(splits.begin(), splits.end(), x);
    return static_cast<std::size_t>(it - splits.begin()) - 1;
}

}  // namespace

Partition::Partition(std::vector<Index> row_splits, std::vector<Index> col_splits)
    : row_splits_{std::move(row_splits)}, col_splits_{std::move(col_splits)} {
    SPBLA_REQUIRE(row_splits_.size() >= 2 && col_splits_.size() >= 2, Status::InvalidArgument,
                  "Partition: splits need at least one tile per axis");
    SPBLA_REQUIRE(row_splits_.front() == 0 && col_splits_.front() == 0, Status::InvalidArgument,
                  "Partition: splits must start at 0");
    SPBLA_REQUIRE(std::is_sorted(row_splits_.begin(), row_splits_.end()) &&
                      std::is_sorted(col_splits_.begin(), col_splits_.end()),
                  Status::InvalidArgument, "Partition: splits must be non-decreasing");
}

Partition Partition::uniform(Index nrows, Index ncols, std::size_t grid_rows,
                             std::size_t grid_cols) {
    SPBLA_REQUIRE(grid_rows > 0 && grid_cols > 0, Status::InvalidArgument,
                  "Partition: grid must be non-empty");
    return Partition{uniform_splits(nrows, grid_rows), uniform_splits(ncols, grid_cols)};
}

std::size_t Partition::tile_of_row(Index r) const noexcept {
    return locate(row_splits_, r);
}

std::size_t Partition::tile_of_col(Index c) const noexcept {
    return locate(col_splits_, c);
}

Partition choose_partition(Index nrows, Index ncols, std::size_t nnz,
                           std::size_t n_devices, std::size_t tile_budget_bytes) {
    // A CSR tile of an r x c block with k entries costs ~(r + 1 + k) indices;
    // size the grid so an average tile fits the budget, with at least one
    // tile per device so no simulated device sits idle.
    const std::size_t matrix_bytes =
        (static_cast<std::size_t>(nrows) + nnz) * sizeof(Index);
    const std::size_t budget = std::max<std::size_t>(tile_budget_bytes, 1);
    const std::size_t by_budget = (matrix_bytes + budget - 1) / budget;
    const std::size_t target_tiles =
        std::max<std::size_t>({by_budget, n_devices, 1});
    auto side = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(target_tiles))));
    side = std::max<std::size_t>(side, 1);
    const std::size_t grid_rows =
        std::min<std::size_t>(side, std::max<Index>(nrows, 1));
    const std::size_t grid_cols =
        std::min<std::size_t>(side, std::max<Index>(ncols, 1));
    if (nrows == ncols) {
        // Identical splits on both axes: A x A reuses one sharding for both
        // operands and the SUMMA inner splits line up for free.
        const std::size_t g = std::min(grid_rows, grid_cols);
        return Partition::uniform(nrows, ncols, g, g);
    }
    return Partition::uniform(nrows, ncols, grid_rows, grid_cols);
}

}  // namespace spbla::dist
