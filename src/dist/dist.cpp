/// \file dist.cpp
/// \brief Engine state (group + version-keyed shard cache), routing hints and
///        the Matrix-level sharded operations behind storage::DistBridge.

#include "dist/dist.hpp"

#include <algorithm>
#include <memory>
#include <ranges>
#include <utility>
#include <vector>

#include "dist/device_group.hpp"
#include "dist/partition.hpp"
#include "dist/sharded_matrix.hpp"
#include "dist/sharded_ops.hpp"
#include "prof/prof.hpp"
#include "telemetry/metrics.hpp"
#include "storage/dispatch.hpp"
#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace spbla::dist {

namespace {

/// Shardings cached by the source handle's content version so fixpoint
/// drivers reuse tiles across iterations; a mutated handle carries a new
/// version and misses (the invalidation-epoch contract). Small FIFO —
/// fixpoints juggle a handful of live matrices.
constexpr std::size_t kShardCacheCap = 16;

struct Engine {
    util::Mutex mutex;  // guards cfg/grp/cache structure, not tile compute
    Config cfg SPBLA_GUARDED_BY(mutex){};
    bool routing_enabled SPBLA_GUARDED_BY(mutex){false};
    // Member order matters: cache entries hold tiles bound to grp's device
    // contexts, so cache (declared later) must destruct before grp.
    std::unique_ptr<DeviceGroup> grp SPBLA_GUARDED_BY(mutex);
    struct CacheEntry {
        std::uint64_t version;
        std::shared_ptr<const ShardedMatrix> shard;
    };
    std::vector<CacheEntry> cache SPBLA_GUARDED_BY(mutex);
};

Engine& engine() {
    static Engine e;
    return e;
}

thread_local Hint tl_hint = Hint::Auto;

DeviceGroup& group_locked(Engine& e) SPBLA_REQUIRES(e.mutex) {
    if (!e.grp) {
        e.grp = std::make_unique<DeviceGroup>(e.cfg.devices, e.cfg.threads_per_device);
    }
    return *e.grp;
}

/// Partition \p m per the active config: explicit grid knobs when set, else
/// the nnz/budget heuristic (square matrices get identical splits both ways,
/// so both sides of A x A share one sharding).
Partition plan(const Matrix& m) {
    Engine& e = engine();
    std::size_t devices;
    Config cfg;
    {
        const util::LockGuard lock{e.mutex};
        cfg = e.cfg;
        devices = group_locked(e).size();
    }
    if (cfg.grid_rows > 0 && cfg.grid_cols > 0) {
        return Partition::uniform(m.nrows(), m.ncols(), cfg.grid_rows, cfg.grid_cols);
    }
    return choose_partition(m.nrows(), m.ncols(), m.nnz(), devices,
                            cfg.tile_budget_bytes);
}

Partition with_splits(std::span<const Index> row_splits, std::span<const Index> col_splits) {
    return Partition{std::vector<Index>(row_splits.begin(), row_splits.end()),
                     std::vector<Index>(col_splits.begin(), col_splits.end())};
}

/// Shard \p m on \p part, reusing a cached sharding when the handle's
/// content version and the partition both match. Version 0 (moved-from)
/// never caches.
std::shared_ptr<const ShardedMatrix> get_shard(const Matrix& m, const Partition& part) {
    Engine& e = engine();
    const std::uint64_t v = m.version();
    DeviceGroup* grp = nullptr;
    Placement placement{};
    {
        const util::LockGuard lock{e.mutex};
        grp = &group_locked(e);
        placement = e.cfg.placement;
        if (v != 0) {
            for (const Engine::CacheEntry& entry : e.cache) {
                if (entry.version == v && entry.shard->partition() == part) {
                    stats().shard_cache_hits.fetch_add(1, std::memory_order_relaxed);
                    SPBLA_PROF_COUNT(dist_shard_hits, 1);
                    telemetry::count(telemetry::Counter::DistShardCacheHits);
                    return entry.shard;
                }
            }
        }
    }
    // Build outside the lock: scatter runs through the group scheduler. The
    // placement policy was copied under the lock above — re-reading
    // engine().cfg here would race with a concurrent configure().
    auto shard = std::make_shared<const ShardedMatrix>(*grp, m, part, placement);
    stats().shard_builds.fetch_add(1, std::memory_order_relaxed);
    SPBLA_PROF_COUNT(dist_shard_builds, 1);
    telemetry::count(telemetry::Counter::DistShardBuilds);
    if (v != 0) {
        const util::LockGuard lock{e.mutex};
        if (e.cache.size() >= kShardCacheCap) e.cache.erase(e.cache.begin());
        e.cache.push_back(Engine::CacheEntry{v, shard});
    }
    return shard;
}

void count_op() {
    stats().sharded_ops.fetch_add(1, std::memory_order_relaxed);
    SPBLA_PROF_COUNT(dist_sharded_ops, 1);
    telemetry::count(telemetry::Counter::DistShardedOps);
}

bool should_shard(std::initializer_list<const Matrix*> operands) {
    switch (tl_hint) {
        case Hint::ForceShard: return true;
        case Hint::ForceLocal: return false;
        case Hint::Auto: break;
    }
    Engine& e = engine();
    Config cfg;
    {
        const util::LockGuard lock{e.mutex};
        if (!e.routing_enabled) return false;
        cfg = e.cfg;
    }
    Index max_dim = 0;
    std::size_t nnz_sum = 0;
    for (const Matrix* m : operands) {
        max_dim = std::max({max_dim, m->nrows(), m->ncols()});
        nnz_sum += m->nnz();
    }
    return max_dim >= cfg.min_dim && nnz_sum >= cfg.min_nnz;
}

const storage::DistBridge& bridge() {
    static const storage::DistBridge b{
        &should_shard,  &multiply,  &multiply_add, &multiply_masked, &ewise_add,
        &ewise_mult,    &kronecker, &transpose,    &reduce_to_column, &mxv,
    };
    return b;
}

}  // namespace

Stats& stats() noexcept {
    static Stats s;
    return s;
}

void reset_stats() noexcept {
    Stats& s = stats();
    s.sharded_ops.store(0, std::memory_order_relaxed);
    s.shard_builds.store(0, std::memory_order_relaxed);
    s.shard_cache_hits.store(0, std::memory_order_relaxed);
    s.tiles_processed.store(0, std::memory_order_relaxed);
    s.tile_steals.store(0, std::memory_order_relaxed);
    s.tile_transfers.store(0, std::memory_order_relaxed);
    s.transfer_bytes.store(0, std::memory_order_relaxed);
}

void configure(const Config& cfg) {
    SPBLA_REQUIRE(cfg.devices >= 1, Status::InvalidArgument,
                  "dist::configure: need at least one device");
    Engine& e = engine();
    {
        const util::LockGuard lock{e.mutex};
        e.cache.clear();  // tiles reference the old group's contexts
        e.grp.reset();
        e.cfg = cfg;
        e.grp = std::make_unique<DeviceGroup>(cfg.devices, cfg.threads_per_device);
        e.routing_enabled = true;
    }
    storage::set_dist_bridge(&bridge());
}

void disable() {
    Engine& e = engine();
    storage::set_dist_bridge(nullptr);
    const util::LockGuard lock{e.mutex};
    e.routing_enabled = false;
    e.cache.clear();
    e.grp.reset();
}

bool enabled() noexcept {
    Engine& e = engine();
    const util::LockGuard lock{e.mutex};
    return e.routing_enabled;
}

Config config() noexcept {
    Engine& e = engine();
    const util::LockGuard lock{e.mutex};
    return e.cfg;
}

DeviceGroup& group() {
    Engine& e = engine();
    const util::LockGuard lock{e.mutex};
    return group_locked(e);
}

Hint thread_hint() noexcept { return tl_hint; }
void set_thread_hint(Hint hint) noexcept { tl_hint = hint; }

ScopedHint::ScopedHint(Hint hint) : prev_{thread_hint()} {
    set_thread_hint(hint);
    if (hint == Hint::ForceShard) {
        // Make the forced route live even without a prior configure(): the
        // default-config group lazily builds and the bridge installs (with
        // routing_enabled still false, so Auto threads stay unrouted).
        (void)group();
        storage::set_dist_bridge(&bridge());
    }
}

Matrix multiply(backend::Context& ctx, const Matrix& a, const Matrix& b,
                const ops::SpGemmOptions& opts) {
    SPBLA_PROF_SPAN("dist.multiply");
    count_op();
    const Partition pa = plan(a);
    Partition pb = plan(b);
    // SUMMA needs B's row splits equal to A's column splits.
    if (!std::ranges::equal(pb.row_splits(), pa.col_splits())) {
        pb = with_splits(pa.col_splits(), pb.col_splits());
    }
    const auto sa = get_shard(a, pa);
    const auto sb = get_shard(b, pb);
    return sharded_multiply(ctx, *sa, *sb, nullptr, opts);
}

Matrix multiply_add(backend::Context& ctx, const Matrix& c, const Matrix& a,
                    const Matrix& b, const ops::SpGemmOptions& opts) {
    SPBLA_PROF_SPAN("dist.multiply_add");
    count_op();
    const Partition pa = plan(a);
    Partition pb = plan(b);
    if (!std::ranges::equal(pb.row_splits(), pa.col_splits())) {
        pb = with_splits(pa.col_splits(), pb.col_splits());
    }
    const Partition pc = with_splits(pa.row_splits(), pb.col_splits());
    const auto sa = get_shard(a, pa);
    const auto sb = get_shard(b, pb);
    const auto sc = get_shard(c, pc);
    return sharded_multiply(ctx, *sa, *sb, sc.get(), opts);
}

Matrix multiply_masked(backend::Context& ctx, const Matrix& mask, const Matrix& a,
                       const Matrix& b_transposed, bool complement) {
    SPBLA_PROF_SPAN("dist.multiply_masked");
    count_op();
    const Partition pm = plan(mask);
    const Partition pa = with_splits(pm.row_splits(), plan(a).col_splits());
    const Partition pbt = with_splits(pm.col_splits(), pa.col_splits());
    const auto sm = get_shard(mask, pm);
    const auto sa = get_shard(a, pa);
    const auto sbt = get_shard(b_transposed, pbt);
    return sharded_multiply_masked(ctx, *sm, *sa, *sbt, complement);
}

Matrix ewise_add(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    SPBLA_PROF_SPAN("dist.ewise_add");
    count_op();
    const Partition p = plan(a);
    const auto sa = get_shard(a, p);
    const auto sb = get_shard(b, p);
    return sharded_ewise_add(ctx, *sa, *sb);
}

Matrix ewise_mult(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    SPBLA_PROF_SPAN("dist.ewise_mult");
    count_op();
    const Partition p = plan(a);
    const auto sa = get_shard(a, p);
    const auto sb = get_shard(b, p);
    return sharded_ewise_mult(ctx, *sa, *sb);
}

Matrix kronecker(backend::Context& ctx, const Matrix& a, const Matrix& b) {
    SPBLA_PROF_SPAN("dist.kronecker");
    count_op();
    const auto sa = get_shard(a, plan(a));
    return sharded_kronecker(ctx, *sa, b);
}

Matrix transpose(backend::Context& ctx, const Matrix& a) {
    SPBLA_PROF_SPAN("dist.transpose");
    count_op();
    const auto sa = get_shard(a, plan(a));
    return sharded_transpose(ctx, *sa);
}

SpVector reduce_to_column(backend::Context& ctx, const Matrix& a) {
    SPBLA_PROF_SPAN("dist.reduce_to_column");
    count_op();
    const auto sa = get_shard(a, plan(a));
    return sharded_reduce_to_column(ctx, *sa);
}

SpVector mxv(backend::Context& ctx, const Matrix& a, const SpVector& x) {
    SPBLA_PROF_SPAN("dist.mxv");
    count_op();
    const auto sa = get_shard(a, plan(a));
    return sharded_mxv(ctx, *sa, x);
}

}  // namespace spbla::dist
