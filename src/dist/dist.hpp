/// \file dist.hpp
/// \brief Public surface of the block-sharded multi-device execution layer.
///
/// The ROADMAP north star asks for scaling past one simulated device. This
/// layer 2D block-partitions Boolean matrices into storage::Matrix tiles
/// (dist/sharded_matrix.hpp), places them across a DeviceGroup of N virtual
/// devices and runs the hot ops tile-wise with cross-device overlap —
/// SUMMA-style blocked multiply (Karppa & Kaski), GraphBLAST-style masked
/// and element-wise variants, kronecker, transpose, reduce and mxv.
///
/// Routing is transparent: after dist::configure(), storage/dispatch routes
/// any op whose operands cross the size/nnz thresholds through the sharded
/// kernels (DistBridge), so the closure/CFPQ/RPQ fixpoint drivers scale with
/// no source changes. dist::ScopedHint forces the route per scope either
/// way. Inter-device tile traffic is charged to dist::stats() and mirrored
/// into spbla::prof counters (dist_* families in the Chrome trace).
///
/// Everything below operates on the format-polymorphic spbla::Matrix; the
/// concrete-tile headers (partition/device_group/sharded_matrix/sharded_ops)
/// stay private to src/dist/ — the lint `format-leak` rule enforces it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "backend/context.hpp"
#include "core/spvector.hpp"
#include "ops/spgemm.hpp"
#include "storage/matrix.hpp"

namespace spbla::dist {

class DeviceGroup;

/// Process-wide sharded-execution counters. Always compiled (relaxed
/// atomics), mirrored into spbla::prof as the dist_* counter family.
struct Stats {
    std::atomic<std::uint64_t> sharded_ops{0};      ///< ops executed sharded
    std::atomic<std::uint64_t> shard_builds{0};     ///< shardings materialised
    std::atomic<std::uint64_t> shard_cache_hits{0}; ///< shardings reused by version
    std::atomic<std::uint64_t> tiles_processed{0};  ///< tile tasks executed
    std::atomic<std::uint64_t> tile_steals{0};      ///< tasks run off-owner queue
    std::atomic<std::uint64_t> tile_transfers{0};   ///< non-resident tile reads
    std::atomic<std::uint64_t> transfer_bytes{0};   ///< bytes moved between devices
};

[[nodiscard]] Stats& stats() noexcept;

/// Zero every dist counter.
void reset_stats() noexcept;

/// Tile-placement policy of a sharding.
enum class Placement : std::uint8_t {
    RoundRobin = 0,    ///< flat tile index modulo device count
    LoadBalanced = 1,  ///< heaviest-first greedy onto the least-loaded device
};

/// Grid/device knobs (the spbla_DistConfigure surface).
struct Config {
    std::size_t devices = 4;            ///< simulated devices in the group
    std::size_t threads_per_device = 1; ///< pool workers per device (<=1: one lane)
    std::size_t grid_rows = 0;          ///< 0 = auto from nnz + tile budget
    std::size_t grid_cols = 0;          ///< 0 = auto from nnz + tile budget
    std::size_t tile_budget_bytes = std::size_t{8} << 20;  ///< per-tile CSR cap
    std::size_t min_nnz = std::size_t{1} << 15;  ///< auto-route: combined operand nnz
    Index min_dim = 256;                         ///< auto-route: largest dimension
    Placement placement = Placement::LoadBalanced;
};

/// (Re)build the device group with \p cfg and enable transparent routing of
/// above-threshold ops through the sharded kernels. Rebuilding tears the old
/// group down (dropping every cached sharding) — do not call concurrently
/// with in-flight operations.
void configure(const Config& cfg);

/// Tear the group down and stop routing (the state at process start).
void disable();

/// True iff configure() enabled transparent routing.
[[nodiscard]] bool enabled() noexcept;

/// A snapshot of the active configuration (meaningful after configure()).
/// By value: the engine's copy is lock-guarded and may be replaced by a
/// concurrent configure().
[[nodiscard]] Config config() noexcept;

/// The active device group; lazily builds one from the default Config so
/// ScopedHint{ForceShard} works without a prior configure().
[[nodiscard]] DeviceGroup& group();

/// Per-thread routing override consulted before the Config thresholds.
enum class Hint : std::uint8_t {
    Auto = 0,        ///< thresholds decide
    ForceShard = 1,  ///< every routed op executes sharded
    ForceLocal = 2,  ///< never shard (single-device dispatch)
};

[[nodiscard]] Hint thread_hint() noexcept;
void set_thread_hint(Hint hint) noexcept;

/// RAII thread-local hint override (mirrors storage::ScopedHint).
class ScopedHint {
public:
    explicit ScopedHint(Hint hint);
    ~ScopedHint() { set_thread_hint(prev_); }
    ScopedHint(const ScopedHint&) = delete;
    ScopedHint& operator=(const ScopedHint&) = delete;

private:
    Hint prev_;
};

// ---- Matrix-level sharded operations (the DistBridge targets) -------------
// Operands are sharded against the active group — shardings are cached by
// the handle's content version (storage::Matrix::version()), so a mutated
// matrix is re-sharded while fixpoint iterates reuse their tiles — computed
// tile-wise across the devices, and the result is gathered on \p ctx.

[[nodiscard]] Matrix multiply(backend::Context& ctx, const Matrix& a, const Matrix& b,
                              const ops::SpGemmOptions& opts = {});
[[nodiscard]] Matrix multiply_add(backend::Context& ctx, const Matrix& c, const Matrix& a,
                                  const Matrix& b, const ops::SpGemmOptions& opts = {});
[[nodiscard]] Matrix multiply_masked(backend::Context& ctx, const Matrix& mask,
                                     const Matrix& a, const Matrix& b_transposed,
                                     bool complement = false);
[[nodiscard]] Matrix ewise_add(backend::Context& ctx, const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix ewise_mult(backend::Context& ctx, const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix kronecker(backend::Context& ctx, const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix transpose(backend::Context& ctx, const Matrix& a);
[[nodiscard]] SpVector reduce_to_column(backend::Context& ctx, const Matrix& a);
[[nodiscard]] SpVector mxv(backend::Context& ctx, const Matrix& a, const SpVector& x);

}  // namespace spbla::dist
