/// \file sharded_matrix.cpp
/// \brief Scatter (shard build), placement and gather.

#include "dist/sharded_matrix.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/csr.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::dist {

namespace {

/// Assign tiles to devices: round-robin over the flat index, or greedy
/// heaviest-first onto the least-loaded device (LPT). Both deterministic.
std::vector<std::size_t> place(const std::vector<std::size_t>& tile_weights,
                               std::size_t n_devices, Placement placement) {
    const std::size_t n = tile_weights.size();
    std::vector<std::size_t> owners(n, 0);
    if (n_devices <= 1) return owners;
    if (placement == Placement::RoundRobin) {
        for (std::size_t t = 0; t < n; ++t) owners[t] = t % n_devices;
        return owners;
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return tile_weights[a] > tile_weights[b];
    });
    std::vector<std::size_t> load(n_devices, 0);
    for (const std::size_t t : order) {
        const auto lightest = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        owners[t] = lightest;
        load[lightest] += tile_weights[t] + 1;  // +1 keeps empty tiles spread
    }
    return owners;
}

}  // namespace

ShardedMatrix::ShardedMatrix(DeviceGroup& group, const Matrix& source, Partition part,
                             Placement placement)
    : group_{&group},
      part_{std::move(part)},
      nnz_{source.nnz()},
      source_version_{source.version()} {
    SPBLA_REQUIRE(part_.nrows() == source.nrows() && part_.ncols() == source.ncols(), Status::DimensionMismatch,
                  "ShardedMatrix: partition does not cover the source shape");
    SPBLA_PROF_SPAN("dist.shard_build");

    // Bucket the coordinate list per tile, rebasing to tile-local indices.
    // Coords arrive (row, col)-sorted, so each bucket stays sorted too.
    const std::size_t n_tiles = part_.tiles();
    std::vector<std::vector<Coord>> buckets(n_tiles);
    for (const Coord& c : source.to_coords()) {
        const std::size_t i = part_.tile_of_row(c.row);
        const std::size_t j = part_.tile_of_col(c.col);
        buckets[part_.tile_index(i, j)].push_back(
            Coord{c.row - part_.row_begin(i), c.col - part_.col_begin(j)});
    }

    std::vector<std::size_t> weights(n_tiles);
    for (std::size_t t = 0; t < n_tiles; ++t) weights[t] = buckets[t].size();
    owners_ = place(weights, group_->size(), placement);

    // Build the tiles through the group scheduler: the simulated upload runs
    // on (and is accounted to) each tile's owner device.
    tiles_.resize(n_tiles);
    const std::size_t grid_cols = part_.grid_cols();
    group_->run(
        n_tiles, [&](std::size_t t) { return owners_[t]; },
        [&](std::size_t t, std::size_t /*exec_device*/) {
            const std::size_t i = t / grid_cols;
            const std::size_t j = t % grid_cols;
            tiles_[t] = Matrix{CsrMatrix::from_coords(part_.tile_nrows(i),
                                                      part_.tile_ncols(j),
                                                      std::move(buckets[t])),
                               group_->device(owners_[t])};
        });
}

Matrix ShardedMatrix::gather(backend::Context& ctx) const {
    SPBLA_PROF_SPAN("dist.gather");
    const std::size_t gr = part_.grid_rows();
    const std::size_t gc = part_.grid_cols();
    const Index nr = nrows();
    const Index nc = ncols();

    // Tile rows are disjoint row ranges and tile columns ascend left to
    // right, so the global CSR assembles by concatenating each global row's
    // tile rows in grid order — no sort, O(nnz + nrows).
    std::vector<Index> offsets(static_cast<std::size_t>(nr) + 1, 0);
    for (std::size_t i = 0; i < gr; ++i) {
        const Index base = part_.row_begin(i);
        for (std::size_t j = 0; j < gc; ++j) {
            const CsrMatrix& t = tile(i, j).csr();
            for (Index r = 0; r < t.nrows(); ++r)
                offsets[static_cast<std::size_t>(base) + r + 1] += t.row_nnz(r);
        }
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nr); ++r)
        offsets[r + 1] += offsets[r];

    std::vector<Index> cols(offsets[nr]);
    std::vector<Index> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < gr; ++i) {
        const Index base = part_.row_begin(i);
        for (std::size_t j = 0; j < gc; ++j) {
            const CsrMatrix& t = tile(i, j).csr();
            const Index col_base = part_.col_begin(j);
            for (Index r = 0; r < t.nrows(); ++r) {
                Index& at = cursor[static_cast<std::size_t>(base) + r];
                for (const Index c : t.row(r)) cols[at++] = col_base + c;
            }
        }
    }
    return Matrix{CsrMatrix::from_raw(nr, nc, std::move(offsets), std::move(cols)), ctx};
}

}  // namespace spbla::dist
