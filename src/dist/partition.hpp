/// \file partition.hpp
/// \brief 2D block partition geometry for the sharded execution layer.
///
/// A Partition slices an nrows x ncols Boolean matrix into a grid of
/// grid_rows x grid_cols rectangular tiles along explicit split arrays
/// (Karppa & Kaski's 2D block decomposition for multi-accelerator Boolean
/// matrix multiplication). Splits are kept explicit rather than as a uniform
/// tile size so ragged edge tiles, single-row/column slivers and mismatched
/// operand grids are all first-class: two partitions compose into a SUMMA
/// product exactly when the inner split arrays are equal.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace spbla::dist {

/// Immutable 2D block-partition of an nrows x ncols index space.
class Partition {
public:
    /// Degenerate 1x1 partition of an empty space.
    Partition() : Partition({0, 0}, {0, 0}) {}

    /// Adopt explicit split arrays. Each must be non-empty, start at 0, be
    /// non-decreasing and end at the partitioned extent.
    Partition(std::vector<Index> row_splits, std::vector<Index> col_splits);

    /// Split \p nrows x \p ncols into \p grid_rows x \p grid_cols near-equal
    /// tiles (the first extent % grid tiles are one row/column larger). A
    /// grid larger than the extent yields trailing empty tiles.
    static Partition uniform(Index nrows, Index ncols, std::size_t grid_rows,
                             std::size_t grid_cols);

    [[nodiscard]] std::size_t grid_rows() const noexcept { return row_splits_.size() - 1; }
    [[nodiscard]] std::size_t grid_cols() const noexcept { return col_splits_.size() - 1; }
    [[nodiscard]] std::size_t tiles() const noexcept { return grid_rows() * grid_cols(); }

    [[nodiscard]] Index nrows() const noexcept { return row_splits_.back(); }
    [[nodiscard]] Index ncols() const noexcept { return col_splits_.back(); }

    [[nodiscard]] Index row_begin(std::size_t i) const noexcept { return row_splits_[i]; }
    [[nodiscard]] Index col_begin(std::size_t j) const noexcept { return col_splits_[j]; }
    [[nodiscard]] Index tile_nrows(std::size_t i) const noexcept {
        return row_splits_[i + 1] - row_splits_[i];
    }
    [[nodiscard]] Index tile_ncols(std::size_t j) const noexcept {
        return col_splits_[j + 1] - col_splits_[j];
    }

    /// Flat tile index of grid cell (i, j), row-major.
    [[nodiscard]] std::size_t tile_index(std::size_t i, std::size_t j) const noexcept {
        return i * grid_cols() + j;
    }

    /// Grid row containing matrix row \p r (r must be < nrows()).
    [[nodiscard]] std::size_t tile_of_row(Index r) const noexcept;

    /// Grid column containing matrix column \p c (c must be < ncols()).
    [[nodiscard]] std::size_t tile_of_col(Index c) const noexcept;

    [[nodiscard]] std::span<const Index> row_splits() const noexcept { return row_splits_; }
    [[nodiscard]] std::span<const Index> col_splits() const noexcept { return col_splits_; }

    /// The partition of the transposed matrix (splits swapped).
    [[nodiscard]] Partition transposed() const {
        return Partition{col_splits_, row_splits_};
    }

    friend bool operator==(const Partition& a, const Partition& b) noexcept {
        return a.row_splits_ == b.row_splits_ && a.col_splits_ == b.col_splits_;
    }

private:
    std::vector<Index> row_splits_;  // size grid_rows + 1, 0 .. nrows
    std::vector<Index> col_splits_;  // size grid_cols + 1, 0 .. ncols
};

/// Pick a grid for an nrows x ncols matrix with \p nnz set cells: enough
/// tiles that (a) every device owns at least one and (b) a CSR tile fits the
/// per-device \p tile_budget_bytes, but never more tiles than rows/columns.
/// Square matrices get a square grid with identical row/column splits, so a
/// fixpoint iterate shards once and serves both sides of A x A.
[[nodiscard]] Partition choose_partition(Index nrows, Index ncols, std::size_t nnz,
                                         std::size_t n_devices,
                                         std::size_t tile_budget_bytes);

}  // namespace spbla::dist
