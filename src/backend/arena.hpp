/// \file arena.hpp
/// \brief Scoped bump arenas and the pooled tile-buffer free lists.
///
/// Kernel scratch (per-row SpGEMM accumulators, bit-block panels, conversion
/// cursors) used to churn raw std::vectors through the general allocator on
/// every row, tile and SUMMA round — invisible to MemoryTracker and paid in
/// malloc/free on the hottest paths. This header provides the two memory
/// tiers that replace that churn:
///
///   Arena / ScopedArena / ArenaVector — bump allocation inside an op scope,
///     wholesale reset at scope exit. Each thread gets its own Arena (see
///     ArenaHub), so pool workers never contend; scopes nest (re-entrant for
///     ops calling ops) by rewinding to the mark taken at scope entry. Slabs
///     are retained across resets and reused, so a warmed-up kernel performs
///     zero allocator traffic.
///
///   BufferPool — size-classed free lists for long-lived index buffers that
///     outlive one op (CSR row-offset/column arrays of cached secondary
///     representations, SUMMA accumulator tiles). Dropping a cached rep
///     returns its arrays in O(1); the next conversion re-acquires them.
///
/// Tracker veneer: a slab is counted once by MemoryTracker::on_alloc at its
/// reserve and once by on_free at trim; in between, the arena charges the
/// slab bytes while any scratch is live and uncharges them when the outermost
/// scope exits, so current_bytes()/peak_bytes() (and the telemetry peak
/// gauge) cover scratch exactly while leak checks stay exact — a context
/// whose arenas are quiescent reads the same balance as before the op ran.
/// Pool-held buffers are deliberately *not* tracker-charged (they are free
/// memory, like the heap); their footprint is the spbla.arena.pool_held_bytes
/// gauge.
///
/// SPBLA_ARENA=off (or backend::set_arena_enabled(false)) switches every
/// arena into a pass-through mode that forwards each allocation to the heap
/// and charges the tracker per allocation — the ablation the bench ladders
/// use to report the allocation-count reduction.
///
/// Checked builds keep DeviceBuffer's poison contract: at SPBLA_CHECKS=full
/// every byte an arena hands out is 0xA5-filled on allocation and again on
/// scope reset, so use-before-write and use-after-reset read poison.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/memory_tracker.hpp"
#include "telemetry/metrics.hpp"
#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace spbla::backend {

/// Global arena switch (default on; SPBLA_ARENA=off|0 disables at startup).
/// In pass-through mode arenas forward to the heap and charge the tracker
/// per allocation. Toggleable at runtime from quiescent points so the bench
/// ablation can compare both modes in one process.
[[nodiscard]] bool arena_enabled() noexcept;
void set_arena_enabled(bool enabled) noexcept;

/// A single-owner-thread bump allocator over retained slabs.
///
/// Not thread-safe by design: each thread allocates only from its own arena
/// (ArenaHub::local()), which is what makes the fast path two additions and
/// no atomics. Cross-thread access is limited to the quiescent maintenance
/// entry points (trim, stats) — callers synchronise via pool joins.
class Arena {
public:
    explicit Arena(MemoryTracker* tracker) noexcept : tracker_{tracker} {}
    ~Arena() { trim(); }

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// A rewind point: everything allocated after mark() is reclaimed by
    /// rewind(). Taken/consumed by ScopedArena.
    struct Mark {
        std::size_t slab;         ///< slab cursor at scope entry
        std::size_t offset;       ///< bump offset within that slab
        std::size_t used;         ///< total live bytes at scope entry
        std::size_t passthrough;  ///< pass-through entry count at scope entry
    };

    /// Bump-allocate \p bytes aligned to \p align. Never returns nullptr
    /// (throws std::bad_alloc on slab exhaustion like the heap would).
    /// Contents are undefined — 0xA5 poison at SPBLA_CHECKS=full.
    [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

    [[nodiscard]] Mark mark() const noexcept {
        return Mark{cursor_, cursor_ < slabs_.size() ? slabs_[cursor_].used : 0,
                    used_, passthrough_.size()};
    }

    /// Reclaim everything allocated since \p m (wholesale, O(slabs touched)).
    void rewind(const Mark& m) noexcept;

    /// Scope nesting, maintained by ScopedArena. When the outermost scope
    /// exits with no live bytes the arena settles: retained slab bytes are
    /// uncharged from the tracker until scratch is next needed.
    void enter_scope() noexcept { ++depth_; }
    void exit_scope() noexcept {
        SPBLA_ASSERT(depth_ > 0, "Arena: unbalanced scope exit");
        if (--depth_ == 0) settle();
    }

    /// Release all retained slabs back to the heap (and balance the tracker).
    /// Only legal at quiescence — no live scope, nothing allocated.
    void trim() noexcept;

    [[nodiscard]] std::size_t used() const noexcept { return used_; }
    [[nodiscard]] std::size_t reserved() const noexcept { return reserved_; }
    [[nodiscard]] std::size_t slab_count() const noexcept { return slabs_.size(); }
    [[nodiscard]] int depth() const noexcept { return depth_; }

private:
    struct Slab {
        std::vector<std::byte> mem;  ///< storage (vector keeps raw new/delete out)
        std::size_t used{0};         ///< bump offset
    };

    void* bump(std::size_t bytes, std::size_t align);
    void* passthrough_allocate(std::size_t bytes);
    void reserve_slab(std::size_t at_least);
    void settle() noexcept;
    void poison_tail(const Mark& m) noexcept;

    MemoryTracker* tracker_;
    std::vector<Slab> slabs_;
    std::size_t cursor_{0};    ///< index of the slab currently bumped
    std::size_t used_{0};      ///< live bytes across all slabs (incl. padding)
    std::size_t reserved_{0};  ///< total slab capacity
    int depth_{0};             ///< live ScopedArena nesting
    bool charged_{false};      ///< reserved_ currently counted in the tracker
    /// Pass-through mode: individually tracked heap blocks, freed on rewind.
    std::vector<std::vector<std::byte>> passthrough_;
};

/// RAII op/chunk scope on one arena: marks at entry, rewinds (and counts a
/// spbla.arena.resets) at exit. Re-entrant — nested ops stack their marks.
class ScopedArena {
public:
    explicit ScopedArena(Arena& arena) noexcept
        : arena_{arena}, mark_{arena.mark()} {
        arena_.enter_scope();
    }

    ~ScopedArena() {
        telemetry::gauge_max(telemetry::Gauge::ArenaUsedBytes,
                             static_cast<std::int64_t>(arena_.used()));
        arena_.rewind(mark_);
        arena_.exit_scope();
        telemetry::count(telemetry::Counter::ArenaResets);
    }

    ScopedArena(const ScopedArena&) = delete;
    ScopedArena& operator=(const ScopedArena&) = delete;

    [[nodiscard]] Arena& arena() noexcept { return arena_; }

private:
    Arena& arena_;
    Arena::Mark mark_;
};

/// std::allocator shim over an Arena. deallocate() is a no-op — memory comes
/// back wholesale at the enclosing ScopedArena reset, which is exactly why a
/// container using it must not escape its scope.
template <class T>
class ArenaAllocator {
public:
    using value_type = T;
    using propagate_on_container_copy_assignment = std::true_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    explicit ArenaAllocator(Arena& arena) noexcept : arena_{&arena} {}

    template <class U>
    ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_{other.arena_} {}

    [[nodiscard]] T* allocate(std::size_t n) {
        return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    void deallocate(T*, std::size_t) noexcept {}

    template <class U>
    [[nodiscard]] bool operator==(const ArenaAllocator<U>& o) const noexcept {
        return arena_ == o.arena_;
    }
    template <class U>
    [[nodiscard]] bool operator!=(const ArenaAllocator<U>& o) const noexcept {
        return arena_ != o.arena_;
    }

    Arena* arena_;  ///< public so the rebind conversion above can read it
};

/// Scratch vector on an op arena: construct with ArenaVector<T> v{alloc} and
/// reuse (assign/resize) across rows within the scope.
template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Per-context registry handing each thread its own Arena.
///
/// Lookup is a thread_local cache keyed by a process-unique hub id (so a
/// worker serving many contexts caches one arena per context, and entries
/// for destroyed hubs can never falsely match); misses fall back to a
/// mutex-guarded map keyed by thread.
class ArenaHub {
public:
    explicit ArenaHub(MemoryTracker* tracker);
    ~ArenaHub();

    ArenaHub(const ArenaHub&) = delete;
    ArenaHub& operator=(const ArenaHub&) = delete;

    /// The calling thread's arena (created on first use).
    [[nodiscard]] Arena& local();

    /// Trim every arena. Quiescent only: all scopes closed, pool joined.
    void trim() noexcept SPBLA_EXCLUDES(mu_);

    /// Aggregate stats (quiescent only, same caveat as trim()).
    [[nodiscard]] std::size_t reserved_bytes() const SPBLA_EXCLUDES(mu_);
    [[nodiscard]] std::size_t used_bytes() const SPBLA_EXCLUDES(mu_);
    [[nodiscard]] std::size_t arena_count() const SPBLA_EXCLUDES(mu_);

private:
    MemoryTracker* tracker_;
    const std::uint64_t id_;  ///< process-unique, never reused
    mutable util::Mutex mu_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Arena>> arenas_
        SPBLA_GUARDED_BY(mu_);
};

/// Size-classed free lists for index buffers that outlive one op (cached CSR
/// representations, SUMMA accumulator tiles). Class c parks vectors whose
/// capacity is in [2^c, 2^(c+1)); acquire(n) serves from the first class
/// whose every member fits n. Thread-safe (ops on different pool threads
/// release tiles concurrently); held buffers are outside the tracker and
/// capped at kMaxHeldBytes — releases beyond the cap free to the heap.
///
/// The element type is std::uint32_t == spbla::Index, asserted at every use
/// site; pooling exactly the CSR array type keeps acquire/release moves
/// allocation-free.
class BufferPool {
public:
    using Buffer = std::vector<std::uint32_t>;

    BufferPool() = default;
    ~BufferPool() { trim(); }

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /// A buffer of size \p n, contents unspecified (stale values possible —
    /// callers must fully overwrite). 0xA5-poisoned at SPBLA_CHECKS=full.
    [[nodiscard]] Buffer acquire(std::size_t n) SPBLA_EXCLUDES(mu_);

    /// A buffer of size \p n, zero-filled (the row-offset contract).
    [[nodiscard]] Buffer acquire_zeroed(std::size_t n) SPBLA_EXCLUDES(mu_);

    /// Park \p b for reuse (or free it, above the held-bytes cap).
    void release(Buffer&& b) noexcept SPBLA_EXCLUDES(mu_);

    /// Free every parked buffer.
    void trim() noexcept SPBLA_EXCLUDES(mu_);

    [[nodiscard]] std::uint64_t hits() const noexcept {
        return hits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t misses() const noexcept {
        return misses_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t held_bytes() const SPBLA_EXCLUDES(mu_);

private:
    /// Everything past this parks on the heap instead (per-pool cap).
    static constexpr std::size_t kMaxHeldBytes = std::size_t{256} << 20;
    static constexpr std::size_t kNumClasses = 48;

    mutable util::Mutex mu_;
    std::vector<Buffer> classes_[kNumClasses] SPBLA_GUARDED_BY(mu_);
    std::size_t held_bytes_ SPBLA_GUARDED_BY(mu_){0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

}  // namespace spbla::backend
