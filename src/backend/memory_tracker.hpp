/// \file memory_tracker.hpp
/// \brief Accounting for simulated device memory.
///
/// SPbLA's evaluation reports GPU memory footprints (the "up to 4x less
/// memory" claim). Since the reproduction runs on host memory, every
/// allocation that would live in GPU memory in cuBool/clBool goes through
/// this tracker so benchmarks can report current and peak device footprint.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "prof/prof.hpp"
#include "telemetry/metrics.hpp"

namespace spbla::backend {

/// Thread-safe byte counter with a high-water mark.
///
/// Deliberately lock-free: every member is an atomic updated with fetch-ops
/// (the peak uses a CAS loop), so there is no capability for the
/// thread-safety analysis (util/thread_annotations.hpp) to name — counters
/// must stay wait-free because every DeviceBuffer alloc/free on every pool
/// worker passes through here. TSan covers it via the `parallel` label.
class MemoryTracker {
public:
    /// Record an allocation of \p bytes.
    void on_alloc(std::size_t bytes) noexcept {
        const auto cur = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
        auto peak = peak_.load(std::memory_order_relaxed);
        while (cur > peak &&
               !peak_.compare_exchange_weak(peak, cur, std::memory_order_relaxed)) {
        }
        allocs_.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(telemetry::Counter::MemAllocs);
        // The telemetry live gauge aggregates every tracker (one per
        // context); the peak gauge is its process-wide high-water mark.
        const auto live = telemetry::gauge_add(telemetry::Gauge::MemLiveBytes,
                                               static_cast<std::int64_t>(bytes));
        telemetry::gauge_max(telemetry::Gauge::MemPeakBytes, live);
        // Fold the post-alloc total into the active span's device-memory
        // high-water mark (mem_high_bytes) and event counters.
        if constexpr (prof::kCompiledLevel >= SPBLA_PROFILE_COUNTERS) {
            prof::note_alloc(bytes, cur);
        }
    }

    /// Bring \p bytes of retained arena/pool memory back into the live
    /// footprint without counting a new allocation: a slab is counted once,
    /// by the on_alloc() at its reserve, and charge/uncharge then track its
    /// idle<->in-use transitions so current_bytes() and the peak still cover
    /// scratch while the alloc/free pairing of leak reports stays exact.
    void on_charge(std::size_t bytes) noexcept {
        if (bytes == 0) return;
        const auto cur = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
        auto peak = peak_.load(std::memory_order_relaxed);
        while (cur > peak &&
               !peak_.compare_exchange_weak(peak, cur, std::memory_order_relaxed)) {
        }
        const auto live = telemetry::gauge_add(telemetry::Gauge::MemLiveBytes,
                                               static_cast<std::int64_t>(bytes));
        telemetry::gauge_max(telemetry::Gauge::MemPeakBytes, live);
        if constexpr (prof::kCompiledLevel >= SPBLA_PROFILE_COUNTERS) {
            prof::note_alloc(bytes, cur);
        }
    }

    /// Park \p bytes as retained (idle) arena/pool memory: the inverse of
    /// on_charge(); does not count a deallocation.
    void on_uncharge(std::size_t bytes) noexcept {
        if (bytes == 0) return;
        current_.fetch_sub(bytes, std::memory_order_relaxed);
        telemetry::gauge_add(telemetry::Gauge::MemLiveBytes,
                             -static_cast<std::int64_t>(bytes));
        if constexpr (prof::kCompiledLevel >= SPBLA_PROFILE_COUNTERS) {
            prof::note_free(bytes);
        }
    }

    /// Record a deallocation of \p bytes.
    void on_free(std::size_t bytes) noexcept {
        current_.fetch_sub(bytes, std::memory_order_relaxed);
        frees_.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(telemetry::Counter::MemFrees);
        telemetry::gauge_add(telemetry::Gauge::MemLiveBytes,
                             -static_cast<std::int64_t>(bytes));
        if constexpr (prof::kCompiledLevel >= SPBLA_PROFILE_COUNTERS) {
            prof::note_free(bytes);
        }
    }

    /// Bytes currently allocated.
    [[nodiscard]] std::size_t current_bytes() const noexcept {
        return current_.load(std::memory_order_relaxed);
    }

    /// High-water mark since construction or last reset_peak().
    [[nodiscard]] std::size_t peak_bytes() const noexcept {
        return peak_.load(std::memory_order_relaxed);
    }

    /// Total number of allocations observed.
    [[nodiscard]] std::uint64_t alloc_count() const noexcept {
        return allocs_.load(std::memory_order_relaxed);
    }

    /// Total number of deallocations observed.
    [[nodiscard]] std::uint64_t free_count() const noexcept {
        return frees_.load(std::memory_order_relaxed);
    }

    /// True iff every charged byte has been released.
    [[nodiscard]] bool balanced() const noexcept { return current_bytes() == 0; }

    /// End-of-context leak report: one line summarising outstanding bytes
    /// and the alloc/free pairing. The test harness asserts this is the
    /// zero-leak line after every op suite; Context prints it to stderr at
    /// destruction in checked builds when the balance is non-zero.
    [[nodiscard]] std::string leak_report() const {
        return "MemoryTracker: " + std::to_string(current_bytes()) +
               " bytes outstanding (allocs=" + std::to_string(alloc_count()) +
               ", frees=" + std::to_string(free_count()) +
               ", peak=" + std::to_string(peak_bytes()) + ")";
    }

    /// Reset the high-water mark to the current usage.
    void reset_peak() noexcept {
        peak_.store(current_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    }

private:
    std::atomic<std::size_t> current_{0};
    std::atomic<std::size_t> peak_{0};
    std::atomic<std::uint64_t> allocs_{0};
    std::atomic<std::uint64_t> frees_{0};
};

}  // namespace spbla::backend
