/// \file arena.cpp
/// \brief Bump-arena, hub, and buffer-pool implementation.

#include "backend/arena.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "backend/device_buffer.hpp"  // kPoisonByte
#include "util/contracts.hpp"

namespace spbla::backend {

namespace {

/// First slab; doubles up to the cap so tiny contexts stay tiny and hot
/// kernels stop reserving after a few ops.
constexpr std::size_t kMinSlabBytes = std::size_t{64} << 10;
constexpr std::size_t kMaxSlabBytes = std::size_t{8} << 20;

std::atomic<bool> g_arena_enabled{[] {
    const char* v = std::getenv("SPBLA_ARENA");
    return !(v != nullptr &&
             (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0));
}()};

/// Monotonic hub ids: never reused, so a stale thread-local cache entry for
/// a destroyed hub can never match a live one.
std::atomic<std::uint64_t> g_hub_ids{1};

/// Cheap stable per-thread key (the address of a thread_local is unique
/// among live threads). Key reuse after a thread exits is benign: the new
/// thread simply adopts the dead thread's (quiescent) arena.
[[nodiscard]] std::uint64_t thread_key() noexcept {
    thread_local const char tag = 0;
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&tag));
}

/// Free-list class that parks capacity \p cap: floor(log2(cap)).
[[nodiscard]] std::size_t class_of_capacity(std::size_t cap) noexcept {
    std::size_t c = 0;
    while (c + 1 < 63 && (std::size_t{2} << c) <= cap) ++c;
    return c;
}

/// Smallest class whose every member holds \p n elements: ceil(log2(n)).
[[nodiscard]] std::size_t class_for_request(std::size_t n) noexcept {
    std::size_t c = 0;
    while (c < 63 && (std::size_t{1} << c) < n) ++c;
    return c;
}

}  // namespace

bool arena_enabled() noexcept {
    return g_arena_enabled.load(std::memory_order_relaxed);
}

void set_arena_enabled(bool enabled) noexcept {
    g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

void* Arena::allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (align == 0) align = 1;
    if (!charged_) {
        // Retained slabs come back into the live footprint the moment the
        // arena is touched again (counted once, at reserve — see on_charge).
        if (tracker_ != nullptr) tracker_->on_charge(reserved_);
        charged_ = true;
    }
    void* p = arena_enabled() ? bump(bytes, align) : passthrough_allocate(bytes);
    SPBLA_CHECKED(std::memset(p, kPoisonByte, bytes));
    return p;
}

void* Arena::bump(std::size_t bytes, std::size_t align) {
    for (;;) {
        if (cursor_ < slabs_.size()) {
            Slab& s = slabs_[cursor_];
            const std::size_t off = (s.used + align - 1) & ~(align - 1);
            if (off + bytes <= s.mem.size()) {
                used_ += (off - s.used) + bytes;
                s.used = off + bytes;
                return s.mem.data() + off;
            }
            if (cursor_ + 1 < slabs_.size()) {
                // Retained slabs past the cursor are empty after rewind;
                // the current slab's tail is wasted until the next reset.
                ++cursor_;
                continue;
            }
        }
        reserve_slab(bytes + align);
        cursor_ = slabs_.size() - 1;
    }
}

void* Arena::passthrough_allocate(std::size_t bytes) {
    // Ablation mode: one tracked heap block per allocation, freed at scope
    // rewind — what every scratch vector paid before the arena existed.
    passthrough_.emplace_back(bytes);
    if (tracker_ != nullptr) tracker_->on_alloc(bytes);
    used_ += bytes;
    return passthrough_.back().data();
}

void Arena::reserve_slab(std::size_t at_least) {
    std::size_t want = slabs_.empty()
                           ? kMinSlabBytes
                           : std::min(slabs_.back().mem.size() * 2, kMaxSlabBytes);
    want = std::max(want, at_least);
    slabs_.push_back(Slab{std::vector<std::byte>(want), 0});
    reserved_ += want;
    if (tracker_ != nullptr) tracker_->on_alloc(want);
    telemetry::gauge_max(telemetry::Gauge::ArenaReservedBytes,
                         static_cast<std::int64_t>(reserved_));
}

void Arena::rewind(const Mark& m) noexcept {
    SPBLA_CHECKED(poison_tail(m));
    if (m.slab < slabs_.size()) {
        slabs_[m.slab].used = m.offset;
        for (std::size_t i = m.slab + 1; i < slabs_.size(); ++i) slabs_[i].used = 0;
    }
    cursor_ = m.slab;
    used_ = m.used;
    while (passthrough_.size() > m.passthrough) {
        auto& entry = passthrough_.back();
        SPBLA_CHECKED(std::memset(entry.data(), kPoisonByte, entry.size()));
        if (tracker_ != nullptr) tracker_->on_free(entry.size());
        passthrough_.pop_back();
    }
}

void Arena::poison_tail(const Mark& m) noexcept {
    for (std::size_t i = m.slab; i < slabs_.size(); ++i) {
        Slab& s = slabs_[i];
        const std::size_t from = (i == m.slab) ? m.offset : 0;
        if (s.used > from) {
            std::memset(s.mem.data() + from, kPoisonByte, s.used - from);
        }
    }
}

void Arena::settle() noexcept {
    if (used_ == 0 && charged_) {
        if (tracker_ != nullptr) tracker_->on_uncharge(reserved_);
        charged_ = false;
    }
}

void Arena::trim() noexcept {
    SPBLA_ASSERT(depth_ == 0 && used_ == 0, "Arena::trim: live scratch scope");
    if (tracker_ != nullptr) {
        // Pair every slab's reserve-time on_alloc with exactly one on_free;
        // a settled arena re-charges first so the byte balance nets to zero.
        if (!charged_) tracker_->on_charge(reserved_);
        for (const Slab& s : slabs_) tracker_->on_free(s.mem.size());
        for (const auto& entry : passthrough_) tracker_->on_free(entry.size());
    }
    charged_ = false;
    slabs_.clear();
    passthrough_.clear();
    cursor_ = 0;
    reserved_ = 0;
    used_ = 0;
}

// ---------------------------------------------------------------------------
// ArenaHub
// ---------------------------------------------------------------------------

ArenaHub::ArenaHub(MemoryTracker* tracker)
    : tracker_{tracker}, id_{g_hub_ids.fetch_add(1, std::memory_order_relaxed)} {}

ArenaHub::~ArenaHub() = default;  // each ~Arena trims itself

Arena& ArenaHub::local() {
    struct CacheEntry {
        std::uint64_t hub;
        Arena* arena;
    };
    // Per-thread fast path: one entry per (thread, hub) pair this thread has
    // touched. Bounded; evicted entries are just re-found through the map.
    thread_local std::vector<CacheEntry> cache;
    for (const CacheEntry& e : cache) {
        if (e.hub == id_) return *e.arena;
    }
    util::LockGuard lk{mu_};
    auto& slot = arenas_[thread_key()];
    if (slot == nullptr) slot = std::make_unique<Arena>(tracker_);
    if (cache.size() >= 64) cache.erase(cache.begin());
    cache.push_back(CacheEntry{id_, slot.get()});
    return *slot;
}

void ArenaHub::trim() noexcept {
    util::LockGuard lk{mu_};
    for (auto& [key, arena] : arenas_) arena->trim();
}

std::size_t ArenaHub::reserved_bytes() const {
    util::LockGuard lk{mu_};
    std::size_t total = 0;
    for (const auto& [key, arena] : arenas_) total += arena->reserved();
    return total;
}

std::size_t ArenaHub::used_bytes() const {
    util::LockGuard lk{mu_};
    std::size_t total = 0;
    for (const auto& [key, arena] : arenas_) total += arena->used();
    return total;
}

std::size_t ArenaHub::arena_count() const {
    util::LockGuard lk{mu_};
    return arenas_.size();
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::Buffer BufferPool::acquire(std::size_t n) {
    if (n > 0) {
        const std::size_t first = class_for_request(n);
        const std::size_t last = std::min(first + 2, kNumClasses - 1);
        Buffer b;
        bool hit = false;
        {
            util::LockGuard lk{mu_};
            for (std::size_t c = first; c <= last; ++c) {
                if (classes_[c].empty()) continue;
                b = std::move(classes_[c].back());
                classes_[c].pop_back();
                held_bytes_ -= b.capacity() * sizeof(std::uint32_t);
                hit = true;
                break;
            }
        }
        if (hit) {
            telemetry::gauge_add(
                telemetry::Gauge::PoolHeldBytes,
                -static_cast<std::int64_t>(b.capacity() * sizeof(std::uint32_t)));
            hits_.fetch_add(1, std::memory_order_relaxed);
            telemetry::count(telemetry::Counter::PoolBufferHits);
            b.resize(n);
            return b;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::PoolBufferMisses);
    return Buffer(n);
}

BufferPool::Buffer BufferPool::acquire_zeroed(std::size_t n) {
    Buffer b = acquire(n);
    std::fill(b.begin(), b.end(), 0u);
    return b;
}

void BufferPool::release(Buffer&& b) noexcept {
    const std::size_t bytes = b.capacity() * sizeof(std::uint32_t);
    if (bytes == 0) return;
    SPBLA_CHECKED(
        std::memset(b.data(), kPoisonByte, b.size() * sizeof(std::uint32_t)));
    const std::size_t c = class_of_capacity(b.capacity());
    if (c >= kNumClasses) return;  // absurdly large: free to the heap
    {
        util::LockGuard lk{mu_};
        if (held_bytes_ + bytes > kMaxHeldBytes) return;  // cap: free instead
        classes_[c].push_back(std::move(b));
        held_bytes_ += bytes;
    }
    telemetry::gauge_add(telemetry::Gauge::PoolHeldBytes,
                         static_cast<std::int64_t>(bytes));
}

void BufferPool::trim() noexcept {
    std::size_t freed = 0;
    {
        util::LockGuard lk{mu_};
        for (auto& cls : classes_) cls.clear();
        freed = held_bytes_;
        held_bytes_ = 0;
    }
    if (freed > 0) {
        telemetry::gauge_add(telemetry::Gauge::PoolHeldBytes,
                             -static_cast<std::int64_t>(freed));
    }
}

std::size_t BufferPool::held_bytes() const {
    util::LockGuard lk{mu_};
    return held_bytes_;
}

}  // namespace spbla::backend
