/// \file context.hpp
/// \brief Execution context — the reproduction's stand-in for a GPU device.
///
/// cuBool binds work to a CUDA device; clBool to an OpenCL queue. Here a
/// Context owns a worker pool (the "device"), a memory tracker (the "device
/// memory"), and an execution policy. Ops take a Context& and launch their
/// kernels through it; passing Policy::Sequential reproduces SPbLA's CPU
/// fallback backend, Policy::Parallel the GPU backend.
#pragma once

#include <cstddef>
#include <memory>

#include "backend/arena.hpp"
#include "backend/device_buffer.hpp"
#include "backend/memory_tracker.hpp"
#include "telemetry/metrics.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace spbla::backend {

/// How kernels execute.
enum class Policy {
    Sequential,  ///< single host thread (SPbLA's CPU fallback backend)
    Parallel,    ///< worker pool (stands in for the CUDA/OpenCL backends)
};

/// A simulated device: worker pool + tracked memory + launch helpers.
class Context {
public:
    /// \p policy execution policy, \p num_threads pool size (0 → hardware).
    explicit Context(Policy policy = Policy::Parallel, std::size_t num_threads = 0);

    /// In checked builds (SPBLA_CHECKS=cheap or full) a context that is torn
    /// down with device bytes still charged prints the tracker's leak report
    /// to stderr — the analog of a cudaFree audit at device shutdown. The
    /// test harness upgrades this to a hard per-test assertion via
    /// testing::CheckedContext.
    ~Context();

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] Policy policy() const noexcept { return policy_; }
    [[nodiscard]] MemoryTracker& tracker() noexcept { return tracker_; }
    [[nodiscard]] const MemoryTracker& tracker() const noexcept { return tracker_; }

    /// Pool used for parallel launches; nullptr under Policy::Sequential.
    [[nodiscard]] util::ThreadPool* pool() const noexcept {
        return policy_ == Policy::Parallel ? pool_.get() : nullptr;
    }

    /// Launch body(i) for i in [0, n) ("one thread per row" kernel shape).
    /// Chunks are dynamically scheduled (work-stealing tickets) by default;
    /// pass util::Schedule::Static for the FIFO one-closure-per-chunk path.
    void parallel_for(std::size_t n, std::size_t grain,
                      const std::function<void(std::size_t)>& body,
                      util::Schedule schedule = util::Schedule::Dynamic) const {
        // Same expansion util::parallel_for performs, but routed through the
        // chunk wrapper below so the body runs under a per-chunk arena scope.
        parallel_for_chunks(
            n, grain,
            [&body](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) body(i);
            },
            schedule);
    }

    /// Launch body(begin, end) over contiguous chunks of [0, n). Each chunk
    /// body runs inside a ScopedArena on the executing worker's own arena,
    /// so kernel scratch (ArenaVector, scratch_arena() bumps) is reclaimed
    /// wholesale at chunk exit and workers never contend on an allocator.
    /// Safe for concurrent launches on one pool: a worker only ever rewinds
    /// its own arena, to the mark its own chunk took.
    void parallel_for_chunks(std::size_t n, std::size_t grain,
                             const std::function<void(std::size_t, std::size_t)>& body,
                             util::Schedule schedule = util::Schedule::Dynamic) const {
        util::parallel_for_chunks(
            pool(), n, grain,
            [this, &body](std::size_t begin, std::size_t end) {
                ScopedArena scope{arena_hub_->local()};
                body(begin, end);
            },
            schedule);
    }

    /// Exclusive prefix sum on the device pool (thrust::exclusive_scan
    /// analog); parallel two-level scan for large inputs.
    std::uint64_t exclusive_scan(std::vector<std::uint32_t>& data) const {
        return util::exclusive_scan(pool(), data);
    }

    /// Allocate a tracked device buffer of \p count elements.
    template <class T>
    [[nodiscard]] DeviceBuffer<T> alloc(std::size_t count) {
        return DeviceBuffer<T>{&tracker_, count};
    }

    /// The calling thread's op arena (created on first use). Open a
    /// ScopedArena on it around an op to reclaim everything at op exit;
    /// chunk bodies launched via parallel_for* get their scope implicitly.
    [[nodiscard]] Arena& scratch_arena() const { return arena_hub_->local(); }

    /// Per-context arena registry (one arena per touching thread).
    [[nodiscard]] ArenaHub& arena_hub() const noexcept { return *arena_hub_; }

    /// Arena-backed scratch buffer on the calling thread's arena: valid until
    /// the enclosing ScopedArena resets, tracked via the arena's slab charge
    /// (not individually). Contents undefined, poisoned at SPBLA_CHECKS=full
    /// — the DeviceBuffer contract. Workers may read it; only the allocating
    /// scope's thread must outlive-own it.
    template <class T>
    [[nodiscard]] DeviceBuffer<T> scratch_alloc(std::size_t count) const {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena scratch holds trivially-copyable elements only");
        Arena& arena = arena_hub_->local();
        T* p = static_cast<T*>(arena.allocate(count * sizeof(T), alignof(T)));
        return DeviceBuffer<T>::borrow(p, count);
    }

    /// Size-classed free lists for index buffers that outlive one op (cached
    /// secondary representations, SUMMA accumulator tiles).
    [[nodiscard]] BufferPool& buffer_pool() const noexcept { return *buffer_pool_; }

    /// Release retained scratch (arena slabs + pooled buffers) back to the
    /// heap. Quiescent callers only — between ops, after pool joins. Used by
    /// tests and teardown to make the tracker balance exact to the byte.
    void trim_device_scratch() const {
        arena_hub_->trim();
        buffer_pool_->trim();
    }

    /// Hierarchical profiling summary for work launched through this (or
    /// any) context: span tree with call counts, totals, percentages, and
    /// per-span counters. Empty-ish unless built with SPBLA_PROFILE=counters
    /// or trace (the prof registry is process-wide; kernels record into
    /// per-thread logs, so the summary covers every context's launches).
    [[nodiscard]] static std::string profile_summary();

    /// Point-in-time view of the always-on telemetry registry (process-wide,
    /// like the prof registry: counters, gauges and latency histograms from
    /// every context). Always populated — no build flag required.
    [[nodiscard]] static telemetry::Snapshot metrics_snapshot();

private:
    Policy policy_;
    std::unique_ptr<util::ThreadPool> pool_;
    MemoryTracker tracker_;
    // unique_ptr so const launch methods hand out non-const arenas/pools:
    // both are internally synchronised (or per-thread), like the tracker.
    std::unique_ptr<ArenaHub> arena_hub_;
    std::unique_ptr<BufferPool> buffer_pool_;
};

/// Process-wide default context (parallel policy, hardware thread count).
[[nodiscard]] Context& default_context();

}  // namespace spbla::backend
