#include "backend/context.hpp"

namespace spbla::backend {

Context::Context(Policy policy, std::size_t num_threads) : policy_{policy} {
    if (policy_ == Policy::Parallel) {
        pool_ = std::make_unique<util::ThreadPool>(num_threads);
    }
}

Context& default_context() {
    static Context ctx{Policy::Parallel};
    return ctx;
}

}  // namespace spbla::backend
