#include "backend/context.hpp"

#include <cstdio>

#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::backend {

Context::Context(Policy policy, std::size_t num_threads)
    : policy_{policy},
      arena_hub_{std::make_unique<ArenaHub>(&tracker_)},
      buffer_pool_{std::make_unique<BufferPool>()} {
    if (policy_ == Policy::Parallel) {
        pool_ = std::make_unique<util::ThreadPool>(num_threads);
    }
}

Context::~Context() {
    // Quiesce retained scratch before auditing the balance: arena slabs and
    // pooled buffers are deliberately held across ops, so they must be
    // returned (and their tracker charges paired off) for the leak check to
    // see only genuinely leaked DeviceBuffers.
    trim_device_scratch();
#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_CHEAP
    if (!tracker_.balanced()) {
        std::fprintf(stderr, "spbla: context destroyed with leaked device memory: %s\n",
                     tracker_.leak_report().c_str());
    }
#endif
}

std::string Context::profile_summary() { return prof::text_summary(); }

telemetry::Snapshot Context::metrics_snapshot() { return telemetry::snapshot(); }

Context& default_context() {
    static Context ctx{Policy::Parallel};
    return ctx;
}

}  // namespace spbla::backend
