#include "backend/memory_tracker.hpp"

// MemoryTracker is header-only; this translation unit anchors the library
// target and keeps a single definition point if non-inline members appear.
