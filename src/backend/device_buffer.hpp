/// \file device_buffer.hpp
/// \brief RAII array living in (simulated) device memory.
///
/// In cuBool this is a cudaMalloc'd array; here it is host memory whose size
/// is charged against the owning context's MemoryTracker, so the benchmark
/// harness can report the same footprint numbers the paper does.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "backend/memory_tracker.hpp"

namespace spbla::backend {

/// Fixed-capacity trivially-copyable array charged to a MemoryTracker.
template <class T>
class DeviceBuffer {
public:
    DeviceBuffer() noexcept = default;

    DeviceBuffer(MemoryTracker* tracker, std::size_t count)
        : tracker_{tracker}, data_(count) {
        if (tracker_) tracker_->on_alloc(bytes());
    }

    DeviceBuffer(const DeviceBuffer& other)
        : tracker_{other.tracker_}, data_{other.data_} {
        if (tracker_) tracker_->on_alloc(bytes());
    }

    DeviceBuffer(DeviceBuffer&& other) noexcept
        : tracker_{std::exchange(other.tracker_, nullptr)},
          data_{std::move(other.data_)} {
        other.data_.clear();
        other.data_.shrink_to_fit();
    }

    DeviceBuffer& operator=(DeviceBuffer other) noexcept {
        swap(other);
        return *this;
    }

    ~DeviceBuffer() { release(); }

    void swap(DeviceBuffer& other) noexcept {
        std::swap(tracker_, other.tracker_);
        data_.swap(other.data_);
    }

    /// Free the storage and un-charge the tracker.
    void release() noexcept {
        if (tracker_) tracker_->on_free(bytes());
        tracker_ = nullptr;
        data_.clear();
        data_.shrink_to_fit();
    }

    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] T* data() noexcept { return data_.data(); }
    [[nodiscard]] const T* data() const noexcept { return data_.data(); }

    [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }

    [[nodiscard]] auto begin() noexcept { return data_.begin(); }
    [[nodiscard]] auto end() noexcept { return data_.end(); }
    [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
    [[nodiscard]] auto end() const noexcept { return data_.end(); }

private:
    MemoryTracker* tracker_{nullptr};
    std::vector<T> data_;
};

}  // namespace spbla::backend
