/// \file device_buffer.hpp
/// \brief RAII array living in (simulated) device memory.
///
/// In cuBool this is a cudaMalloc'd array; here it is host memory whose size
/// is charged against the owning context's MemoryTracker, so the benchmark
/// harness can report the same footprint numbers the paper does.
///
/// Two backing modes share one access path (ptr_ + size_, so element access
/// never branches on the mode):
///  - owned: the default — storage lives in an internal vector and is
///    charged/uncharged on the tracker per buffer (Context::alloc).
///  - borrowed: a view over op-arena memory (Context::scratch_alloc). The
///    arena's slab charge already accounts for the bytes, the enclosing
///    ScopedArena reset reclaims them, and release() only poisons. Copies of
///    a borrowed buffer alias the same storage — scratch is scope-local by
///    contract, so value copies of it are a bug this makes loud in checked
///    builds rather than a silent double-charge.
///
/// Contract checking: element access is bounds-asserted at SPBLA_CHECKS=cheap
/// and above; at SPBLA_CHECKS=full the storage is poison-filled on allocation
/// and release, so kernels that read device scratch before writing it (or
/// after freeing it) compute from 0xA5 garbage instead of silently correct
/// zeroes — mirroring what real cudaMalloc'd memory guarantees (nothing).
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "backend/memory_tracker.hpp"
#include "util/contracts.hpp"

namespace spbla::backend {

/// Byte written over checked-build allocations before first use and after
/// release; chosen to form implausible indices/counters when interpreted.
inline constexpr unsigned char kPoisonByte = 0xA5;

/// Fixed-capacity trivially-copyable array charged to a MemoryTracker.
template <class T>
class DeviceBuffer {
public:
    DeviceBuffer() noexcept = default;

    DeviceBuffer(MemoryTracker* tracker, std::size_t count)
        : tracker_{tracker}, owned_(count) {
        ptr_ = owned_.data();
        size_ = count;
        if (tracker_) tracker_->on_alloc(bytes());
        SPBLA_CHECKED(poison());
    }

    /// Borrowed (arena-backed) view: \p p stays valid until the enclosing
    /// ScopedArena resets; no tracker interaction (the slab charge covers it).
    [[nodiscard]] static DeviceBuffer borrow(T* p, std::size_t count) noexcept {
        DeviceBuffer b;
        b.ptr_ = p;
        b.size_ = count;
        b.poison();  // match the owned-mode contract: poison, not zero
        return b;
    }

    DeviceBuffer(const DeviceBuffer& other)
        : tracker_{other.tracker_}, owned_{other.owned_} {
        if (other.owned()) {
            ptr_ = owned_.data();
            size_ = other.size_;
            if (tracker_) tracker_->on_alloc(bytes());
        } else {
            ptr_ = other.ptr_;  // borrowed buffers alias (see file comment)
            size_ = other.size_;
        }
    }

    DeviceBuffer(DeviceBuffer&& other) noexcept
        : tracker_{std::exchange(other.tracker_, nullptr)},
          owned_{std::move(other.owned_)},
          ptr_{std::exchange(other.ptr_, nullptr)},
          size_{std::exchange(other.size_, 0)} {
        other.owned_.clear();
        other.owned_.shrink_to_fit();
    }

    DeviceBuffer& operator=(DeviceBuffer other) noexcept {
        swap(other);
        return *this;
    }

    ~DeviceBuffer() { release(); }

    void swap(DeviceBuffer& other) noexcept {
        std::swap(tracker_, other.tracker_);
        owned_.swap(other.owned_);
        std::swap(ptr_, other.ptr_);
        std::swap(size_, other.size_);
    }

    /// Free the storage and un-charge the tracker. Borrowed storage is only
    /// poisoned — the arena reclaims it wholesale at scope exit.
    void release() noexcept {
        SPBLA_CHECKED(poison());
        if (tracker_) tracker_->on_free(bytes());
        tracker_ = nullptr;
        owned_.clear();
        owned_.shrink_to_fit();
        ptr_ = nullptr;
        size_ = 0;
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::size_t bytes() const noexcept { return size_ * sizeof(T); }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    [[nodiscard]] T* data() noexcept { return ptr_; }
    [[nodiscard]] const T* data() const noexcept { return ptr_; }

    [[nodiscard]] T& operator[](std::size_t i) noexcept {
        SPBLA_ASSERT(i < size_, "DeviceBuffer: index out of bounds");
        return ptr_[i];
    }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
        SPBLA_ASSERT(i < size_, "DeviceBuffer: index out of bounds");
        return ptr_[i];
    }

    [[nodiscard]] T* begin() noexcept { return ptr_; }
    [[nodiscard]] T* end() noexcept { return ptr_ + size_; }
    [[nodiscard]] const T* begin() const noexcept { return ptr_; }
    [[nodiscard]] const T* end() const noexcept { return ptr_ + size_; }

private:
    [[nodiscard]] bool owned() const noexcept {
        return ptr_ == nullptr || !owned_.empty();
    }

    void poison() noexcept {
        if constexpr (std::is_trivially_copyable_v<T>) {
            if (size_ > 0) std::memset(ptr_, kPoisonByte, bytes());
        }
    }

    MemoryTracker* tracker_{nullptr};
    std::vector<T> owned_;  ///< backing storage in owned mode, empty when borrowed
    T* ptr_{nullptr};
    std::size_t size_{0};
};

}  // namespace spbla::backend
