/// \file device_buffer.hpp
/// \brief RAII array living in (simulated) device memory.
///
/// In cuBool this is a cudaMalloc'd array; here it is host memory whose size
/// is charged against the owning context's MemoryTracker, so the benchmark
/// harness can report the same footprint numbers the paper does.
///
/// Contract checking: element access is bounds-asserted at SPBLA_CHECKS=cheap
/// and above; at SPBLA_CHECKS=full the storage is poison-filled on allocation
/// and release, so kernels that read device scratch before writing it (or
/// after freeing it) compute from 0xA5 garbage instead of silently correct
/// zeroes — mirroring what real cudaMalloc'd memory guarantees (nothing).
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "backend/memory_tracker.hpp"
#include "util/contracts.hpp"

namespace spbla::backend {

/// Byte written over checked-build allocations before first use and after
/// release; chosen to form implausible indices/counters when interpreted.
inline constexpr unsigned char kPoisonByte = 0xA5;

/// Fixed-capacity trivially-copyable array charged to a MemoryTracker.
template <class T>
class DeviceBuffer {
public:
    DeviceBuffer() noexcept = default;

    DeviceBuffer(MemoryTracker* tracker, std::size_t count)
        : tracker_{tracker}, data_(count) {
        if (tracker_) tracker_->on_alloc(bytes());
        SPBLA_CHECKED(poison());
    }

    DeviceBuffer(const DeviceBuffer& other)
        : tracker_{other.tracker_}, data_{other.data_} {
        if (tracker_) tracker_->on_alloc(bytes());
    }

    DeviceBuffer(DeviceBuffer&& other) noexcept
        : tracker_{std::exchange(other.tracker_, nullptr)},
          data_{std::move(other.data_)} {
        other.data_.clear();
        other.data_.shrink_to_fit();
    }

    DeviceBuffer& operator=(DeviceBuffer other) noexcept {
        swap(other);
        return *this;
    }

    ~DeviceBuffer() { release(); }

    void swap(DeviceBuffer& other) noexcept {
        std::swap(tracker_, other.tracker_);
        data_.swap(other.data_);
    }

    /// Free the storage and un-charge the tracker.
    void release() noexcept {
        SPBLA_CHECKED(poison());
        if (tracker_) tracker_->on_free(bytes());
        tracker_ = nullptr;
        data_.clear();
        data_.shrink_to_fit();
    }

    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] T* data() noexcept { return data_.data(); }
    [[nodiscard]] const T* data() const noexcept { return data_.data(); }

    [[nodiscard]] T& operator[](std::size_t i) noexcept {
        SPBLA_ASSERT(i < data_.size(), "DeviceBuffer: index out of bounds");
        return data_[i];
    }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
        SPBLA_ASSERT(i < data_.size(), "DeviceBuffer: index out of bounds");
        return data_[i];
    }

    [[nodiscard]] auto begin() noexcept { return data_.begin(); }
    [[nodiscard]] auto end() noexcept { return data_.end(); }
    [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
    [[nodiscard]] auto end() const noexcept { return data_.end(); }

private:
    void poison() noexcept {
        if constexpr (std::is_trivially_copyable_v<T>) {
            if (!data_.empty()) std::memset(data_.data(), kPoisonByte, bytes());
        }
    }

    MemoryTracker* tracker_{nullptr};
    std::vector<T> data_;
};

}  // namespace spbla::backend
