/// \file query_templates.hpp
/// \brief The RPQ query templates of the paper's Table II.
///
/// Each template is a regex over placeholder symbols a, b, c, d, e, f that
/// gets instantiated with concrete relation labels — the paper uses "the
/// most frequent relations from the given graph".
#pragma once

#include <string>
#include <vector>

#include "rpq/regex.hpp"

namespace spbla::rpq {

/// One row of Table II.
struct QueryTemplate {
    std::string name;   ///< e.g. "Q4^3"
    std::string text;   ///< regex over placeholders, e.g. "(a | b | c)*"
    Index arity;        ///< number of distinct placeholder symbols used

    /// Instantiate with concrete labels (labels.size() must be >= arity).
    [[nodiscard]] RegexPtr instantiate(const std::vector<std::string>& labels) const;
};

/// All 28 templates of Table II, in the paper's order.
[[nodiscard]] const std::vector<QueryTemplate>& table2_templates();

/// Find a template by its name ("Q1", "Q9^4", ...).
[[nodiscard]] const QueryTemplate& template_by_name(const std::string& name);

}  // namespace spbla::rpq
