/// \file nfa.hpp
/// \brief Glushkov automaton construction.
///
/// The tensor-based querying algorithm needs the query as a set of Boolean
/// transition matrices, one per symbol. Glushkov's construction (which the
/// paper cites via Wang et al.'s provenance-aware RPQ work) yields an
/// epsilon-free NFA with one state per symbol occurrence plus an initial
/// state — exactly the right shape to matricise.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "rpq/regex.hpp"
#include "storage/matrix.hpp"

namespace spbla::rpq {

/// Epsilon-free NFA with a single start state.
struct Nfa {
    Index num_states{0};
    Index start{0};
    std::vector<bool> accepting;                       // size num_states
    std::map<std::string, std::vector<Coord>> delta;   // symbol -> (from, to) pairs

    /// Boolean transition matrix (num_states x num_states) of \p symbol.
    [[nodiscard]] Matrix matrix(const std::string& symbol) const;

    /// Symbols with at least one transition.
    [[nodiscard]] std::vector<std::string> symbols() const;

    /// Accepting state indices.
    [[nodiscard]] std::vector<Index> accepting_states() const;

    /// Direct subset simulation — test oracle for the matrix pipeline.
    [[nodiscard]] bool accepts(std::span<const std::string> word) const;
};

/// Build the Glushkov automaton of \p re.
[[nodiscard]] Nfa glushkov(const Regex& re);

}  // namespace spbla::rpq
