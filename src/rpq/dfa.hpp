/// \file dfa.hpp
/// \brief Deterministic automata: subset construction and minimisation.
///
/// A deterministic, minimised query automaton keeps the tensor product
/// small (the product has |Q| * |V| vertices), which is one of the easy
/// wins the RPQ engine applies before matricising a query.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "rpq/nfa.hpp"
#include "storage/matrix.hpp"

namespace spbla::rpq {

/// Complete-on-demand DFA: missing (state, symbol) entries are dead.
struct Dfa {
    Index num_states{0};
    Index start{0};
    std::vector<bool> accepting;
    std::map<std::string, std::vector<Coord>> delta;  // at most one edge per (state, symbol)

    /// Boolean transition matrix of \p symbol.
    [[nodiscard]] Matrix matrix(const std::string& symbol) const;

    /// Symbols with at least one transition.
    [[nodiscard]] std::vector<std::string> symbols() const;

    [[nodiscard]] std::vector<Index> accepting_states() const;

    /// Run the automaton over a word (test oracle).
    [[nodiscard]] bool accepts(std::span<const std::string> word) const;

    /// Next state of (state, symbol), or num_states as the dead marker.
    [[nodiscard]] Index step(Index state, const std::string& symbol) const;
};

/// Subset construction (reachable states only).
[[nodiscard]] Dfa determinize(const Nfa& nfa);

/// Moore partition-refinement minimisation (input must be deterministic).
[[nodiscard]] Dfa minimize(const Dfa& dfa);

/// parse + glushkov + determinize + minimize in one call.
[[nodiscard]] Dfa compile_query(const std::string& regex_text);

}  // namespace spbla::rpq
