#include "rpq/nfa.hpp"

#include <algorithm>
#include <set>

namespace spbla::rpq {
namespace {

/// Linearised-regex attributes for one subtree.
struct Attrs {
    std::vector<Index> first;  // positions that can begin a word
    std::vector<Index> last;   // positions that can end a word
    bool nullable{false};
};

void append_unique(std::vector<Index>& dst, const std::vector<Index>& src) {
    for (const auto p : src) {
        if (std::find(dst.begin(), dst.end(), p) == dst.end()) dst.push_back(p);
    }
}

/// Recursive Glushkov attribute computation. Positions are numbered from 1
/// in symbol-occurrence order; `follow[p]` collects positions reachable
/// right after p.
class Builder {
public:
    Attrs build(const Regex& re) {
        switch (re.kind) {
            case Regex::Kind::Empty:
                return {{}, {}, false};
            case Regex::Kind::Epsilon:
                return {{}, {}, true};
            case Regex::Kind::Symbol: {
                const auto p = static_cast<Index>(position_symbols.size() + 1);
                position_symbols.push_back(re.symbol);
                follow.emplace_back();
                return {{p}, {p}, false};
            }
            case Regex::Kind::Concat: {
                const Attrs l = build(*re.left);
                const Attrs r = build(*re.right);
                for (const auto p : l.last) append_unique(follow[p - 1], r.first);
                Attrs out;
                out.first = l.first;
                if (l.nullable) append_unique(out.first, r.first);
                out.last = r.last;
                if (r.nullable) append_unique(out.last, l.last);
                out.nullable = l.nullable && r.nullable;
                return out;
            }
            case Regex::Kind::Alt: {
                const Attrs l = build(*re.left);
                const Attrs r = build(*re.right);
                Attrs out = l;
                append_unique(out.first, r.first);
                append_unique(out.last, r.last);
                out.nullable = l.nullable || r.nullable;
                return out;
            }
            case Regex::Kind::Star:
            case Regex::Kind::Plus: {
                Attrs out = build(*re.left);
                for (const auto p : out.last) append_unique(follow[p - 1], out.first);
                if (re.kind == Regex::Kind::Star) out.nullable = true;
                return out;
            }
            case Regex::Kind::Optional: {
                Attrs out = build(*re.left);
                out.nullable = true;
                return out;
            }
        }
        return {};
    }

    std::vector<std::string> position_symbols;     // symbol at position p (index p-1)
    std::vector<std::vector<Index>> follow;        // follow sets (index p-1)
};

}  // namespace

Matrix Nfa::matrix(const std::string& symbol) const {
    const auto it = delta.find(symbol);
    if (it == delta.end()) return Matrix{num_states, num_states};
    return Matrix::from_coords(num_states, num_states, it->second);
}

std::vector<std::string> Nfa::symbols() const {
    std::vector<std::string> out;
    out.reserve(delta.size());
    for (const auto& [s, edges] : delta) out.push_back(s);
    return out;
}

std::vector<Index> Nfa::accepting_states() const {
    std::vector<Index> out;
    for (Index s = 0; s < num_states; ++s) {
        if (accepting[s]) out.push_back(s);
    }
    return out;
}

bool Nfa::accepts(std::span<const std::string> word) const {
    std::set<Index> current{start};
    for (const auto& token : word) {
        const auto it = delta.find(token);
        if (it == delta.end()) return false;
        std::set<Index> next;
        for (const auto& [from, to] : it->second) {
            if (current.contains(from)) next.insert(to);
        }
        if (next.empty()) return false;
        current = std::move(next);
    }
    return std::any_of(current.begin(), current.end(),
                       [this](Index s) { return accepting[s]; });
}

Nfa glushkov(const Regex& re) {
    Builder b;
    const Attrs root = b.build(re);

    Nfa nfa;
    nfa.num_states = static_cast<Index>(b.position_symbols.size()) + 1;
    nfa.start = 0;
    nfa.accepting.assign(nfa.num_states, false);
    nfa.accepting[0] = root.nullable;
    for (const auto p : root.last) nfa.accepting[p] = true;

    for (const auto p : root.first) {
        nfa.delta[b.position_symbols[p - 1]].push_back({0, p});
    }
    for (std::size_t p = 1; p <= b.follow.size(); ++p) {
        for (const auto q : b.follow[p - 1]) {
            nfa.delta[b.position_symbols[q - 1]].push_back(
                {static_cast<Index>(p), q});
        }
    }
    for (auto& [symbol, edges] : nfa.delta) {
        std::sort(edges.begin(), edges.end());
        edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
    return nfa;
}

}  // namespace spbla::rpq
