/// \file regex.hpp
/// \brief Regular expressions over relation labels.
///
/// Queries in the paper (Table II templates, and the right-hand sides of
/// grammar rules in the CFPQ layer) are regexes whose alphabet is relation
/// labels, not characters. Labels are identifiers; the inverse relation of
/// `x` is written `x_r` (the paper's x̄).
///
/// Concrete syntax accepted by parse():
///   alt    := cat ('|' cat)*
///   cat    := unary+                 (juxtaposition or '.' is concatenation)
///   unary  := atom ('*' | '+' | '?')*
///   atom   := IDENT | '(' alt ')' | 'eps'
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace spbla::rpq {

struct Regex;
using RegexPtr = std::shared_ptr<const Regex>;

/// Immutable regex AST node.
struct Regex {
    enum class Kind { Empty, Epsilon, Symbol, Concat, Alt, Star, Plus, Optional };

    Kind kind;
    std::string symbol;  // for Kind::Symbol
    RegexPtr left;       // operand / left operand
    RegexPtr right;      // right operand of Concat / Alt
};

/// AST constructors.
[[nodiscard]] RegexPtr empty();
[[nodiscard]] RegexPtr eps();
[[nodiscard]] RegexPtr sym(std::string name);
[[nodiscard]] RegexPtr cat(RegexPtr a, RegexPtr b);
[[nodiscard]] RegexPtr alt(RegexPtr a, RegexPtr b);
[[nodiscard]] RegexPtr star(RegexPtr a);
[[nodiscard]] RegexPtr plus(RegexPtr a);
[[nodiscard]] RegexPtr opt(RegexPtr a);

/// n-ary helpers.
[[nodiscard]] RegexPtr cat_all(std::span<const RegexPtr> parts);
[[nodiscard]] RegexPtr alt_all(std::span<const RegexPtr> parts);

/// Parse the concrete syntax; throws Error{InvalidArgument} on bad input.
[[nodiscard]] RegexPtr parse(const std::string& text);

/// Render back to (parseable) concrete syntax.
[[nodiscard]] std::string to_string(const Regex& re);

/// All distinct symbols occurring in the regex.
[[nodiscard]] std::vector<std::string> symbols_of(const Regex& re);

/// True iff the regex accepts the empty word.
[[nodiscard]] bool nullable(const Regex& re);

/// Reference matcher (memoized set-of-end-positions recursion) used by the
/// property tests to cross-check the automata pipeline. Polynomial time.
[[nodiscard]] bool matches(const Regex& re, std::span<const std::string> word);

}  // namespace spbla::rpq
