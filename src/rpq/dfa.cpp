#include "rpq/dfa.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace spbla::rpq {

Matrix Dfa::matrix(const std::string& symbol) const {
    const auto it = delta.find(symbol);
    if (it == delta.end()) return Matrix{num_states, num_states};
    return Matrix::from_coords(num_states, num_states, it->second);
}

std::vector<std::string> Dfa::symbols() const {
    std::vector<std::string> out;
    out.reserve(delta.size());
    for (const auto& [s, edges] : delta) out.push_back(s);
    return out;
}

std::vector<Index> Dfa::accepting_states() const {
    std::vector<Index> out;
    for (Index s = 0; s < num_states; ++s) {
        if (accepting[s]) out.push_back(s);
    }
    return out;
}

Index Dfa::step(Index state, const std::string& symbol) const {
    const auto it = delta.find(symbol);
    if (it == delta.end()) return num_states;
    for (const auto& [from, to] : it->second) {
        if (from == state) return to;
    }
    return num_states;
}

bool Dfa::accepts(std::span<const std::string> word) const {
    Index state = start;
    for (const auto& token : word) {
        state = step(state, token);
        if (state == num_states) return false;
    }
    return accepting[state];
}

Dfa determinize(const Nfa& nfa) {
    // Transition lookup: symbol -> from -> set of to.
    std::map<std::string, std::map<Index, std::vector<Index>>> lookup;
    for (const auto& [symbol, edges] : nfa.delta) {
        for (const auto& [from, to] : edges) lookup[symbol][from].push_back(to);
    }

    std::map<std::set<Index>, Index> state_of;
    std::vector<std::set<Index>> subsets;
    const std::set<Index> start_subset{nfa.start};
    state_of[start_subset] = 0;
    subsets.push_back(start_subset);

    Dfa dfa;
    std::vector<bool> acc;
    acc.push_back(nfa.accepting[nfa.start]);

    for (std::size_t i = 0; i < subsets.size(); ++i) {
        const auto current = subsets[i];  // copy: subsets grows below
        for (const auto& [symbol, moves] : lookup) {
            std::set<Index> next;
            for (const auto s : current) {
                const auto it = moves.find(s);
                if (it == moves.end()) continue;
                next.insert(it->second.begin(), it->second.end());
            }
            if (next.empty()) continue;
            auto [it, inserted] = state_of.try_emplace(next, static_cast<Index>(subsets.size()));
            if (inserted) {
                subsets.push_back(next);
                acc.push_back(std::any_of(next.begin(), next.end(),
                                          [&nfa](Index s) { return nfa.accepting[s]; }));
            }
            dfa.delta[symbol].push_back({static_cast<Index>(i), it->second});
        }
    }

    dfa.num_states = static_cast<Index>(subsets.size());
    dfa.start = 0;
    dfa.accepting = std::move(acc);
    for (auto& [symbol, edges] : dfa.delta) std::sort(edges.begin(), edges.end());
    return dfa;
}

Dfa minimize(const Dfa& dfa) {
    const auto symbols = dfa.symbols();
    const Index dead = dfa.num_states;  // implicit sink for missing moves

    // Moore refinement: classes start as {accepting, rejecting, dead}.
    std::vector<Index> cls(dfa.num_states + 1, 0);
    for (Index s = 0; s < dfa.num_states; ++s) cls[s] = dfa.accepting[s] ? 1 : 0;
    cls[dead] = 0;

    for (;;) {
        // Signature: own class + class of every successor.
        std::map<std::vector<Index>, Index> sig_to_class;
        std::vector<Index> next_cls(dfa.num_states + 1, 0);
        for (Index s = 0; s <= dfa.num_states; ++s) {
            std::vector<Index> sig{cls[s]};
            for (const auto& symbol : symbols) {
                sig.push_back(s == dead ? cls[dead] : cls[dfa.step(s, symbol)]);
            }
            const auto [it, inserted] =
                sig_to_class.try_emplace(sig, static_cast<Index>(sig_to_class.size()));
            next_cls[s] = it->second;
        }
        if (next_cls == cls) break;
        cls = std::move(next_cls);
    }

    // Rebuild over the classes of live states, dropping the dead class.
    const Index dead_cls = cls[dead];
    if (cls[dfa.start] == dead_cls) {
        // The language is empty; keep a single rejecting state.
        Dfa out;
        out.num_states = 1;
        out.start = 0;
        out.accepting = {false};
        return out;
    }
    std::map<Index, Index> renumber;
    for (Index s = 0; s < dfa.num_states; ++s) {
        if (cls[s] != dead_cls) renumber.try_emplace(cls[s], static_cast<Index>(renumber.size()));
    }

    Dfa out;
    out.num_states = static_cast<Index>(renumber.size());
    out.accepting.assign(out.num_states, false);
    out.start = renumber.at(cls[dfa.start]);
    for (Index s = 0; s < dfa.num_states; ++s) {
        if (cls[s] == dead_cls) continue;
        if (dfa.accepting[s]) out.accepting[renumber.at(cls[s])] = true;
    }
    std::map<std::string, std::set<Coord>> edges;
    for (const auto& [symbol, moves] : dfa.delta) {
        for (const auto& [from, to] : moves) {
            if (cls[from] == dead_cls || cls[to] == dead_cls) continue;
            edges[symbol].insert({renumber.at(cls[from]), renumber.at(cls[to])});
        }
    }
    for (const auto& [symbol, set] : edges) {
        out.delta[symbol] = {set.begin(), set.end()};
    }
    return out;
}

Dfa compile_query(const std::string& regex_text) {
    return minimize(determinize(glushkov(*parse(regex_text))));
}

}  // namespace spbla::rpq
