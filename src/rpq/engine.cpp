#include "rpq/engine.hpp"

#include <deque>
#include <map>
#include <set>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "util/contracts.hpp"

namespace spbla::rpq {

RpqIndex build_index(backend::Context& ctx, const data::LabeledGraph& graph,
                     const Dfa& query, algorithms::ClosureStrategy strategy) {
    SPBLA_CHECKED(for (const auto& label : graph.labels())
                      core::validate(graph.matrix(label).csr(ctx)));
    SPBLA_PROF_SPAN("rpq.build_index");
    const Index n = graph.num_vertices();
    const Index k = query.num_states;

    // M = sum over symbols of Q_s (x) G_s.
    Matrix product{k * n, k * n};
    for (const auto& symbol : query.symbols()) {
        if (!graph.has_label(symbol)) continue;
        const Matrix kron =
            storage::kronecker(ctx, query.matrix(symbol), graph.matrix(symbol));
        product = storage::ewise_add(ctx, product, kron);
    }

    RpqIndex index;
    index.product_nnz = product.nnz();

    algorithms::ClosureStats stats;
    index.closure = algorithms::transitive_closure(ctx, product, strategy, &stats);
    index.closure_rounds = stats.rounds;

    // Answer pairs: the (start, accepting-state) blocks of the closure.
    Matrix reachable{n, n};
    for (const auto f : query.accepting_states()) {
        const Matrix block =
            storage::submatrix(ctx, index.closure, query.start * n, f * n, n, n);
        reachable = storage::ewise_add(ctx, reachable, block);
    }
    // A nullable query additionally matches every empty path (u, u).
    if (query.accepting[query.start]) {
        reachable = storage::ewise_add(ctx, reachable, Matrix::identity(n, ctx));
    }
    index.product = std::move(product);
    index.reachable = std::move(reachable);
    SPBLA_CHECKED({
        core::validate(index.product.csr(ctx));
        core::validate(index.closure.csr(ctx));
        core::validate(index.reachable.csr(ctx));
    });
    return index;
}

Matrix evaluate(backend::Context& ctx, const data::LabeledGraph& graph,
                const Dfa& query) {
    return build_index(ctx, graph, query).reachable;
}

Matrix evaluate_reference(const data::LabeledGraph& graph, const Dfa& query) {
    const Index n = graph.num_vertices();
    std::vector<Coord> answers;

    // Pre-split graph edges by label for the walk. Materialise each label's
    // row structure up front so the inner BFS never converts mid-walk.
    std::map<std::string, const CsrMatrix*> by_label;
    for (const auto& symbol : query.symbols()) {
        if (graph.has_label(symbol)) by_label.emplace(symbol, &graph.matrix(symbol).csr());
    }

    for (Index u = 0; u < n; ++u) {
        // BFS over (state, vertex) pairs from (start, u).
        std::set<std::pair<Index, Index>> seen{{query.start, u}};
        std::deque<std::pair<Index, Index>> queue{{query.start, u}};
        while (!queue.empty()) {
            const auto [q, v] = queue.front();
            queue.pop_front();
            for (const auto& [symbol, m] : by_label) {
                const Index q2 = query.step(q, symbol);
                if (q2 == query.num_states) continue;
                for (const auto w : m->row(v)) {
                    if (seen.insert({q2, w}).second) queue.push_back({q2, w});
                }
            }
        }
        // Every (q, v) in `seen` is reachable by some word; if q accepts,
        // that word is in the language. The initial (start, u) pair stands
        // for the empty word, which accepting[start] (nullability) covers.
        std::set<Index> answered;
        for (const auto& [q, v] : seen) {
            if (query.accepting[q]) answered.insert(v);
        }
        for (const auto v : answered) answers.push_back({u, v});
    }
    return Matrix::from_coords(n, n, std::move(answers));
}

SpVector evaluate_from(backend::Context& ctx, const data::LabeledGraph& graph,
                       const Dfa& query, Index source) {
    const Index n = graph.num_vertices();
    check(source < n, Status::OutOfRange, "evaluate_from: source out of range");
    SPBLA_PROF_SPAN("rpq.evaluate_from");

    // visited[q] = set of graph vertices reached in automaton state q.
    std::vector<SpVector> visited(query.num_states, SpVector{n});
    visited[query.start] = SpVector::from_indices(n, {source});
    std::vector<SpVector> frontier = visited;

    bool any_frontier = true;
    std::uint64_t bfs_round = 0;
    while (any_frontier) {
        SPBLA_PROF_SPAN_ITER("rpq.evaluate_from.round", ++bfs_round);
        std::vector<SpVector> next(query.num_states, SpVector{n});
        for (Index q = 0; q < query.num_states; ++q) {
            if (frontier[q].empty()) continue;
            for (const auto& symbol : query.symbols()) {
                const Index q2 = query.step(q, symbol);
                if (q2 == query.num_states || !graph.has_label(symbol)) continue;
                const SpVector pushed =
                    storage::vxm(ctx, frontier[q], graph.matrix(symbol));
                next[q2] = next[q2].ewise_or(pushed);
            }
        }
        any_frontier = false;
        for (Index q = 0; q < query.num_states; ++q) {
            // Keep only genuinely new (state, vertex) configurations.
            std::vector<Index> fresh;
            for (const auto v : next[q].indices()) {
                if (!visited[q].get(v)) fresh.push_back(v);
            }
            frontier[q] = SpVector::from_indices(n, std::move(fresh));
            if (!frontier[q].empty()) {
                visited[q] = visited[q].ewise_or(frontier[q]);
                any_frontier = true;
            }
        }
    }

    // A configuration (q, v) with accepting q witnesses the answer (source,
    // v); the initial (start, source) configuration stands for the empty
    // word and is included exactly when the start state accepts (nullable
    // query), which visited[start] already covers.
    SpVector answers{n};
    for (const auto f : query.accepting_states()) {
        answers = answers.ewise_or(visited[f]);
    }
    return answers;
}

bool extract_path(const data::LabeledGraph& graph, const Dfa& query, Index u, Index v,
                  std::vector<std::string>& labels_out) {
    labels_out.clear();
    if (query.accepting[query.start] && u == v) return true;  // empty witness

    struct Step {
        Index prev_state, prev_vertex;
        std::string label;
    };
    std::map<std::pair<Index, Index>, Step> parent;
    std::deque<std::pair<Index, Index>> queue{{query.start, u}};
    std::set<std::pair<Index, Index>> seen{{query.start, u}};

    while (!queue.empty()) {
        const auto [q, w] = queue.front();
        queue.pop_front();
        if (query.accepting[q] && w == v && !(q == query.start && w == u)) {
            // Reconstruct the label word backwards.
            std::vector<std::string> rev;
            auto cur = std::make_pair(q, w);
            for (auto it = parent.find(cur); it != parent.end(); it = parent.find(cur)) {
                rev.push_back(it->second.label);
                cur = {it->second.prev_state, it->second.prev_vertex};
            }
            labels_out.assign(rev.rbegin(), rev.rend());
            return true;
        }
        for (const auto& symbol : query.symbols()) {
            const Index q2 = query.step(q, symbol);
            if (q2 == query.num_states || !graph.has_label(symbol)) continue;
            for (const auto w2 : graph.matrix(symbol).row(w)) {
                if (seen.insert({q2, w2}).second) {
                    parent[{q2, w2}] = {q, w, symbol};
                    queue.push_back({q2, w2});
                }
            }
        }
    }
    return false;
}

}  // namespace spbla::rpq
