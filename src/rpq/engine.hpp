/// \file engine.hpp
/// \brief Tensor-product RPQ evaluation on SPbLA primitives.
///
/// The algorithm of the paper's evaluation: the query automaton Q and the
/// graph G are combined per symbol with the Kronecker product,
///   M = sum over symbols s of  Q_s (x) G_s,
/// and "index creation" is the transitive closure of M. A graph pair (u, v)
/// is an answer iff some (start-state, u) reaches some (accepting-state, v)
/// in the closure — read off with the sub-matrix extraction primitive.
#pragma once

#include <string>
#include <vector>

#include "algorithms/closure.hpp"
#include "backend/context.hpp"
#include "core/spvector.hpp"
#include "data/labeled_graph.hpp"
#include "rpq/dfa.hpp"

namespace spbla::rpq {

/// The index built for one query over one graph, plus run statistics.
struct RpqIndex {
    Matrix product;           ///< the summed Kronecker product (|Q||V| square)
    Matrix closure;           ///< its transitive closure
    Matrix reachable;         ///< |V| x |V| matrix of answer pairs
    std::size_t closure_rounds{0};
    std::size_t product_nnz{0};
};

/// Build the RPQ index (the operation the paper's Figures 2-3 time).
[[nodiscard]] RpqIndex build_index(backend::Context& ctx, const data::LabeledGraph& graph,
                                   const Dfa& query,
                                   algorithms::ClosureStrategy strategy =
                                       algorithms::ClosureStrategy::Squaring);

/// Answer pairs only (convenience over build_index).
[[nodiscard]] Matrix evaluate(backend::Context& ctx, const data::LabeledGraph& graph,
                              const Dfa& query);

/// Naive product-automaton BFS — the reference oracle for the tests.
[[nodiscard]] Matrix evaluate_reference(const data::LabeledGraph& graph,
                                        const Dfa& query);

/// Extract one shortest witness path (its edge labels) for the answer pair
/// (u, v) by BFS over the product graph. Empty optional-like: returns false
/// if (u, v) is not an answer.
bool extract_path(const data::LabeledGraph& graph, const Dfa& query, Index u, Index v,
                  std::vector<std::string>& labels_out);

/// Single-source evaluation: the set of vertices v such that (source, v) is
/// an answer. Runs a frontier sweep with the sparse-vector kernels (one
/// frontier per automaton state) instead of materialising the full index —
/// the vector-based evaluation mode the paper's partial sparse-vector
/// support is aimed at.
[[nodiscard]] SpVector evaluate_from(backend::Context& ctx,
                                     const data::LabeledGraph& graph, const Dfa& query,
                                     Index source);

}  // namespace spbla::rpq
