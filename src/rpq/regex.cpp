#include "rpq/regex.hpp"

#include <cctype>
#include <map>
#include <set>

namespace spbla::rpq {

RegexPtr empty() { return std::make_shared<Regex>(Regex{Regex::Kind::Empty, {}, {}, {}}); }

RegexPtr eps() { return std::make_shared<Regex>(Regex{Regex::Kind::Epsilon, {}, {}, {}}); }

RegexPtr sym(std::string name) {
    check(!name.empty(), Status::InvalidArgument, "regex: empty symbol name");
    return std::make_shared<Regex>(Regex{Regex::Kind::Symbol, std::move(name), {}, {}});
}

RegexPtr cat(RegexPtr a, RegexPtr b) {
    return std::make_shared<Regex>(Regex{Regex::Kind::Concat, {}, std::move(a), std::move(b)});
}

RegexPtr alt(RegexPtr a, RegexPtr b) {
    return std::make_shared<Regex>(Regex{Regex::Kind::Alt, {}, std::move(a), std::move(b)});
}

RegexPtr star(RegexPtr a) {
    return std::make_shared<Regex>(Regex{Regex::Kind::Star, {}, std::move(a), {}});
}

RegexPtr plus(RegexPtr a) {
    return std::make_shared<Regex>(Regex{Regex::Kind::Plus, {}, std::move(a), {}});
}

RegexPtr opt(RegexPtr a) {
    return std::make_shared<Regex>(Regex{Regex::Kind::Optional, {}, std::move(a), {}});
}

RegexPtr cat_all(std::span<const RegexPtr> parts) {
    check(!parts.empty(), Status::InvalidArgument, "cat_all: empty list");
    RegexPtr acc = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) acc = cat(acc, parts[i]);
    return acc;
}

RegexPtr alt_all(std::span<const RegexPtr> parts) {
    check(!parts.empty(), Status::InvalidArgument, "alt_all: empty list");
    RegexPtr acc = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) acc = alt(acc, parts[i]);
    return acc;
}

namespace {

/// Recursive-descent parser over the concrete syntax.
class Parser {
public:
    explicit Parser(const std::string& text) : text_{text} {}

    RegexPtr run() {
        skip_ws();
        check(!at_end(), Status::InvalidArgument, "regex parse: empty input");
        RegexPtr r = parse_alt();
        skip_ws();
        check(at_end(), Status::InvalidArgument, "regex parse: trailing input");
        return r;
    }

private:
    [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    void skip_ws() {
        while (!at_end() && (std::isspace(static_cast<unsigned char>(peek())) != 0)) ++pos_;
    }

    [[nodiscard]] static bool is_ident_char(char c) {
        return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
    }

    RegexPtr parse_alt() {
        RegexPtr r = parse_cat();
        skip_ws();
        while (!at_end() && peek() == '|') {
            ++pos_;
            r = alt(std::move(r), parse_cat());
            skip_ws();
        }
        return r;
    }

    RegexPtr parse_cat() {
        RegexPtr r = parse_unary();
        for (;;) {
            skip_ws();
            if (at_end() || peek() == '|' || peek() == ')') return r;
            if (peek() == '.') {
                ++pos_;
                skip_ws();
            }
            r = cat(std::move(r), parse_unary());
        }
    }

    RegexPtr parse_unary() {
        RegexPtr r = parse_atom();
        for (;;) {
            skip_ws();
            if (at_end()) return r;
            const char c = peek();
            if (c == '*')
                r = star(std::move(r));
            else if (c == '+')
                r = plus(std::move(r));
            else if (c == '?')
                r = opt(std::move(r));
            else
                return r;
            ++pos_;
        }
    }

    RegexPtr parse_atom() {
        skip_ws();
        check(!at_end(), Status::InvalidArgument, "regex parse: expected atom");
        if (peek() == '(') {
            ++pos_;
            RegexPtr r = parse_alt();
            skip_ws();
            check(!at_end() && peek() == ')', Status::InvalidArgument,
                  "regex parse: missing ')'");
            ++pos_;
            return r;
        }
        check(is_ident_char(peek()), Status::InvalidArgument,
              "regex parse: unexpected character");
        std::string name;
        while (!at_end() && is_ident_char(peek())) name.push_back(text_[pos_++]);
        if (name == "eps") return eps();
        return sym(std::move(name));
    }

    const std::string& text_;
    std::size_t pos_{0};
};

void collect_symbols(const Regex& re, std::set<std::string>& out) {
    switch (re.kind) {
        case Regex::Kind::Empty:
        case Regex::Kind::Epsilon:
            return;
        case Regex::Kind::Symbol:
            out.insert(re.symbol);
            return;
        case Regex::Kind::Concat:
        case Regex::Kind::Alt:
            collect_symbols(*re.left, out);
            collect_symbols(*re.right, out);
            return;
        case Regex::Kind::Star:
        case Regex::Kind::Plus:
        case Regex::Kind::Optional:
            collect_symbols(*re.left, out);
            return;
    }
}

/// Memoized "end positions reachable from start i" evaluator.
class Matcher {
public:
    Matcher(std::span<const std::string> word) : word_{word} {}

    std::set<std::size_t> ends(const Regex& re, std::size_t i) {
        const auto key = std::make_pair(&re, i);
        if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
        memo_[key] = {};  // guards Star/Plus recursion
        std::set<std::size_t> out;
        switch (re.kind) {
            case Regex::Kind::Empty:
                break;
            case Regex::Kind::Epsilon:
                out.insert(i);
                break;
            case Regex::Kind::Symbol:
                if (i < word_.size() && word_[i] == re.symbol) out.insert(i + 1);
                break;
            case Regex::Kind::Concat:
                for (const auto m : ends(*re.left, i)) {
                    const auto r = ends(*re.right, m);
                    out.insert(r.begin(), r.end());
                }
                break;
            case Regex::Kind::Alt: {
                out = ends(*re.left, i);
                const auto r = ends(*re.right, i);
                out.insert(r.begin(), r.end());
                break;
            }
            case Regex::Kind::Star:
            case Regex::Kind::Plus: {
                // Fixpoint of one-or-more applications.
                std::set<std::size_t> frontier = ends(*re.left, i);
                std::set<std::size_t> reached = frontier;
                while (!frontier.empty()) {
                    std::set<std::size_t> next;
                    for (const auto m : frontier) {
                        for (const auto e : ends(*re.left, m)) {
                            if (reached.insert(e).second) next.insert(e);
                        }
                    }
                    frontier = std::move(next);
                }
                out = std::move(reached);
                if (re.kind == Regex::Kind::Star) out.insert(i);
                break;
            }
            case Regex::Kind::Optional:
                out = ends(*re.left, i);
                out.insert(i);
                break;
        }
        memo_[key] = out;
        return out;
    }

private:
    std::span<const std::string> word_;
    std::map<std::pair<const Regex*, std::size_t>, std::set<std::size_t>> memo_;
};

}  // namespace

RegexPtr parse(const std::string& text) { return Parser{text}.run(); }

namespace {

// Appends instead of concatenating temporaries: avoids quadratic copying
// (and a GCC 12 -Wrestrict false positive on the operator+ chains).
void render(const Regex& re, std::string& out) {
    switch (re.kind) {
        case Regex::Kind::Empty:
            out += "(eps eps)";  // no surface syntax for the empty language
            return;
        case Regex::Kind::Epsilon:
            out += "eps";
            return;
        case Regex::Kind::Symbol:
            out += re.symbol;
            return;
        case Regex::Kind::Concat:
        case Regex::Kind::Alt:
            out += '(';
            render(*re.left, out);
            out += re.kind == Regex::Kind::Concat ? " . " : " | ";
            render(*re.right, out);
            out += ')';
            return;
        case Regex::Kind::Star:
        case Regex::Kind::Plus:
        case Regex::Kind::Optional:
            out += '(';
            render(*re.left, out);
            out += ')';
            out += re.kind == Regex::Kind::Star   ? '*'
                   : re.kind == Regex::Kind::Plus ? '+'
                                                  : '?';
            return;
    }
}

}  // namespace

std::string to_string(const Regex& re) {
    std::string out;
    render(re, out);
    return out;
}

std::vector<std::string> symbols_of(const Regex& re) {
    std::set<std::string> s;
    collect_symbols(re, s);
    return {s.begin(), s.end()};
}

bool nullable(const Regex& re) {
    switch (re.kind) {
        case Regex::Kind::Empty: return false;
        case Regex::Kind::Epsilon: return true;
        case Regex::Kind::Symbol: return false;
        case Regex::Kind::Concat: return nullable(*re.left) && nullable(*re.right);
        case Regex::Kind::Alt: return nullable(*re.left) || nullable(*re.right);
        case Regex::Kind::Star: return true;
        case Regex::Kind::Plus: return nullable(*re.left);
        case Regex::Kind::Optional: return true;
    }
    return false;
}

bool matches(const Regex& re, std::span<const std::string> word) {
    Matcher m{word};
    return m.ends(re, 0).contains(word.size());
}

}  // namespace spbla::rpq
