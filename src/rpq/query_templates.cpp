#include "rpq/query_templates.hpp"

#include <array>

#include "core/types.hpp"

namespace spbla::rpq {
namespace {

constexpr std::array<const char*, 6> kPlaceholders{"a", "b", "c", "d", "e", "f"};

/// Substitute placeholder symbols by concrete labels.
RegexPtr substitute(const Regex& re, const std::vector<std::string>& labels) {
    switch (re.kind) {
        case Regex::Kind::Empty:
        case Regex::Kind::Epsilon:
            return std::make_shared<Regex>(re);
        case Regex::Kind::Symbol: {
            for (std::size_t k = 0; k < kPlaceholders.size(); ++k) {
                if (re.symbol == kPlaceholders[k]) {
                    check(k < labels.size(), Status::InvalidArgument,
                          "QueryTemplate: not enough labels for placeholders");
                    return sym(labels[k]);
                }
            }
            return sym(re.symbol);
        }
        case Regex::Kind::Concat:
            return cat(substitute(*re.left, labels), substitute(*re.right, labels));
        case Regex::Kind::Alt:
            return alt(substitute(*re.left, labels), substitute(*re.right, labels));
        case Regex::Kind::Star:
            return star(substitute(*re.left, labels));
        case Regex::Kind::Plus:
            return plus(substitute(*re.left, labels));
        case Regex::Kind::Optional:
            return opt(substitute(*re.left, labels));
    }
    return eps();
}

}  // namespace

RegexPtr QueryTemplate::instantiate(const std::vector<std::string>& labels) const {
    check(labels.size() >= arity, Status::InvalidArgument,
          "QueryTemplate::instantiate: need at least `arity` labels");
    return substitute(*parse(text), labels);
}

const std::vector<QueryTemplate>& table2_templates() {
    static const std::vector<QueryTemplate> kTemplates = {
        {"Q1", "a*", 1},
        {"Q2", "a b*", 2},
        {"Q3", "a b* c*", 3},
        {"Q4^2", "(a | b)*", 2},
        {"Q4^3", "(a | b | c)*", 3},
        {"Q4^4", "(a | b | c | d)*", 4},
        {"Q4^5", "(a | b | c | d | e)*", 5},
        {"Q5", "a b* c", 3},
        {"Q6", "a* b*", 2},
        {"Q7", "a b c*", 3},
        {"Q8", "a? b*", 2},
        {"Q9^2", "(a | b)+", 2},
        {"Q9^3", "(a | b | c)+", 3},
        {"Q9^4", "(a | b | c | d)+", 4},
        {"Q9^5", "(a | b | c | d | e)+", 5},
        {"Q10^2", "(a | b) c*", 3},
        {"Q10^3", "(a | b | c) d*", 4},
        {"Q10^4", "(a | b | c | d) e*", 5},
        {"Q10^5", "(a | b | c | d | e) f*", 6},
        {"Q11^2", "a b", 2},
        {"Q11^3", "a b c", 3},
        {"Q11^4", "a b c d", 4},
        {"Q11^5", "a b c d f", 6},  // the paper's template skips `e`, so 6 labels
        {"Q12", "(a b)+ | (c d)+", 4},
        {"Q13", "(a (b c)*)+ | (d f)+", 6},  // skips `e`, so 6 labels
        {"Q14", "(a b (c d)*)+ (e | f)*", 6},
        {"Q15", "(a | b)+ (c | d)+", 4},
        {"Q16", "a b (c | d | e)", 5},
    };
    return kTemplates;
}

const QueryTemplate& template_by_name(const std::string& name) {
    for (const auto& t : table2_templates()) {
        if (t.name == name) return t;
    }
    throw Error(Status::InvalidArgument, "template_by_name: unknown template " + name);
}

}  // namespace spbla::rpq
