/// \file matrix_market.hpp
/// \brief Matrix Market (.mtx) I/O for Boolean matrices.
///
/// The upstream SPbLA evaluation loads its SpGEMM workloads from the
/// SuiteSparse collection in Matrix Market format. This reader accepts the
/// `coordinate` format with `pattern`, `integer` or `real` fields (values
/// other than zero become true cells), `general` or `symmetric` symmetry,
/// and 1-based indices per the specification. The writer always emits
/// `pattern general`.
#pragma once

#include <iosfwd>
#include <string>

#include "storage/matrix.hpp"

namespace spbla::data {

/// Parse a Matrix Market stream; throws Error{InvalidArgument} on anything
/// malformed or on array (dense) format.
[[nodiscard]] Matrix load_matrix_market(std::istream& is);

/// Serialise \p m as `matrix coordinate pattern general`.
void save_matrix_market(std::ostream& os, const Matrix& m);

/// File convenience wrappers.
[[nodiscard]] Matrix load_matrix_market_file(const std::string& path);
void save_matrix_market_file(const std::string& path, const Matrix& m);

}  // namespace spbla::data
