#include "data/lubm.hpp"

#include "util/rng.hpp"

namespace spbla::data {
namespace {

constexpr Index kDeptsPerUniv = 4;
constexpr Index kFacultyPerDept = 5;
constexpr Index kStudentsPerDept = 20;
constexpr Index kCoursesPerDept = 5;
constexpr Index kOntologyClasses = 16;

}  // namespace

LabeledGraph make_lubm(Index universities, std::uint64_t seed) {
    check(universities > 0, Status::InvalidArgument, "make_lubm: need >= 1 university");
    util::Rng rng{seed};

    // Vertex layout: [ontology classes][universities][per-university blocks].
    constexpr Index kPerDept = kFacultyPerDept + kStudentsPerDept + kCoursesPerDept;
    constexpr Index kPerUniv = kDeptsPerUniv * (1 + kPerDept);
    const Index first_univ = kOntologyClasses;
    const Index first_block = first_univ + universities;
    const Index num_vertices = first_block + universities * kPerUniv;

    std::vector<LabeledEdge> edges;
    edges.reserve(static_cast<std::size_t>(universities) * 500 + kOntologyClasses);

    // Ontology: a small subClassOf tree (class k's parent is (k-1)/2).
    for (Index k = 1; k < kOntologyClasses; ++k) {
        edges.push_back({k, "subClassOf", (k - 1) / 2});
    }
    const Index cls_university = 1, cls_department = 2, cls_professor = 3,
                cls_student = 4, cls_course = 5;

    for (Index u = 0; u < universities; ++u) {
        const Index univ = first_univ + u;
        edges.push_back({univ, "type", cls_university});
        const Index block = first_block + u * kPerUniv;
        for (Index d = 0; d < kDeptsPerUniv; ++d) {
            const Index dept = block + d * (1 + kPerDept);
            const Index faculty0 = dept + 1;
            const Index student0 = faculty0 + kFacultyPerDept;
            const Index course0 = student0 + kStudentsPerDept;

            edges.push_back({dept, "subOrganizationOf", univ});
            edges.push_back({dept, "type", cls_department});
            edges.push_back({faculty0, "headOf", dept});

            for (Index f = 0; f < kFacultyPerDept; ++f) {
                const Index prof = faculty0 + f;
                edges.push_back({prof, "worksFor", dept});
                edges.push_back({prof, "type", cls_professor});
                // Degree from a (possibly different) university: the sparse
                // cross-tree edges that make (a|b)* queries non-trivial.
                const Index degree_univ =
                    first_univ + static_cast<Index>(rng.below(universities));
                edges.push_back({prof, "undergraduateDegreeFrom", degree_univ});
                edges.push_back({prof, "teacherOf",
                                 course0 + static_cast<Index>(rng.below(kCoursesPerDept))});
            }
            for (Index s = 0; s < kStudentsPerDept; ++s) {
                const Index stud = student0 + s;
                edges.push_back({stud, "memberOf", dept});
                edges.push_back({stud, "type", cls_student});
                edges.push_back({stud, "takesCourse",
                                 course0 + static_cast<Index>(rng.below(kCoursesPerDept))});
                edges.push_back({stud, "takesCourse",
                                 course0 + static_cast<Index>(rng.below(kCoursesPerDept))});
                if (rng.chance(0.5)) {
                    edges.push_back({stud, "advisor",
                                     faculty0 + static_cast<Index>(rng.below(kFacultyPerDept))});
                }
            }
            for (Index c = 0; c < kCoursesPerDept; ++c) {
                edges.push_back({course0 + c, "type", cls_course});
            }
        }
    }

    return LabeledGraph::from_edges(num_vertices, edges);
}

}  // namespace spbla::data
