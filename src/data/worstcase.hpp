/// \file worstcase.hpp
/// \brief Structured graphs with known analytic answers.
///
/// Used by the test suite as oracles (closures/reachability are known in
/// closed form) and by the ablation benchmarks as worst cases (a cycle's
/// closure is complete; two-cycle graphs are the classic CFPQ stress test).
#pragma once

#include <cstdint>

#include "data/labeled_graph.hpp"

namespace spbla::data {

/// Directed path 0 -> 1 -> ... -> n-1, single label "a".
[[nodiscard]] LabeledGraph make_path(Index n, const std::string& label = "a");

/// Directed cycle over n vertices, single label "a".
[[nodiscard]] LabeledGraph make_cycle(Index n, const std::string& label = "a");

/// The classic CFPQ worst case: an a-labelled cycle of length \p an joined
/// to a b-labelled cycle of length \p bn at vertex 0. The grammar
/// S -> a S b | a b finds quadratically many reachable pairs.
[[nodiscard]] LabeledGraph make_two_cycles(Index an, Index bn);

/// Complete bipartite digraph: edges from every u < left to every
/// v >= left, single label "a". Dense-row stress for SpGEMM binning.
[[nodiscard]] LabeledGraph make_bipartite(Index left, Index right,
                                          const std::string& label = "a");

/// Balanced binary in-tree of n vertices: child -> parent edges, label "a".
[[nodiscard]] LabeledGraph make_tree(Index n, const std::string& label = "a");

}  // namespace spbla::data
