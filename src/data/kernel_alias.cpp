#include "data/kernel_alias.hpp"

#include "util/rng.hpp"

namespace spbla::data {

LabeledGraph make_alias_graph(Index n_vars, std::uint64_t seed) {
    check(n_vars >= 4, Status::InvalidArgument, "make_alias_graph: need >= 4 variables");
    util::Rng rng{seed};

    // Each variable owns a dereference chain v -> *v -> **v (depth 1-3);
    // chain nodes are separate vertices. Assignments connect chain heads
    // with probability tuned to give the Table III a:d ratio (~0.29).
    std::vector<LabeledEdge> edges;
    std::vector<Index> head(n_vars);
    Index next_vertex = 0;

    struct Chain {
        Index head;
        Index len;
    };
    std::vector<Chain> chains(n_vars);
    for (Index v = 0; v < n_vars; ++v) {
        const Index len = 1 + static_cast<Index>(rng.below(3));
        chains[v] = {next_vertex, len};
        head[v] = next_vertex;
        for (Index d = 0; d < len; ++d) {
            edges.push_back({next_vertex + d, "d", next_vertex + d + 1});
        }
        next_vertex += len + 1;
    }
    const Index num_vertices = next_vertex;

    // Assignment edges: locality-biased (kernel code assigns between nearby
    // declarations) with occasional long-range links through shared globals.
    const auto n_assign = static_cast<std::size_t>(0.29 * edges.size());
    for (std::size_t k = 0; k < n_assign; ++k) {
        const Index src_var = static_cast<Index>(rng.below(n_vars));
        Index dst_var;
        if (rng.chance(0.8)) {
            const Index span = 32;
            const Index lo = src_var > span ? src_var - span : 0;
            const Index hi = src_var + span < n_vars ? src_var + span : n_vars - 1;
            dst_var = lo + static_cast<Index>(rng.below(hi - lo + 1));
        } else {
            dst_var = static_cast<Index>(rng.below(n_vars));
        }
        if (dst_var == src_var) continue;
        // Assign at a random shared depth of the two chains.
        const Index max_depth =
            chains[src_var].len < chains[dst_var].len ? chains[src_var].len
                                                      : chains[dst_var].len;
        const Index depth = static_cast<Index>(rng.below(max_depth + 1));
        edges.push_back({head[src_var] + depth, "a", head[dst_var] + depth});
    }

    LabeledGraph g = LabeledGraph::from_edges(num_vertices, edges);
    g.add_inverse_labels();  // the MA grammar needs a_r and d_r
    return g;
}

}  // namespace spbla::data
