/// \file rmat.hpp
/// \brief R-MAT and uniform random Boolean matrix generators.
///
/// Used by the Boolean-vs-generic benchmark (matrix squaring on power-law
/// matrices, the standard SpGEMM stress test) and by the property tests.
#pragma once

#include <cstdint>

#include "storage/matrix.hpp"

namespace spbla::data {

/// R-MAT recursive generator: 2^scale vertices, \p edge_factor * 2^scale
/// edges, quadrant probabilities (a, b, c; d = 1-a-b-c). Defaults are the
/// Graph500 parameters.
[[nodiscard]] Matrix make_rmat(Index scale, Index edge_factor, std::uint64_t seed = 29,
                               double a = 0.57, double b = 0.19, double c = 0.19);

/// Uniform random Boolean matrix of shape nrows x ncols with the given
/// expected density in (0, 1].
[[nodiscard]] Matrix make_uniform(Index nrows, Index ncols, double density,
                                  std::uint64_t seed = 31);

/// Zipf-skewed Boolean matrix: ~\p mean_degree * nrows cells whose row and
/// column indices are both drawn from a Zipf law with exponent \p skew.
/// Low-index rows become hubs (row 0 holds a constant fraction of all
/// cells), which is the degree profile that breaks statically-chunked
/// SpGEMM schedules — the scheduler stress input.
[[nodiscard]] Matrix make_zipf(Index nrows, Index ncols, Index mean_degree,
                               double skew = 1.0, std::uint64_t seed = 37);

}  // namespace spbla::data
