/// \file kernel_alias.hpp
/// \brief Synthetic memory-alias (points-to) graph generator.
///
/// The paper evaluates the MA query on graphs extracted from Linux kernel
/// subsystems (arch/crypto/drivers/fs). Those graphs encode a pointer
/// program: vertices are abstract memory locations / pointer expressions,
/// `d` edges are dereferences (p -> *p) and `a` edges are assignments
/// (p = q). In the paper's Table III the `d` edges outnumber `a` edges
/// roughly 3.4 : 1 and together make up half the edge set (the other half
/// being the inverse relations the MA grammar needs). This generator emits
/// synthetic pointer programs with the same shape: dereference chains of
/// bounded depth plus assignment edges between same-depth expressions.
#pragma once

#include <cstdint>

#include "data/labeled_graph.hpp"

namespace spbla::data {

/// Generate an alias-analysis graph with ~\p n_vars pointer variables.
/// The returned graph already contains the inverse labels a_r / d_r.
[[nodiscard]] LabeledGraph make_alias_graph(Index n_vars, std::uint64_t seed = 23);

}  // namespace spbla::data
