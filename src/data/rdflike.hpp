/// \file rdflike.hpp
/// \brief Generators reproducing the structural signatures of the real-world
/// RDF graphs used in the paper's evaluation.
///
/// We cannot ship Uniprot/DBpedia/geospecies dumps; each generator below
/// reproduces the structural property that drives the corresponding graph's
/// query behaviour in the evaluation (depth of broaderTransitive chains for
/// geospecies, width of the subClassOf/type forest for taxonomy, etc.), at a
/// configurable scale.
#pragma once

#include <cstdint>

#include "data/labeled_graph.hpp"

namespace spbla::data {

/// geospecies analog: a deep taxonomy. ~n_taxa vertices arranged in a tree
/// whose root-to-leaf depth is ~depth, edges labelled broaderTransitive
/// (child -> parent), plus type edges and name/property noise edges.
/// Deep chains make the `Geo` same-generation query expensive — the paper's
/// headline CFPQ observation.
[[nodiscard]] LabeledGraph make_geospecies(Index n_taxa, Index depth = 24,
                                           std::uint64_t seed = 11);

/// taxonomy (Uniprot) analog: a wide, shallow subClassOf forest with a large
/// population of instances attached via type. The paper notes taxonomy is
/// disproportionately slow for its size on `a*`-style queries: that comes
/// from the huge subClassOf/type label counts, reproduced here.
[[nodiscard]] LabeledGraph make_taxonomy(Index n_classes, Index instances_per_class = 2,
                                         std::uint64_t seed = 13);

/// Generic RDF-property-graph analog (uniprotkb/proteomes/mappingbased):
/// \p n_entities vertices, \p n_labels relation labels with Zipf-distributed
/// frequency, \p avg_degree edges per vertex. Edge *objects* are
/// Zipf-distributed over the entities — real RDF triples concentrate on a
/// small set of popular objects (classes, shared resources), which is what
/// keeps `a*`-style closures near-linear instead of quadratic on these
/// graphs. A uniform-random digraph would develop a giant SCC and an
/// O(n^2) closure no RDF store ever exhibits.
[[nodiscard]] LabeledGraph make_property_graph(Index n_entities, Index n_labels,
                                               double avg_degree, std::uint64_t seed = 17);

/// enzyme/go-style ontology analog: a subClassOf DAG plus instance `type`
/// edges; go-hierarchy has almost only subClassOf edges, controlled by
/// \p instance_fraction. \p multi_parent_prob is the probability of a class
/// having a second (and with half that probability a third) parent —
/// GO-like ontologies are heavily multi-parent, which is what produces the
/// paper's enormous per-pair path counts; eclass-like ones are near-trees.
[[nodiscard]] LabeledGraph make_ontology(Index n_classes, double instance_fraction,
                                         std::uint64_t seed = 19,
                                         double multi_parent_prob = 0.4);

}  // namespace spbla::data
