#include "data/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace spbla::data {
namespace {

std::string lowercase(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

}  // namespace

Matrix load_matrix_market(std::istream& is) {
    std::string line;
    check(static_cast<bool>(std::getline(is, line)), Status::InvalidArgument,
          "matrix market: empty stream");

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    std::istringstream header{line};
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    check(lowercase(banner) == "%%matrixmarket", Status::InvalidArgument,
          "matrix market: missing %%MatrixMarket banner");
    check(lowercase(object) == "matrix", Status::InvalidArgument,
          "matrix market: only `matrix` objects supported");
    check(lowercase(format) == "coordinate", Status::InvalidArgument,
          "matrix market: only `coordinate` (sparse) format supported");
    field = lowercase(field);
    symmetry = lowercase(symmetry);
    check(field == "pattern" || field == "integer" || field == "real",
          Status::InvalidArgument, "matrix market: unsupported field type");
    check(symmetry == "general" || symmetry == "symmetric", Status::InvalidArgument,
          "matrix market: unsupported symmetry");

    // Skip comments, read the size line.
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] != '%') break;
    }
    std::istringstream size_line{line};
    std::uint64_t nrows = 0, ncols = 0, nnz = 0;
    check(static_cast<bool>(size_line >> nrows >> ncols >> nnz), Status::InvalidArgument,
          "matrix market: malformed size line");
    check(nrows <= 0xFFFFFFFFull && ncols <= 0xFFFFFFFFull, Status::OutOfRange,
          "matrix market: shape exceeds Index range");

    std::vector<Coord> coords;
    coords.reserve(symmetry == "symmetric" ? 2 * nnz : nnz);
    for (std::uint64_t k = 0; k < nnz; ++k) {
        std::uint64_t r = 0, c = 0;
        check(static_cast<bool>(is >> r >> c), Status::InvalidArgument,
              "matrix market: truncated entry list");
        bool set = true;
        if (field != "pattern") {
            double value = 0.0;
            check(static_cast<bool>(is >> value), Status::InvalidArgument,
                  "matrix market: entry missing value");
            set = value != 0.0;
        }
        check(r >= 1 && c >= 1 && r <= nrows && c <= ncols, Status::OutOfRange,
              "matrix market: entry index out of bounds");
        if (!set) continue;
        const Coord coord{static_cast<Index>(r - 1), static_cast<Index>(c - 1)};
        coords.push_back(coord);
        if (symmetry == "symmetric" && coord.row != coord.col) {
            coords.push_back({coord.col, coord.row});
        }
    }
    return Matrix::from_coords(static_cast<Index>(nrows), static_cast<Index>(ncols),
                               std::move(coords));
}

void save_matrix_market(std::ostream& os, const Matrix& m) {
    os << "%%MatrixMarket matrix coordinate pattern general\n";
    os << "% written by spbla\n";
    os << m.nrows() << ' ' << m.ncols() << ' ' << m.nnz() << '\n';
    for (const auto& c : m.to_coords()) {
        os << (c.row + 1) << ' ' << (c.col + 1) << '\n';
    }
}

Matrix load_matrix_market_file(const std::string& path) {
    std::ifstream is{path};
    check(is.is_open(), Status::InvalidArgument,
          "load_matrix_market_file: cannot open " + path);
    return load_matrix_market(is);
}

void save_matrix_market_file(const std::string& path, const Matrix& m) {
    std::ofstream os{path};
    check(os.is_open(), Status::InvalidArgument,
          "save_matrix_market_file: cannot open " + path);
    save_matrix_market(os, m);
}

}  // namespace spbla::data
