#include "data/rdflike.hpp"

#include <cstdio>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace spbla::data {

LabeledGraph make_geospecies(Index n_taxa, Index depth, std::uint64_t seed) {
    check(n_taxa > depth && depth >= 2, Status::InvalidArgument,
          "make_geospecies: need n_taxa > depth >= 2");
    util::Rng rng{seed};

    std::vector<LabeledEdge> edges;
    edges.reserve(static_cast<std::size_t>(n_taxa) * 3);

    // Assign every taxon a level so that root-to-leaf chains are ~depth long;
    // each taxon's parent is a random taxon of the previous level. Vertex 0
    // is the root; vertices [1, depth] form one guaranteed full-depth spine.
    std::vector<Index> level_of(n_taxa, 0);
    std::vector<std::vector<Index>> by_level(depth + 1);
    by_level[0].push_back(0);
    for (Index v = 1; v <= depth; ++v) {
        level_of[v] = v;
        by_level[v].push_back(v);
        edges.push_back({v, "broaderTransitive", v - 1});
    }
    for (Index v = depth + 1; v < n_taxa; ++v) {
        // Bias towards deeper levels: real geospecies is leaf-heavy.
        const Index lvl = 1 + static_cast<Index>(
            depth - 1 - static_cast<Index>(rng.below(depth) * rng.below(depth) / depth));
        level_of[v] = lvl;
        const auto& parents = by_level[lvl - 1];
        const Index parent = parents[rng.below(parents.size())];
        edges.push_back({v, "broaderTransitive", parent});
        by_level[lvl].push_back(v);
    }

    // type + literal-like properties (~2 extra edges/taxon, as in the real
    // dump). Name/dataset objects are dedicated sink vertices with no
    // outgoing edges — RDF literals — so they never extend closures.
    const Index name_pool = n_taxa / 2 + 1;
    const Index first_name = n_taxa;
    const Index first_dataset = first_name + name_pool;
    const Index num_vertices = first_dataset + 16;
    for (Index v = 0; v < n_taxa; ++v) {
        if (rng.chance(0.2)) edges.push_back({v, "type", level_of[v] % 7});
        if (rng.chance(0.6)) {
            edges.push_back(
                {v, "hasName", first_name + static_cast<Index>(rng.below(name_pool))});
        }
        if (rng.chance(0.6)) {
            edges.push_back(
                {v, "inDataset", first_dataset + static_cast<Index>(rng.below(16))});
        }
    }

    return LabeledGraph::from_edges(num_vertices, edges);
}

LabeledGraph make_taxonomy(Index n_classes, Index instances_per_class, std::uint64_t seed) {
    check(n_classes >= 2, Status::InvalidArgument, "make_taxonomy: need >= 2 classes");
    util::Rng rng{seed};

    const Index n_instances = n_classes * instances_per_class;
    const Index num_vertices = n_classes + n_instances;
    std::vector<LabeledEdge> edges;
    edges.reserve(static_cast<std::size_t>(num_vertices) * 2);

    // Wide shallow forest: parent chosen uniformly below the child index,
    // giving expected depth O(log n) but enormous branching at the top.
    for (Index c = 1; c < n_classes; ++c) {
        edges.push_back({c, "subClassOf", static_cast<Index>(rng.below(c))});
    }
    // Instances carry type plus literal-like properties pointing at sink
    // vertices (names, ranks, merge records) — five labels total, enough for
    // every Table II template arity.
    const Index name_pool = n_instances / 4 + 1;
    const Index first_name = num_vertices;
    const Index first_rank = first_name + name_pool;
    const Index total = first_rank + 32;
    for (Index i = 0; i < n_instances; ++i) {
        const Index inst = n_classes + i;
        edges.push_back({inst, "type", static_cast<Index>(rng.below(n_classes))});
        if (rng.chance(0.3)) {
            edges.push_back({inst, "scientificName",
                             first_name + static_cast<Index>(rng.below(name_pool))});
        }
        if (rng.chance(0.25)) {
            edges.push_back(
                {inst, "rank", first_rank + static_cast<Index>(rng.below(32))});
        }
        if (rng.chance(0.05)) {
            edges.push_back({inst, "merged", static_cast<Index>(rng.below(n_classes))});
        }
    }

    return LabeledGraph::from_edges(total, edges);
}

LabeledGraph make_property_graph(Index n_entities, Index n_labels, double avg_degree,
                                 std::uint64_t seed) {
    check(n_entities >= 2 && n_labels >= 1 && avg_degree > 0, Status::InvalidArgument,
          "make_property_graph: bad parameters");
    util::Rng rng{seed};
    const util::ZipfSampler label_dist{n_labels, 1.1};
    // Objects follow a strong Zipf law over a popular-entity prefix (ids
    // 0..hub_pool): most triples point at a few thousand hubs, like rdf:type
    // targets and frequently referenced resources do in real dumps. Edges
    // additionally run from higher to lower ids, making the graph a shallow
    // DAG — real RDF property paths are short, and this is what keeps
    // `a*`-closures near-linear. (A uniform digraph develops a giant SCC and
    // an O(n^2) closure no RDF store exhibits.)
    const Index hub_pool = n_entities < 4096 ? n_entities / 2 + 1 : 4096;
    const util::ZipfSampler object_dist{hub_pool, 1.2};

    // Pre-render label names once (also sidesteps a GCC 12 -Wrestrict false
    // positive on per-edge string concatenation).
    std::vector<std::string> label_names;
    label_names.reserve(n_labels);
    for (Index l = 0; l < n_labels; ++l) {
        char name[16];
        std::snprintf(name, sizeof(name), "p%u", l);
        label_names.emplace_back(name);
    }

    const auto n_edges = static_cast<std::size_t>(avg_degree * n_entities);
    std::vector<LabeledEdge> edges;
    edges.reserve(n_edges);
    for (std::size_t k = 0; k < n_edges; ++k) {
        const auto label_id = label_dist(rng);
        const auto dst = static_cast<Index>(object_dist(rng));
        const Index src =
            dst + 1 + static_cast<Index>(rng.below(n_entities - dst - 1));
        edges.push_back({src, label_names[label_id], dst});
    }
    return LabeledGraph::from_edges(n_entities, edges);
}

LabeledGraph make_ontology(Index n_classes, double instance_fraction, std::uint64_t seed,
                           double multi_parent_prob) {
    check(n_classes >= 2, Status::InvalidArgument, "make_ontology: need >= 2 classes");
    util::Rng rng{seed};

    const auto n_instances = static_cast<Index>(instance_fraction * n_classes);
    const Index num_vertices = n_classes + n_instances;
    std::vector<LabeledEdge> edges;

    // DAG: every class has one guaranteed parent and possibly more
    // (multiple inheritance, as in GO).
    for (Index c = 1; c < n_classes; ++c) {
        edges.push_back({c, "subClassOf", static_cast<Index>(rng.below(c))});
        if (rng.chance(multi_parent_prob)) {
            edges.push_back({c, "subClassOf", static_cast<Index>(rng.below(c))});
        }
        if (rng.chance(multi_parent_prob / 2)) {
            edges.push_back({c, "subClassOf", static_cast<Index>(rng.below(c))});
        }
    }
    for (Index i = 0; i < n_instances; ++i) {
        edges.push_back({n_classes + i, "type", static_cast<Index>(rng.below(n_classes))});
    }
    return LabeledGraph::from_edges(num_vertices, edges);
}

}  // namespace spbla::data
