#include "data/labeled_graph.hpp"

#include <algorithm>

namespace spbla::data {

LabeledGraph LabeledGraph::from_edges(Index num_vertices,
                                      const std::vector<LabeledEdge>& edges) {
    LabeledGraph g{num_vertices};
    g.zero_ = Matrix{num_vertices, num_vertices};
    std::map<std::string, std::vector<Coord>> by_label;
    for (const auto& e : edges) {
        check(e.src < num_vertices && e.dst < num_vertices, Status::OutOfRange,
              "LabeledGraph::from_edges: vertex out of range");
        by_label[e.label].push_back({e.src, e.dst});
    }
    for (auto& [label, coords] : by_label) {
        g.matrices_.emplace(label, Matrix::from_coords(num_vertices, num_vertices,
                                                       std::move(coords)));
    }
    return g;
}

std::size_t LabeledGraph::num_edges() const noexcept {
    std::size_t total = 0;
    for (const auto& [label, m] : matrices_) total += m.nnz();
    return total;
}

std::vector<std::string> LabeledGraph::labels() const {
    std::vector<std::string> out;
    out.reserve(matrices_.size());
    for (const auto& [label, m] : matrices_) out.push_back(label);
    return out;
}

const Matrix& LabeledGraph::matrix(const std::string& label) const {
    const auto it = matrices_.find(label);
    return it == matrices_.end() ? zero_ : it->second;
}

std::size_t LabeledGraph::label_count(const std::string& label) const {
    const auto it = matrices_.find(label);
    return it == matrices_.end() ? 0 : it->second.nnz();
}

std::vector<std::string> LabeledGraph::labels_by_frequency() const {
    std::vector<std::string> out = labels();
    std::sort(out.begin(), out.end(), [this](const std::string& a, const std::string& b) {
        const auto ca = label_count(a);
        const auto cb = label_count(b);
        return ca != cb ? ca > cb : a < b;
    });
    return out;
}

void LabeledGraph::add_inverse_labels() {
    std::vector<std::pair<std::string, Matrix>> inverses;
    for (const auto& [label, m] : matrices_) {
        // Transpose without a context: coordinate flip + rebuild is O(nnz log nnz)
        // and runs once per dataset load, off the measured path.
        std::vector<Coord> flipped;
        flipped.reserve(m.nnz());
        for (const auto& c : m.to_coords()) flipped.push_back({c.col, c.row});
        inverses.emplace_back(inverse_label(label),
                              Matrix::from_coords(n_, n_, std::move(flipped)));
    }
    for (auto& [label, m] : inverses) matrices_.insert_or_assign(label, std::move(m));
}

Matrix LabeledGraph::union_matrix() const {
    std::vector<Coord> coords;
    for (const auto& [label, m] : matrices_) {
        const auto c = m.to_coords();
        coords.insert(coords.end(), c.begin(), c.end());
    }
    return Matrix::from_coords(n_, n_, std::move(coords));
}

std::string inverse_label(const std::string& label) { return label + "_r"; }

}  // namespace spbla::data
