#include "data/rmat.hpp"

#include "core/types.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace spbla::data {

Matrix make_rmat(Index scale, Index edge_factor, std::uint64_t seed, double a, double b,
                 double c) {
    check(scale >= 1 && scale < 31, Status::InvalidArgument, "make_rmat: bad scale");
    check(a > 0 && b > 0 && c > 0 && a + b + c < 1, Status::InvalidArgument,
          "make_rmat: quadrant probabilities must be positive and sum below 1");
    util::Rng rng{seed};

    const Index n = Index{1} << scale;
    const std::size_t n_edges = static_cast<std::size_t>(edge_factor) * n;
    std::vector<Coord> coords;
    coords.reserve(n_edges);
    for (std::size_t k = 0; k < n_edges; ++k) {
        Index row = 0, col = 0;
        for (Index bit = 0; bit < scale; ++bit) {
            const double u = rng.uniform();
            // Pick the quadrant for this bit of (row, col).
            const bool down = u >= a + b && u < 1.0;
            const bool right = (u >= a && u < a + b) || (u >= a + b + c);
            row = (row << 1) | static_cast<Index>(down);
            col = (col << 1) | static_cast<Index>(right);
        }
        coords.push_back({row, col});
    }
    return Matrix::from_coords(n, n, std::move(coords));
}

Matrix make_uniform(Index nrows, Index ncols, double density, std::uint64_t seed) {
    check(density > 0 && density <= 1, Status::InvalidArgument,
          "make_uniform: density must be in (0, 1]");
    util::Rng rng{seed};
    const auto target = static_cast<std::size_t>(
        density * static_cast<double>(nrows) * static_cast<double>(ncols));
    std::vector<Coord> coords;
    coords.reserve(target);
    for (std::size_t k = 0; k < target; ++k) {
        coords.push_back({static_cast<Index>(rng.below(nrows)),
                          static_cast<Index>(rng.below(ncols))});
    }
    return Matrix::from_coords(nrows, ncols, std::move(coords));
}

Matrix make_zipf(Index nrows, Index ncols, Index mean_degree, double skew,
                 std::uint64_t seed) {
    check(nrows >= 1 && ncols >= 1, Status::InvalidArgument, "make_zipf: empty shape");
    check(skew >= 0, Status::InvalidArgument, "make_zipf: negative skew");
    util::Rng rng{seed};
    const util::ZipfSampler row_law{nrows, skew};
    const util::ZipfSampler col_law{ncols, skew};
    const std::size_t target = static_cast<std::size_t>(mean_degree) * nrows;
    std::vector<Coord> coords;
    coords.reserve(target);
    for (std::size_t k = 0; k < target; ++k) {
        coords.push_back({static_cast<Index>(row_law(rng)),
                          static_cast<Index>(col_law(rng))});
    }
    return Matrix::from_coords(nrows, ncols, std::move(coords));
}

}  // namespace spbla::data
