#include "data/worstcase.hpp"

namespace spbla::data {

LabeledGraph make_path(Index n, const std::string& label) {
    check(n >= 1, Status::InvalidArgument, "make_path: need >= 1 vertex");
    std::vector<LabeledEdge> edges;
    for (Index v = 0; v + 1 < n; ++v) edges.push_back({v, label, v + 1});
    return LabeledGraph::from_edges(n, edges);
}

LabeledGraph make_cycle(Index n, const std::string& label) {
    check(n >= 1, Status::InvalidArgument, "make_cycle: need >= 1 vertex");
    std::vector<LabeledEdge> edges;
    for (Index v = 0; v < n; ++v) edges.push_back({v, label, (v + 1) % n});
    return LabeledGraph::from_edges(n, edges);
}

LabeledGraph make_two_cycles(Index an, Index bn) {
    check(an >= 1 && bn >= 1, Status::InvalidArgument, "make_two_cycles: bad sizes");
    // Vertices [0, an) form the a-cycle; vertex 0 and [an, an+bn-1) the b-cycle.
    const Index n = an + bn - 1;
    std::vector<LabeledEdge> edges;
    for (Index v = 0; v < an; ++v) edges.push_back({v, "a", (v + 1) % an});
    Index prev = 0;
    for (Index k = 0; k + 1 < bn; ++k) {
        const Index next = an + k;
        edges.push_back({prev, "b", next});
        prev = next;
    }
    edges.push_back({prev, "b", 0});
    return LabeledGraph::from_edges(n, edges);
}

LabeledGraph make_bipartite(Index left, Index right, const std::string& label) {
    check(left >= 1 && right >= 1, Status::InvalidArgument, "make_bipartite: bad sizes");
    std::vector<LabeledEdge> edges;
    edges.reserve(static_cast<std::size_t>(left) * right);
    for (Index u = 0; u < left; ++u) {
        for (Index v = 0; v < right; ++v) edges.push_back({u, label, left + v});
    }
    return LabeledGraph::from_edges(left + right, edges);
}

LabeledGraph make_tree(Index n, const std::string& label) {
    check(n >= 1, Status::InvalidArgument, "make_tree: need >= 1 vertex");
    std::vector<LabeledEdge> edges;
    for (Index v = 1; v < n; ++v) edges.push_back({v, label, (v - 1) / 2});
    return LabeledGraph::from_edges(n, edges);
}

}  // namespace spbla::data
