/// \file labeled_graph.hpp
/// \brief Edge-labeled directed graph — the common input of RPQ and CFPQ.
///
/// Path queries run over graphs whose edges carry relation labels (RDF
/// predicates, or `a`/`d` statement edges for alias analysis). A graph is
/// decomposed into one Boolean adjacency matrix per label, which is exactly
/// the representation all the linear-algebra algorithms consume.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "storage/matrix.hpp"

namespace spbla::data {

/// One labeled edge (src --label--> dst).
struct LabeledEdge {
    Index src{0};
    std::string label;
    Index dst{0};

    friend bool operator==(const LabeledEdge&, const LabeledEdge&) = default;
};

/// Directed graph with string-labeled edges, materialised as one Boolean
/// adjacency matrix per label.
class LabeledGraph {
public:
    explicit LabeledGraph(Index num_vertices) : n_{num_vertices} {}

    LabeledGraph() : LabeledGraph(0) {}

    /// Build from an edge list; duplicate edges collapse.
    static LabeledGraph from_edges(Index num_vertices,
                                   const std::vector<LabeledEdge>& edges);

    [[nodiscard]] Index num_vertices() const noexcept { return n_; }

    /// Total number of distinct labeled edges.
    [[nodiscard]] std::size_t num_edges() const noexcept;

    /// Labels present in the graph (sorted).
    [[nodiscard]] std::vector<std::string> labels() const;

    /// True iff the graph has at least one edge with \p label.
    [[nodiscard]] bool has_label(const std::string& label) const {
        return matrices_.contains(label);
    }

    /// Adjacency matrix of \p label; an all-zero matrix if the label is
    /// absent (so queries may mention labels the graph lacks).
    [[nodiscard]] const Matrix& matrix(const std::string& label) const;

    /// Number of edges carrying \p label.
    [[nodiscard]] std::size_t label_count(const std::string& label) const;

    /// Labels ordered by descending edge count (the paper instantiates query
    /// templates with "the most frequent relations from the given graph").
    [[nodiscard]] std::vector<std::string> labels_by_frequency() const;

    /// Add the reverse relation "label_r" for every label ("x̄" in the
    /// paper's grammars: the inverse edge used by G1/G2/Geo/MA queries).
    void add_inverse_labels();

    /// Union of all label matrices (the unlabeled adjacency structure).
    [[nodiscard]] Matrix union_matrix() const;

private:
    Index n_;
    std::map<std::string, Matrix> matrices_;
    Matrix zero_;  // returned for absent labels, shaped n x n
};

/// Conventional name of the inverse relation of \p label.
[[nodiscard]] std::string inverse_label(const std::string& label);

}  // namespace spbla::data
