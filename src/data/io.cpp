#include "data/io.hpp"

#include <fstream>
#include <sstream>

namespace spbla::data {

void save_triples(std::ostream& os, const LabeledGraph& g) {
    os << g.num_vertices() << '\n';
    for (const auto& label : g.labels()) {
        const auto& m = g.matrix(label);
        for (const auto& c : m.to_coords()) {
            os << c.row << ' ' << label << ' ' << c.col << '\n';
        }
    }
}

LabeledGraph load_triples(std::istream& is) {
    Index num_vertices = 0;
    check(static_cast<bool>(is >> num_vertices), Status::InvalidArgument,
          "load_triples: missing vertex count header");
    std::vector<LabeledEdge> edges;
    Index src = 0, dst = 0;
    std::string label;
    while (is >> src >> label >> dst) {
        edges.push_back({src, label, dst});
    }
    check(is.eof(), Status::InvalidArgument, "load_triples: malformed triple line");
    return LabeledGraph::from_edges(num_vertices, edges);
}

void save_triples_file(const std::string& path, const LabeledGraph& g) {
    std::ofstream os{path};
    check(os.is_open(), Status::InvalidArgument, "save_triples_file: cannot open file");
    save_triples(os, g);
}

LabeledGraph load_triples_file(const std::string& path) {
    std::ifstream is{path};
    check(is.is_open(), Status::InvalidArgument, "load_triples_file: cannot open file");
    return load_triples(is);
}

}  // namespace spbla::data
