/// \file io.hpp
/// \brief Plain-text triples I/O for labeled graphs.
///
/// Format (the same shape as the CFPQ_Data dataset's edge lists):
///   line 1: <num_vertices>
///   lines:  <src> <label> <dst>
#pragma once

#include <iosfwd>
#include <string>

#include "data/labeled_graph.hpp"

namespace spbla::data {

/// Serialise \p g as triples text.
void save_triples(std::ostream& os, const LabeledGraph& g);

/// Parse a triples stream; throws Error{InvalidArgument} on malformed input.
[[nodiscard]] LabeledGraph load_triples(std::istream& is);

/// File convenience wrappers.
void save_triples_file(const std::string& path, const LabeledGraph& g);
[[nodiscard]] LabeledGraph load_triples_file(const std::string& path);

}  // namespace spbla::data
