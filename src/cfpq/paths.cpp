#include "cfpq/paths.hpp"

#include <algorithm>

#include "storage/dispatch.hpp"

namespace spbla::cfpq {

PathExtractor::PathExtractor(backend::Context& ctx, const data::LabeledGraph& graph,
                             const AzimovIndex& index)
    : graph_{graph}, index_{index} {
    const Index k = index.cnf.num_nonterminals();
    transposed_.reserve(k);
    for (Index a = 0; a < k; ++a) {
        transposed_.push_back(storage::transpose(ctx, index.nt_matrix[a]));
    }
    terminals_of_.resize(k);
    for (const auto& [a, label] : index.cnf.terminal_rules) {
        terminals_of_[a].push_back(label);
    }
    binaries_of_.resize(k);
    for (const auto& [a, b, c] : index.cnf.binary_rules) {
        binaries_of_[a].emplace_back(b, c);
    }
}

std::vector<std::vector<std::string>> PathExtractor::extract(Index u, Index v,
                                                             std::size_t max_len,
                                                             std::size_t max_count,
                                                             PathStats* stats,
                                                             std::size_t max_steps) const {
    PathStats local;
    std::vector<std::vector<std::string>> out;
    if (index_.cnf.start_nullable && u == v && max_count > 0) {
        out.push_back({});  // the empty path witnesses nullable start
    }
    paths_for(index_.cnf.start, u, v, max_len, max_count, max_steps, out, local);
    local.paths_found = out.size();
    if (stats != nullptr) *stats = local;
    return out;
}

void PathExtractor::paths_for(Index nt, Index u, Index v, std::size_t budget,
                              std::size_t max_count, std::size_t max_steps,
                              std::vector<std::vector<std::string>>& out,
                              PathStats& stats) const {
    if (budget == 0 || out.size() >= max_count) return;
    if (stats.recursion_steps >= max_steps) return;  // global work budget
    ++stats.recursion_steps;

    // Single-edge witnesses: A -> t with a t-edge (u, v).
    for (const auto& label : terminals_of_[nt]) {
        if (out.size() >= max_count) return;
        if (graph_.has_label(label) && graph_.matrix(label).get(u, v)) {
            const std::vector<std::string> word{label};
            if (std::find(out.begin(), out.end(), word) == out.end()) {
                out.push_back(word);
            }
        }
    }

    // Two-part witnesses: A -> B C split at every derivable middle vertex.
    for (const auto& [b, c] : binaries_of_[nt]) {
        if (out.size() >= max_count) return;
        const auto row_b = index_.nt_matrix[b].row(u);      // {w : B(u, w)}
        const auto col_c = transposed_[c].row(v);           // {w : C(w, v)}
        std::size_t i = 0, j = 0;
        while (i < row_b.size() && j < col_c.size() && out.size() < max_count) {
            if (row_b[i] < col_c[j]) {
                ++i;
            } else if (col_c[j] < row_b[i]) {
                ++j;
            } else {
                const Index w = row_b[i];
                ++i;
                ++j;
                // Every CNF nonterminal derives only non-empty words, so the
                // right part gets at most budget - 1 edges (and vice versa).
                std::vector<std::vector<std::string>> lefts;
                paths_for(b, u, w, budget - 1, max_count, max_steps, lefts, stats);
                for (const auto& left : lefts) {
                    if (out.size() >= max_count) return;
                    if (left.size() >= budget) continue;
                    std::vector<std::vector<std::string>> rights;
                    paths_for(c, w, v, budget - left.size(), max_count - out.size(),
                              max_steps, rights, stats);
                    for (auto& right : rights) {
                        std::vector<std::string> word = left;
                        word.insert(word.end(), right.begin(), right.end());
                        if (std::find(out.begin(), out.end(), word) == out.end()) {
                            out.push_back(std::move(word));
                        }
                        if (out.size() >= max_count) return;
                    }
                }
            }
        }
    }
}

}  // namespace spbla::cfpq
