#include "cfpq/azimov.hpp"

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::cfpq {

AzimovIndex azimov_cfpq(backend::Context& ctx, const data::LabeledGraph& graph,
                        const Grammar& g, const ops::SpGemmOptions& opts) {
    SPBLA_CHECKED(for (const auto& label : graph.labels())
                      core::validate(graph.matrix(label).csr(ctx)));
    SPBLA_PROF_SPAN("cfpq.azimov");
    AzimovIndex index;
    index.cnf = to_cnf(g);
    const Index n = graph.num_vertices();
    const Index k = index.cnf.num_nonterminals();

    index.nt_matrix.assign(k, Matrix{n, n});

    // Initialisation: terminal rules pull in the graph's label matrices.
    for (const auto& [a, label] : index.cnf.terminal_rules) {
        if (!graph.has_label(label)) continue;
        index.nt_matrix[a] =
            storage::ewise_add(ctx, index.nt_matrix[a], graph.matrix(label));
    }
    if (index.cnf.start_nullable) {
        index.nt_matrix[index.cnf.start] = storage::ewise_add(
            ctx, index.nt_matrix[index.cnf.start], Matrix::identity(n, ctx));
    }

    // Fixpoint: T_A += T_B x T_C for every A -> B C.
    for (bool changed = true; changed;) {
        changed = false;
        ++index.rounds;
        // One span per round: the trace shows how much work each fixpoint
        // iteration does and how quickly the rounds shrink to convergence.
        SPBLA_PROF_SPAN_ITER("cfpq.azimov.round", index.rounds);
        for (const auto& [a, b, c] : index.cnf.binary_rules) {
            const std::size_t before = index.nt_matrix[a].nnz();
            index.nt_matrix[a] =
                storage::multiply_add(ctx, index.nt_matrix[a], index.nt_matrix[b],
                                      index.nt_matrix[c], opts);
            if (index.nt_matrix[a].nnz() != before) changed = true;
        }
    }
    SPBLA_CHECKED(for (const auto& m : index.nt_matrix) core::validate(m.csr(ctx)));
    return index;
}

}  // namespace spbla::cfpq
