#include "cfpq/grammar.hpp"

#include <sstream>

#include "core/types.hpp"

namespace spbla::cfpq {

Grammar::Grammar(std::string start_symbol, std::vector<Rule> rules)
    : start_{std::move(start_symbol)}, rules_{std::move(rules)} {
    check(!rules_.empty(), Status::InvalidArgument, "Grammar: no rules");
    for (const auto& r : rules_) nonterminals_.insert(r.lhs);
    check(nonterminals_.contains(start_), Status::InvalidArgument,
          "Grammar: start symbol has no rule");
}

Grammar Grammar::parse(const std::string& text, const std::string& start_symbol) {
    std::vector<Rule> rules;
    std::istringstream lines{text};
    std::string line;
    while (std::getline(lines, line)) {
        // Skip blanks and comments.
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#') continue;
        const auto arrow = line.find("->");
        check(arrow != std::string::npos, Status::InvalidArgument,
              "Grammar::parse: rule line missing '->'");
        std::string lhs = line.substr(0, arrow);
        // Trim whitespace around the nonterminal name.
        const auto lb = lhs.find_first_not_of(" \t");
        const auto le = lhs.find_last_not_of(" \t");
        check(lb != std::string::npos, Status::InvalidArgument,
              "Grammar::parse: empty rule left-hand side");
        lhs = lhs.substr(lb, le - lb + 1);
        rules.push_back({std::move(lhs), rpq::parse(line.substr(arrow + 2))});
    }
    return Grammar{start_symbol, std::move(rules)};
}

std::vector<std::string> Grammar::terminals() const {
    std::set<std::string> out;
    for (const auto& r : rules_) {
        for (const auto& s : rpq::symbols_of(*r.rhs)) {
            if (!is_nonterminal(s)) out.insert(s);
        }
    }
    return {out.begin(), out.end()};
}

rpq::RegexPtr Grammar::combined_rhs(const std::string& nt) const {
    rpq::RegexPtr acc;
    for (const auto& r : rules_) {
        if (r.lhs != nt) continue;
        acc = acc ? rpq::alt(acc, r.rhs) : r.rhs;
    }
    check(acc != nullptr, Status::InvalidArgument,
          "Grammar::combined_rhs: unknown nonterminal " + nt);
    return acc;
}

}  // namespace spbla::cfpq
