#include "cfpq/cyk.hpp"

#include <vector>

namespace spbla::cfpq {

bool cyk_accepts(const CnfGrammar& cnf, std::span<const std::string> word) {
    if (word.empty()) return cnf.start_nullable;
    const std::size_t n = word.size();
    const Index k = cnf.num_nonterminals();

    // table[i][len][a]: nonterminal a derives word[i, i+len).
    std::vector<std::vector<std::vector<bool>>> table(
        n, std::vector<std::vector<bool>>(n + 1, std::vector<bool>(k, false)));

    for (std::size_t i = 0; i < n; ++i) {
        for (const auto& [a, t] : cnf.terminal_rules) {
            if (t == word[i]) table[i][1][a] = true;
        }
    }
    for (std::size_t len = 2; len <= n; ++len) {
        for (std::size_t i = 0; i + len <= n; ++i) {
            for (std::size_t split = 1; split < len; ++split) {
                for (const auto& [a, b, c] : cnf.binary_rules) {
                    if (!table[i][len][a] && table[i][split][b] &&
                        table[i + split][len - split][c]) {
                        table[i][len][a] = true;
                    }
                }
            }
        }
    }
    return table[0][n][cnf.start];
}

bool accepts(const Grammar& g, std::span<const std::string> word) {
    return cyk_accepts(to_cnf(g), word);
}

}  // namespace spbla::cfpq
