#include "cfpq/rsm.hpp"

#include "cfpq/cnf.hpp"

namespace spbla::cfpq {

Matrix Rsm::matrix(const std::string& symbol) const {
    const auto it = delta.find(symbol);
    if (it == delta.end()) return Matrix{num_states, num_states};
    return Matrix::from_coords(num_states, num_states, it->second);
}

std::vector<std::string> Rsm::symbols() const {
    std::vector<std::string> out;
    out.reserve(delta.size());
    for (const auto& [s, edges] : delta) out.push_back(s);
    return out;
}

Rsm build_rsm(const Grammar& g) {
    Rsm rsm;
    rsm.nonterminals = g.nonterminals();
    for (const auto& nt : rsm.nonterminals) {
        const rpq::Nfa box = rpq::glushkov(*g.combined_rhs(nt));
        const Index base = rsm.num_states;
        rsm.box_start.emplace(nt, base + box.start);
        auto& finals = rsm.box_final[nt];
        for (const auto f : box.accepting_states()) finals.push_back(base + f);
        for (const auto& [symbol, edges] : box.delta) {
            auto& dst = rsm.delta[symbol];
            for (const auto& [from, to] : edges) dst.push_back({base + from, base + to});
        }
        rsm.num_states += box.num_states;
    }
    rsm.nullable = nullable_nonterminals(g);
    return rsm;
}

}  // namespace spbla::cfpq
