#include "cfpq/worklist.hpp"

#include <deque>
#include <set>
#include <vector>

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "util/contracts.hpp"

namespace spbla::cfpq {

Matrix worklist_cfpq(const data::LabeledGraph& graph, const Grammar& g) {
    SPBLA_PROF_SPAN("cfpq.worklist");
    const CnfGrammar cnf = to_cnf(g);
    const Index n = graph.num_vertices();
    const Index k = cnf.num_nonterminals();

    // Rule indices by participant for O(1) combination lookup.
    std::vector<std::vector<std::pair<Index, Index>>> rules_by_left(k);   // B -> (A, C)
    std::vector<std::vector<std::pair<Index, Index>>> rules_by_right(k);  // C -> (A, B)
    for (const auto& [a, b, c] : cnf.binary_rules) {
        rules_by_left[b].emplace_back(a, c);
        rules_by_right[c].emplace_back(a, b);
    }

    // Edge sets per nonterminal with forward and reverse adjacency.
    std::vector<std::set<std::pair<Index, Index>>> have(k);
    std::vector<std::vector<std::vector<Index>>> out(k), in(k);
    for (Index a = 0; a < k; ++a) {
        out[a].resize(n);
        in[a].resize(n);
    }

    std::deque<std::tuple<Index, Index, Index>> work;  // (A, u, v)
    const auto add = [&](Index a, Index u, Index v) {
        if (have[a].insert({u, v}).second) {
            out[a][u].push_back(v);
            in[a][v].push_back(u);
            work.push_back({a, u, v});
        }
    };

    for (const auto& [a, label] : cnf.terminal_rules) {
        if (!graph.has_label(label)) continue;
        for (const auto& c : graph.matrix(label).to_coords()) add(a, c.row, c.col);
    }

    while (!work.empty()) {
        const auto [x, u, w] = work.front();
        work.pop_front();
        // X as the left operand: A -> X C needs (C, w, v).
        for (const auto& [a, c] : rules_by_left[x]) {
            // Copy: `add` may grow out[c][w] when c == x.
            const auto targets = out[c][w];
            for (const auto v : targets) add(a, u, v);
        }
        // X as the right operand: A -> B X needs (B, t, u).
        for (const auto& [a, b] : rules_by_right[x]) {
            const auto sources = in[b][u];
            for (const auto t : sources) add(a, t, w);
        }
    }

    std::vector<Coord> answers;
    for (const auto& [u, v] : have[cnf.start]) answers.push_back({u, v});
    if (cnf.start_nullable) {
        for (Index u = 0; u < n; ++u) answers.push_back({u, u});
    }
    Matrix result = Matrix::from_coords(n, n, std::move(answers));
    SPBLA_VALIDATE(result.csr());
    return result;
}

SinglePathIndex::SinglePathIndex(const data::LabeledGraph& graph, const Grammar& g)
    : cnf_{to_cnf(g)} {
    const Index n = graph.num_vertices();
    const Index k = cnf_.num_nonterminals();
    facts_.resize(k);

    std::vector<std::vector<std::pair<Index, Index>>> rules_by_left(k);   // B -> (rule, A)
    std::vector<std::vector<std::pair<Index, Index>>> rules_by_right(k);  // C -> (rule, A)
    for (Index r = 0; r < cnf_.binary_rules.size(); ++r) {
        const auto& [a, b, c] = cnf_.binary_rules[r];
        rules_by_left[b].emplace_back(r, a);
        rules_by_right[c].emplace_back(r, a);
    }

    std::vector<std::vector<std::vector<Index>>> out(k), in(k);
    for (Index a = 0; a < k; ++a) {
        out[a].resize(n);
        in[a].resize(n);
    }

    std::deque<std::tuple<Index, Index, Index>> work;
    const auto add = [&](Index a, Index u, Index v, const Provenance& why) {
        if (facts_[a].try_emplace({u, v}, why).second) {
            out[a][u].push_back(v);
            in[a][v].push_back(u);
            work.push_back({a, u, v});
        }
    };

    for (Index r = 0; r < cnf_.terminal_rules.size(); ++r) {
        const auto& [a, label] = cnf_.terminal_rules[r];
        if (!graph.has_label(label)) continue;
        for (const auto& c : graph.matrix(label).to_coords()) {
            add(a, c.row, c.col, Provenance{true, r, 0, 0});
        }
    }

    while (!work.empty()) {
        const auto [x, u, w] = work.front();
        work.pop_front();
        for (const auto& [rule, a] : rules_by_left[x]) {
            const Index c = std::get<2>(cnf_.binary_rules[rule]);
            const auto targets = out[c][w];  // copy: add() may grow it
            for (const auto v : targets) add(a, u, v, Provenance{false, 0, rule, w});
        }
        for (const auto& [rule, a] : rules_by_right[x]) {
            const Index b = std::get<1>(cnf_.binary_rules[rule]);
            const auto sources = in[b][u];
            for (const auto t : sources) add(a, t, w, Provenance{false, 0, rule, u});
        }
    }

    std::vector<Coord> answers;
    for (const auto& entry : facts_[cnf_.start]) {
        answers.push_back({entry.first.first, entry.first.second});
    }
    if (cnf_.start_nullable) {
        for (Index u = 0; u < n; ++u) answers.push_back({u, u});
    }
    reachable_ = Matrix::from_coords(n, n, std::move(answers));
}

bool SinglePathIndex::extract_one(Index u, Index v,
                                  std::vector<std::string>& word_out) const {
    word_out.clear();
    if (facts_[cnf_.start].contains({u, v})) {
        append_word(cnf_.start, u, v, word_out);
        return true;
    }
    if (cnf_.start_nullable && u == v) return true;  // the empty witness
    return false;
}

void SinglePathIndex::append_word(Index nt, Index u, Index v,
                                  std::vector<std::string>& out) const {
    // Provenance references strictly earlier facts, so this recursion is
    // well-founded and costs O(word length).
    const auto& why = facts_[nt].at({u, v});
    if (why.is_terminal) {
        out.push_back(cnf_.terminal_rules[why.terminal_rule].second);
        return;
    }
    const Index b = std::get<1>(cnf_.binary_rules[why.binary_rule]);
    const Index c = std::get<2>(cnf_.binary_rules[why.binary_rule]);
    append_word(b, u, why.mid, out);
    append_word(c, why.mid, v, out);
}

}  // namespace spbla::cfpq
