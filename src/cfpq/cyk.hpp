/// \file cyk.hpp
/// \brief CYK membership test — the formal-language oracle of the test suite.
#pragma once

#include <span>
#include <string>

#include "cfpq/cnf.hpp"

namespace spbla::cfpq {

/// True iff \p word (a sequence of terminal labels) is in L(cnf).
[[nodiscard]] bool cyk_accepts(const CnfGrammar& cnf, std::span<const std::string> word);

/// Convenience: lower \p g to CNF and test membership.
[[nodiscard]] bool accepts(const Grammar& g, std::span<const std::string> word);

}  // namespace spbla::cfpq
