#include "cfpq/tensor.hpp"

#include "core/validate.hpp"
#include "prof/prof.hpp"
#include "storage/dispatch.hpp"
#include "util/contracts.hpp"

namespace spbla::cfpq {

TensorIndex tensor_cfpq(backend::Context& ctx, const data::LabeledGraph& graph,
                        const Grammar& g, const TensorOptions& opts) {
    SPBLA_CHECKED(for (const auto& label : graph.labels())
                      core::validate(graph.matrix(label).csr(ctx)));
    SPBLA_PROF_SPAN("cfpq.tensor");
    const Rsm rsm = build_rsm(g);
    const Index n = graph.num_vertices();
    const Index k = rsm.num_states;

    TensorIndex index;
    // Initialise nonterminal matrices: nullable NTs hold the identity
    // (every vertex derives them via the empty path).
    for (const auto& nt : rsm.nonterminals) {
        index.nt_matrix.emplace(nt, Matrix{n, n});
    }
    for (const auto& nt : rsm.nullable) {
        index.nt_matrix.insert_or_assign(nt, Matrix::identity(n, ctx));
    }

    Matrix closure{k * n, k * n};  // warm-start accumulator
    const auto symbol_matrix = [&](const std::string& s) -> const Matrix& {
        const auto it = index.nt_matrix.find(s);
        return it != index.nt_matrix.end() ? it->second : graph.matrix(s);
    };

    for (;;) {
        ++index.rounds;
        SPBLA_PROF_SPAN_ITER("cfpq.tensor.round", index.rounds);

        // M = sum over RSM symbols of RSM_s (x) G_s.
        Matrix product{k * n, k * n};
        for (const auto& symbol : rsm.symbols()) {
            const Matrix& gm = symbol_matrix(symbol);
            if (gm.nnz() == 0) continue;
            product = storage::ewise_add(
                ctx, product, storage::kronecker(ctx, rsm.matrix(symbol), gm));
        }
        if (opts.incremental_closure) {
            // Valid warm start: closure(closure(Mprev) | M) == closure(M)
            // because Mprev is a submatrix of M (edges only get added).
            product = storage::ewise_add(ctx, product, closure);
        }
        closure = algorithms::transitive_closure(ctx, product, opts.strategy);

        // Harvest new nonterminal edges from the (start, final) blocks.
        bool changed = false;
        for (const auto& nt : rsm.nonterminals) {
            const Index q0 = rsm.box_start.at(nt);
            Matrix updated = index.nt_matrix.at(nt);
            for (const auto qf : rsm.box_final.at(nt)) {
                const Matrix block =
                    storage::submatrix(ctx, closure, q0 * n, qf * n, n, n);
                updated = storage::ewise_add(ctx, updated, block);
            }
            if (updated.nnz() != index.nt_matrix.at(nt).nnz()) {
                index.nt_matrix.insert_or_assign(nt, std::move(updated));
                changed = true;
            }
        }
        if (!changed) break;
    }

    index.closure = std::move(closure);
    SPBLA_CHECKED({
        core::validate(index.closure.csr(ctx));
        for (const auto& [nt, m] : index.nt_matrix) core::validate(m.csr(ctx));
    });
    return index;
}

}  // namespace spbla::cfpq
