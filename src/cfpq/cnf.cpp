#include "cfpq/cnf.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace spbla::cfpq {
namespace {

/// Plain production: lhs -> rhs (rhs empty means epsilon).
struct Production {
    std::string lhs;
    std::vector<std::string> rhs;  // each entry terminal or nonterminal name
};

/// Lowers regex right-hand sides into plain productions with |rhs| <= 2.
class Lowering {
public:
    explicit Lowering(const Grammar& g) : grammar_{g} {
        for (const auto& rule : g.rules()) {
            nonterminals_.insert(rule.lhs);
            productions_.push_back({rule.lhs, {lower(*rule.rhs)}});
        }
    }

    [[nodiscard]] std::vector<Production>& productions() { return productions_; }
    [[nodiscard]] const std::set<std::string>& nonterminals() const {
        return nonterminals_;
    }
    [[nodiscard]] bool is_nonterminal(const std::string& s) const {
        return nonterminals_.contains(s);
    }

private:
    std::string fresh() {
        std::string name = "_N" + std::to_string(counter_++);
        nonterminals_.insert(name);
        return name;
    }

    /// Returns a symbol generating exactly the regex's language.
    std::string lower(const rpq::Regex& re) {
        using Kind = rpq::Regex::Kind;
        switch (re.kind) {
            case Kind::Symbol:
                return re.symbol;
            case Kind::Epsilon: {
                const auto n = fresh();
                productions_.push_back({n, {}});
                return n;
            }
            case Kind::Empty:
                return fresh();  // no productions: derives nothing
            case Kind::Concat: {
                const auto l = lower(*re.left);
                const auto r = lower(*re.right);
                const auto n = fresh();
                productions_.push_back({n, {l, r}});
                return n;
            }
            case Kind::Alt: {
                const auto l = lower(*re.left);
                const auto r = lower(*re.right);
                const auto n = fresh();
                productions_.push_back({n, {l}});
                productions_.push_back({n, {r}});
                return n;
            }
            case Kind::Star: {
                const auto x = lower(*re.left);
                const auto n = fresh();
                productions_.push_back({n, {}});
                productions_.push_back({n, {n, x}});
                return n;
            }
            case Kind::Plus: {
                const auto x = lower(*re.left);
                const auto n = fresh();
                productions_.push_back({n, {x}});
                productions_.push_back({n, {n, x}});
                return n;
            }
            case Kind::Optional: {
                const auto x = lower(*re.left);
                const auto n = fresh();
                productions_.push_back({n, {}});
                productions_.push_back({n, {x}});
                return n;
            }
        }
        return fresh();
    }

    const Grammar& grammar_;
    std::vector<Production> productions_;
    std::set<std::string> nonterminals_;
    int counter_{0};
};

/// Nonterminals deriving the empty word (fixpoint).
std::set<std::string> nullable_set(const std::vector<Production>& prods,
                                   const std::set<std::string>& nonterminals) {
    std::set<std::string> nullable;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& p : prods) {
            if (nullable.contains(p.lhs)) continue;
            const bool all = std::all_of(p.rhs.begin(), p.rhs.end(),
                                         [&](const std::string& s) {
                                             return nonterminals.contains(s) &&
                                                    nullable.contains(s);
                                         });
            if (all) {
                nullable.insert(p.lhs);
                changed = true;
            }
        }
    }
    return nullable;
}

}  // namespace

std::vector<std::string> nullable_nonterminals(const Grammar& g) {
    Lowering low{g};
    const auto nullable = nullable_set(low.productions(), low.nonterminals());
    std::vector<std::string> out;
    for (const auto& nt : g.nonterminals()) {
        if (nullable.contains(nt)) out.push_back(nt);
    }
    return out;
}

CnfGrammar to_cnf(const Grammar& g) {
    Lowering low{g};
    auto& prods = low.productions();
    const auto& nts = low.nonterminals();
    const auto nullable = nullable_set(prods, nts);

    // Epsilon elimination: expand every production over the nullable
    // subsets of its RHS (|rhs| <= 2, so at most 3 non-empty variants).
    std::set<std::pair<std::string, std::vector<std::string>>> expanded;
    for (const auto& p : prods) {
        std::vector<std::vector<std::string>> variants{{}};
        for (const auto& s : p.rhs) {
            std::vector<std::vector<std::string>> next;
            for (const auto& v : variants) {
                auto with = v;
                with.push_back(s);
                next.push_back(std::move(with));
                if (nts.contains(s) && nullable.contains(s)) next.push_back(v);
            }
            variants = std::move(next);
        }
        for (auto& v : variants) {
            if (!v.empty()) expanded.insert({p.lhs, std::move(v)});
        }
    }

    // Unit elimination: unit-pairs closure, then re-anchor non-unit bodies.
    std::map<std::string, std::set<std::string>> unit_reach;  // A => * B
    for (const auto& nt : nts) unit_reach[nt].insert(nt);
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& [lhs, rhs] : expanded) {
            if (rhs.size() != 1 || !nts.contains(rhs[0])) continue;
            for (auto& [a, reach] : unit_reach) {
                if (!reach.contains(lhs)) continue;
                for (const auto& b : unit_reach[rhs[0]]) {
                    if (reach.insert(b).second) changed = true;
                }
            }
        }
    }

    std::set<std::pair<std::string, std::vector<std::string>>> final_prods;
    for (const auto& [a, reach] : unit_reach) {
        for (const auto& b : reach) {
            for (const auto& [lhs, rhs] : expanded) {
                if (lhs != b) continue;
                const bool is_unit = rhs.size() == 1 && nts.contains(rhs[0]);
                if (!is_unit) final_prods.insert({a, rhs});
            }
        }
    }

    // Terminal lifting and id assignment.
    CnfGrammar cnf;
    std::map<std::string, Index> id_of;
    const auto intern = [&](const std::string& name) {
        const auto [it, inserted] =
            id_of.try_emplace(name, static_cast<Index>(cnf.nt_names.size()));
        if (inserted) cnf.nt_names.push_back(name);
        return it->second;
    };
    intern(g.start_symbol());
    cnf.start = 0;
    cnf.start_nullable = nullable.contains(g.start_symbol());

    std::map<std::string, Index> term_nt;  // terminal -> lifted nonterminal id
    const auto lift_terminal = [&](const std::string& t) {
        const auto it = term_nt.find(t);
        if (it != term_nt.end()) return it->second;
        const Index id = intern("_T_" + t);
        term_nt.emplace(t, id);
        cnf.terminal_rules.emplace_back(id, t);
        return id;
    };

    std::set<std::pair<Index, std::string>> term_seen;
    std::set<std::tuple<Index, Index, Index>> bin_seen;
    for (const auto& [lhs, rhs] : final_prods) {
        const Index a = intern(lhs);
        if (rhs.size() == 1) {
            // Non-unit single symbol must be a terminal.
            if (term_seen.insert({a, rhs[0]}).second) {
                cnf.terminal_rules.emplace_back(a, rhs[0]);
            }
        } else {
            const Index b = nts.contains(rhs[0]) ? intern(rhs[0]) : lift_terminal(rhs[0]);
            const Index c = nts.contains(rhs[1]) ? intern(rhs[1]) : lift_terminal(rhs[1]);
            if (bin_seen.insert({a, b, c}).second) {
                cnf.binary_rules.emplace_back(a, b, c);
            }
        }
    }
    return cnf;
}

}  // namespace spbla::cfpq
