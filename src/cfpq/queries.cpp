#include "cfpq/queries.hpp"

namespace spbla::cfpq {

Grammar query_g1() {
    return Grammar::parse(
        "S -> subClassOf_r S subClassOf | type_r S type"
        " | subClassOf_r subClassOf | type_r type\n");
}

Grammar query_g2() {
    return Grammar::parse("S -> subClassOf_r S subClassOf | subClassOf\n");
}

Grammar query_geo() {
    return Grammar::parse(
        "S -> broaderTransitive S broaderTransitive_r"
        " | broaderTransitive broaderTransitive_r\n");
}

Grammar query_ma() {
    return Grammar::parse(
        "S -> d_r V d\n"
        "V -> ((S?) a_r)* (S?) (a (S?))*\n");
}

}  // namespace spbla::cfpq
