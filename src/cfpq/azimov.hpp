/// \file azimov.hpp
/// \brief Azimov's matrix CFPQ algorithm — the paper's `Mtx` baseline.
///
/// The grammar is lowered to CNF; one Boolean matrix per nonterminal is
/// iterated with the fused multiply-add T_A += T_B x T_C for every binary
/// rule A -> B C until no matrix grows. The CNF lowering (and the grammar
/// size increase it causes) is exactly the cost the tensor algorithm avoids.
#pragma once

#include <vector>

#include "backend/context.hpp"
#include "cfpq/cnf.hpp"
#include "data/labeled_graph.hpp"
#include "storage/dispatch.hpp"

namespace spbla::cfpq {

/// The single-path-style index: one graph-sized matrix per CNF nonterminal.
struct AzimovIndex {
    CnfGrammar cnf;
    std::vector<Matrix> nt_matrix;  ///< indexed by CNF nonterminal id
    std::size_t rounds{0};

    /// Answer pairs of the start nonterminal (includes the diagonal when
    /// the start symbol is nullable).
    [[nodiscard]] const Matrix& reachable() const { return nt_matrix[cnf.start]; }
};

/// Run Azimov's algorithm (index creation — the `Mtx` columns of Table IV).
[[nodiscard]] AzimovIndex azimov_cfpq(backend::Context& ctx,
                                      const data::LabeledGraph& graph, const Grammar& g,
                                      const ops::SpGemmOptions& opts = {});

}  // namespace spbla::cfpq
