/// \file worklist.hpp
/// \brief Naive Melski-Reps worklist CFL-reachability.
///
/// The classic O(n^3) dynamic-programming formulation of CFL reachability
/// (Melski & Reps). No linear algebra involved — it is the independent
/// reference oracle the property tests compare both matrix algorithms
/// against, and a baseline in the benchmarks.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cfpq/cnf.hpp"
#include "data/labeled_graph.hpp"

namespace spbla::cfpq {

/// All (u, v) pairs such that u reaches v by a path labelled by a word of
/// L(g). Cubic worklist algorithm; intended for oracle/baseline use.
[[nodiscard]] Matrix worklist_cfpq(const data::LabeledGraph& graph, const Grammar& g);

/// Single-path semantics (what the paper's `Mtx` computes, in contrast to
/// the tensor algorithm's all-paths index): every derived fact records *one*
/// derivation — the terminal edge or the (rule, middle vertex) that first
/// produced it — so one witness word per answer pair is recoverable in time
/// linear in its length, with no search.
class SinglePathIndex {
public:
    /// Build by running the provenance-recording worklist to fixpoint.
    SinglePathIndex(const data::LabeledGraph& graph, const Grammar& g);

    /// Answer pairs of the start nonterminal.
    [[nodiscard]] const Matrix& reachable() const noexcept { return reachable_; }

    /// One witness word for (u, v); false if the pair is not an answer.
    /// The empty word is returned for diagonal answers of a nullable start.
    [[nodiscard]] bool extract_one(Index u, Index v,
                                   std::vector<std::string>& word_out) const;

private:
    struct Provenance {
        bool is_terminal{false};
        Index terminal_rule{0};  ///< index into cnf_.terminal_rules
        Index binary_rule{0};    ///< index into cnf_.binary_rules
        Index mid{0};            ///< split vertex of a binary derivation
    };

    void append_word(Index nt, Index u, Index v, std::vector<std::string>& out) const;

    CnfGrammar cnf_;
    /// Per CNF nonterminal: derived (u, v) -> its first derivation.
    std::vector<std::map<std::pair<Index, Index>, Provenance>> facts_;
    Matrix reachable_;
};

}  // namespace spbla::cfpq
