/// \file paths.hpp
/// \brief All-paths extraction from a CFPQ index.
///
/// The paper's evaluation extracts "all paths with length not greater than
/// 20 edges" for answer pairs, capped at a path-count budget. The extractor
/// recursively decomposes an (A, u, v) fact through the CNF rules, using
/// the nonterminal matrices of the index as a derivability oracle: a middle
/// vertex w splits A -> B C iff B(u, w) and C(w, v) — i.e. w lies in the
/// intersection of row u of T_B with column v of T_C, read through the
/// transposed matrix.
#pragma once

#include <string>
#include <vector>

#include "backend/context.hpp"
#include "cfpq/azimov.hpp"
#include "data/labeled_graph.hpp"

namespace spbla::cfpq {

/// Extraction statistics (reported by bench_paths_extraction).
struct PathStats {
    std::size_t paths_found{0};
    std::size_t recursion_steps{0};
};

/// Extracts label words witnessing index facts.
class PathExtractor {
public:
    /// Builds column-access (transposed) copies of the index matrices.
    PathExtractor(backend::Context& ctx, const data::LabeledGraph& graph,
                  const AzimovIndex& index);

    /// All distinct label words of length <= max_len witnessing (u, v) for
    /// the start nonterminal, capped at max_count words and at \p max_steps
    /// units of recursion (the enumeration space can be exponential; capping
    /// mirrors the paper bounding extraction time).
    [[nodiscard]] std::vector<std::vector<std::string>> extract(
        Index u, Index v, std::size_t max_len, std::size_t max_count,
        PathStats* stats = nullptr, std::size_t max_steps = 200000) const;

private:
    void paths_for(Index nt, Index u, Index v, std::size_t budget,
                   std::size_t max_count, std::size_t max_steps,
                   std::vector<std::vector<std::string>>& out,
                   PathStats& stats) const;

    const data::LabeledGraph& graph_;
    const AzimovIndex& index_;
    std::vector<Matrix> transposed_;  // T_A^T per nonterminal
    std::vector<std::vector<std::string>> terminals_of_;              // nt -> labels
    std::vector<std::vector<std::pair<Index, Index>>> binaries_of_;   // nt -> (B, C)
};

}  // namespace spbla::cfpq
