/// \file tensor.hpp
/// \brief The Kronecker-product (tensor) CFPQ algorithm — the paper's `Tns`.
///
/// Works directly on the RSM (no CNF blow-up) and computes the *all-paths*
/// index: after the fixpoint, the final product closure together with the
/// per-nonterminal matrices is enough to restore every path of interest.
///
/// One round:
///   M  = sum over symbols s of  RSM_s (x) G_s      (s ranges over terminals
///                                                    and nonterminals)
///   C  = transitive closure of M
///   for every nonterminal A with box start q0 and final qf:
///       G_A |= C[q0-block, qf-block]               (n x n sub-matrix)
/// Rounds repeat until no G_A grows. Nullable nonterminals start with the
/// identity matrix (an empty path derives them at every vertex).
#pragma once

#include <map>
#include <string>

#include "algorithms/closure.hpp"
#include "backend/context.hpp"
#include "cfpq/rsm.hpp"
#include "data/labeled_graph.hpp"

namespace spbla::cfpq {

/// Options of the tensor fixpoint.
struct TensorOptions {
    /// Warm-start each round's closure from the previous round's closure
    /// (valid because the product matrix only grows). The paper identifies
    /// exactly this incremental-transitive-closure step as the algorithm's
    /// bottleneck, and bench_ablation shows why naive incrementality does
    /// not pay: the warm-started operand is much denser, so the saved
    /// rounds cost more than they save. Off by default; a genuinely
    /// sub-recompute incremental closure is the open problem the paper
    /// points at.
    bool incremental_closure = false;
    algorithms::ClosureStrategy strategy = algorithms::ClosureStrategy::Squaring;
};

/// The all-paths index produced by the tensor algorithm.
struct TensorIndex {
    /// graph-sized Boolean matrix per nonterminal (reachability via that NT).
    std::map<std::string, Matrix> nt_matrix;
    /// Final product transitive closure (used by path extraction).
    Matrix closure;
    std::size_t rounds{0};

    /// Answer pairs of the start nonterminal.
    [[nodiscard]] const Matrix& reachable(const Grammar& g) const {
        return nt_matrix.at(g.start_symbol());
    }
};

/// Run the tensor CFPQ algorithm (index creation — what Table IV times).
[[nodiscard]] TensorIndex tensor_cfpq(backend::Context& ctx,
                                      const data::LabeledGraph& graph, const Grammar& g,
                                      const TensorOptions& opts = {});

}  // namespace spbla::cfpq
