/// \file cnf.hpp
/// \brief Lowering to Chomsky normal form.
///
/// Azimov's matrix algorithm (and the CYK oracle) need CNF. The paper points
/// out that this transformation "leads to the grammar size increase, and
/// hence worsens performance" — reproduced here: the tensor algorithm skips
/// this lowering entirely, and the benchmark harness reports the size blowup.
///
/// Pipeline: regex RHS -> plain productions (fresh nonterminal per regex
/// node) -> epsilon elimination -> unit elimination -> terminal lifting.
/// The language is preserved except that derivability of the empty word is
/// recorded in `start_nullable` (the usual CNF convention).
#pragma once

#include <string>
#include <tuple>
#include <vector>

#include "cfpq/grammar.hpp"
#include "core/types.hpp"

namespace spbla::cfpq {

/// A CNF grammar over integer nonterminal ids.
struct CnfGrammar {
    Index start{0};
    std::vector<std::string> nt_names;  ///< id -> display name
    /// A -> a rules as (nonterminal id, terminal label).
    std::vector<std::pair<Index, std::string>> terminal_rules;
    /// A -> B C rules as (A, B, C).
    std::vector<std::tuple<Index, Index, Index>> binary_rules;
    /// Whether the start symbol derives the empty word.
    bool start_nullable{false};

    [[nodiscard]] Index num_nonterminals() const noexcept {
        return static_cast<Index>(nt_names.size());
    }
};

/// Lower a grammar to CNF.
[[nodiscard]] CnfGrammar to_cnf(const Grammar& g);

/// Nonterminals of \p g that derive the empty word (computed on the plain
/// production form; used by the tensor algorithm's initialisation).
[[nodiscard]] std::vector<std::string> nullable_nonterminals(const Grammar& g);

}  // namespace spbla::cfpq
