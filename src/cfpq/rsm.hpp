/// \file rsm.hpp
/// \brief Recursive state machine (RSM) built from a grammar.
///
/// The tensor algorithm represents the query as an RSM: one "box" per
/// nonterminal, each box being the Glushkov automaton of that nonterminal's
/// combined right-hand-side regex. Box states are numbered globally so the
/// whole RSM matricises into one Boolean transition matrix per symbol
/// (terminal *and* nonterminal labels both appear on RSM edges). No CNF
/// transformation is needed — the advantage the paper claims for the
/// tensor approach.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cfpq/grammar.hpp"
#include "rpq/nfa.hpp"
#include "storage/matrix.hpp"

namespace spbla::cfpq {

/// A matricised RSM.
struct Rsm {
    Index num_states{0};
    /// symbol (terminal or nonterminal) -> transition coordinate list.
    std::map<std::string, std::vector<Coord>> delta;
    /// nonterminal -> global start state of its box.
    std::map<std::string, Index> box_start;
    /// nonterminal -> global final states of its box.
    std::map<std::string, std::vector<Index>> box_final;
    /// Nonterminals deriving the empty word (box accepts epsilon).
    std::vector<std::string> nullable;
    /// Nonterminal order (stable across runs).
    std::vector<std::string> nonterminals;

    /// Boolean transition matrix of \p symbol (num_states square).
    [[nodiscard]] Matrix matrix(const std::string& symbol) const;

    /// Symbols with at least one RSM transition.
    [[nodiscard]] std::vector<std::string> symbols() const;
};

/// Build the RSM of \p g (one Glushkov box per nonterminal).
[[nodiscard]] Rsm build_rsm(const Grammar& g);

}  // namespace spbla::cfpq
