/// \file queries.hpp
/// \brief The CFPQ queries of the paper's evaluation: G1, G2, Geo, MA.
///
/// Inverse relations (the paper's x̄) are spelled `x_r` and must be present
/// in the graph (LabeledGraph::add_inverse_labels provides them).
#pragma once

#include "cfpq/grammar.hpp"

namespace spbla::cfpq {

/// G1 (same-generation over subClassOf and type):
///   S -> subClassOf_r S subClassOf | type_r S type
///      | subClassOf_r subClassOf   | type_r type
[[nodiscard]] Grammar query_g1();

/// G2: S -> subClassOf_r S subClassOf | subClassOf
[[nodiscard]] Grammar query_g2();

/// Geo (same-generation over broaderTransitive, for geospecies):
///   S -> broaderTransitive S broaderTransitive_r
///      | broaderTransitive broaderTransitive_r
[[nodiscard]] Grammar query_geo();

/// MA (memory aliases): S -> d_r V d ; V -> ((S?) a_r)* (S?) (a (S?))*
[[nodiscard]] Grammar query_ma();

}  // namespace spbla::cfpq
