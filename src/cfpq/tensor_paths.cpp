#include "cfpq/tensor_paths.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "cfpq/cnf.hpp"

namespace spbla::cfpq {

/// DFS context for a single box walk. `since_consume` guards against
/// zero-length cycles: nullable nonterminal edges advance the box state
/// without consuming a graph edge, so a cyclic box could loop forever.
struct TensorPathExtractor::Walk {
    const TensorPathExtractor& self;
    const std::string& nt;
    Index target_vertex;
    std::size_t budget;
    std::size_t max_count;
    std::vector<std::vector<std::string>>& out;
    std::vector<std::string> word;
    std::set<std::pair<Index, Index>> since_consume;  // (state, vertex)

    // Built once per extractor: global-state -> outgoing (symbol, state).
    static std::map<Index, std::vector<std::pair<std::string, Index>>> adjacency(
        const Rsm& rsm) {
        std::map<Index, std::vector<std::pair<std::string, Index>>> adj;
        for (const auto& [symbol, edges] : rsm.delta) {
            for (const auto& [from, to] : edges) adj[from].emplace_back(symbol, to);
        }
        return adj;
    }

    void step(Index q, Index w) {
        if (out.size() >= max_count) return;
        if (self.steps_left_ == 0) return;  // global DFS budget exhausted
        --self.steps_left_;
        const auto& finals = self.rsm_.box_final.at(nt);
        if (w == target_vertex && !word.empty() &&
            std::find(finals.begin(), finals.end(), q) != finals.end()) {
            if (std::find(out.begin(), out.end(), word) == out.end()) {
                out.push_back(word);
                if (out.size() >= max_count) return;
            }
            // fall through: longer witnesses may continue from here
        }

        const auto it = self.adj_.find(q);
        if (it == self.adj_.end()) return;
        for (const auto& [symbol, q2] : it->second) {
            if (out.size() >= max_count) return;
            if (self.grammar_.is_nonterminal(symbol)) {
                const auto nt_it = self.index_.nt_matrix.find(symbol);
                if (nt_it == self.index_.nt_matrix.end()) continue;
                const bool nullable =
                    std::find(self.nullable_.begin(), self.nullable_.end(), symbol) !=
                    self.nullable_.end();
                for (const auto w2 : nt_it->second.row(w)) {
                    if (out.size() >= max_count) return;
                    if (w2 == w && nullable) {
                        // epsilon derivation: advance the box state only.
                        if (since_consume.insert({q2, w}).second) {
                            step(q2, w);
                        }
                    }
                    // Non-empty sub-derivations of the callee nonterminal.
                    if (word.size() >= budget) continue;
                    std::vector<std::vector<std::string>> subwords;
                    self.paths_for(symbol, w, w2, budget - word.size(),
                                   max_count - out.size(), subwords);
                    for (const auto& sub : subwords) {
                        if (sub.empty() || word.size() + sub.size() > budget) continue;
                        const auto saved_size = word.size();
                        word.insert(word.end(), sub.begin(), sub.end());
                        auto saved_guard = std::move(since_consume);
                        since_consume.clear();
                        step(q2, w2);
                        since_consume = std::move(saved_guard);
                        word.resize(saved_size);
                        if (out.size() >= max_count) return;
                    }
                }
            } else {
                if (!self.graph_.has_label(symbol) || word.size() >= budget) continue;
                for (const auto w2 : self.graph_.matrix(symbol).row(w)) {
                    word.push_back(symbol);
                    auto saved_guard = std::move(since_consume);
                    since_consume.clear();
                    step(q2, w2);
                    since_consume = std::move(saved_guard);
                    word.pop_back();
                    if (out.size() >= max_count) return;
                }
            }
        }
    }
};

TensorPathExtractor::TensorPathExtractor(backend::Context& ctx,
                                         const data::LabeledGraph& graph,
                                         const Grammar& grammar,
                                         const TensorIndex& index)
    : graph_{graph}, grammar_{grammar}, index_{index}, rsm_{build_rsm(grammar)},
      nullable_{nullable_nonterminals(grammar)} {
    (void)ctx;
    adj_ = Walk::adjacency(rsm_);
}

std::vector<std::vector<std::string>> TensorPathExtractor::extract(
    Index u, Index v, std::size_t max_len, std::size_t max_count,
    std::size_t max_steps) const {
    std::vector<std::vector<std::string>> out;
    if (max_count == 0) return out;
    steps_left_ = max_steps;
    const auto& start_nt = grammar_.start_symbol();
    const bool nullable =
        std::find(nullable_.begin(), nullable_.end(), start_nt) != nullable_.end();
    if (nullable && u == v) out.push_back({});
    paths_for(start_nt, u, v, max_len, max_count, out);
    return out;
}

void TensorPathExtractor::paths_for(const std::string& nt, Index u, Index v,
                                    std::size_t budget, std::size_t max_count,
                                    std::vector<std::vector<std::string>>& out) const {
    if (budget == 0 || max_count == 0) return;
    // Prune with the index: only derivable pairs are worth walking.
    const auto it = index_.nt_matrix.find(nt);
    if (it == index_.nt_matrix.end() || !it->second.get(u, v)) return;
    // Left-recursion guard (see header).
    const auto frame = std::make_tuple(nt, u, v, budget);
    if (!active_.insert(frame).second) return;
    Walk walk{*this, nt, v, budget, max_count, out, {}, {}};
    walk.since_consume.insert({rsm_.box_start.at(nt), u});
    walk.step(rsm_.box_start.at(nt), u);
    active_.erase(frame);
}

}  // namespace spbla::cfpq
