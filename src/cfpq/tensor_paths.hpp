/// \file tensor_paths.hpp
/// \brief All-paths extraction from the tensor (Kronecker) CFPQ index.
///
/// The evaluation's central claim for the tensor algorithm is all-paths
/// semantics: "our algorithm computes data necessary to restore all
/// possible paths". This extractor realises that: given the fixpoint
/// nonterminal matrices, it walks a nonterminal's RSM box over the graph,
/// using the index as a derivability oracle — terminal edges consume graph
/// edges, nonterminal edges recurse into the callee box. Compare
/// cfpq::PathExtractor, which performs the same service from the CNF (Mtx)
/// index; tests check the two enumerate identical word sets.
#pragma once

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "backend/context.hpp"
#include "cfpq/tensor.hpp"

namespace spbla::cfpq {

/// Extracts witness label words from a TensorIndex.
class TensorPathExtractor {
public:
    /// \p graph and \p grammar must be the inputs the index was built from.
    TensorPathExtractor(backend::Context& ctx, const data::LabeledGraph& graph,
                        const Grammar& grammar, const TensorIndex& index);

    /// All distinct words of length <= max_len witnessing (u, v) for the
    /// start nonterminal, capped at max_count words. \p max_steps bounds the
    /// DFS work (the enumeration space can be exponential in max_len on
    /// cyclic graphs); when the budget runs out the words found so far are
    /// returned — same contract as the paper capping extraction by time.
    [[nodiscard]] std::vector<std::vector<std::string>> extract(
        Index u, Index v, std::size_t max_len, std::size_t max_count,
        std::size_t max_steps = 200000) const;

private:
    struct Walk;  // DFS state, defined in the implementation

    void paths_for(const std::string& nt, Index u, Index v, std::size_t budget,
                   std::size_t max_count,
                   std::vector<std::vector<std::string>>& out) const;

    const data::LabeledGraph& graph_;
    const Grammar& grammar_;
    const TensorIndex& index_;
    Rsm rsm_;
    std::vector<std::string> nullable_;
    /// Global RSM state -> outgoing (symbol, state) edges.
    std::map<Index, std::vector<std::pair<std::string, Index>>> adj_;
    /// Frames currently on the recursion stack. A re-entrant identical frame
    /// (same nonterminal, pair and budget with no edges consumed in between,
    /// i.e. a left-recursive expansion) would enumerate exactly the words the
    /// outer frame is already enumerating, so it is skipped.
    ///
    /// Allowlisted unguarded mutables: this DFS scratch lives for one
    /// single-threaded extract() call — path extraction is a host-side
    /// post-pass that never runs on the pool, so there is no mutex to name.
    mutable std::set<std::tuple<std::string, Index, Index, std::size_t>> active_;  // lint:allow(guarded-mutable)
    /// Remaining DFS step budget of the current extract() call.
    mutable std::size_t steps_left_ = 0;  // lint:allow(guarded-mutable)
};

}  // namespace spbla::cfpq
