/// \file grammar.hpp
/// \brief Context-free grammars with regex right-hand sides.
///
/// The paper's queries mix plain CFG rules (G1, G2, Geo) with regex-shaped
/// rules (the MA query's `V -> ((S?) a_r)* (S?) (a (S?))*`). A Grammar here
/// is a set of rules NT -> regex over mixed terminal/nonterminal symbols;
/// one grammar format feeds both engines: the RSM construction (tensor
/// algorithm) consumes the regexes directly, the CNF transform (Azimov's
/// algorithm, CYK oracle) lowers them to plain productions first.
///
/// Text format, one rule per line (same RHS syntax as rpq::parse):
///   S -> subClassOf_r S subClassOf | type_r type
///   V -> ((S?) a_r)* (S?) (a (S?))*
/// A symbol is a nonterminal iff it appears on some left-hand side.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rpq/regex.hpp"

namespace spbla::cfpq {

/// A context-free grammar with regex right-hand sides.
class Grammar {
public:
    /// One rule NT -> regex.
    struct Rule {
        std::string lhs;
        rpq::RegexPtr rhs;
    };

    Grammar(std::string start_symbol, std::vector<Rule> rules);

    /// Parse the line-oriented text format.
    [[nodiscard]] static Grammar parse(const std::string& text,
                                       const std::string& start_symbol = "S");

    [[nodiscard]] const std::string& start_symbol() const noexcept { return start_; }
    [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }

    [[nodiscard]] bool is_nonterminal(const std::string& symbol) const {
        return nonterminals_.contains(symbol);
    }

    /// All nonterminals (sorted; contains at least the start symbol).
    [[nodiscard]] std::vector<std::string> nonterminals() const {
        return {nonterminals_.begin(), nonterminals_.end()};
    }

    /// All terminals mentioned in the rules (sorted).
    [[nodiscard]] std::vector<std::string> terminals() const;

    /// The single regex `r1 | r2 | ...` combining all rules of \p nt.
    [[nodiscard]] rpq::RegexPtr combined_rhs(const std::string& nt) const;

private:
    std::string start_;
    std::vector<Rule> rules_;
    std::set<std::string> nonterminals_;
};

}  // namespace spbla::cfpq
