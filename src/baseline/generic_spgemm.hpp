/// \file generic_spgemm.hpp
/// \brief Generic (value-carrying) SpGEMM comparators.
///
/// Two baselines bracket the libraries the paper compares against:
///  - hash: the same Nsparse structure as the Boolean kernel, but with a
///    hash *map* accumulating float products (col -> running sum). This
///    isolates exactly the Boolean-specialisation delta.
///  - esc: expand-sort-compress (CUSP's strategy) — materialise every
///    partial product as (col, val), sort, then compress by key. Simple,
///    memory-hungry, the paper's "up to 4x more memory" end of the bracket.
#pragma once

#include "backend/context.hpp"
#include "baseline/generic_csr.hpp"

namespace spbla::baseline {

/// C = A x B with float arithmetic using per-row hash-map accumulators.
[[nodiscard]] GenericCsr multiply_hash(backend::Context& ctx, const GenericCsr& a,
                                       const GenericCsr& b);

/// C = A x B with float arithmetic using expand-sort-compress.
[[nodiscard]] GenericCsr multiply_esc(backend::Context& ctx, const GenericCsr& a,
                                      const GenericCsr& b);

}  // namespace spbla::baseline
