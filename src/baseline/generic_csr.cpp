#include "baseline/generic_csr.hpp"

#include "util/contracts.hpp"

namespace spbla::baseline {

GenericCsr::GenericCsr(Index nrows, Index ncols)
    : nrows_{nrows}, ncols_{ncols}, row_offsets_(static_cast<std::size_t>(nrows) + 1, 0) {}

GenericCsr GenericCsr::from_boolean(const CsrMatrix& m) {
    GenericCsr g{m.nrows(), m.ncols()};
    g.row_offsets_.assign(m.row_offsets().begin(), m.row_offsets().end());
    g.cols_.assign(m.cols().begin(), m.cols().end());
    g.vals_.assign(m.nnz(), 1.0f);
    return g;
}

GenericCsr GenericCsr::from_raw(Index nrows, Index ncols, std::vector<Index> row_offsets,
                                std::vector<Index> cols, std::vector<float> vals) {
    GenericCsr g{nrows, ncols};
    g.row_offsets_ = std::move(row_offsets);
    g.cols_ = std::move(cols);
    g.vals_ = std::move(vals);
#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_FULL || !defined(NDEBUG)
    g.validate();
#endif
    return g;
}

CsrMatrix GenericCsr::pattern() const {
    return CsrMatrix::from_raw(nrows_, ncols_, row_offsets_, cols_);
}

void GenericCsr::validate() const {
    check(vals_.size() == cols_.size(), Status::InvalidState,
          "GenericCsr: value/column array length mismatch");
    // CsrMatrix::from_raw validates the index structure in debug builds.
    [[maybe_unused]] const auto structure = pattern();
}

}  // namespace spbla::baseline
