/// \file generic_csr.hpp
/// \brief Generic (value-carrying) CSR matrix — the comparator format.
///
/// The paper's headline claim compares Boolean-specialised kernels against
/// "generic, not the Boolean optimized, operations from modern libraries"
/// (cuSPARSE, CUSP). Those libraries must carry a value array even when the
/// user only cares about structure, and their kernels accumulate value
/// products. This class reproduces that cost model faithfully: same index
/// layout as spbla::CsrMatrix plus a float per stored entry, and the paired
/// kernels in generic_spgemm / generic_ewise_add do real arithmetic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/csr.hpp"
#include "core/types.hpp"

namespace spbla::baseline {

/// CSR matrix with float values (sorted, duplicate-free rows).
class GenericCsr {
public:
    GenericCsr(Index nrows, Index ncols);

    GenericCsr() : GenericCsr(0, 0) {}

    /// Lift a Boolean matrix: every stored cell gets value 1.0f. This is
    /// exactly what a user of a generic library does with a Boolean graph.
    static GenericCsr from_boolean(const CsrMatrix& m);

    /// Adopt raw arrays (validated in debug builds).
    static GenericCsr from_raw(Index nrows, Index ncols, std::vector<Index> row_offsets,
                               std::vector<Index> cols, std::vector<float> vals);

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return cols_.size(); }

    [[nodiscard]] std::span<const Index> row_offsets() const noexcept { return row_offsets_; }
    [[nodiscard]] std::span<const Index> cols() const noexcept { return cols_; }
    [[nodiscard]] std::span<const float> vals() const noexcept { return vals_; }

    [[nodiscard]] std::span<const Index> row(Index r) const {
        check(r < nrows_, Status::OutOfRange, "GenericCsr::row");
        return std::span<const Index>(cols_).subspan(row_offsets_[r],
                                                     row_offsets_[r + 1] - row_offsets_[r]);
    }

    [[nodiscard]] std::span<const float> row_vals(Index r) const {
        check(r < nrows_, Status::OutOfRange, "GenericCsr::row_vals");
        return std::span<const float>(vals_).subspan(row_offsets_[r],
                                                     row_offsets_[r + 1] - row_offsets_[r]);
    }

    [[nodiscard]] Index row_nnz(Index r) const {
        check(r < nrows_, Status::OutOfRange, "GenericCsr::row_nnz");
        return row_offsets_[r + 1] - row_offsets_[r];
    }

    /// Drop values, keep structure (what a Boolean user ultimately extracts).
    [[nodiscard]] CsrMatrix pattern() const;

    /// Device footprint: indices plus the value array the Boolean format
    /// avoids — (nrows + 1 + nnz) * sizeof(Index) + nnz * sizeof(float).
    [[nodiscard]] std::size_t device_bytes() const noexcept {
        return (row_offsets_.size() + cols_.size()) * sizeof(Index) +
               vals_.size() * sizeof(float);
    }

    void validate() const;

private:
    Index nrows_;
    Index ncols_;
    std::vector<Index> row_offsets_;
    std::vector<Index> cols_;
    std::vector<float> vals_;
};

}  // namespace spbla::baseline
