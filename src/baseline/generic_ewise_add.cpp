#include "baseline/generic_ewise_add.hpp"

#include <vector>

namespace spbla::baseline {

GenericCsr ewise_add(backend::Context& ctx, const GenericCsr& a, const GenericCsr& b) {
    check(a.nrows() == b.nrows() && a.ncols() == b.ncols(), Status::DimensionMismatch,
          "generic ewise_add: shape mismatch");
    const Index m = a.nrows();

    auto row_sizes = ctx.alloc<Index>(m);
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto x = a.row(static_cast<Index>(i));
        const auto y = b.row(static_cast<Index>(i));
        std::size_t p = 0, q = 0, n = 0;
        while (p < x.size() && q < y.size()) {
            if (x[p] < y[q])
                ++p;
            else if (y[q] < x[p])
                ++q;
            else {
                ++p;
                ++q;
            }
            ++n;
        }
        row_sizes[i] = static_cast<Index>(n + (x.size() - p) + (y.size() - q));
    });

    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    std::uint64_t total = 0;
    for (Index i = 0; i < m; ++i) {
        row_offsets[i] = static_cast<Index>(total);
        total += row_sizes[i];
    }
    row_offsets[m] = static_cast<Index>(total);
    check(total <= 0xFFFFFFFFull, Status::OutOfRange, "generic ewise_add: nnz overflow");

    std::vector<Index> cols(static_cast<std::size_t>(total));
    std::vector<float> vals(static_cast<std::size_t>(total));
    ctx.parallel_for(m, 512, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        const auto x = a.row(r);
        const auto xv = a.row_vals(r);
        const auto y = b.row(r);
        const auto yv = b.row_vals(r);
        std::size_t p = 0, q = 0, out = row_offsets[i];
        while (p < x.size() && q < y.size()) {
            if (x[p] < y[q]) {
                cols[out] = x[p];
                vals[out] = xv[p];
                ++p;
            } else if (y[q] < x[p]) {
                cols[out] = y[q];
                vals[out] = yv[q];
                ++q;
            } else {
                cols[out] = x[p];
                vals[out] = xv[p] + yv[q];  // value work the Boolean kernel skips
                ++p;
                ++q;
            }
            ++out;
        }
        for (; p < x.size(); ++p, ++out) {
            cols[out] = x[p];
            vals[out] = xv[p];
        }
        for (; q < y.size(); ++q, ++out) {
            cols[out] = y[q];
            vals[out] = yv[q];
        }
    });

    return GenericCsr::from_raw(m, a.ncols(), std::move(row_offsets), std::move(cols),
                                std::move(vals));
}

}  // namespace spbla::baseline
