/// \file generic_ewise_add.hpp
/// \brief Generic (value-carrying) element-wise addition comparator.
///
/// Same two-pass row merge as the Boolean kernel, but merging float values
/// too (summing where both operands are present) — the extra value traffic
/// the Boolean specialisation avoids.
#pragma once

#include "backend/context.hpp"
#include "baseline/generic_csr.hpp"

namespace spbla::baseline {

/// C = A + B for equal-shape matrices, summing coincident values.
[[nodiscard]] GenericCsr ewise_add(backend::Context& ctx, const GenericCsr& a,
                                   const GenericCsr& b);

}  // namespace spbla::baseline
