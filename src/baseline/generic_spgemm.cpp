#include "baseline/generic_spgemm.hpp"

#include <algorithm>
#include <vector>

#include "util/bit_ops.hpp"

namespace spbla::baseline {
namespace {

constexpr Index kEmptySlot = 0xFFFFFFFFu;

/// Worker-local open-addressing hash map: column -> accumulated value.
struct HashMapScratch {
    std::vector<Index> keys;
    std::vector<float> vals;
    std::vector<Index> order;
};

/// Accumulate row \p i of A*B into the hash map; returns distinct count.
/// When \p emit is true the sorted (col, val) pairs are left in scratch.
Index hashmap_row(const GenericCsr& a, const GenericCsr& b, Index i, std::uint64_t ub,
                  HashMapScratch& s, bool emit) {
    if (ub == 0) {
        s.order.clear();
        return 0;
    }
    std::uint64_t want = util::next_pow2(ub * 2);
    const std::uint64_t cap = util::next_pow2(static_cast<std::uint64_t>(b.ncols()) * 2);
    if (want > cap) want = cap;
    if (want < 16) want = 16;
    const Index mask = static_cast<Index>(want - 1);
    s.keys.assign(static_cast<std::size_t>(want), kEmptySlot);
    s.vals.assign(static_cast<std::size_t>(want), 0.0f);

    Index count = 0;
    const auto arow = a.row(i);
    const auto avals = a.row_vals(i);
    for (std::size_t t = 0; t < arow.size(); ++t) {
        const Index k = arow[t];
        const float av = avals[t];
        const auto brow = b.row(k);
        const auto bvals = b.row_vals(k);
        for (std::size_t u = 0; u < brow.size(); ++u) {
            const Index c = brow[u];
            const float prod = av * bvals[u];  // the FMA the Boolean kernel skips
            Index h = (c * 2654435761u) & mask;
            for (;;) {
                const Index cur = s.keys[h];
                if (cur == c) {
                    s.vals[h] += prod;
                    break;
                }
                if (cur == kEmptySlot) {
                    s.keys[h] = c;
                    s.vals[h] = prod;
                    ++count;
                    break;
                }
                h = (h + 1) & mask;
            }
        }
    }
    if (emit) {
        s.order.clear();
        s.order.reserve(count);
        for (Index h = 0; h <= mask; ++h) {
            if (s.keys[h] != kEmptySlot) s.order.push_back(h);
        }
        std::sort(s.order.begin(), s.order.end(),
                  [&s](Index x, Index y) { return s.keys[x] < s.keys[y]; });
    }
    return count;
}

}  // namespace

GenericCsr multiply_hash(backend::Context& ctx, const GenericCsr& a, const GenericCsr& b) {
    check(a.ncols() == b.nrows(), Status::DimensionMismatch, "generic spgemm: shape");
    const Index m = a.nrows();

    // Same symbolic structure as the Boolean kernel: a tracked per-row
    // product upper-bound array drives table sizing in both passes.
    auto ub = ctx.alloc<std::uint64_t>(m);
    ctx.parallel_for(m, 1024, [&](std::size_t i) {
        std::uint64_t bound = 0;
        for (const auto k : a.row(static_cast<Index>(i))) bound += b.row_nnz(k);
        ub[i] = bound;
    });

    auto row_sizes = ctx.alloc<Index>(m);
    ctx.parallel_for_chunks(m, 64, [&](std::size_t begin, std::size_t end) {
        HashMapScratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
            row_sizes[i] = hashmap_row(a, b, static_cast<Index>(i), ub[i], scratch, false);
        }
    });

    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    std::uint64_t total = 0;
    for (Index i = 0; i < m; ++i) {
        row_offsets[i] = static_cast<Index>(total);
        total += row_sizes[i];
    }
    row_offsets[m] = static_cast<Index>(total);
    check(total <= 0xFFFFFFFFull, Status::OutOfRange, "generic spgemm: nnz overflow");

    std::vector<Index> cols(static_cast<std::size_t>(total));
    std::vector<float> vals(static_cast<std::size_t>(total));
    ctx.parallel_for_chunks(m, 64, [&](std::size_t begin, std::size_t end) {
        HashMapScratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
            hashmap_row(a, b, static_cast<Index>(i), ub[i], scratch, true);
            std::size_t out = row_offsets[i];
            for (const auto h : scratch.order) {
                cols[out] = scratch.keys[h];
                vals[out] = scratch.vals[h];
                ++out;
            }
        }
    });

    return GenericCsr::from_raw(m, b.ncols(), std::move(row_offsets), std::move(cols),
                                std::move(vals));
}

GenericCsr multiply_esc(backend::Context& ctx, const GenericCsr& a, const GenericCsr& b) {
    check(a.ncols() == b.nrows(), Status::DimensionMismatch, "generic spgemm: shape");
    const Index m = a.nrows();

    // Expand: materialise every partial product (this is the memory hog —
    // the buffer is proportional to the number of products, not the result).
    std::uint64_t products = 0;
    for (Index i = 0; i < m; ++i) {
        for (const auto k : a.row(i)) products += b.row_nnz(k);
    }
    auto exp_rows = ctx.alloc<Index>(products);
    auto exp_cols = ctx.alloc<Index>(products);
    auto exp_vals = ctx.alloc<float>(products);

    std::size_t out = 0;
    for (Index i = 0; i < m; ++i) {
        const auto arow = a.row(i);
        const auto avals = a.row_vals(i);
        for (std::size_t t = 0; t < arow.size(); ++t) {
            const auto brow = b.row(arow[t]);
            const auto bvals = b.row_vals(arow[t]);
            for (std::size_t u = 0; u < brow.size(); ++u) {
                exp_rows[out] = i;
                exp_cols[out] = brow[u];
                exp_vals[out] = avals[t] * bvals[u];
                ++out;
            }
        }
    }

    // Sort by (row, col). Rows are already grouped, so sort each row segment.
    std::vector<Index> perm(products);
    for (std::size_t k = 0; k < products; ++k) perm[k] = static_cast<Index>(k);
    std::size_t seg_begin = 0;
    for (std::size_t k = 1; k <= products; ++k) {
        if (k == products || exp_rows[k] != exp_rows[seg_begin]) {
            std::sort(perm.begin() + static_cast<std::ptrdiff_t>(seg_begin),
                      perm.begin() + static_cast<std::ptrdiff_t>(k),
                      [&](Index x, Index y) { return exp_cols[x] < exp_cols[y]; });
            seg_begin = k;
        }
    }

    // Compress by (row, col) key, summing duplicate products.
    std::vector<Index> row_offsets(static_cast<std::size_t>(m) + 1, 0);
    std::vector<Index> cols;
    std::vector<float> vals;
    Index last_row = 0;
    bool have_last = false;
    for (std::size_t k = 0; k < products; ++k) {
        const Index p = perm[k];
        const Index r = exp_rows[p];
        const Index c = exp_cols[p];
        if (have_last && r == last_row && c == cols.back()) {
            vals.back() += exp_vals[p];
        } else {
            cols.push_back(c);
            vals.push_back(exp_vals[p]);
            ++row_offsets[r + 1];
            last_row = r;
            have_last = true;
        }
    }
    for (Index r = 0; r < m; ++r) row_offsets[r + 1] += row_offsets[r];

    return GenericCsr::from_raw(m, b.ncols(), std::move(row_offsets), std::move(cols),
                                std::move(vals));
}

}  // namespace spbla::baseline
