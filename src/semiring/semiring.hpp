/// \file semiring.hpp
/// \brief Semiring definitions for the generalised kernels.
///
/// The paper's conclusion names custom semirings (explicitly Min-Plus) as a
/// future-work direction for the library. This header defines the semiring
/// concept the generalised containers/kernels are parameterised over, plus
/// the three instances the tests and benchmarks use:
///  - BoolOrAnd   — the library's native semiring, for cross-checking the
///                  generic path against the specialised kernels,
///  - MinPlus     — tropical semiring; its matrix closure is all-pairs
///                  shortest paths,
///  - PlusTimes   — counting semiring over uint64; powers of the adjacency
///                  matrix count walks.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>

namespace spbla::semiring {

/// A semiring supplies the value type, the two monoid operations and their
/// identities. `add` must be commutative and associative with identity
/// `zero()`; `mul` associative with identity `one()` and annihilator
/// `zero()`. Kernels drop entries equal to `zero()` (sparsity).
template <class S>
concept Semiring = requires(typename S::Value a, typename S::Value b) {
    { S::zero() } -> std::convertible_to<typename S::Value>;
    { S::one() } -> std::convertible_to<typename S::Value>;
    { S::add(a, b) } -> std::convertible_to<typename S::Value>;
    { S::mul(a, b) } -> std::convertible_to<typename S::Value>;
};

/// The Boolean semiring ({0,1}, or, and). Value is uint8 rather than bool
/// so the storage is a plain array (std::vector<bool> has no data()).
struct BoolOrAnd {
    using Value = std::uint8_t;
    static constexpr Value zero() noexcept { return 0; }
    static constexpr Value one() noexcept { return 1; }
    static constexpr Value add(Value a, Value b) noexcept {
        return static_cast<Value>(a | b);
    }
    static constexpr Value mul(Value a, Value b) noexcept {
        return static_cast<Value>(a & b);
    }
};

/// The tropical semiring (R u {inf}, min, +).
struct MinPlus {
    using Value = double;
    static constexpr Value zero() noexcept {
        return std::numeric_limits<double>::infinity();
    }
    static constexpr Value one() noexcept { return 0.0; }
    static constexpr Value add(Value a, Value b) noexcept { return std::min(a, b); }
    static constexpr Value mul(Value a, Value b) noexcept { return a + b; }
};

/// The counting semiring (N, +, x) over uint64 (wraps on overflow, which is
/// fine for bounded-length walk counting).
struct PlusTimes {
    using Value = std::uint64_t;
    static constexpr Value zero() noexcept { return 0; }
    static constexpr Value one() noexcept { return 1; }
    static constexpr Value add(Value a, Value b) noexcept { return a + b; }
    static constexpr Value mul(Value a, Value b) noexcept { return a * b; }
};

}  // namespace spbla::semiring
