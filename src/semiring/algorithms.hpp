/// \file algorithms.hpp
/// \brief Graph algorithms over non-Boolean semirings.
///
/// The payoff of the semiring generalisation: the same closure loop the
/// Boolean library runs for reachability computes all-pairs shortest paths
/// over MinPlus and bounded walk counts over PlusTimes.
#pragma once

// The semiring layer generalises the raw CSR kernels and sits *below* the
// storage engine, so it lifts from the concrete format directly.
#include "core/csr.hpp"  // lint:allow(format-leak)
#include "semiring/valued_csr.hpp"

namespace spbla::semiring {

/// All-pairs shortest paths: the MinPlus closure D+ of a weighted adjacency
/// matrix (distances over paths with >= 1 edge; absent cell = unreachable).
/// Converges because min is idempotent and weights are assumed non-negative.
[[nodiscard]] inline ValuedCsr<MinPlus> apsp(backend::Context& ctx,
                                             const ValuedCsr<MinPlus>& adj,
                                             std::size_t* rounds_out = nullptr) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch,
          "apsp: matrix must be square");
    ValuedCsr<MinPlus> d = adj;
    std::size_t rounds = 0;
    for (;;) {
        ++rounds;
        const auto next = ewise_add(ctx, d, multiply(ctx, d, d));
        if (next == d) break;
        d = next;
    }
    if (rounds_out != nullptr) *rounds_out = rounds;
    return d;
}

/// Number of distinct walks of exactly \p length edges between every vertex
/// pair: adj^length over the counting semiring.
[[nodiscard]] inline ValuedCsr<PlusTimes> count_walks(backend::Context& ctx,
                                                      const ValuedCsr<PlusTimes>& adj,
                                                      Index length) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch,
          "count_walks: matrix must be square");
    check(length >= 1, Status::InvalidArgument, "count_walks: length must be >= 1");
    ValuedCsr<PlusTimes> power = adj;
    for (Index step = 1; step < length; ++step) {
        power = multiply(ctx, power, adj);
    }
    return power;
}

/// Lift a Boolean matrix into a semiring matrix: stored cells get weight
/// \p weight (default: the semiring one).
template <Semiring S>
[[nodiscard]] ValuedCsr<S> lift(const CsrMatrix& m,
                                typename S::Value weight = S::one()) {
    std::vector<std::tuple<Index, Index, typename S::Value>> triplets;
    triplets.reserve(m.nnz());
    for (const auto& c : m.to_coords()) triplets.emplace_back(c.row, c.col, weight);
    return ValuedCsr<S>::from_triplets(m.nrows(), m.ncols(), std::move(triplets));
}

/// Dense semiring vector (size == matrix dimension; zero() = "absent").
template <Semiring S>
using DenseVector = std::vector<typename S::Value>;

/// y = x A over semiring S: y[j] = add over i of mul(x[i], A(i, j)) — the
/// frontier push generalised beyond Boolean.
template <Semiring S>
[[nodiscard]] DenseVector<S> vxm(backend::Context& ctx, const DenseVector<S>& x,
                                 const ValuedCsr<S>& a) {
    check(x.size() == a.nrows(), Status::DimensionMismatch, "semiring vxm");
    (void)ctx;  // single pass; the row loop is data-dependent on x's support
    DenseVector<S> y(a.ncols(), S::zero());
    for (Index i = 0; i < a.nrows(); ++i) {
        if (x[i] == S::zero()) continue;
        const auto cols = a.row(i);
        const auto vals = a.row_vals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            y[cols[k]] = S::add(y[cols[k]], S::mul(x[i], vals[k]));
        }
    }
    return y;
}

/// Single-source shortest paths: Bellman-Ford expressed as repeated MinPlus
/// vxm with self-accumulation (distance vector relaxation to fixpoint).
[[nodiscard]] inline DenseVector<MinPlus> sssp(backend::Context& ctx,
                                               const ValuedCsr<MinPlus>& adj,
                                               Index source) {
    check(adj.nrows() == adj.ncols(), Status::DimensionMismatch,
          "sssp: matrix must be square");
    check(source < adj.nrows(), Status::OutOfRange, "sssp: source out of range");
    DenseVector<MinPlus> dist(adj.nrows(), MinPlus::zero());
    dist[source] = MinPlus::one();  // 0.0
    for (;;) {
        auto relaxed = vxm<MinPlus>(ctx, dist, adj);
        bool changed = false;
        for (Index v = 0; v < adj.nrows(); ++v) {
            const auto next = MinPlus::add(dist[v], relaxed[v]);
            if (next != dist[v]) {
                dist[v] = next;
                changed = true;
            }
        }
        if (!changed) break;
    }
    return dist;
}

}  // namespace spbla::semiring
