/// \file valued_csr.hpp
/// \brief CSR matrix over an arbitrary semiring, with generic kernels.
///
/// The generalisation of the library the paper's conclusion sketches:
/// the same CSR layout and the same two-pass hash-accumulator SpGEMM as the
/// Boolean kernels, but parameterised over a Semiring. Entries equal to the
/// semiring zero are never stored. Header-only since everything is a
/// template.
#pragma once

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "backend/context.hpp"
#include "core/types.hpp"
#include "semiring/semiring.hpp"

namespace spbla::semiring {

/// Sorted, zero-free CSR matrix over semiring \p S.
template <Semiring S>
class ValuedCsr {
public:
    using Value = typename S::Value;

    ValuedCsr(Index nrows, Index ncols)
        : nrows_{nrows}, ncols_{ncols},
          row_offsets_(static_cast<std::size_t>(nrows) + 1, 0) {}

    ValuedCsr() : ValuedCsr(0, 0) {}

    /// Build from (row, col, value) triplets; duplicates combine with add,
    /// zeros are dropped.
    static ValuedCsr from_triplets(Index nrows, Index ncols,
                                   std::vector<std::tuple<Index, Index, Value>> t) {
        std::sort(t.begin(), t.end(), [](const auto& x, const auto& y) {
            return std::make_pair(std::get<0>(x), std::get<1>(x)) <
                   std::make_pair(std::get<0>(y), std::get<1>(y));
        });
        ValuedCsr m{nrows, ncols};
        for (const auto& [r, c, v] : t) {
            check(r < nrows && c < ncols, Status::OutOfRange,
                  "ValuedCsr::from_triplets: coordinate out of range");
            if (!m.cols_.empty() && !m.row_counts_pending_.empty() &&
                m.row_counts_pending_.back() == r && m.cols_.back() == c) {
                m.vals_.back() = S::add(m.vals_.back(), v);
            } else {
                m.cols_.push_back(c);
                m.vals_.push_back(v);
                m.row_counts_pending_.push_back(r);
            }
        }
        // Drop zeros, then build offsets.
        std::vector<Index> cols;
        std::vector<Value> vals;
        std::vector<Index> rows;
        for (std::size_t k = 0; k < m.cols_.size(); ++k) {
            if (m.vals_[k] == S::zero()) continue;
            cols.push_back(m.cols_[k]);
            vals.push_back(m.vals_[k]);
            rows.push_back(m.row_counts_pending_[k]);
        }
        m.cols_ = std::move(cols);
        m.vals_ = std::move(vals);
        std::fill(m.row_offsets_.begin(), m.row_offsets_.end(), 0);
        for (const auto r : rows) ++m.row_offsets_[r + 1];
        for (Index r = 0; r < nrows; ++r) m.row_offsets_[r + 1] += m.row_offsets_[r];
        m.row_counts_pending_.clear();
        return m;
    }

    [[nodiscard]] Index nrows() const noexcept { return nrows_; }
    [[nodiscard]] Index ncols() const noexcept { return ncols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return cols_.size(); }

    [[nodiscard]] std::span<const Index> row(Index r) const {
        check(r < nrows_, Status::OutOfRange, "ValuedCsr::row");
        return std::span<const Index>(cols_).subspan(
            row_offsets_[r], row_offsets_[r + 1] - row_offsets_[r]);
    }

    [[nodiscard]] std::span<const Value> row_vals(Index r) const {
        check(r < nrows_, Status::OutOfRange, "ValuedCsr::row_vals");
        return std::span<const Value>(vals_).subspan(
            row_offsets_[r], row_offsets_[r + 1] - row_offsets_[r]);
    }

    /// Value at (r, c); semiring zero when the cell is not stored.
    [[nodiscard]] Value get(Index r, Index c) const {
        const auto cols = row(r);
        const auto it = std::lower_bound(cols.begin(), cols.end(), c);
        if (it == cols.end() || *it != c) return S::zero();
        return row_vals(r)[static_cast<std::size_t>(it - cols.begin())];
    }

    friend bool operator==(const ValuedCsr& a, const ValuedCsr& b) noexcept {
        return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
               a.row_offsets_ == b.row_offsets_ && a.cols_ == b.cols_ &&
               a.vals_ == b.vals_;
    }

    // Kernels need raw access to assemble results.
    static ValuedCsr from_raw(Index nrows, Index ncols, std::vector<Index> offsets,
                              std::vector<Index> cols, std::vector<Value> vals) {
        ValuedCsr m{nrows, ncols};
        m.row_offsets_ = std::move(offsets);
        m.cols_ = std::move(cols);
        m.vals_ = std::move(vals);
        return m;
    }

private:
    Index nrows_;
    Index ncols_;
    std::vector<Index> row_offsets_;
    std::vector<Index> cols_;
    std::vector<Value> vals_;
    std::vector<Index> row_counts_pending_;  // scratch used by from_triplets
};

/// C = A x B over semiring S: per-row ordered-map accumulation (the generic
/// analog of the Boolean hash kernel; a std::map keeps output sorted without
/// a separate sort pass — clarity over raw speed for the generic path).
template <Semiring S>
[[nodiscard]] ValuedCsr<S> multiply(backend::Context& ctx, const ValuedCsr<S>& a,
                                    const ValuedCsr<S>& b) {
    check(a.ncols() == b.nrows(), Status::DimensionMismatch, "semiring multiply");
    const Index m = a.nrows();
    using Value = typename S::Value;

    std::vector<std::vector<Index>> row_cols(m);
    std::vector<std::vector<Value>> row_vals(m);
    ctx.parallel_for_chunks(m, 64, [&](std::size_t begin, std::size_t end) {
        std::map<Index, Value> acc;
        for (std::size_t i = begin; i < end; ++i) {
            acc.clear();
            const auto r = static_cast<Index>(i);
            const auto arow = a.row(r);
            const auto avals = a.row_vals(r);
            for (std::size_t t = 0; t < arow.size(); ++t) {
                const auto brow = b.row(arow[t]);
                const auto bvals = b.row_vals(arow[t]);
                for (std::size_t u = 0; u < brow.size(); ++u) {
                    const Value prod = S::mul(avals[t], bvals[u]);
                    const auto [it, inserted] = acc.try_emplace(brow[u], prod);
                    if (!inserted) it->second = S::add(it->second, prod);
                }
            }
            for (const auto& [c, v] : acc) {
                if (v == S::zero()) continue;
                row_cols[i].push_back(c);
                row_vals[i].push_back(v);
            }
        }
    });

    std::vector<Index> offsets(static_cast<std::size_t>(m) + 1, 0);
    for (Index i = 0; i < m; ++i) {
        offsets[i + 1] = offsets[i] + static_cast<Index>(row_cols[i].size());
    }
    std::vector<Index> cols(offsets[m]);
    std::vector<Value> vals(offsets[m]);
    for (Index i = 0; i < m; ++i) {
        std::copy(row_cols[i].begin(), row_cols[i].end(), cols.begin() + offsets[i]);
        std::copy(row_vals[i].begin(), row_vals[i].end(), vals.begin() + offsets[i]);
    }
    return ValuedCsr<S>::from_raw(m, b.ncols(), std::move(offsets), std::move(cols),
                                  std::move(vals));
}

/// C = A (+) B element-wise over semiring S (row merge, combining with add).
template <Semiring S>
[[nodiscard]] ValuedCsr<S> ewise_add(backend::Context& ctx, const ValuedCsr<S>& a,
                                     const ValuedCsr<S>& b) {
    check(a.nrows() == b.nrows() && a.ncols() == b.ncols(), Status::DimensionMismatch,
          "semiring ewise_add");
    const Index m = a.nrows();
    using Value = typename S::Value;

    std::vector<std::vector<Index>> row_cols(m);
    std::vector<std::vector<Value>> row_vals(m);
    ctx.parallel_for(m, 256, [&](std::size_t i) {
        const auto r = static_cast<Index>(i);
        const auto x = a.row(r);
        const auto xv = a.row_vals(r);
        const auto y = b.row(r);
        const auto yv = b.row_vals(r);
        std::size_t p = 0, q = 0;
        const auto emit = [&](Index c, Value v) {
            if (v == S::zero()) return;
            row_cols[i].push_back(c);
            row_vals[i].push_back(v);
        };
        while (p < x.size() && q < y.size()) {
            if (x[p] < y[q]) {
                emit(x[p], xv[p]);
                ++p;
            } else if (y[q] < x[p]) {
                emit(y[q], yv[q]);
                ++q;
            } else {
                emit(x[p], S::add(xv[p], yv[q]));
                ++p;
                ++q;
            }
        }
        for (; p < x.size(); ++p) emit(x[p], xv[p]);
        for (; q < y.size(); ++q) emit(y[q], yv[q]);
    });

    std::vector<Index> offsets(static_cast<std::size_t>(m) + 1, 0);
    for (Index i = 0; i < m; ++i) {
        offsets[i + 1] = offsets[i] + static_cast<Index>(row_cols[i].size());
    }
    std::vector<Index> cols(offsets[m]);
    std::vector<Value> vals(offsets[m]);
    for (Index i = 0; i < m; ++i) {
        std::copy(row_cols[i].begin(), row_cols[i].end(), cols.begin() + offsets[i]);
        std::copy(row_vals[i].begin(), row_vals[i].end(), vals.begin() + offsets[i]);
    }
    return ValuedCsr<S>::from_raw(m, a.ncols(), std::move(offsets), std::move(cols),
                                  std::move(vals));
}

}  // namespace spbla::semiring
