/// \file cfpq_engine.cpp
/// \brief Context-free path querying with both evaluation algorithms.
///
/// Runs the paper's G1 / G2 / Geo / MA queries over generated analogs of the
/// evaluation datasets, with the tensor (`Tns`, all-paths) and Azimov
/// (`Mtx`, single-path) algorithms side by side, then extracts witness
/// paths from the index — the full Table IV + paths-extraction story in
/// one executable.
#include <cstdio>
#include <string>
#include <vector>

#include "backend/context.hpp"
#include "cfpq/azimov.hpp"
#include "cfpq/paths.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "cfpq/tensor_paths.hpp"
#include "data/kernel_alias.hpp"
#include "data/rdflike.hpp"
#include "util/timer.hpp"

namespace {

void run_case(spbla::backend::Context& ctx, const char* graph_name,
              const spbla::data::LabeledGraph& graph, const char* query_name,
              const spbla::cfpq::Grammar& grammar) {
    using namespace spbla;
    std::printf("%-12s x %-4s  |V|=%-7u |E|=%-8zu", graph_name, query_name,
                graph.num_vertices(), graph.num_edges());

    util::Timer timer;
    const auto tns = cfpq::tensor_cfpq(ctx, graph, grammar);
    const double tns_ms = timer.millis();

    timer.reset();
    const auto mtx = cfpq::azimov_cfpq(ctx, graph, grammar);
    const double mtx_ms = timer.millis();

    std::printf("  answers=%-7zu Tns=%8.2f ms  Mtx=%8.2f ms\n",
                mtx.reachable().nnz(), tns_ms, mtx_ms);

    // Extract a few witness paths (<= 12 edges, <= 3 paths, bounded DFS
    // work) from both indices: the CNF-based extractor over the Mtx index
    // and the RSM-based extractor over the Tns index (the all-paths claim).
    const cfpq::PathExtractor mtx_extractor{ctx, graph, mtx};
    const cfpq::TensorPathExtractor tns_extractor{ctx, graph, grammar, tns};
    std::size_t shown = 0;
    for (const auto& pair : mtx.reachable().to_coords()) {
        const auto words =
            mtx_extractor.extract(pair.row, pair.col, 12, 3, nullptr, 50000);
        if (words.empty()) continue;
        std::printf("    %u -> %u via:", pair.row, pair.col);
        for (const auto& l : words[0]) std::printf(" %s", l.c_str());
        const auto tns_words = tns_extractor.extract(pair.row, pair.col, 12, 3, 50000);
        std::printf("%s  [tensor extractor: %s]\n",
                    words.size() > 1 ? "  (+ more)" : "",
                    tns_words.empty() ? "DFS budget exhausted before a witness"
                                      : "agrees");
        if (++shown == 2) break;
    }
}

}  // namespace

int main() {
    using namespace spbla;
    backend::Context ctx{backend::Policy::Parallel};

    auto ontology = data::make_ontology(3000, 1.0);
    ontology.add_inverse_labels();
    auto geo = data::make_geospecies(2000, 16);
    geo.add_inverse_labels();
    const auto alias = data::make_alias_graph(800);

    run_case(ctx, "ontology", ontology, "G1", cfpq::query_g1());
    run_case(ctx, "ontology", ontology, "G2", cfpq::query_g2());
    run_case(ctx, "geospecies", geo, "Geo", cfpq::query_geo());
    run_case(ctx, "alias", alias, "MA", cfpq::query_ma());
    return 0;
}
