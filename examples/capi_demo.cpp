/// \file capi_demo.cpp
/// \brief Using SPbLA through its C-compatible API only.
///
/// This is what an FFI embedding (the paper's Python wrapper) sees: opaque
/// handles, status codes, no C++ types. Computes two steps of a transitive
/// closure by hand with C += A x A.
#include <stdio.h>
#include <stdlib.h>

#include "spbla/spbla.h"

#define CHECK(expr)                                                          \
    do {                                                                     \
        spbla_Status status__ = (expr);                                      \
        if (status__ != SPBLA_STATUS_SUCCESS) {                              \
            fprintf(stderr, "%s failed: %s (%s)\n", #expr,                   \
                    spbla_Status_Name(status__), spbla_GetLastError());      \
            exit(1);                                                         \
        }                                                                    \
    } while (0)

int main(void) {
    CHECK(spbla_Initialize(SPBLA_INIT_DEFAULT));
    printf("spbla version %u, initialized=%d\n", spbla_GetVersion(),
           spbla_IsInitialized());

    /* A 5-cycle. */
    spbla_Matrix a = NULL;
    CHECK(spbla_Matrix_New(&a, 5, 5));
    const spbla_Index rows[] = {0, 1, 2, 3, 4};
    const spbla_Index cols[] = {1, 2, 3, 4, 0};
    CHECK(spbla_Matrix_Build(a, rows, cols, 5, SPBLA_HINT_NO));

    /* closure = a; closure += closure * closure, twice (covers length <= 4). */
    spbla_Matrix closure = NULL;
    CHECK(spbla_Matrix_Duplicate(a, &closure));
    for (int round = 0; round < 2; ++round) {
        CHECK(spbla_MxM(closure, closure, closure, SPBLA_HINT_ACCUMULATE));
        spbla_Index nvals = 0;
        CHECK(spbla_Matrix_Nvals(closure, &nvals));
        printf("after round %d: %u pairs\n", round + 1, nvals);
    }

    /* Read the result back. */
    spbla_Index nvals = 0;
    CHECK(spbla_Matrix_Nvals(closure, &nvals));
    spbla_Index* out_rows = (spbla_Index*)malloc(nvals * sizeof(spbla_Index));
    spbla_Index* out_cols = (spbla_Index*)malloc(nvals * sizeof(spbla_Index));
    CHECK(spbla_Matrix_ExtractPairs(closure, out_rows, out_cols, &nvals));
    printf("reachability pairs (paths of length 1..4 on a 5-cycle): %u\n", nvals);
    free(out_rows);
    free(out_cols);

    CHECK(spbla_Matrix_Free(&a));
    CHECK(spbla_Matrix_Free(&closure));
    CHECK(spbla_Finalize());
    printf("done, live objects: %llu\n",
           (unsigned long long)spbla_GetLiveObjects());
    return 0;
}
