/// \file rpq_engine.cpp
/// \brief A small regular-path-query engine on the SPbLA primitives.
///
/// Usage:
///   rpq_engine                       # demo over a generated LUBM graph
///   rpq_engine <triples-file> <re>   # query a triples file with a regex
///
/// The query pipeline is the one the paper's evaluation times: compile the
/// regex to a minimal DFA, take the Kronecker product with the graph per
/// symbol, close it transitively, and read the answer blocks.
#include <cstdio>
#include <string>
#include <vector>

#include "backend/context.hpp"
#include "data/io.hpp"
#include "data/lubm.hpp"
#include "rpq/engine.hpp"
#include "util/timer.hpp"

namespace {

void run_query(spbla::backend::Context& ctx, const spbla::data::LabeledGraph& graph,
               const std::string& regex_text) {
    using namespace spbla;
    std::printf("query: %s\n", regex_text.c_str());
    const auto query = rpq::compile_query(regex_text);
    std::printf("  automaton: %u states (minimal DFA)\n", query.num_states);

    util::Timer timer;
    const auto index = rpq::build_index(ctx, graph, query);
    const double ms = timer.millis();
    std::printf("  index: product nnz=%zu, closure rounds=%zu, built in %.2f ms\n",
                index.product_nnz, index.closure_rounds, ms);
    std::printf("  answers: %zu vertex pairs\n", index.reachable.nnz());

    // Show a couple of witness paths.
    std::size_t shown = 0;
    for (const auto& pair : index.reachable.to_coords()) {
        std::vector<std::string> labels;
        if (rpq::extract_path(graph, query, pair.row, pair.col, labels)) {
            std::printf("  witness %u -> %u:", pair.row, pair.col);
            for (const auto& l : labels) std::printf(" %s", l.c_str());
            std::printf("\n");
        }
        if (++shown == 3) break;
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace spbla;
    backend::Context ctx{backend::Policy::Parallel};

    if (argc == 3) {
        const auto graph = data::load_triples_file(argv[1]);
        run_query(ctx, graph, argv[2]);
        return 0;
    }

    // Demo: LUBM-like graph, queries over its most frequent relations.
    const auto graph = data::make_lubm(20);
    std::printf("graph: %u vertices, %zu edges\n", graph.num_vertices(),
                graph.num_edges());
    const auto labels = graph.labels_by_frequency();
    std::printf("most frequent labels: %s, %s, %s\n", labels[0].c_str(),
                labels[1].c_str(), labels[2].c_str());

    run_query(ctx, graph, labels[0] + "*");
    run_query(ctx, graph, labels[1] + " " + labels[0] + "*");
    run_query(ctx, graph, "(" + labels[0] + " | " + labels[1] + ")+");
    run_query(ctx, graph, "memberOf subOrganizationOf type");
    return 0;
}
