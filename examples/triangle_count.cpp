/// \file triangle_count.cpp
/// \brief Triangle counting over an R-MAT graph — the classic GraphBLAS
/// showcase, here on the Boolean primitives.
#include <cstdio>

#include "algorithms/triangles.hpp"
#include "backend/context.hpp"
#include "data/rmat.hpp"
#include "util/timer.hpp"

int main() {
    using namespace spbla;
    backend::Context ctx{backend::Policy::Parallel};

    for (const Index scale : {8u, 10u, 12u}) {
        // Symmetrise the R-MAT digraph and drop self loops.
        const auto raw = data::make_rmat(scale, 8, /*seed=*/scale);
        std::vector<Coord> sym;
        for (const auto& c : raw.to_coords()) {
            if (c.row == c.col) continue;
            sym.push_back(c);
            sym.push_back({c.col, c.row});
        }
        const auto adj = Matrix::from_coords(raw.nrows(), raw.ncols(), std::move(sym), ctx);

        util::Timer timer;
        const auto triangles = algorithms::count_triangles(ctx, adj);
        std::printf("rmat scale=%2u  |V|=%6u  |E|=%8zu  triangles=%10llu  (%.3f ms)\n",
                    scale, adj.nrows(), adj.nnz(),
                    static_cast<unsigned long long>(triangles), timer.millis());
    }
    return 0;
}
