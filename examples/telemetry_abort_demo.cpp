/// \file telemetry_abort_demo.cpp
/// \brief Crash flight recorder demo: run a few dispatched ops, then die.
///
/// The process runs a handful of storage-engine operations (each of which
/// the dispatcher records into the telemetry flight ring) and then reports
/// a contract violation on purpose. The violation dumps the ring — the last
/// dispatched ops as JSON lines — to stderr and, when SPBLA_METRICS=<path>
/// is set, to <path>.flight, before the process aborts. CI runs this and
/// feeds the dump to tools/check_trace.py --flight, proving a production
/// abort leaves a parseable post-mortem trail.
///
/// Expected exit: SIGABRT. This is not a smoke test; examples/CMakeLists.txt
/// deliberately registers no ctest entry for it.
#include <cstdio>

#include "backend/context.hpp"
#include "spbla/matrix.hpp"
#include "util/contracts.hpp"

int main() {
    using namespace spbla;

    backend::Context ctx{backend::Policy::Parallel};

    // A few dispatched ops so the flight ring has something to remember.
    const auto a = Matrix::from_coords(
        8, 8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {6, 7}}, ctx);
    const auto b = storage::transpose(ctx, a);
    const auto c = storage::multiply(ctx, a, b);
    const auto d = storage::ewise_add(ctx, c, a);
    std::printf("ran 3 ops, last result %u x %u with %zu nnz; now aborting\n",
                d.nrows(), d.ncols(), d.nnz());
    std::fflush(stdout);

    // Report an invariant failure directly (SPBLA_ASSERT compiles out in
    // release builds, but the reporting path is always linked): dumps the
    // flight ring and aborts.
    util::contract_violation("demo_invariant != broken", __FILE__, __LINE__,
                             "telemetry_abort_demo: intentional crash");
}
