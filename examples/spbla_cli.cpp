/// \file spbla_cli.cpp
/// \brief Command-line utility over the library: dataset generation, format
/// conversion, graph statistics and one-shot queries.
///
/// Subcommands:
///   generate <kind> <size> <out.triples>   kind: lubm | geospecies | taxonomy
///                                                | alias | ontology
///   stats <in.triples>                     vertex/edge/label statistics
///   closure <in.mtx> [out.mtx]             transitive closure of a matrix
///   square <in.mtx> [out.mtx]              C = A * A (the SpGEMM stress op)
///   rpq <in.triples> <regex>               answer count for a regular query
///   cfpq <in.triples> <g1|g2|geo|ma>       answer count, Tns and Mtx timings
///
/// Run without arguments for a self-demo that exercises every subcommand on
/// a temporary generated dataset.
#include <cstdio>
#include <cstring>
#include <string>

#include "algorithms/closure.hpp"
#include "backend/context.hpp"
#include "cfpq/azimov.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "data/io.hpp"
#include "data/kernel_alias.hpp"
#include "data/lubm.hpp"
#include "data/matrix_market.hpp"
#include "data/rdflike.hpp"
#include "rpq/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace spbla;

backend::Context& ctx() {
    static backend::Context instance{backend::Policy::Parallel};
    return instance;
}

int cmd_generate(const std::string& kind, Index size, const std::string& out) {
    data::LabeledGraph g;
    if (kind == "lubm") {
        g = data::make_lubm(size);
    } else if (kind == "geospecies") {
        g = data::make_geospecies(size, 24);
        g.add_inverse_labels();
    } else if (kind == "taxonomy") {
        g = data::make_taxonomy(size, 2);
        g.add_inverse_labels();
    } else if (kind == "alias") {
        g = data::make_alias_graph(size);
    } else if (kind == "ontology") {
        g = data::make_ontology(size, 1.0);
        g.add_inverse_labels();
    } else {
        std::fprintf(stderr, "unknown dataset kind: %s\n", kind.c_str());
        return 1;
    }
    data::save_triples_file(out, g);
    std::printf("wrote %s: %u vertices, %zu edges\n", out.c_str(), g.num_vertices(),
                g.num_edges());
    return 0;
}

int cmd_stats(const std::string& in) {
    const auto g = data::load_triples_file(in);
    std::printf("%s: %u vertices, %zu edges, %zu labels\n", in.c_str(),
                g.num_vertices(), g.num_edges(), g.labels().size());
    for (const auto& label : g.labels_by_frequency()) {
        std::printf("  %-30s %zu\n", label.c_str(), g.label_count(label));
    }
    return 0;
}

int cmd_closure(const std::string& in, const char* out) {
    const auto m = data::load_matrix_market_file(in);
    util::Timer timer;
    algorithms::ClosureStats stats;
    const auto c = algorithms::transitive_closure(ctx(), m,
                                                  algorithms::ClosureStrategy::Squaring,
                                                  &stats);
    std::printf("closure of %s: nnz %zu -> %zu in %zu rounds (%.2f ms)\n", in.c_str(),
                m.nnz(), c.nnz(), stats.rounds, timer.millis());
    if (out != nullptr) data::save_matrix_market_file(out, c);
    return 0;
}

int cmd_square(const std::string& in, const char* out) {
    const auto m = data::load_matrix_market_file(in);
    util::Timer timer;
    const auto c = storage::multiply(ctx(), m, m);
    std::printf("square of %s: nnz %zu -> %zu (%.2f ms, peak temp %zu bytes)\n",
                in.c_str(), m.nnz(), c.nnz(), timer.millis(),
                ctx().tracker().peak_bytes());
    if (out != nullptr) data::save_matrix_market_file(out, c);
    return 0;
}

int cmd_rpq(const std::string& in, const std::string& regex) {
    const auto g = data::load_triples_file(in);
    const auto q = rpq::compile_query(regex);
    util::Timer timer;
    const auto index = rpq::build_index(ctx(), g, q);
    std::printf("rpq `%s` over %s: %zu answer pairs (index in %.2f ms, %zu closure "
                "rounds)\n",
                regex.c_str(), in.c_str(), index.reachable.nnz(), timer.millis(),
                index.closure_rounds);
    return 0;
}

int cmd_cfpq(const std::string& in, const std::string& query) {
    const auto g = data::load_triples_file(in);
    cfpq::Grammar grammar = query == "g1"    ? cfpq::query_g1()
                            : query == "g2"  ? cfpq::query_g2()
                            : query == "geo" ? cfpq::query_geo()
                                             : cfpq::query_ma();
    util::Timer timer;
    const auto tns = cfpq::tensor_cfpq(ctx(), g, grammar);
    const double tns_ms = timer.millis();
    timer.reset();
    const auto mtx = cfpq::azimov_cfpq(ctx(), g, grammar);
    const double mtx_ms = timer.millis();
    std::printf("cfpq %s over %s: %zu answers (Tns %.2f ms / Mtx %.2f ms, agree: %s)\n",
                query.c_str(), in.c_str(), mtx.reachable().nnz(), tns_ms, mtx_ms,
                tns.reachable(grammar) == mtx.reachable() ? "yes" : "NO");
    return 0;
}

int self_demo() {
    const std::string dir = "/tmp";
    const std::string triples = dir + "/spbla_cli_demo.triples";
    const std::string mtx = dir + "/spbla_cli_demo.mtx";
    std::printf("== spbla_cli self-demo ==\n");
    if (cmd_generate("ontology", 800, triples) != 0) return 1;
    if (cmd_stats(triples) != 0) return 1;
    // Use the acyclic subClassOf matrix for the matrix demos: the union
    // contains every relation plus its inverse, whose closure saturates.
    const auto g = data::load_triples_file(triples);
    data::save_matrix_market_file(mtx, g.matrix("subClassOf"));
    if (cmd_square(mtx, nullptr) != 0) return 1;
    if (cmd_closure(mtx, nullptr) != 0) return 1;
    if (cmd_rpq(triples, "subClassOf subClassOf*") != 0) return 1;
    if (cmd_cfpq(triples, "g2") != 0) return 1;
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) return self_demo();
        const std::string cmd = argv[1];
        if (cmd == "generate" && argc == 5) {
            return cmd_generate(argv[2], static_cast<Index>(std::atoi(argv[3])), argv[4]);
        }
        if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
        if (cmd == "closure" && (argc == 3 || argc == 4)) {
            return cmd_closure(argv[2], argc == 4 ? argv[3] : nullptr);
        }
        if (cmd == "square" && (argc == 3 || argc == 4)) {
            return cmd_square(argv[2], argc == 4 ? argv[3] : nullptr);
        }
        if (cmd == "rpq" && argc == 4) return cmd_rpq(argv[2], argv[3]);
        if (cmd == "cfpq" && argc == 4) return cmd_cfpq(argv[2], argv[3]);
        std::fprintf(stderr,
                     "usage: spbla_cli [generate|stats|closure|square|rpq|cfpq] ...\n"
                     "(see the header comment of spbla_cli.cpp)\n");
        return 2;
    } catch (const spbla::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
