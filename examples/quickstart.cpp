/// \file quickstart.cpp
/// \brief First contact with the SPbLA C++ API.
///
/// Builds two small Boolean matrices, runs every primitive the paper lists
/// (multiply-add, element-wise add, Kronecker product, transpose,
/// sub-matrix, reduce) and prints the results.
#include <cstdio>

#include "backend/context.hpp"
#include "spbla/matrix.hpp"

namespace {

void print_matrix(const char* name, const spbla::Matrix& m) {
    std::printf("%s (%u x %u, %zu nnz):\n", name, m.nrows(), m.ncols(), m.nnz());
    for (const auto& c : m.to_coords()) std::printf("  (%u, %u)\n", c.row, c.col);
}

}  // namespace

int main() {
    using namespace spbla;

    // A context is the simulated device every kernel runs on.
    backend::Context ctx{backend::Policy::Parallel};

    // Fill matrix with values {(i, j)_k}_k — a tiny directed graph.
    const auto a = Matrix::from_coords(4, 4, {{0, 1}, {1, 2}, {2, 3}}, ctx);
    const auto b = Matrix::from_coords(4, 4, {{1, 0}, {2, 1}, {3, 2}}, ctx);
    print_matrix("A", a);
    print_matrix("B", b);

    // C += A x B over the Boolean semiring. The storage engine picks the
    // representation (CSR, COO or dense bitmap) per operation.
    const auto c = storage::multiply_add(ctx, Matrix{4, 4, ctx}, a, b);
    print_matrix("A * B", c);

    // M += N (element-wise addition).
    print_matrix("A + B", storage::ewise_add(ctx, a, b));

    // K = A (x) B (Kronecker product).
    const auto k = storage::kronecker(ctx, a, b);
    std::printf("A (x) B: %u x %u with %zu nnz\n", k.nrows(), k.ncols(), k.nnz());

    // M = N^T.
    print_matrix("A^T", storage::transpose(ctx, a));

    // M = N[0..2, 1..3].
    print_matrix("A[0..2, 1..3]", storage::submatrix(ctx, a, 0, 1, 2, 2));

    // V = reduceToColumn(A).
    const auto v = storage::reduce_to_column(ctx, a);
    std::printf("reduceToColumn(A): %zu non-empty rows\n", v.nnz());

    // The memory story: Boolean CSR costs (m + 1 + nnz) indices.
    std::printf("device footprint of A: %zu bytes\n", a.device_bytes());
    std::printf("peak tracked device memory: %zu bytes\n", ctx.tracker().peak_bytes());
    return 0;
}
