/// \file shortest_paths.cpp
/// \brief All-pairs shortest paths with the Min-Plus semiring layer.
///
/// The paper's conclusion names custom semirings (Min-Plus explicitly) as
/// the library's extension direction; this example runs the tropical
/// closure — the exact same fixpoint loop the Boolean library uses for
/// reachability — over a weighted road-network-like grid, and cross-checks
/// one source against a textbook Dijkstra.
#include <cstdio>
#include <queue>
#include <vector>

#include "backend/context.hpp"
#include "semiring/algorithms.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace spbla;
using semiring::MinPlus;
using semiring::ValuedCsr;

/// Weighted grid: 4-neighbour lattice with random positive weights.
ValuedCsr<MinPlus> make_grid(Index side, util::Rng& rng) {
    std::vector<std::tuple<Index, Index, double>> triplets;
    const auto at = [side](Index r, Index c) { return r * side + c; };
    for (Index r = 0; r < side; ++r) {
        for (Index c = 0; c < side; ++c) {
            const double w1 = 1.0 + static_cast<double>(rng.below(9));
            const double w2 = 1.0 + static_cast<double>(rng.below(9));
            if (c + 1 < side) {
                triplets.emplace_back(at(r, c), at(r, c + 1), w1);
                triplets.emplace_back(at(r, c + 1), at(r, c), w1);
            }
            if (r + 1 < side) {
                triplets.emplace_back(at(r, c), at(r + 1, c), w2);
                triplets.emplace_back(at(r + 1, c), at(r, c), w2);
            }
        }
    }
    return ValuedCsr<MinPlus>::from_triplets(side * side, side * side,
                                             std::move(triplets));
}

/// Textbook Dijkstra from one source (the cross-check).
std::vector<double> dijkstra(const ValuedCsr<MinPlus>& adj, Index source) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(adj.nrows(), kInf);
    using Entry = std::pair<double, Index>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    dist[source] = 0.0;
    queue.push({0.0, source});
    while (!queue.empty()) {
        const auto [d, u] = queue.top();
        queue.pop();
        if (d > dist[u]) continue;
        const auto cols = adj.row(u);
        const auto vals = adj.row_vals(u);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (d + vals[k] < dist[cols[k]]) {
                dist[cols[k]] = d + vals[k];
                queue.push({dist[cols[k]], cols[k]});
            }
        }
    }
    return dist;
}

}  // namespace

int main() {
    backend::Context ctx{backend::Policy::Parallel};
    util::Rng rng{31337};

    const Index side = 16;
    const auto grid = make_grid(side, rng);
    std::printf("grid %ux%u: %u vertices, %zu weighted edges\n", side, side,
                grid.nrows(), grid.nnz());

    util::Timer timer;
    std::size_t rounds = 0;
    const auto distances = semiring::apsp(ctx, grid, &rounds);
    std::printf("APSP via Min-Plus closure: %zu finite pairs in %.2f ms "
                "(%zu squaring rounds)\n",
                distances.nnz(), timer.millis(), rounds);

    // Cross-check a corner source against Dijkstra.
    const auto reference = dijkstra(grid, 0);
    std::size_t mismatches = 0;
    for (Index v = 1; v < grid.nrows(); ++v) {
        if (distances.get(0, v) != reference[v]) ++mismatches;
    }
    std::printf("Dijkstra cross-check from vertex 0: %zu mismatches\n", mismatches);
    std::printf("corner-to-corner distance: %.0f\n",
                distances.get(0, grid.nrows() - 1));
    return mismatches == 0 ? 0 : 1;
}
