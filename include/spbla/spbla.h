/**
 * @file spbla.h
 * @brief C-compatible API of the SPbLA sparse Boolean linear algebra library.
 *
 * This header mirrors the embedding surface the paper describes: a plain C
 * interface over the C++ core so the library can be consumed from any
 * runtime with a C FFI (the paper ships a Python wrapper over exactly this
 * kind of API via ctypes).
 *
 * Conventions:
 *  - every function returns a status code; SPBLA_STATUS_SUCCESS is 0,
 *  - objects are opaque handles created/destroyed by the library,
 *  - the library must be initialised with spbla_Initialize before any other
 *    call and torn down with spbla_Finalize.
 */
#ifndef SPBLA_SPBLA_H
#define SPBLA_SPBLA_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/** Index type of matrix coordinates (rows, columns). */
typedef uint32_t spbla_Index;

/** Status codes returned by every API function. */
typedef enum spbla_Status {
    SPBLA_STATUS_SUCCESS = 0,            /**< operation completed */
    SPBLA_STATUS_INVALID_ARGUMENT = 1,   /**< bad pointer or parameter */
    SPBLA_STATUS_DIMENSION_MISMATCH = 2, /**< operand shapes incompatible */
    SPBLA_STATUS_OUT_OF_RANGE = 3,       /**< index outside matrix bounds */
    SPBLA_STATUS_NOT_INITIALIZED = 4,    /**< library not initialised */
    SPBLA_STATUS_INVALID_STATE = 5,      /**< e.g. finalize with live objects */
    SPBLA_STATUS_ERROR = 6               /**< unclassified failure */
} spbla_Status;

/** Hints passed to spbla_Initialize. */
typedef enum spbla_InitHint {
    SPBLA_INIT_DEFAULT = 0,       /**< parallel backend (simulated device) */
    SPBLA_INIT_SEQUENTIAL = 1     /**< sequential CPU fallback backend */
} spbla_InitHint;

/** Hints passed to operation entry points. */
typedef enum spbla_OpHint {
    SPBLA_HINT_NO = 0,          /**< overwrite the result operand */
    SPBLA_HINT_ACCUMULATE = 1   /**< OR the result into the result operand */
} spbla_OpHint;

/** Storage-format hints for the storage engine's dispatch layer. */
typedef enum spbla_FormatHint {
    SPBLA_FORMAT_AUTO = 0,     /**< cost-driven per-op format selection */
    SPBLA_FORMAT_CSR = 1,      /**< force the CSR (cuBool-style) backend */
    SPBLA_FORMAT_COO = 2,      /**< force the COO (clBool-style) backend */
    SPBLA_FORMAT_DENSE = 3,    /**< force the dense bit-packed backend */
    SPBLA_FORMAT_BITBLOCK = 4  /**< force the 64x64 tiled bit-block backend */
} spbla_FormatHint;

/** Opaque sparse Boolean matrix handle. */
typedef struct spbla_Matrix_t* spbla_Matrix;

/** Opaque sparse Boolean vector handle (the paper lists vector support as
 *  partial; this API provides creation, fill, read and the ops the
 *  path-querying layer needs). */
typedef struct spbla_Vector_t* spbla_Vector;

/** Initialise the library. Must be the first call. */
spbla_Status spbla_Initialize(spbla_InitHint hint);

/** Tear the library down. Fails with INVALID_STATE if matrices are live. */
spbla_Status spbla_Finalize(void);

/** True (1) iff the library is initialised. */
int spbla_IsInitialized(void);

/** Human-readable name of a status code. */
const char* spbla_Status_Name(spbla_Status status);

/** Message of the most recent error on this thread ("" if none). */
const char* spbla_GetLastError(void);

/** Library version as major*10000 + minor*100 + patch. */
uint32_t spbla_GetVersion(void);

/** Number of live matrix handles (diagnostic). */
uint64_t spbla_GetLiveObjects(void);

/* ------------------------------ profiling ------------------------------
 * The library can be built with SPBLA_PROFILE=off|counters|trace. At "off"
 * (the default release configuration) all instrumentation is compiled out
 * and these calls are accepted but have no observable effect. At "counters"
 * or "trace" they move the runtime level within what was compiled in.
 * Setting the environment variable SPBLA_TRACE=<path> before the first
 * library call is equivalent to enabling level 2 and dumping a trace to
 * <path> at process exit. */

/** Set the runtime profiling level: 0 = off, 1 = per-span counters,
 *  2 = counters + Chrome-trace span recording. Levels above what the
 *  library was compiled with record nothing for the compiled-out macro
 *  sites. May be called before spbla_Initialize. */
spbla_Status spbla_ProfEnable(int level);

/** Write everything recorded so far as Chrome trace-event JSON (loadable in
 *  chrome://tracing or Perfetto) to the file at `path`. Call at a quiescent
 *  point (no operation in flight). May be called before spbla_Initialize. */
spbla_Status spbla_ProfDump(const char* path);

/* ------------------------------ telemetry ------------------------------
 * Unlike profiling, the telemetry layer is always compiled in and always
 * on: lock-free counters, gauges and log2-bucketed latency histograms
 * updated by every operation (measured overhead <2% on the SpGEMM ladder).
 * Setting the environment variable SPBLA_METRICS=<path> before the first
 * library call dumps JSON to <path> and Prometheus text to <path>.prom at
 * process exit, and arms the crash flight recorder's dump at
 * <path>.flight. */

/** Serialisation format for spbla_MetricsDump. */
typedef enum spbla_MetricsFormat {
    SPBLA_METRICS_JSON = 0,      /**< JSON document (schema spbla.metrics.v1) */
    SPBLA_METRICS_PROMETHEUS = 1 /**< Prometheus text exposition format */
} spbla_MetricsFormat;

/** Snapshot every telemetry instrument and write it to the file at `path`.
 *  May be called at any time, including before spbla_Initialize and
 *  concurrently with running operations. */
spbla_Status spbla_MetricsDump(const char* path, spbla_MetricsFormat format);

/** Zero all counters and histograms. Level gauges (live bytes, pool depth)
 *  keep their current values; peak gauges re-baseline to the current level. */
spbla_Status spbla_MetricsReset(void);

/* --------------------------- storage engine ----------------------------
 * Matrices are format-polymorphic: the library stores each one in CSR, COO
 * or a dense bitmap and picks the representation per operation with a cost
 * model (conversions are cached under a memory budget). These calls are the
 * escape hatch when the caller knows better than the model. */

/** Force every subsequent operation onto one backend (or restore AUTO).
 *  Operations the forced backend does not implement fall back to CSR, so
 *  results are always identical to AUTO. May be called any time. */
spbla_Status spbla_SetFormatHint(spbla_FormatHint hint);

/** Bound, in bytes, on cached secondary representations kept alive across
 *  operations (0 disables caching). Default: 256 MiB. */
spbla_Status spbla_SetCacheBudget(uint64_t bytes);

/** Re-anchor one matrix's primary storage format (converting if needed).
 *  SPBLA_FORMAT_AUTO is invalid here. */
spbla_Status spbla_Matrix_SetFormatHint(spbla_Matrix matrix, spbla_FormatHint hint);

/* ---------------------------- multi-device -----------------------------
 * The library can 2D block-partition matrices across a group of simulated
 * devices and run the hot operations tile-wise with cross-device overlap.
 * Once configured, operations whose operands cross the thresholds execute
 * sharded transparently; smaller ones stay on the single-device path. */

/** Grid/device knobs for sharded execution. Zero means "library default"
 *  for every field except n_devices. */
typedef struct spbla_DistConfig {
    uint32_t n_devices;         /**< simulated devices; 0 disables sharding */
    uint32_t threads_per_device;/**< pool workers per device (0 or 1: one lane) */
    uint32_t grid_rows;         /**< explicit tile grid; 0 = auto from nnz */
    uint32_t grid_cols;         /**< explicit tile grid; 0 = auto from nnz */
    uint64_t tile_budget_bytes; /**< per-tile memory target; 0 = default */
    uint64_t min_nnz;           /**< route threshold: combined operand nnz */
    uint32_t min_dim;           /**< route threshold: largest dimension */
} spbla_DistConfig;

/** Enable sharded execution across `config->n_devices` simulated devices
 *  (rebuilding the device group), or disable it when `config` is NULL or
 *  `n_devices` is 0. Do not call with operations in flight. */
spbla_Status spbla_DistConfigure(const spbla_DistConfig* config);

/* -------------------------------- matrix ------------------------------- */

/** Create an empty nrows x ncols matrix. */
spbla_Status spbla_Matrix_New(spbla_Matrix* matrix, spbla_Index nrows, spbla_Index ncols);

/** Destroy a matrix and null the handle. */
spbla_Status spbla_Matrix_Free(spbla_Matrix* matrix);

/** Fill with nvals (rows[k], cols[k]) pairs; duplicates are merged.
 *  With SPBLA_HINT_ACCUMULATE the pairs are OR-ed into existing content. */
spbla_Status spbla_Matrix_Build(spbla_Matrix matrix, const spbla_Index* rows,
                                const spbla_Index* cols, spbla_Index nvals,
                                spbla_OpHint hint);

/** Read all true cells. On input *nvals is the buffer capacity; on output
 *  the number written. Fails with OUT_OF_RANGE if the capacity is short. */
spbla_Status spbla_Matrix_ExtractPairs(spbla_Matrix matrix, spbla_Index* rows,
                                       spbla_Index* cols, spbla_Index* nvals);

spbla_Status spbla_Matrix_Nrows(spbla_Matrix matrix, spbla_Index* nrows);
spbla_Status spbla_Matrix_Ncols(spbla_Matrix matrix, spbla_Index* ncols);
spbla_Status spbla_Matrix_Nvals(spbla_Matrix matrix, spbla_Index* nvals);

/** duplicate = an independent copy of matrix. */
spbla_Status spbla_Matrix_Duplicate(spbla_Matrix matrix, spbla_Matrix* duplicate);

/* ------------------------------ operations -----------------------------
 * Operand shapes are validated; the result handle is overwritten and takes
 * the operation's natural shape (with SPBLA_HINT_ACCUMULATE the result
 * additionally participates as an accumulator, so its shape must match). */

/** result (+)= a x b over the Boolean semiring.
 *  SPBLA_HINT_ACCUMULATE gives the paper's fused C += M x N. */
spbla_Status spbla_MxM(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b,
                       spbla_OpHint hint);

/** result = a | b (element-wise addition M += N when result aliases a). */
spbla_Status spbla_Matrix_EWiseAdd(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b);

/** result = a & b (element-wise multiplication over the Boolean semiring). */
spbla_Status spbla_Matrix_EWiseMult(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b);

/** result = a (x) b (Kronecker product). */
spbla_Status spbla_Kronecker(spbla_Matrix result, spbla_Matrix a, spbla_Matrix b);

/** result = a^T. */
spbla_Status spbla_Matrix_Transpose(spbla_Matrix result, spbla_Matrix a);

/** result = a[row0 .. row0+m, col0 .. col0+n] (shapes must match result). */
spbla_Status spbla_Matrix_ExtractSubMatrix(spbla_Matrix result, spbla_Matrix a,
                                           spbla_Index row0, spbla_Index col0,
                                           spbla_Index m, spbla_Index n);

/** result = reduceToColumn(a): an a.nrows x 1 matrix marking non-empty rows. */
spbla_Status spbla_Matrix_Reduce(spbla_Matrix result, spbla_Matrix a);

/* ----------------------------- incremental -----------------------------
 * Streaming updates: apply an insert/delete batch to a matrix in place, or
 * maintain a transitive closure under such a batch at cost proportional to
 * the change instead of the graph. */

/** matrix := (matrix \ dels) | adds — delete-then-insert, so a cell named
 *  by both lists ends up present. The two coordinate lists describe cells
 *  of matrix's own shape; a no-op batch (both empty) leaves the content
 *  stamp untouched, any other batch re-stamps the handle. */
spbla_Status spbla_MatrixApplyDelta(spbla_Matrix matrix, const spbla_Index* add_rows,
                                    const spbla_Index* add_cols, spbla_Index n_add,
                                    const spbla_Index* del_rows,
                                    const spbla_Index* del_cols, spbla_Index n_del);

/** Incrementally maintain closure = transitive closure of adj under one
 *  insert/delete batch. The batch is applied to adj in place; closure must
 *  hold the transitive closure of adj's pre-batch cells (pass an empty
 *  matrix to (re)compute it from scratch) and is updated semi-naively —
 *  only the change's frontier is multiplied against the base. */
spbla_Status spbla_ClosureIncremental(spbla_Matrix closure, spbla_Matrix adj,
                                      const spbla_Index* add_rows,
                                      const spbla_Index* add_cols, spbla_Index n_add,
                                      const spbla_Index* del_rows,
                                      const spbla_Index* del_cols, spbla_Index n_del);

/* -------------------------------- vector ------------------------------- */

/** Create an empty Boolean vector of the given size. */
spbla_Status spbla_Vector_New(spbla_Vector* vector, spbla_Index size);

/** Destroy a vector and null the handle. */
spbla_Status spbla_Vector_Free(spbla_Vector* vector);

/** Fill with nvals indices; duplicates merge. */
spbla_Status spbla_Vector_Build(spbla_Vector vector, const spbla_Index* indices,
                                spbla_Index nvals);

/** Read all set indices; *nvals carries capacity in, count out. */
spbla_Status spbla_Vector_ExtractValues(spbla_Vector vector, spbla_Index* indices,
                                        spbla_Index* nvals);

spbla_Status spbla_Vector_Size(spbla_Vector vector, spbla_Index* size);
spbla_Status spbla_Vector_Nvals(spbla_Vector vector, spbla_Index* nvals);

/** result = a | b. */
spbla_Status spbla_Vector_EWiseAdd(spbla_Vector result, spbla_Vector a, spbla_Vector b);

/** result = a & b. */
spbla_Status spbla_Vector_EWiseMult(spbla_Vector result, spbla_Vector a, spbla_Vector b);

/** result = m x v (the frontier pull). */
spbla_Status spbla_MxV(spbla_Vector result, spbla_Matrix m, spbla_Vector v);

/** result = v x m (the frontier push). */
spbla_Status spbla_VxM(spbla_Vector result, spbla_Vector v, spbla_Matrix m);

/** result = reduceToColumn(m) as a vector of non-empty rows. */
spbla_Status spbla_Matrix_ReduceVector(spbla_Vector result, spbla_Matrix m);

#ifdef __cplusplus
}
#endif

#endif /* SPBLA_SPBLA_H */
