/// \file matrix.hpp
/// \brief High-level C++ facade over the SPbLA kernels.
///
/// The paper ships pyspbla, a thin object wrapper over the C API that makes
/// the operation set pleasant to compose. This header is the same layer for
/// C++ users: a value-semantic Matrix bound to a Context, with operators for
/// the Boolean semiring (`*` = multiply, `+` = element-wise or, `kron`).
/// Everything forwards to the kernels in spbla::ops; nothing here adds
/// state beyond the context pointer.
#pragma once

#include "backend/context.hpp"
#include "core/csr.hpp"
#include "ops/ops.hpp"

namespace spbla {

/// Value-semantic Boolean matrix bound to an execution context.
class Matrix {
public:
    /// Empty matrix of the given shape on \p ctx (default: process context).
    Matrix(Index nrows, Index ncols, backend::Context& ctx = backend::default_context())
        : ctx_{&ctx}, data_{nrows, ncols} {}

    /// Wrap an existing CSR matrix.
    Matrix(CsrMatrix data, backend::Context& ctx = backend::default_context())
        : ctx_{&ctx}, data_{std::move(data)} {}

    /// Build from a coordinate list (duplicates collapse).
    static Matrix from_coords(Index nrows, Index ncols, std::vector<Coord> coords,
                              backend::Context& ctx = backend::default_context()) {
        return Matrix{CsrMatrix::from_coords(nrows, ncols, std::move(coords)), ctx};
    }

    /// Identity matrix.
    static Matrix identity(Index n, backend::Context& ctx = backend::default_context()) {
        return Matrix{CsrMatrix::identity(n), ctx};
    }

    [[nodiscard]] Index nrows() const noexcept { return data_.nrows(); }
    [[nodiscard]] Index ncols() const noexcept { return data_.ncols(); }
    [[nodiscard]] std::size_t nnz() const noexcept { return data_.nnz(); }
    [[nodiscard]] bool get(Index r, Index c) const { return data_.get(r, c); }
    [[nodiscard]] std::vector<Coord> to_coords() const { return data_.to_coords(); }
    [[nodiscard]] const CsrMatrix& csr() const noexcept { return data_; }
    [[nodiscard]] backend::Context& context() const noexcept { return *ctx_; }

    /// this := this | other (the paper's M += N).
    Matrix& operator+=(const Matrix& other) {
        data_ = ops::ewise_add(*ctx_, data_, other.data_);
        return *this;
    }

    /// this := this | a * b (the paper's C += M x N fused form).
    Matrix& multiply_add(const Matrix& a, const Matrix& b) {
        data_ = ops::multiply_add(*ctx_, data_, a.data_, b.data_);
        return *this;
    }

    [[nodiscard]] friend Matrix operator+(const Matrix& a, const Matrix& b) {
        return Matrix{ops::ewise_add(*a.ctx_, a.data_, b.data_), *a.ctx_};
    }

    [[nodiscard]] friend Matrix operator*(const Matrix& a, const Matrix& b) {
        return Matrix{ops::multiply(*a.ctx_, a.data_, b.data_), *a.ctx_};
    }

    /// Kronecker product K = this (x) other.
    [[nodiscard]] Matrix kron(const Matrix& other) const {
        return Matrix{ops::kronecker(*ctx_, data_, other.data_), *ctx_};
    }

    /// Transpose.
    [[nodiscard]] Matrix transposed() const {
        return Matrix{ops::transpose(*ctx_, data_), *ctx_};
    }

    /// Sub-matrix extraction M = this[r0..r0+m, c0..c0+n].
    [[nodiscard]] Matrix submatrix(Index r0, Index c0, Index m, Index n) const {
        return Matrix{ops::submatrix(*ctx_, data_, r0, c0, m, n), *ctx_};
    }

    /// V = reduceToColumn(this).
    [[nodiscard]] SpVector reduce_to_column() const {
        return ops::reduce_to_column(*ctx_, data_);
    }

    friend bool operator==(const Matrix& a, const Matrix& b) noexcept {
        return a.data_ == b.data_;
    }

private:
    backend::Context* ctx_;
    CsrMatrix data_;
};

}  // namespace spbla
