/// \file matrix.hpp
/// \brief High-level C++ facade over the SPbLA kernels.
///
/// The paper ships pyspbla, a thin object wrapper over the C API that makes
/// the operation set pleasant to compose. As of the storage-engine refactor
/// the facade class *is* the format-polymorphic handle: spbla::Matrix lives
/// in src/storage/matrix.hpp, owns one of the three representations (CSR,
/// COO, dense-bitmap), and routes every operator through the cost-driven
/// dispatch layer. This header re-exports it together with the dispatch
/// entry points so user code keeps a single include.
#pragma once

#include "storage/dispatch.hpp"  // IWYU pragma: export
#include "storage/matrix.hpp"    // IWYU pragma: export
