#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "data/matrix_market.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "spbla/matrix.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::random_csr;

// ------------------------------ Matrix facade -----------------------------

TEST(Facade, ConstructionAndQueries) {
    const auto m = Matrix::from_coords(3, 4, {{0, 1}, {2, 3}}, ctx());
    EXPECT_EQ(m.nrows(), 3u);
    EXPECT_EQ(m.ncols(), 4u);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_TRUE(m.get(0, 1));
    EXPECT_FALSE(m.get(1, 1));
}

TEST(Facade, OperatorsMatchKernels) {
    const auto a_csr = random_csr(20, 20, 0.15, 700);
    const auto b_csr = random_csr(20, 20, 0.15, 701);
    const Matrix a{a_csr, ctx()};
    const Matrix b{b_csr, ctx()};

    EXPECT_EQ((a + b).csr(), ops::ewise_add(ctx(), a_csr, b_csr));
    EXPECT_EQ((a * b).csr(), ops::multiply(ctx(), a_csr, b_csr));
    EXPECT_EQ(a.kron(b).csr(), ops::kronecker(ctx(), a_csr, b_csr));
    EXPECT_EQ(a.transposed().csr(), ops::transpose(ctx(), a_csr));
    EXPECT_EQ(a.submatrix(2, 2, 10, 10).csr(),
              ops::submatrix(ctx(), a_csr, 2, 2, 10, 10));
    EXPECT_EQ(a.reduce_to_column(), ops::reduce_to_column(ctx(), a_csr));
}

TEST(Facade, CompoundAssignment) {
    const auto a_csr = random_csr(10, 10, 0.2, 702);
    const auto b_csr = random_csr(10, 10, 0.2, 703);
    Matrix acc{a_csr, ctx()};
    acc += Matrix{b_csr, ctx()};
    EXPECT_EQ(acc.csr(), ops::ewise_add(ctx(), a_csr, b_csr));
}

TEST(Facade, MultiplyAddFusedForm) {
    const auto a = Matrix{random_csr(12, 12, 0.2, 704), ctx()};
    const auto b = Matrix{random_csr(12, 12, 0.2, 705), ctx()};
    Matrix c{12, 12, ctx()};
    c.multiply_add(a, b);
    EXPECT_EQ(c, a * b);
    // Accumulation keeps previous content.
    Matrix c2 = a;
    c2.multiply_add(a, b);
    EXPECT_EQ(c2, a + a * b);
}

TEST(Facade, IdentityNeutrality) {
    const auto a = Matrix{random_csr(15, 15, 0.2, 706), ctx()};
    const auto i = Matrix::identity(15, ctx());
    EXPECT_EQ(a * i, a);
    EXPECT_EQ(i * a, a);
}

TEST(Facade, TransitiveClosureIdiom) {
    // The README's fixpoint idiom written against the facade.
    const auto edges = Matrix::from_coords(4, 4, {{0, 1}, {1, 2}, {2, 3}}, ctx());
    Matrix closure = edges;
    for (;;) {
        const auto before = closure.nnz();
        closure.multiply_add(closure, closure);
        if (closure.nnz() == before) break;
    }
    EXPECT_EQ(closure.nnz(), 6u);
    EXPECT_TRUE(closure.get(0, 3));
}

TEST(Facade, MismatchedShapesThrow) {
    const Matrix a{3, 4, ctx()};
    const Matrix b{5, 4, ctx()};
    EXPECT_THROW((void)(a + b), Error);
    EXPECT_THROW((void)(a * b), Error);
}

// ------------------------------ Matrix Market -----------------------------

TEST(MatrixMarket, RoundTrip) {
    const auto m = Matrix{random_csr(30, 40, 0.1, 707), ctx()};
    std::stringstream ss;
    data::save_matrix_market(ss, m);
    EXPECT_EQ(data::load_matrix_market(ss), m);
}

TEST(MatrixMarket, PatternGeneral) {
    std::stringstream ss{
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% a comment\n"
        "3 4 2\n"
        "1 1\n"
        "3 4\n"};
    const auto m = data::load_matrix_market(ss);
    EXPECT_EQ(m.nrows(), 3u);
    EXPECT_EQ(m.ncols(), 4u);
    EXPECT_EQ(m.to_coords(), (std::vector<Coord>{{0, 0}, {2, 3}}));
}

TEST(MatrixMarket, RealValuesNonZeroBecomeTrue) {
    std::stringstream ss{
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 0.5\n"
        "1 2 0.0\n"
        "2 2 -3\n"};
    const auto m = data::load_matrix_market(ss);
    EXPECT_EQ(m.to_coords(), (std::vector<Coord>{{0, 0}, {1, 1}}));
}

TEST(MatrixMarket, SymmetricMirrorsEntries) {
    std::stringstream ss{
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n"
        "2 1\n"
        "3 3\n"};
    const auto m = data::load_matrix_market(ss);
    // Off-diagonal mirrored, diagonal not duplicated.
    EXPECT_EQ(m.to_coords(), (std::vector<Coord>{{0, 1}, {1, 0}, {2, 2}}));
}

TEST(MatrixMarket, MalformedInputsRejected) {
    const auto parse = [](const char* text) {
        std::stringstream ss{text};
        return data::load_matrix_market(ss);
    };
    EXPECT_THROW((void)parse(""), Error);
    EXPECT_THROW((void)parse("%%MatrixMarket matrix array real general\n2 2\n"), Error);
    EXPECT_THROW((void)parse("%%MatrixMarket matrix coordinate complex general\n1 1 0\n"),
                 Error);
    EXPECT_THROW(
        (void)parse("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n"), Error);
    EXPECT_THROW(
        (void)parse("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n"),
        Error);
    EXPECT_THROW((void)parse("not a banner\n1 1 0\n"), Error);
}

TEST(MatrixMarket, FileRoundTrip) {
    const auto m = Matrix{random_csr(10, 10, 0.3, 708), ctx()};
    const std::string path = ::testing::TempDir() + "/spbla_mm_test.mtx";
    data::save_matrix_market_file(path, m);
    EXPECT_EQ(data::load_matrix_market_file(path), m);
    EXPECT_THROW((void)data::load_matrix_market_file("/no/such/file.mtx"), Error);
}

}  // namespace
}  // namespace spbla
