#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "data/io.hpp"
#include "data/kernel_alias.hpp"
#include "data/labeled_graph.hpp"
#include "data/lubm.hpp"
#include "data/rdflike.hpp"
#include "data/rmat.hpp"
#include "data/worstcase.hpp"
#include "helpers.hpp"

namespace spbla::data {
namespace {

TEST(LabeledGraph, FromEdgesGroupsByLabel) {
    const auto g = LabeledGraph::from_edges(
        4, {{0, "a", 1}, {1, "b", 2}, {0, "a", 2}, {0, "a", 1}});
    EXPECT_EQ(g.num_vertices(), 4u);
    EXPECT_EQ(g.num_edges(), 3u);  // duplicate (0,a,1) collapses
    EXPECT_EQ(g.label_count("a"), 2u);
    EXPECT_EQ(g.label_count("b"), 1u);
    EXPECT_EQ(g.label_count("missing"), 0u);
    EXPECT_EQ(g.labels(), (std::vector<std::string>{"a", "b"}));
}

TEST(LabeledGraph, MissingLabelGivesZeroMatrix) {
    const auto g = LabeledGraph::from_edges(3, {{0, "a", 1}});
    const auto& zero = g.matrix("nothere");
    EXPECT_EQ(zero.nrows(), 3u);
    EXPECT_EQ(zero.nnz(), 0u);
    EXPECT_FALSE(g.has_label("nothere"));
}

TEST(LabeledGraph, OutOfRangeVertexRejected) {
    EXPECT_THROW(LabeledGraph::from_edges(2, {{0, "a", 2}}), Error);
}

TEST(LabeledGraph, FrequencyOrderIsDescending) {
    const auto g = LabeledGraph::from_edges(
        5, {{0, "x", 1}, {1, "x", 2}, {2, "x", 3}, {0, "y", 1}, {1, "y", 2}, {0, "z", 1}});
    EXPECT_EQ(g.labels_by_frequency(), (std::vector<std::string>{"x", "y", "z"}));
}

TEST(LabeledGraph, InverseLabelsAreTransposes) {
    auto g = LabeledGraph::from_edges(4, {{0, "a", 1}, {2, "a", 3}});
    g.add_inverse_labels();
    EXPECT_TRUE(g.has_label("a_r"));
    EXPECT_TRUE(g.matrix("a_r").get(1, 0));
    EXPECT_TRUE(g.matrix("a_r").get(3, 2));
    EXPECT_EQ(g.matrix("a_r").nnz(), 2u);
}

TEST(LabeledGraph, UnionMatrixMergesAllLabels) {
    const auto g = LabeledGraph::from_edges(3, {{0, "a", 1}, {0, "b", 1}, {1, "b", 2}});
    const auto u = g.union_matrix();
    EXPECT_EQ(u.nnz(), 2u);  // (0,1) shared between labels
    EXPECT_TRUE(u.get(0, 1));
    EXPECT_TRUE(u.get(1, 2));
}

TEST(Lubm, DeterministicAndScalable) {
    const auto small = make_lubm(2);
    const auto same = make_lubm(2);
    EXPECT_EQ(small.num_vertices(), same.num_vertices());
    EXPECT_EQ(small.num_edges(), same.num_edges());

    const auto big = make_lubm(8);
    // Vertices scale linearly with university count.
    EXPECT_GT(big.num_vertices(), 3 * small.num_vertices());
    EXPECT_GT(big.num_edges(), 3 * small.num_edges());
}

TEST(Lubm, HasTheBenchmarkLabels) {
    const auto g = make_lubm(3);
    for (const auto* label :
         {"subOrganizationOf", "memberOf", "takesCourse", "worksFor", "type",
          "subClassOf", "teacherOf", "undergraduateDegreeFrom"}) {
        EXPECT_TRUE(g.has_label(label)) << label;
    }
}

TEST(Lubm, DensityMatchesRealBenchmark) {
    // LUBM has ~4 edges per vertex; the generator must stay in that regime
    // so the scaling figures are comparable.
    const auto g = make_lubm(10);
    const double ratio = static_cast<double>(g.num_edges()) /
                         static_cast<double>(g.num_vertices());
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 6.0);
}

TEST(Geospecies, HasDeepBroaderTransitiveChains) {
    const auto g = make_geospecies(500, 24);
    EXPECT_TRUE(g.has_label("broaderTransitive"));
    // Follow parent pointers from the guaranteed spine leaf.
    const auto& bt = g.matrix("broaderTransitive");
    Index v = 24, depth = 0;
    while (bt.csr().row_nnz(v) > 0) {
        v = bt.row(v)[0];
        ++depth;
    }
    EXPECT_EQ(depth, 24u);
}

TEST(Taxonomy, SubClassOfAndTypeDominate) {
    const auto g = make_taxonomy(1000, 2);
    EXPECT_GT(g.label_count("subClassOf"), 900u);
    EXPECT_GT(g.label_count("type"), 1500u);
}

TEST(PropertyGraph, LabelFrequenciesAreSkewed) {
    const auto g = make_property_graph(2000, 20, 3.0);
    const auto labels = g.labels_by_frequency();
    ASSERT_GE(labels.size(), 3u);
    EXPECT_GT(g.label_count(labels[0]), 2 * g.label_count(labels[labels.size() / 2]));
}

TEST(Ontology, InstanceFractionControlsTypeEdges) {
    const auto pure = make_ontology(500, 0.0);
    EXPECT_EQ(pure.label_count("type"), 0u);
    const auto mixed = make_ontology(500, 2.0);
    EXPECT_GT(mixed.label_count("type"), 900u);
}

TEST(KernelAlias, RatiosMatchTableThree) {
    const auto g = make_alias_graph(2000);
    const auto a = g.label_count("a");
    const auto d = g.label_count("d");
    EXPECT_GT(a, 0u);
    EXPECT_GT(d, 0u);
    // Table III: d edges outnumber a edges roughly 3.4:1.
    const double ratio = static_cast<double>(d) / static_cast<double>(a);
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 5.0);
    // Inverses present for the MA grammar.
    EXPECT_EQ(g.label_count("a_r"), a);
    EXPECT_EQ(g.label_count("d_r"), d);
}

TEST(Rmat, ShapeAndEdgeBudget) {
    const auto m = make_rmat(8, 4);
    EXPECT_EQ(m.nrows(), 256u);
    EXPECT_EQ(m.ncols(), 256u);
    EXPECT_LE(m.nnz(), 4u * 256u);
    EXPECT_GT(m.nnz(), 256u);  // collisions exist but not that many
    m.csr().validate();
}

TEST(Rmat, SkewProducesHubs) {
    const auto m = make_rmat(10, 8);
    Index max_row = 0;
    for (Index r = 0; r < m.nrows(); ++r) max_row = std::max(max_row, m.csr().row_nnz(r));
    const double avg = static_cast<double>(m.nnz()) / m.nrows();
    EXPECT_GT(max_row, 4 * avg);  // power-law hubs
}

TEST(Rmat, BadParametersRejected) {
    EXPECT_THROW((void)make_rmat(0, 4), Error);
    EXPECT_THROW((void)make_rmat(8, 4, 1, 0.5, 0.5, 0.5), Error);
}

TEST(Uniform, DensityIsApproximate) {
    const auto m = make_uniform(100, 100, 0.1);
    EXPECT_NEAR(static_cast<double>(m.nnz()), 1000.0, 150.0);
}

TEST(Worstcase, TwoCyclesStructure) {
    const auto g = make_two_cycles(4, 3);
    EXPECT_EQ(g.num_vertices(), 6u);
    EXPECT_EQ(g.label_count("a"), 4u);
    EXPECT_EQ(g.label_count("b"), 3u);
    // Both cycles pass through vertex 0.
    EXPECT_TRUE(g.matrix("a").get(3, 0));
    EXPECT_TRUE(g.matrix("b").get(5, 0));
}

TEST(Worstcase, BipartiteIsComplete) {
    const auto g = make_bipartite(3, 4);
    EXPECT_EQ(g.label_count("a"), 12u);
}

TEST(Io, RoundTripThroughText) {
    auto g = make_lubm(2);
    g.add_inverse_labels();
    std::stringstream ss;
    save_triples(ss, g);
    const auto loaded = load_triples(ss);
    EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
    EXPECT_EQ(loaded.num_edges(), g.num_edges());
    for (const auto& label : g.labels()) {
        EXPECT_EQ(loaded.matrix(label), g.matrix(label)) << label;
    }
}

TEST(Io, MalformedInputRejected) {
    std::stringstream empty{""};
    EXPECT_THROW((void)load_triples(empty), Error);
    std::stringstream bad{"5\nnot_a_number edge 3\n"};
    EXPECT_THROW((void)load_triples(bad), Error);
}

TEST(Io, FileRoundTrip) {
    const auto g = make_cycle(5);
    const std::string path = ::testing::TempDir() + "/spbla_io_test.triples";
    save_triples_file(path, g);
    const auto loaded = load_triples_file(path);
    EXPECT_EQ(loaded.matrix("a"), g.matrix("a"));
}

TEST(Io, MissingFileThrows) {
    EXPECT_THROW((void)load_triples_file("/nonexistent/path/x.triples"), Error);
}

}  // namespace
}  // namespace spbla::data
