/// \file test_fuzz.cpp
/// \brief Stateful differential fuzz: random operation sequences over a pool
/// of matrices, with every sparse result checked against a dense mirror
/// computed by the bit-matrix reference. Catches interaction bugs single-op
/// property tests cannot (e.g. invariants broken by one op and exploited by
/// the next).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "baseline/generic_ewise_add.hpp"
#include "baseline/generic_spgemm.hpp"
#include "core/validate.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "util/rng.hpp"

namespace spbla {
namespace {

using testing::ctx;

struct Mirrored {
    CsrMatrix sparse;
    DenseMatrix dense;
};

Mirrored make_random(Index nrows, Index ncols, double density, util::Rng& rng) {
    const auto sparse = testing::random_csr(nrows, ncols, density, rng());
    return {sparse, to_dense(sparse)};
}

void expect_consistent(const Mirrored& m, const char* op) {
    // Structural invariants first (sorted rows, in-range columns, offset
    // monotonicity) via the library validator the checked builds wire into
    // every op, then value-level equality against the dense mirror.
    ASSERT_NO_THROW(core::validate(m.sparse)) << op;
    ASSERT_EQ(to_dense(m.sparse), m.dense) << op;
}

class FuzzSweep
    : public ::spbla::testing::CheckedContextWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, RandomOpSequencesStayConsistentWithDenseMirror) {
    util::Rng rng{GetParam()};
    // Pool of square matrices of one size so every binary op is shape-legal.
    const Index n = 8 + static_cast<Index>(rng.below(25));
    std::vector<Mirrored> pool;
    for (int i = 0; i < 4; ++i) {
        pool.push_back(make_random(n, n, 0.05 + rng.uniform() * 0.3, rng));
    }

    for (int step = 0; step < 60; ++step) {
        const auto& a = pool[rng.below(pool.size())];
        const auto& b = pool[rng.below(pool.size())];
        const auto op = rng.below(8);
        Mirrored result;
        const char* name = "";
        switch (op) {
            case 0: {
                name = "ewise_add";
                result = {ops::ewise_add(ctx(), a.sparse, b.sparse),
                          a.dense.ewise_or(b.dense)};
                // Second, independent oracle: the value-carrying generic
                // merge must produce the same pattern the Boolean kernel does.
                const auto generic = baseline::ewise_add(
                    ctx(), baseline::GenericCsr::from_boolean(a.sparse),
                    baseline::GenericCsr::from_boolean(b.sparse));
                ASSERT_EQ(generic.pattern(), result.sparse) << name;
                break;
            }
            case 1: {
                name = "ewise_mult";
                result.sparse = ops::ewise_mult(ctx(), a.sparse, b.sparse);
                DenseMatrix d{n, n};
                for (const auto& c : a.dense.to_coords()) {
                    if (b.dense.get(c.row, c.col)) d.set(c.row, c.col);
                }
                result.dense = std::move(d);
                break;
            }
            case 2: {
                name = "ewise_diff";
                result.sparse = ops::ewise_diff(ctx(), a.sparse, b.sparse);
                DenseMatrix d{n, n};
                for (const auto& c : a.dense.to_coords()) {
                    if (!b.dense.get(c.row, c.col)) d.set(c.row, c.col);
                }
                result.dense = std::move(d);
                break;
            }
            case 3: {
                name = "multiply";
                result = {ops::multiply(ctx(), a.sparse, b.sparse),
                          a.dense.multiply(b.dense)};
                // Cross-check against the generic hash-SpGEMM oracle: same
                // Nsparse structure, float accumulators, so any divergence
                // isolates a bug in the Boolean specialisation itself.
                const auto generic = baseline::multiply_hash(
                    ctx(), baseline::GenericCsr::from_boolean(a.sparse),
                    baseline::GenericCsr::from_boolean(b.sparse));
                ASSERT_EQ(generic.pattern(), result.sparse) << name;
                break;
            }
            case 4:
                name = "multiply_add";
                result = {ops::multiply_add(ctx(), a.sparse, a.sparse, b.sparse),
                          a.dense.ewise_or(a.dense.multiply(b.dense))};
                break;
            case 5:
                name = "transpose+transpose";
                result = {ops::transpose(ctx(), ops::transpose(ctx(), a.sparse)),
                          a.dense};
                break;
            case 6: {
                name = "submatrix+pad";
                // Extract a random window; mirror densely; keep pool shape by
                // comparing directly instead of inserting.
                const Index r0 = static_cast<Index>(rng.below(n));
                const Index c0 = static_cast<Index>(rng.below(n));
                const Index h = static_cast<Index>(rng.below(n - r0) + 1);
                const Index w = static_cast<Index>(rng.below(n - c0) + 1);
                const Mirrored sub{ops::submatrix(ctx(), a.sparse, r0, c0, h, w),
                                   a.dense.submatrix(r0, c0, h, w)};
                expect_consistent(sub, "submatrix");
                continue;  // window is not pool-shaped; do not insert
            }
            default:
                name = "union-with-identity";
                result = {ops::ewise_add(ctx(), a.sparse, CsrMatrix::identity(n)),
                          a.dense.ewise_or(to_dense(CsrMatrix::identity(n)))};
                break;
        }
        expect_consistent(result, name);
        pool[rng.below(pool.size())] = std::move(result);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
}  // namespace spbla
