/// \file test_fuzz.cpp
/// \brief Stateful differential fuzz: random operation sequences over a pool
/// of matrices, with every sparse result checked against a dense mirror
/// computed by the bit-matrix reference. Catches interaction bugs single-op
/// property tests cannot (e.g. invariants broken by one op and exploited by
/// the next).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "algorithms/closure.hpp"
#include "baseline/generic_ewise_add.hpp"
#include "cfpq/azimov.hpp"
#include "cfpq/grammar.hpp"
#include "cfpq/worklist.hpp"
#include "data/labeled_graph.hpp"
#include "incr/incremental.hpp"
#include "incr/memo.hpp"
#include "rpq/dfa.hpp"
#include "rpq/engine.hpp"
#include "storage/dispatch.hpp"
#include "baseline/generic_spgemm.hpp"
// The sharded fuzz drives the tile kernels directly (tests are a sanctioned
// import site for the private dist headers).
#include "dist/device_group.hpp"    // lint:allow(format-leak)
#include "dist/dist.hpp"
#include "dist/partition.hpp"       // lint:allow(format-leak)
#include "dist/sharded_matrix.hpp"  // lint:allow(format-leak)
#include "dist/sharded_ops.hpp"     // lint:allow(format-leak)
#include "core/validate.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "util/rng.hpp"

namespace spbla {
namespace {

using testing::ctx;

struct Mirrored {
    CsrMatrix sparse;
    DenseMatrix dense;
};

Mirrored make_random(Index nrows, Index ncols, double density, util::Rng& rng) {
    const auto sparse = testing::random_csr(nrows, ncols, density, rng());
    return {sparse, to_dense(sparse)};
}

void expect_consistent(const Mirrored& m, const char* op) {
    // Structural invariants first (sorted rows, in-range columns, offset
    // monotonicity) via the library validator the checked builds wire into
    // every op, then value-level equality against the dense mirror.
    ASSERT_NO_THROW(core::validate(m.sparse)) << op;
    ASSERT_EQ(to_dense(m.sparse), m.dense) << op;
}

class FuzzSweep
    : public ::spbla::testing::CheckedContextWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, RandomOpSequencesStayConsistentWithDenseMirror) {
    util::Rng rng{GetParam()};
    // Pool of square matrices of one size so every binary op is shape-legal.
    const Index n = 8 + static_cast<Index>(rng.below(25));
    std::vector<Mirrored> pool;
    for (int i = 0; i < 4; ++i) {
        pool.push_back(make_random(n, n, 0.05 + rng.uniform() * 0.3, rng));
    }

    for (int step = 0; step < 60; ++step) {
        const auto& a = pool[rng.below(pool.size())];
        const auto& b = pool[rng.below(pool.size())];
        const auto op = rng.below(8);
        Mirrored result;
        const char* name = "";
        switch (op) {
            case 0: {
                name = "ewise_add";
                result = {ops::ewise_add(ctx(), a.sparse, b.sparse),
                          a.dense.ewise_or(b.dense)};
                // Second, independent oracle: the value-carrying generic
                // merge must produce the same pattern the Boolean kernel does.
                const auto generic = baseline::ewise_add(
                    ctx(), baseline::GenericCsr::from_boolean(a.sparse),
                    baseline::GenericCsr::from_boolean(b.sparse));
                ASSERT_EQ(generic.pattern(), result.sparse) << name;
                break;
            }
            case 1: {
                name = "ewise_mult";
                result.sparse = ops::ewise_mult(ctx(), a.sparse, b.sparse);
                DenseMatrix d{n, n};
                for (const auto& c : a.dense.to_coords()) {
                    if (b.dense.get(c.row, c.col)) d.set(c.row, c.col);
                }
                result.dense = std::move(d);
                break;
            }
            case 2: {
                name = "ewise_diff";
                result.sparse = ops::ewise_diff(ctx(), a.sparse, b.sparse);
                DenseMatrix d{n, n};
                for (const auto& c : a.dense.to_coords()) {
                    if (!b.dense.get(c.row, c.col)) d.set(c.row, c.col);
                }
                result.dense = std::move(d);
                break;
            }
            case 3: {
                name = "multiply";
                result = {ops::multiply(ctx(), a.sparse, b.sparse),
                          a.dense.multiply(b.dense)};
                // Cross-check against the generic hash-SpGEMM oracle: same
                // Nsparse structure, float accumulators, so any divergence
                // isolates a bug in the Boolean specialisation itself.
                const auto generic = baseline::multiply_hash(
                    ctx(), baseline::GenericCsr::from_boolean(a.sparse),
                    baseline::GenericCsr::from_boolean(b.sparse));
                ASSERT_EQ(generic.pattern(), result.sparse) << name;
                break;
            }
            case 4:
                name = "multiply_add";
                result = {ops::multiply_add(ctx(), a.sparse, a.sparse, b.sparse),
                          a.dense.ewise_or(a.dense.multiply(b.dense))};
                break;
            case 5:
                name = "transpose+transpose";
                result = {ops::transpose(ctx(), ops::transpose(ctx(), a.sparse)),
                          a.dense};
                break;
            case 6: {
                name = "submatrix+pad";
                // Extract a random window; mirror densely; keep pool shape by
                // comparing directly instead of inserting.
                const Index r0 = static_cast<Index>(rng.below(n));
                const Index c0 = static_cast<Index>(rng.below(n));
                const Index h = static_cast<Index>(rng.below(n - r0) + 1);
                const Index w = static_cast<Index>(rng.below(n - c0) + 1);
                const Mirrored sub{ops::submatrix(ctx(), a.sparse, r0, c0, h, w),
                                   a.dense.submatrix(r0, c0, h, w)};
                expect_consistent(sub, "submatrix");
                continue;  // window is not pool-shaped; do not insert
            }
            default:
                name = "union-with-identity";
                result = {ops::ewise_add(ctx(), a.sparse, CsrMatrix::identity(n)),
                          a.dense.ewise_or(to_dense(CsrMatrix::identity(n)))};
                break;
        }
        expect_consistent(result, name);
        pool[rng.below(pool.size())] = std::move(result);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

// ---------------------------------------------------------------------------
// COO-backend differential fuzz. The clBool-style kernels (ops/coo_ops.hpp)
// are a second implementation of multiply / ewise_add / transpose /
// submatrix / reduce; every random step is checked against BOTH the CSR
// kernel on converted operands and the dense mirror, so a divergence
// isolates which backend is wrong.
// ---------------------------------------------------------------------------

struct MirroredCoo {
    CooMatrix sparse;
    DenseMatrix dense;
};

class CooFuzzSweep
    : public ::spbla::testing::CheckedContextWithParam<std::uint64_t> {};

TEST_P(CooFuzzSweep, CooKernelsAgreeWithCsrKernelsAndDenseMirror) {
    util::Rng rng{GetParam()};
    const Index n = 8 + static_cast<Index>(rng.below(25));
    std::vector<MirroredCoo> pool;
    for (int i = 0; i < 4; ++i) {
        const auto csr = testing::random_csr(n, n, 0.05 + rng.uniform() * 0.3, rng());
        pool.push_back({to_coo(ctx(), csr), to_dense(ctx(), csr)});
    }

    for (int step = 0; step < 40; ++step) {
        const auto& a = pool[rng.below(pool.size())];
        const auto& b = pool[rng.below(pool.size())];
        const auto op = rng.below(5);
        MirroredCoo result;
        const char* name = "";
        switch (op) {
            case 0:
                name = "coo::multiply";
                result = {ops::multiply(ctx(), a.sparse, b.sparse),
                          a.dense.multiply(b.dense)};
                ASSERT_EQ(to_csr(ctx(), result.sparse),
                          ops::multiply(ctx(), to_csr(ctx(), a.sparse),
                                        to_csr(ctx(), b.sparse)))
                    << name;
                break;
            case 1:
                name = "coo::ewise_add";
                result = {ops::ewise_add(ctx(), a.sparse, b.sparse),
                          a.dense.ewise_or(b.dense)};
                ASSERT_EQ(to_csr(ctx(), result.sparse),
                          ops::ewise_add(ctx(), to_csr(ctx(), a.sparse),
                                         to_csr(ctx(), b.sparse)))
                    << name;
                break;
            case 2:
                name = "coo::transpose+transpose";
                result = {ops::transpose(ctx(), ops::transpose(ctx(), a.sparse)),
                          a.dense};
                ASSERT_EQ(to_csr(ctx(), ops::transpose(ctx(), a.sparse)),
                          ops::transpose(ctx(), to_csr(ctx(), a.sparse)))
                    << name;
                break;
            case 3: {
                name = "coo::submatrix";
                const Index r0 = static_cast<Index>(rng.below(n));
                const Index c0 = static_cast<Index>(rng.below(n));
                const Index h = static_cast<Index>(rng.below(n - r0) + 1);
                const Index w = static_cast<Index>(rng.below(n - c0) + 1);
                const auto sub = ops::submatrix(ctx(), a.sparse, r0, c0, h, w);
                ASSERT_NO_THROW(core::validate(sub)) << name;
                ASSERT_EQ(to_dense(ctx(), sub), a.dense.submatrix(r0, c0, h, w))
                    << name;
                ASSERT_EQ(to_csr(ctx(), sub),
                          ops::submatrix(ctx(), to_csr(ctx(), a.sparse), r0, c0, h, w))
                    << name;
                continue;  // window is not pool-shaped; do not insert
            }
            default: {
                name = "coo::reduce_to_column";
                const auto v = ops::reduce_to_column(ctx(), a.sparse);
                ASSERT_EQ(v, ops::reduce_to_column(ctx(), to_csr(ctx(), a.sparse)))
                    << name;
                std::vector<Index> expect;
                for (Index r = 0; r < n; ++r) {
                    if (a.dense.row_nnz(r) > 0) expect.push_back(r);
                }
                ASSERT_EQ(v, SpVector::from_indices(n, std::move(expect))) << name;
                continue;  // vector result; nothing to insert
            }
        }
        ASSERT_NO_THROW(core::validate(result.sparse)) << name;
        ASSERT_EQ(to_dense(ctx(), result.sparse), result.dense) << name;
        pool[rng.below(pool.size())] = std::move(result);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CooFuzzSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// BitBlocks-backend differential fuzz. The broadword tier (ops/bitblock_*)
// is a third implementation of multiply / ewise / transpose / reduce / mxv;
// every random step is checked against BOTH the CSR kernel on converted
// operands and the dense mirror (triple oracle), so a divergence isolates
// which backend is wrong. Densities sweep the full regime the dispatcher can
// route here, from far below the tile-occupancy gate (2^-10) up to 0.5,
// and shapes straddle the 64-wide tile boundary on purpose.
// ---------------------------------------------------------------------------

class BitBlockFuzzSweep
    : public ::spbla::testing::CheckedContextWithParam<std::uint64_t> {};

TEST_P(BitBlockFuzzSweep, BitKernelsAgreeWithCsrKernelsAndDenseMirror) {
    util::Rng rng{GetParam()};

    for (int step = 0; step < 24; ++step) {
        // Geometric density ladder: 2^-10 .. 2^-1 hits sparse tiles, hybrid
        // flips and the Four-Russians threshold across steps.
        const double density = std::ldexp(1.0, -1 - static_cast<int>(rng.below(10)));
        const Index m = 1 + static_cast<Index>(rng.below(160));
        const Index k = 1 + static_cast<Index>(rng.below(160));
        const Index n = 1 + static_cast<Index>(rng.below(160));

        const CsrMatrix ac = testing::random_csr(m, k, density, rng());
        const CsrMatrix bc = testing::random_csr(k, n, density, rng());
        const CsrMatrix cc = testing::random_csr(m, k, density, rng());
        const BitBlockMatrix ab = to_bitblocks(ctx(), ac);
        const BitBlockMatrix bb = to_bitblocks(ctx(), bc);
        const BitBlockMatrix cb = to_bitblocks(ctx(), cc);

        // Round trip is lossless.
        ASSERT_EQ(to_csr(ctx(), ab), ac);

        const auto check = [&](const BitBlockMatrix& got, const CsrMatrix& want,
                               const DenseMatrix& mirror, const char* op) {
            ASSERT_NO_THROW(core::validate(got)) << op;
            const CsrMatrix flat = to_csr(ctx(), got);
            ASSERT_NO_THROW(core::validate(flat)) << op;
            ASSERT_EQ(flat, want) << op;
            ASSERT_EQ(to_dense(ctx(), got), mirror) << op;
        };

        check(ops::multiply(ctx(), ab, bb), ops::multiply(ctx(), ac, bc),
              to_dense(ac).multiply(to_dense(bc)), "bitblock.multiply");
        check(ops::ewise_add(ctx(), ab, cb), ops::ewise_add(ctx(), ac, cc),
              to_dense(ac).ewise_or(to_dense(cc)), "bitblock.ewise_add");
        DenseMatrix and_mirror{m, k};
        const DenseMatrix cd = to_dense(cc);
        for (const auto& c : to_dense(ac).to_coords()) {
            if (cd.get(c.row, c.col)) and_mirror.set(c.row, c.col);
        }
        check(ops::ewise_mult(ctx(), ab, cb), ops::ewise_mult(ctx(), ac, cc),
              and_mirror, "bitblock.ewise_mult");
        check(ops::transpose(ctx(), ab), ops::transpose(ctx(), ac),
              to_dense(ac).transpose(), "bitblock.transpose");

        ASSERT_EQ(ops::reduce_to_column(ctx(), ab),
                  ops::reduce_to_column(ctx(), ac))
            << "bitblock.reduce";

        std::vector<Index> set;
        for (Index c = 0; c < k; ++c) {
            if (rng.below(3) == 0) set.push_back(c);
        }
        const SpVector x = SpVector::from_indices(k, std::move(set));
        ASSERT_EQ(ops::mxv(ctx(), ab, x), ops::mxv(ctx(), ac, x))
            << "bitblock.mxv";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitBlockFuzzSweep,
                         ::testing::Values(7, 19, 31, 47, 59, 71));

// ---------------------------------------------------------------------------
// Sharded-execution differential fuzz: random shapes (down to single
// rows/columns), random grids (often larger than the extent, so empty and
// sliver tiles are routine), random device counts and placements. Every
// sharded result is checked against BOTH the single-device CSR kernel and
// the dense mirror, so a divergence isolates the dist layer.
// ---------------------------------------------------------------------------

class DistFuzzSweep
    : public ::spbla::testing::CheckedContextWithParam<std::uint64_t> {};

TEST_P(DistFuzzSweep, ShardedOpsAgreeWithCsrKernelsAndDenseMirror) {
    util::Rng rng{GetParam()};
    dist::DeviceGroup group{1 + rng.below(4)};

    const auto grid = [&rng] { return 1 + rng.below(5); };
    const auto placement = [&rng] {
        return rng.below(2) == 0 ? dist::Placement::RoundRobin
                                 : dist::Placement::LoadBalanced;
    };
    const auto check = [](const Matrix& got, const CsrMatrix& want_csr,
                          const DenseMatrix& want_dense, const char* op) {
        ASSERT_NO_THROW(core::validate(got.csr())) << op;
        ASSERT_EQ(got.csr(), want_csr) << op;
        ASSERT_EQ(to_dense(got.csr()), want_dense) << op;
    };

    for (int step = 0; step < 20; ++step) {
        const Index m = 1 + static_cast<Index>(rng.below(36));
        const Index k = 1 + static_cast<Index>(rng.below(36));
        const Index n = 1 + static_cast<Index>(rng.below(36));
        const double density = 0.02 + rng.uniform() * 0.25;

        const CsrMatrix ac = testing::random_csr(m, k, density, rng());
        const Matrix a{ac, ctx()};
        const dist::Partition pa = dist::Partition::uniform(m, k, grid(), grid());
        const dist::ShardedMatrix sa{group, a, pa, placement()};

        switch (rng.below(6)) {
            case 0: {  // SUMMA multiply on a conformal random grid
                const CsrMatrix bc = testing::random_csr(k, n, density, rng());
                const Matrix b{bc, ctx()};
                const auto inner = pa.col_splits();
                const dist::Partition pb_cols =
                    dist::Partition::uniform(k, n, 1, grid());
                const auto bcols = pb_cols.col_splits();
                const dist::Partition pb{{inner.begin(), inner.end()},
                                         {bcols.begin(), bcols.end()}};
                const dist::ShardedMatrix sb{group, b, pb, placement()};
                check(dist::sharded_multiply(ctx(), sa, sb),
                      ops::multiply(ctx(), ac, bc),
                      to_dense(ac).multiply(to_dense(bc)), "dist.multiply");
                break;
            }
            case 1: {  // ewise_add / ewise_mult on the same grid
                const CsrMatrix bc = testing::random_csr(m, k, density, rng());
                const Matrix b{bc, ctx()};
                const dist::ShardedMatrix sb{group, b, pa, placement()};
                check(dist::sharded_ewise_add(ctx(), sa, sb),
                      ops::ewise_add(ctx(), ac, bc),
                      to_dense(ac).ewise_or(to_dense(bc)), "dist.ewise_add");
                DenseMatrix and_mirror{m, k};
                const DenseMatrix bd = to_dense(bc);
                for (const auto& c : to_dense(ac).to_coords()) {
                    if (bd.get(c.row, c.col)) and_mirror.set(c.row, c.col);
                }
                check(dist::sharded_ewise_mult(ctx(), sa, sb),
                      ops::ewise_mult(ctx(), ac, bc), and_mirror,
                      "dist.ewise_mult");
                break;
            }
            case 2:  // transpose lands tiles on the transposed grid
                check(dist::sharded_transpose(ctx(), sa),
                      ops::transpose(ctx(), ac), to_dense(ac).transpose(),
                      "dist.transpose");
                break;
            case 3: {  // kronecker broadcasts whole B
                const CsrMatrix bc =
                    testing::random_csr(1 + static_cast<Index>(rng.below(6)),
                                        1 + static_cast<Index>(rng.below(6)),
                                        0.4, rng());
                const Matrix b{bc, ctx()};
                const Matrix got = dist::sharded_kronecker(ctx(), sa, b);
                const CsrMatrix want = ops::kronecker(ctx(), ac, bc);
                ASSERT_NO_THROW(core::validate(got.csr())) << "dist.kronecker";
                ASSERT_EQ(got.csr(), want) << "dist.kronecker";
                break;
            }
            case 4: {  // reduce_to_column
                const SpVector got = dist::sharded_reduce_to_column(ctx(), sa);
                ASSERT_EQ(got, ops::reduce_to_column(ctx(), ac)) << "dist.reduce";
                break;
            }
            default: {  // mxv against a random vector slice pattern
                std::vector<Index> set;
                for (Index c = 0; c < k; ++c) {
                    if (rng.below(3) == 0) set.push_back(c);
                }
                const SpVector x = SpVector::from_indices(k, std::move(set));
                const SpVector got = dist::sharded_mxv(ctx(), sa, x);
                ASSERT_EQ(got, ops::mxv(ctx(), ac, x)) << "dist.mxv";
                break;
            }
        }
    }
    EXPECT_TRUE(group.balanced()) << group.leak_report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistFuzzSweep,
                         ::testing::Values(17, 28, 39, 410, 511, 612));

// ---------------------------------------------------------------------------
// Incremental-evaluation differential fuzz. Random delta schedules are
// streamed through the semi-naive drivers (src/incr) and every batch is
// checked against a TRIPLE oracle: the incremental result, the scratch
// fixpoint of the same engine, and an independent reference implementation
// (Floyd–Warshall for closure, the product-automaton BFS for RPQ, the
// worklist CFPQ solver). A second sweep races same-key memo lookups against
// bitblock/CSR format materialisation to pin the table's exactly-once
// compute semantics.
// ---------------------------------------------------------------------------

class IncrFuzzSweep
    : public ::spbla::testing::CheckedContextWithParam<std::uint64_t> {
protected:
    void TearDown() override {
        // Memoized results are charged to the shared trackers; drain them
        // before the leak-balance check.
        incr::memo().clear();
        CheckedContextWithParam::TearDown();
    }
};

/// Independent closure oracle: Floyd–Warshall over a bool grid.
std::vector<Coord> warshall(Index n, const std::vector<Coord>& edges) {
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (const auto& e : edges) reach[e.row][e.col] = true;
    for (Index k = 0; k < n; ++k) {
        for (Index i = 0; i < n; ++i) {
            if (!reach[i][k]) continue;
            for (Index j = 0; j < n; ++j) {
                if (reach[k][j]) reach[i][j] = true;
            }
        }
    }
    std::vector<Coord> out;
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < n; ++j) {
            if (reach[i][j]) out.push_back({i, j});
        }
    }
    return out;
}

TEST_P(IncrFuzzSweep, StreamedFixpointsAgreeWithScratchAndReferenceOracles) {
    util::Rng rng{GetParam()};
    const Index n = 8 + static_cast<Index>(rng.below(7));
    const std::vector<std::string> labels{"a", "b"};
    const std::vector<std::string> queries{"a b", "(a | b)+", "a* b", "a (a | b)*"};
    const std::vector<std::string> grammars{"S -> a S b | a b\n", "S -> a S | eps\n",
                                            "S -> a S b | a b | a\n"};
    const auto query = rpq::compile_query(queries[rng.below(queries.size())]);
    const auto grammar = cfpq::Grammar::parse(grammars[rng.below(grammars.size())]);

    const auto random_edges = [&](std::size_t count) {
        std::vector<data::LabeledEdge> edges;
        for (std::size_t k = 0; k < count; ++k) {
            edges.push_back({static_cast<Index>(rng.below(n)),
                             labels[rng.below(labels.size())],
                             static_cast<Index>(rng.below(n))});
        }
        return edges;
    };
    const auto as_graph = [&](const std::set<std::tuple<Index, std::string, Index>>& s) {
        std::vector<data::LabeledEdge> edges;
        for (const auto& [src, label, dst] : s) edges.push_back({src, label, dst});
        return data::LabeledGraph::from_edges(n, edges);
    };

    std::set<std::tuple<Index, std::string, Index>> truth;
    for (const auto& e : random_edges(2 * static_cast<std::size_t>(n))) {
        truth.insert({e.src, e.label, e.dst});
    }
    const auto g0 = as_graph(truth);
    incr::IncrementalClosure tc{ctx(), g0.union_matrix()};
    incr::IncrementalRpq rpq_inc{ctx(), g0, query};
    incr::IncrementalCfpq cfpq_inc{ctx(), g0, grammar};

    for (int round = 0; round < 5; ++round) {
        const auto adds = random_edges(1 + rng.below(6));
        std::vector<data::LabeledEdge> removes;
        if (!truth.empty() && rng.chance(0.6)) {
            std::vector<std::tuple<Index, std::string, Index>> pool{truth.begin(),
                                                                    truth.end()};
            for (std::size_t k = 0; k < 1 + rng.below(4); ++k) {
                const auto& [src, label, dst] = pool[rng.below(pool.size())];
                removes.push_back({src, label, dst});
            }
        }
        for (const auto& e : removes) truth.erase({e.src, e.label, e.dst});
        for (const auto& e : adds) truth.insert({e.src, e.label, e.dst});
        const auto graph = as_graph(truth);

        // Unlabeled closure: drive with the union-matrix deltas.
        const auto union_before = tc.adjacency();
        const auto union_after = graph.union_matrix();
        tc.apply(storage::ewise_diff(ctx(), union_after, union_before),
                 storage::ewise_diff(ctx(), union_before, union_after));
        const auto scratch = algorithms::transitive_closure(ctx(), union_after);
        ASSERT_EQ(tc.closure(), scratch) << "incremental vs scratch closure";
        ASSERT_EQ(tc.closure().to_coords(), warshall(n, union_after.to_coords()))
            << "incremental vs Floyd-Warshall closure";

        rpq_inc.apply(adds, removes);
        ASSERT_EQ(rpq_inc.reachable(), rpq::evaluate(ctx(), graph, query))
            << "incremental vs scratch RPQ";
        ASSERT_EQ(rpq_inc.reachable(), rpq::evaluate_reference(graph, query))
            << "incremental vs BFS-reference RPQ";

        cfpq_inc.apply(adds, removes);
        ASSERT_EQ(cfpq_inc.reachable(),
                  cfpq::azimov_cfpq(ctx(), graph, grammar).reachable())
            << "incremental vs scratch CFPQ";
        ASSERT_EQ(cfpq_inc.reachable(), cfpq::worklist_cfpq(graph, grammar))
            << "incremental vs worklist CFPQ";
    }
}

TEST_P(IncrFuzzSweep, MemoComputesExactlyOnceUnderConversionRaces) {
    util::Rng rng{GetParam()};
    auto a = Matrix{testing::random_csr(48, 48, 0.08, rng()), ctx()};
    const auto b = Matrix{testing::random_csr(48, 48, 0.08, rng()), ctx()};
    constexpr std::size_t kLanes = 12;

    for (int round = 0; round < 4; ++round) {
        const auto want = storage::multiply(ctx(), a, b);
        const auto before = incr::memo().stats();
        std::atomic<int> mismatches{0};
        // Same-key memo bursts race against concurrent first materialisation
        // of the operands' bitblock / CSR / dense representations — the
        // conversions the memoized kernels pick themselves.
        ctx().pool()->run_dynamic(kLanes, [&](std::size_t t) {
            switch (t % 4) {
                case 0: (void)a.bitblocks(ctx()); break;  // lint:allow(parallel-capture)
                case 1: (void)b.csr(ctx()); break;        // lint:allow(parallel-capture)
                default: {
                    const auto got = incr::memo_multiply(ctx(), a, b);
                    if (got != want) mismatches.fetch_add(1);
                    break;
                }
            }
        });
        EXPECT_EQ(mismatches.load(), 0);
        const auto after = incr::memo().stats();
        EXPECT_EQ(after.stores - before.stores, 1u)
            << "a same-epoch burst must compute exactly once";
        EXPECT_EQ(after.hits - before.hits, after.lookups - before.lookups - 1)
            << "every other lookup of the burst must hit";

        // Fresh epoch (and re-raced first materialisation) next round.
        a.apply_delta(Matrix::from_coords(
                          48, 48, {{static_cast<Index>(round), 47}}, ctx()),
                      Matrix{48, 48, ctx()}, ctx());
        a.drop_cached();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrFuzzSweep,
                         ::testing::Values(1009, 2003, 3001, 4001, 5003));

}  // namespace
}  // namespace spbla
