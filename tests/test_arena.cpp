/// \file test_arena.cpp
/// \brief Scoped arena + buffer pool: reset exactness, per-worker isolation,
/// exactly-once tracker charging, poison-on-reset, pool reuse accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "backend/arena.hpp"
#include "backend/context.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "telemetry/metrics.hpp"
#include "util/contracts.hpp"

namespace spbla {
namespace {

using testing::CheckedContext;

using ArenaSuite = CheckedContext;

// ---------------------------------------------------------------------------
// Arena core: nesting, rewind exactness, tracker veneer
// ---------------------------------------------------------------------------

TEST(Arena, NestedScopeResetExactness) {
    backend::MemoryTracker tracker;
    backend::Arena arena{&tracker};

    backend::ScopedArena outer{arena};
    void* a = arena.allocate(100, 8);
    ASSERT_NE(a, nullptr);
    const std::size_t outer_used = arena.used();
    EXPECT_GE(outer_used, 100u);

    {
        backend::ScopedArena inner{arena};
        (void)arena.allocate(1 << 12, 64);
        (void)arena.allocate(33, 1);
        EXPECT_GT(arena.used(), outer_used);
        {
            backend::ScopedArena innermost{arena};
            (void)arena.allocate(1 << 18, 8);  // forces a second slab
            EXPECT_GE(arena.slab_count(), 2u);
        }
        // Innermost rewind reclaims the big block but keeps inner's bytes.
        EXPECT_GT(arena.used(), outer_used);
    }
    // Inner rewind restores the exact outer watermark.
    EXPECT_EQ(arena.used(), outer_used);
    EXPECT_EQ(arena.depth(), 1);
}

TEST(Arena, ExactlyOnceTrackerCharging) {
    backend::MemoryTracker tracker;
    backend::Arena arena{&tracker};
    ASSERT_EQ(tracker.current_bytes(), 0u);

    {
        backend::ScopedArena scope{arena};
        (void)arena.allocate(1000, 8);
        // One slab reserve == one tracked allocation; live bytes cover the
        // full reserve (the tracker veneer charges slabs, not suballocations).
        EXPECT_EQ(tracker.alloc_count(), 1u);
        EXPECT_EQ(tracker.current_bytes(), arena.reserved());
        (void)arena.allocate(2000, 8);
        (void)arena.allocate(3000, 8);
        // Suballocations from the same slab add no tracked allocations.
        EXPECT_EQ(tracker.alloc_count(), 1u);
    }
    // Outermost scope exit settles: retained slabs are uncharged (idle), the
    // alloc stays counted, and nothing was freed yet.
    EXPECT_EQ(tracker.current_bytes(), 0u);
    EXPECT_EQ(tracker.alloc_count(), 1u);
    EXPECT_EQ(tracker.free_count(), 0u);
    EXPECT_GT(arena.reserved(), 0u);

    {
        // Re-entering a scope re-charges the retained reserve on first use
        // without counting a new allocation (the slab is reused, not
        // reallocated).
        backend::ScopedArena scope{arena};
        (void)arena.allocate(500, 8);
        EXPECT_EQ(tracker.alloc_count(), 1u);
        EXPECT_EQ(tracker.current_bytes(), arena.reserved());
    }
    EXPECT_EQ(tracker.current_bytes(), 0u);

    // Trim pairs every on_alloc with an on_free and empties the arena.
    arena.trim();
    EXPECT_EQ(arena.reserved(), 0u);
    EXPECT_EQ(tracker.current_bytes(), 0u);
    EXPECT_EQ(tracker.alloc_count(), tracker.free_count());
    EXPECT_TRUE(tracker.balanced());
}

TEST(Arena, PeakCoversScratch) {
    backend::MemoryTracker tracker;
    backend::Arena arena{&tracker};
    const std::size_t big = std::size_t{1} << 20;
    {
        backend::ScopedArena scope{arena};
        (void)arena.allocate(big, 8);
    }
    // The whole scratch burst is visible in the high-water mark even though
    // the live balance settled back to zero.
    EXPECT_GE(tracker.peak_bytes(), big);
    EXPECT_EQ(tracker.current_bytes(), 0u);
    arena.trim();
}

TEST(Arena, ScopedResetCountsTelemetry) {
    backend::MemoryTracker tracker;
    backend::Arena arena{&tracker};
    const auto before =
        backend::Context::metrics_snapshot().counter(telemetry::Counter::ArenaResets);
    {
        backend::ScopedArena scope{arena};
        (void)arena.allocate(64, 8);
    }
    const auto after =
        backend::Context::metrics_snapshot().counter(telemetry::Counter::ArenaResets);
    EXPECT_GE(after, before + 1);
    arena.trim();
}

TEST(Arena, PassthroughModeTracksEveryAllocation) {
    ASSERT_TRUE(backend::arena_enabled());
    backend::set_arena_enabled(false);

    backend::MemoryTracker tracker;
    {
        backend::Arena arena{&tracker};
        backend::ScopedArena scope{arena};
        (void)arena.allocate(100, 8);
        (void)arena.allocate(200, 8);
        (void)arena.allocate(300, 8);
        // Pass-through: one tracked allocation per request — the ablation
        // baseline the bench ladders compare the arena's slab count against.
        EXPECT_EQ(tracker.alloc_count(), 3u);
        EXPECT_GE(tracker.current_bytes(), 600u);
    }
    EXPECT_EQ(tracker.alloc_count(), tracker.free_count());
    EXPECT_TRUE(tracker.balanced());

    backend::set_arena_enabled(true);
    ASSERT_TRUE(backend::arena_enabled());
}

#if SPBLA_CHECKS_LEVEL >= SPBLA_CHECKS_FULL
TEST(Arena, PoisonOnResetAtFullChecks) {
    backend::MemoryTracker tracker;
    backend::Arena arena{&tracker};
    backend::ScopedArena outer{arena};

    unsigned char* p = nullptr;
    constexpr std::size_t kBytes = 256;
    {
        backend::ScopedArena inner{arena};
        p = static_cast<unsigned char*>(arena.allocate(kBytes, 8));
        // Fresh arena bytes are poisoned before first write...
        for (std::size_t i = 0; i < kBytes; ++i) ASSERT_EQ(p[i], 0xA5u);
        std::memset(p, 0x11, kBytes);
    }
    // ...and re-poisoned when the scope reset reclaims them, so a dangling
    // reader sees poison, not its stale payload.
    for (std::size_t i = 0; i < kBytes; ++i) ASSERT_EQ(p[i], 0xA5u);
}
#endif

// ---------------------------------------------------------------------------
// ArenaVector + per-worker isolation under the pool
// ---------------------------------------------------------------------------

TEST(Arena, ArenaVectorBasics) {
    backend::MemoryTracker tracker;
    backend::Arena arena{&tracker};
    backend::ScopedArena scope{arena};

    backend::ArenaVector<std::uint32_t> v{backend::ArenaAllocator<std::uint32_t>{arena}};
    v.assign(1000, 7);
    for (std::uint32_t x : v) ASSERT_EQ(x, 7u);
    v.resize(5000, 9);
    EXPECT_EQ(v[4999], 9u);
    EXPECT_GE(arena.used(), 5000 * sizeof(std::uint32_t));
}

TEST_F(ArenaSuite, PerWorkerSubArenasAreIsolated) {
    // 8 pool workers each fill arena scratch with a chunk-specific pattern
    // and verify it after a yield-sized recompute; any cross-worker sharing
    // of a sub-arena corrupts the pattern (and TSan flags the race under the
    // `parallel` label build).
    backend::Context pool_ctx{backend::Policy::Parallel, 8};
    constexpr std::size_t kChunks = 64;
    constexpr std::size_t kWords = 4096;
    std::atomic<std::size_t> bad{0};

    pool_ctx.parallel_for_chunks(kChunks, 1, [&](std::size_t c0, std::size_t c1) {
        backend::Arena& arena = pool_ctx.scratch_arena();
        for (std::size_t c = c0; c < c1; ++c) {
            backend::ScopedArena scope{arena};
            auto buf = pool_ctx.scratch_alloc<std::uint64_t>(kWords);
            const std::uint64_t tag = 0x9E3779B97F4A7C15ull * (c + 1);
            for (std::size_t i = 0; i < kWords; ++i) buf[i] = tag + i;
            backend::ArenaVector<std::uint64_t> extra{
                backend::ArenaAllocator<std::uint64_t>{arena}};
            extra.assign(kWords / 2, tag);
            for (std::size_t i = 0; i < kWords; ++i) {
                if (buf[i] != tag + i) bad.fetch_add(1, std::memory_order_relaxed);
            }
            for (std::uint64_t w : extra) {
                if (w != tag) bad.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });
    EXPECT_EQ(bad.load(), 0u);

    // All scopes exited: every worker arena settled, so the context balance
    // is exact without a trim...
    EXPECT_EQ(pool_ctx.arena_hub().used_bytes(), 0u);
    EXPECT_EQ(pool_ctx.tracker().current_bytes(), 0u);
    // ...and trim releases the retained slabs with exact alloc/free pairing.
    pool_ctx.trim_device_scratch();
    EXPECT_EQ(pool_ctx.arena_hub().reserved_bytes(), 0u);
    EXPECT_EQ(pool_ctx.tracker().alloc_count(), pool_ctx.tracker().free_count());
}

TEST_F(ArenaSuite, NestedOpsReuseTheWorkerScope) {
    // An op called from inside a chunk body (nested ScopedArena) must rewind
    // to its own mark only — the outer chunk's scratch survives.
    backend::Context pool_ctx{backend::Policy::Parallel, 4};
    std::atomic<std::size_t> bad{0};
    pool_ctx.parallel_for_chunks(16, 1, [&](std::size_t c0, std::size_t c1) {
        backend::Arena& arena = pool_ctx.scratch_arena();
        for (std::size_t c = c0; c < c1; ++c) {
            auto outer_buf = pool_ctx.scratch_alloc<std::uint32_t>(512);
            for (std::size_t i = 0; i < 512; ++i) {
                outer_buf[i] = static_cast<std::uint32_t>(c * 1000 + i);
            }
            {
                backend::ScopedArena nested{arena};
                auto inner_buf = pool_ctx.scratch_alloc<std::uint32_t>(2048);
                for (std::size_t i = 0; i < 2048; ++i) {
                    inner_buf[i] = 0xFFFFFFFFu;
                }
            }
            for (std::size_t i = 0; i < 512; ++i) {
                if (outer_buf[i] != static_cast<std::uint32_t>(c * 1000 + i)) {
                    bad.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
    });
    EXPECT_EQ(bad.load(), 0u);
    EXPECT_EQ(pool_ctx.tracker().current_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPool, ReuseCountersAndRecycling) {
    backend::BufferPool pool;
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_EQ(pool.misses(), 0u);

    // Power-of-two capacity lands exactly on its size class, so the request
    // classes below can see it (a capacity just under a class boundary parks
    // one class lower than any request that size would scan — by design: a
    // class only serves requests every member can satisfy).
    auto a = pool.acquire(1024);
    EXPECT_EQ(a.size(), 1024u);
    EXPECT_EQ(pool.misses(), 1u);

    pool.release(std::move(a));
    EXPECT_GT(pool.held_bytes(), 0u);

    // Smaller request, same serving class: served from the free list.
    auto b = pool.acquire(900);
    EXPECT_EQ(b.size(), 900u);
    EXPECT_EQ(pool.hits(), 1u);
    EXPECT_EQ(pool.misses(), 1u);

    pool.release(std::move(b));
    auto c = pool.acquire_zeroed(1024);
    ASSERT_EQ(c.size(), 1024u);
    for (std::uint32_t x : c) ASSERT_EQ(x, 0u);
    EXPECT_EQ(pool.hits(), 2u);

    pool.release(std::move(c));
    pool.trim();
    EXPECT_EQ(pool.held_bytes(), 0u);

    // After a trim the next acquire is a miss again.
    auto d = pool.acquire(1024);
    EXPECT_EQ(pool.misses(), 2u);
    pool.release(std::move(d));
}

TEST(BufferPool, ServesLargerClassesButNotSmaller) {
    backend::BufferPool pool;
    auto big = pool.acquire(1 << 16);
    pool.release(std::move(big));
    // A request two classes below still finds the parked buffer...
    auto mid = pool.acquire(1 << 14);
    EXPECT_EQ(pool.hits(), 1u);
    pool.release(std::move(mid));
    // ...but a request far smaller must not drag a huge buffer around.
    auto tiny = pool.acquire(16);
    EXPECT_EQ(pool.misses(), 2u);
    pool.release(std::move(tiny));
}

// ---------------------------------------------------------------------------
// End-to-end: ops on a CheckedContext leave the balance exact
// ---------------------------------------------------------------------------

TEST_F(ArenaSuite, SpGemmLeavesContextBalanced) {
    const auto a = testing::random_csr(256, 256, 0.02, 11);
    const auto b = testing::random_csr(256, 256, 0.02, 13);
    const auto c_par = ops::multiply(testing::ctx(), a, b);
    const auto c_seq = ops::multiply(testing::seq_ctx(), a, b);
    EXPECT_EQ(c_par.nnz(), c_seq.nnz());
    // CheckedContext::TearDown asserts both trackers read their SetUp
    // balance — the arenas settled and pooled buffers are outside the
    // tracker, so no explicit trim is needed here.
}

TEST_F(ArenaSuite, PassthroughAblationMatchesArenaResults) {
    const auto a = testing::random_csr(128, 128, 0.05, 21);
    const auto b = testing::random_csr(128, 128, 0.05, 22);
    const auto with_arena = ops::multiply(testing::ctx(), a, b);

    backend::set_arena_enabled(false);
    const auto without = ops::multiply(testing::ctx(), a, b);
    backend::set_arena_enabled(true);

    ASSERT_EQ(with_arena.nnz(), without.nnz());
    const auto ro_a = with_arena.row_offsets();
    const auto ro_b = without.row_offsets();
    ASSERT_EQ(ro_a.size(), ro_b.size());
    EXPECT_TRUE(std::equal(ro_a.begin(), ro_a.end(), ro_b.begin()));
    const auto cols_a = with_arena.cols();
    const auto cols_b = without.cols();
    ASSERT_EQ(cols_a.size(), cols_b.size());
    EXPECT_TRUE(std::equal(cols_a.begin(), cols_a.end(), cols_b.begin()));
}

}  // namespace
}  // namespace spbla
