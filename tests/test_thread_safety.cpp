/// \file test_thread_safety.cpp
/// \brief Races the synchronised Matrix repr cache under real concurrency.
///
/// PR 6 had to prewarm bitblock representations before dist parallel regions
/// because first materialisation was unsynchronised; the per-slot latch made
/// that workaround deletable. These tests pin the new contract directly: all
/// four representations of one handle materialised from 8 pool threads at
/// once, conversions run exactly once, tracker charges balance. They carry
/// the `parallel` ctest label, so the tsan preset (`ctest -L parallel`)
/// race-checks them — the parallel-capture suppressions below are the
/// sanctioned kind: hammering accessors from a parallel region is the
/// point of the file.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "backend/context.hpp"
#include "helpers.hpp"
#include "storage/matrix.hpp"

namespace spbla {
namespace {

/// Pool sized to the scenario the dist layer produces: more workers than
/// formats, so several threads always collide on the same missing slot.
constexpr std::size_t kThreads = 8;

struct StatsDelta {
    std::uint64_t conversions;
    std::uint64_t stores;

    static StatsDelta now() {
        auto& s = storage::stats();
        return {s.format_conversions.load(), s.repr_cache_stores.load()};
    }
};

TEST(ThreadSafety, ConcurrentFirstMaterialisationAllFormats) {
    backend::Context dev{backend::Policy::Parallel, kThreads};
    {
        const Matrix m{testing::random_csr(96, 80, 0.08, /*seed=*/7), dev};
        const std::vector<Coord> expected = m.to_coords();

        for (int round = 0; round < 4; ++round) {
            const StatsDelta before = StatsDelta::now();
            std::atomic<int> mismatches{0};
            dev.pool()->run_dynamic(kThreads * 2, [&](std::size_t t) {
                std::vector<Coord> got;
                switch (t % kNumFormats) {
                    case 0: got = m.csr(dev).to_coords(); break;       // lint:allow(parallel-capture)
                    case 1: got = m.coo(dev).to_coords(); break;       // lint:allow(parallel-capture)
                    case 2: got = m.dense(dev).to_coords(); break;     // lint:allow(parallel-capture)
                    default: got = m.bitblocks(dev).to_coords(); break;  // lint:allow(parallel-capture)
                }
                if (got != expected) mismatches.fetch_add(1);
            });
            EXPECT_EQ(mismatches.load(), 0);

            // Losing racers must reuse the winner's conversion: exactly one
            // conversion (and one cache store) per secondary format, no
            // matter how many threads collided on the empty slot.
            const StatsDelta after = StatsDelta::now();
            EXPECT_EQ(after.conversions - before.conversions, 3u);
            EXPECT_EQ(after.stores - before.stores, 3u);

            m.drop_cached();  // re-race first materialisation next round
        }
    }
    EXPECT_EQ(dev.tracker().current_bytes(), 0u) << dev.tracker().leak_report();
}

TEST(ThreadSafety, ConcurrentMixedReadersAndMaterialisers) {
    backend::Context dev{backend::Policy::Parallel, kThreads};
    {
        const Matrix m{testing::random_csr(64, 64, 0.2, /*seed=*/11), dev};
        const std::size_t expected_nnz = m.nnz();
        const Index expected_max = [&] {
            Index best = 0;
            for (Index r = 0; r < m.nrows(); ++r)
                best = std::max(best, static_cast<Index>(m.csr(dev).row(r).size()));
            return best;
        }();

        std::atomic<int> bad{0};
        dev.pool()->run_dynamic(kThreads * 8, [&](std::size_t t) {
            switch (t % 4) {
                case 0:  // lock-free primary read path (counted as a TU
                         // prewarm by the lint rule: expected_max above
                         // already materialised m's CSR serially)
                    if (m.csr(dev).nnz() != expected_nnz) bad.fetch_add(1);
                    break;
                case 1:  // secondary materialisation race
                    if (m.bitblocks(dev).nnz() != expected_nnz) bad.fetch_add(1);  // lint:allow(parallel-capture)
                    break;
                case 2:  // cached-scalar fill race
                    if (m.max_row_nnz() != expected_max) bad.fetch_add(1);  // lint:allow(parallel-capture)
                    break;
                default:  // metadata + charge accounting reads
                    (void)m.has_format(Format::Dense);
                    (void)m.cached_bytes();
                    break;
            }
        });
        EXPECT_EQ(bad.load(), 0);
    }
    EXPECT_EQ(dev.tracker().current_bytes(), 0u) << dev.tracker().leak_report();
}

TEST(ThreadSafety, ChargesBalanceAfterMaterialisationRace) {
    backend::Context dev{backend::Policy::Parallel, kThreads};
    const std::size_t gauge_before = storage::cached_bytes();
    {
        const Matrix m{testing::random_csr(72, 72, 0.1, /*seed=*/23), dev};
        const std::size_t primary_bytes = dev.tracker().current_bytes();

        dev.pool()->run_dynamic(kThreads * 2, [&](std::size_t t) {
            switch (t % kNumFormats) {
                case 0: (void)m.csr(dev); break;
                case 1: (void)m.coo(dev); break;        // lint:allow(parallel-capture)
                case 2: (void)m.dense(dev); break;      // lint:allow(parallel-capture)
                default: (void)m.bitblocks(dev); break;  // lint:allow(parallel-capture)
            }
        });

        // Exactly one charge per secondary, regardless of the race outcome.
        const std::size_t secondaries = m.coo(dev).device_bytes() +
                                        m.dense(dev).device_bytes() +
                                        m.bitblocks(dev).device_bytes();
        EXPECT_EQ(m.cached_bytes(), secondaries);
        EXPECT_EQ(dev.tracker().current_bytes(), primary_bytes + secondaries);
        EXPECT_EQ(storage::cached_bytes(), gauge_before + secondaries);

        m.drop_cached();
        EXPECT_EQ(m.cached_bytes(), 0u);
        EXPECT_EQ(dev.tracker().current_bytes(), primary_bytes);
    }
    EXPECT_EQ(storage::cached_bytes(), gauge_before);
    EXPECT_EQ(dev.tracker().current_bytes(), 0u) << dev.tracker().leak_report();
}

}  // namespace
}  // namespace spbla
